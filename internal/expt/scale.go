package expt

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"vm1place/internal/tech"
)

// Scale sweep: the full flow at growing instance counts and shard
// counts, recording wall time, peak heap and routed QoR. This is the
// harness behind `make bench-scale` (BENCH_scale.json) and the
// exptables -scalesweep flag; the sharded optimizer's claim — 10x the
// design scale at sublinear memory in the window count — is what the
// peak-heap column substantiates.

// ScalePoint is one (design size, shard count) sample of the sweep.
type ScalePoint struct {
	Design   string
	NumInsts int
	Shards   int
	// OptSec/RouteSec split the flow wall time; BuildSec covers
	// generation + floorplan + global placement.
	BuildSec, OptSec, RouteSec float64
	// PeakHeapMB is the maximum sampled live heap during the flow.
	PeakHeapMB float64
	// Routed QoR after optimization.
	RWL  int64
	DM1  int
	DRVs int
}

// ScaleSweepPoints expands a scale series for one paper design into
// deduplicated specs: scales below MinScaledInsts/NumInsts all clamp to
// the same floored point (see MinScaledInsts), so duplicates by
// NumInsts are dropped rather than silently re-run. Scales above 1
// are allowed — they grow the synthetic design past the paper's counts
// (vga at scale ~14.6 is the 1M-instance point).
func ScaleSweepPoints(design string, scales []float64) ([]DesignSpec, error) {
	var base DesignSpec
	found := false
	for _, d := range PaperDesigns {
		if d.Name == design {
			base, found = d, true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("%w: %s", ErrUnknownDesign, design)
	}
	var out []DesignSpec
	for _, s := range scales {
		n := int(float64(base.NumInsts) * s)
		if n < MinScaledInsts {
			n = MinScaledInsts
		}
		dup := false
		for _, o := range out {
			if o.NumInsts == n {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, DesignSpec{Name: base.Name, NumInsts: n, Seed: base.Seed})
		}
	}
	return out, nil
}

// PeakHeapSampler watches the live heap from a background goroutine,
// recording the maximum HeapAlloc it observes. It measures, never
// steers: the flows it wraps are bit-deterministic with or without it.
type PeakHeapSampler struct {
	stop chan struct{}
	done chan struct{}
	mu   sync.Mutex
	peak uint64
}

// StartPeakHeapSampler begins sampling the heap at the given interval
// (<= 0: 10ms).
func StartPeakHeapSampler(interval time.Duration) *PeakHeapSampler {
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	s := &PeakHeapSampler{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			s.sample()
			select {
			case <-s.stop:
				return
			case <-tick.C:
			}
		}
	}()
	return s
}

func (s *PeakHeapSampler) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.mu.Lock()
	if ms.HeapAlloc > s.peak {
		s.peak = ms.HeapAlloc
	}
	s.mu.Unlock()
}

// Stop ends sampling (taking one final sample) and returns the peak
// observed live-heap bytes.
func (s *PeakHeapSampler) Stop() uint64 {
	close(s.stop)
	<-s.done
	s.sample()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peak
}

// RunScaleSweep runs the ClosedM1 flow for every deduplicated scale of
// one design crossed with every shard count, sampling peak heap around
// each flow. Points run sequentially — concurrent flows would blur the
// per-point heap attribution — so expect wall time to be the sum of the
// flows; size the scales to the machine. cfg.Workers feeds the
// optimizer/router worker pools as usual.
func RunScaleSweep(cfg SuiteConfig, design string, scales []float64, shards []int) ([]ScalePoint, error) {
	specs, err := ScaleSweepPoints(design, scales)
	if err != nil {
		return nil, err
	}
	if len(shards) == 0 {
		shards = []int{1}
	}
	var out []ScalePoint
	for _, spec := range specs {
		for _, k := range shards {
			fc := FlowConfig{
				Arch:          tech.ClosedM1,
				MaxOuterIters: 1,
				Workers:       cfg.Workers,
				Shards:        k,
			}
			samp := StartPeakHeapSampler(0)
			start := time.Now()
			r, err := RunFlow(spec, fc)
			wall := time.Since(start).Seconds()
			peak := samp.Stop()
			if err != nil {
				return out, fmt.Errorf("expt: scale sweep %s n=%d shards=%d: %w",
					spec.Name, spec.NumInsts, k, err)
			}
			out = append(out, ScalePoint{
				Design:     spec.Name,
				NumInsts:   r.NumInsts,
				Shards:     k,
				BuildSec:   wall - r.OptRuntime.Seconds() - r.RouteRuntime.Seconds(),
				OptSec:     r.OptRuntime.Seconds(),
				RouteSec:   r.RouteRuntime.Seconds(),
				PeakHeapMB: float64(peak) / (1 << 20),
				RWL:        r.Final.RWL,
				DM1:        r.Final.DM1,
				DRVs:       r.Final.DRVs,
			})
		}
	}
	return out, nil
}

// WriteScaleSweep prints the sweep series.
func WriteScaleSweep(w io.Writer, pts []ScalePoint) {
	fmt.Fprintln(w, "# Scale sweep: wall, peak heap and routed QoR vs instance count and shard count (ClosedM1)")
	fmt.Fprintln(w, "design  insts    shards  build_s  opt_s   route_s  peak_mb   rwl_um      dm1    drvs")
	for _, p := range pts {
		fmt.Fprintf(w, "%-6s  %7d  %6d  %7.1f  %6.1f  %7.1f  %7.1f  %10.1f  %6d  %6d\n",
			p.Design, p.NumInsts, p.Shards, p.BuildSec, p.OptSec, p.RouteSec,
			p.PeakHeapMB, um(p.RWL), p.DM1, p.DRVs)
	}
}
