// Congestion sweep: the Figure 8 study — DRV reduction at high
// utilization.
//
// Increases placement utilization on aes/ClosedM1 to induce congestion
// hotspots, then shows that the vertical-M1 optimization removes a
// substantial fraction of the resulting DRVs (routing overflows) while
// increasing direct vertical M1 routes.
//
//	go run ./examples/congestion_sweep
//	go run ./examples/congestion_sweep -scale 0.2 -utils 0.75,0.80,0.84
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"vm1place/internal/expt"
)

func main() {
	scale := flag.Float64("scale", 0.08, "fraction of the paper's aes size")
	utilsStr := flag.String("utils", "0.75,0.80,0.84", "comma-separated utilizations")
	workers := flag.Int("workers", 8, "parallel window solvers")
	flag.Parse()

	var utils []float64
	for _, f := range strings.Split(*utilsStr, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bad utilization:", f)
			os.Exit(2)
		}
		utils = append(utils, v)
	}

	cfg := expt.SuiteConfig{Scale: *scale, Workers: *workers}
	fmt.Printf("sweeping utilization on aes/ClosedM1 at scale %.2f ...\n\n", *scale)
	pts, err := expt.RunFig8(cfg, utils)
	if err != nil {
		fmt.Fprintln(os.Stderr, "congestion_sweep:", err)
		os.Exit(1)
	}
	expt.WriteFig8(os.Stdout, pts)

	saved := 0
	for _, p := range pts {
		saved += p.DRVsOrig - p.DRVsOpt
	}
	fmt.Printf("\ntotal DRVs avoided across the sweep: %d\n", saved)
}
