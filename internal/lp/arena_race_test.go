package lp

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestArenaSequentialHandoff reproduces the DistOpt worker-pool ownership
// pattern: one Arena is passed between goroutines through a channel, each
// goroutine running a window's worth of warm re-solves before handing it on.
// An Arena is documented as single-owner, not concurrency-safe; the channel
// hand-off provides the happens-before edge. Under `make race` this test
// verifies that the kernel itself introduces no hidden shared state (e.g.
// package-level scratch) that would break that contract — the global stats
// counters are the one intentional exception and are atomic.
func TestArenaSequentialHandoff(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := genLP(rng)
	if m.Solve().Status != Optimal {
		// Regenerate until the base instance is optimal so warm solves run.
		for s := int64(8); ; s++ {
			rng = rand.New(rand.NewSource(s))
			m = genLP(rng)
			if m.Solve().Status == Optimal {
				break
			}
		}
	}

	const workers = 4
	const rounds = 8
	ch := make(chan *Arena, 1)
	ch <- NewArena()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for r := 0; r < rounds; r++ {
				a := <-ch // take ownership
				lo, hi := m.Bounds()
				for step := 0; step < 3; step++ {
					tightenBounds(rng, lo, hi)
					sol := m.SolveWithScratch(lo, hi, nil, a)
					if sol.Status == IterLimit {
						t.Errorf("worker %d: unexpected iteration limit", w)
					}
					if sol.Status != Optimal {
						break
					}
				}
				// Exercise the deadline path too: an already-expired
				// deadline must abort cleanly and leave the arena reusable.
				if r == rounds/2 {
					a.SetDeadline(time.Now().Add(-time.Second))
					if sol := m.Solve(); sol == nil {
						t.Errorf("worker %d: nil solution", w)
					}
					_ = m.SolveWithScratch(nil, nil, nil, a)
					a.SetDeadline(time.Time{})
					if sol := m.SolveWithScratch(nil, nil, nil, a); sol.Status != Optimal {
						t.Errorf("worker %d: arena not reusable after deadline abort: %v", w, sol.Status)
					}
				}
				ch <- a // release ownership
			}
		}(w)
	}
	wg.Wait()

	a := <-ch
	if a.Stats().Solves == 0 {
		t.Fatalf("arena stats recorded no solves")
	}
}
