package milp

// Parallel branch and bound: speculative node solves under canonical-order
// commits.
//
// The scheme mirrors PR 3's router (conflict-free work in parallel,
// deterministic commits in a fixed order). A committer goroutine replays
// exactly the sequential solver's depth-first traversal — budget checks,
// prune tests, reduced-cost fixing, incumbent updates, rounder calls and
// branching all happen on the committer in the order the recursive solver
// would perform them. What runs in parallel is the only part of a node
// that does not depend on that order: its LP relaxation. Workers claim
// pending nodes from the DFS stack (top first, the next to commit) and
// solve their relaxations speculatively; every stacked node is one the
// sequential traversal would also solve before examining, so speculation
// never wastes a solve on untimed runs.
//
// Determinism. A worker's arena is forced cold before every node
// (lp.Arena.InvalidateWarm), making each relaxation a pure function of
// (model, bounds, hint) — independent of which worker solves it, when, and
// what its arena solved before. Since the committer alone advances the
// search state, the explored tree, the incumbent sequence and the final
// result are identical for any worker count ≥ 2. Workers=1 keeps the
// sequential solver with its warm-started dual re-solves; the two regimes
// agree whenever node relaxations have unique optima (the RHS perturbation
// in lp makes ties vanishingly rare — the worker-invariance test checks
// this on a window-MILP corpus).
//
// Timed runs (TimeLimit > 0) remain wall-clock dependent in parallel mode
// exactly as they are sequentially: the deadline decides how much of the
// tree is visited, not how any visited node resolves.

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"vm1place/internal/lp"
)

// pnode is one branch-and-bound subproblem awaiting commit. Bounds are
// owned by the node; hint is shared read-only with its siblings (the parent
// relaxation's vertex).
type pnode struct {
	lo, hi []float64
	hint   []float64

	// claimed is set by the one agent (worker or committer) that solves
	// the relaxation; done closes when the solution below is filled.
	claimed atomic.Bool
	done    chan struct{}

	status lp.Status
	obj    float64
	x      []float64 // owned (fresh per solve)
	red    []float64 // owned copy of the arena-backed reduced costs

	// Bound bookkeeping for Result.BestBound: a committed leaf folds its
	// bound into parent; a branched node folds min(children) once kids
	// reaches zero.
	parent *pnode
	kids   int
	bound  float64
}

// psolver runs the committer loop and owns the shared stack.
type psolver struct {
	seq *solver // sequential state machine: incumbent, budgets, pools

	mu    sync.Mutex
	cond  *sync.Cond
	stack []*pnode
	quit  bool
}

// workerArenas recycles LP arenas across parallel solves process-wide; a
// DistOpt pass solves thousands of window MILPs and per-solve arenas would
// rebuild the factorization scratch every time. Which arena a worker gets
// is irrelevant to results: parallel node solves always run cold.
var workerArenas = sync.Pool{New: func() any { return lp.NewArena() }}

// solveParallel is Solve for Workers >= 2.
func solveParallel(m *Model, p Params, s *solver) Result {
	ps := &psolver{seq: s}
	ps.cond = sync.NewCond(&ps.mu)

	var wg sync.WaitGroup
	for i := 0; i < p.Workers; i++ {
		a := workerArenas.Get().(*lp.Arena)
		wg.Add(1)
		go func(a *lp.Arena) {
			defer wg.Done()
			defer workerArenas.Put(a)
			ps.worker(a)
		}(a)
	}

	lo, hi := m.LP.Bounds()
	root := &pnode{lo: lo, hi: hi, hint: p.Incumbent, done: make(chan struct{}), bound: math.Inf(1)}
	ps.push(root)

	rootBound := ps.commitLoop(root)

	ps.mu.Lock()
	ps.quit = true
	ps.cond.Broadcast()
	ps.mu.Unlock()
	wg.Wait()

	if !s.aborted {
		s.bestBound = rootBound
	}
	switch {
	case s.hasBest && !s.aborted:
		return Result{Status: Optimal, Obj: s.bestObj, X: s.bestX, Nodes: s.nodes, BestBound: s.bestBound}
	case s.hasBest:
		return Result{Status: Feasible, Obj: s.bestObj, X: s.bestX, Nodes: s.nodes, BestBound: s.bestBound}
	case !s.aborted:
		return Result{Status: Infeasible, Nodes: s.nodes, BestBound: s.bestBound}
	default:
		return Result{Status: Limit, Nodes: s.nodes, BestBound: s.bestBound}
	}
}

// push adds a node to the shared stack and wakes a worker.
func (ps *psolver) push(n *pnode) {
	ps.mu.Lock()
	ps.stack = append(ps.stack, n)
	ps.cond.Signal()
	ps.mu.Unlock()
}

// pop removes and returns the canonical next node (stack top); the
// committer is its only caller.
func (ps *psolver) pop() *pnode {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	k := len(ps.stack)
	if k == 0 {
		return nil
	}
	n := ps.stack[k-1]
	ps.stack[k-1] = nil
	ps.stack = ps.stack[:k-1]
	return n
}

// worker claims unclaimed nodes nearest the stack top — the next to commit
// — and solves their relaxations until told to quit.
func (ps *psolver) worker(a *lp.Arena) {
	if ps.seq.hasDL {
		a.SetDeadline(ps.seq.deadline)
		defer a.SetDeadline(time.Time{})
	}
	for {
		ps.mu.Lock()
		var n *pnode
		for {
			if ps.quit {
				ps.mu.Unlock()
				return
			}
			for i := len(ps.stack) - 1; i >= 0; i-- {
				c := ps.stack[i]
				if c.claimed.CompareAndSwap(false, true) {
					n = c
					break
				}
			}
			if n != nil {
				break
			}
			ps.cond.Wait()
		}
		ps.mu.Unlock()
		solveNode(ps.seq.m, n, a)
	}
}

// solveNode runs a node's LP relaxation cold and publishes the result.
func solveNode(m *Model, n *pnode, a *lp.Arena) {
	a.InvalidateWarm()
	sol := m.LP.SolveWithScratch(n.lo, n.hi, n.hint, a)
	n.status = sol.Status
	n.obj = sol.Obj
	n.x = sol.X // freshly allocated per solve; safe to keep
	if sol.RedCost != nil {
		// RedCost is arena-owned and dies at the arena's next solve.
		n.red = append([]float64(nil), sol.RedCost...)
	}
	close(n.done)
}

// commitLoop is the canonical traversal: it processes the stack top in
// sequential DFS order, applying every search-state transition the
// recursive solver would. Returns the root's proven bound.
func (ps *psolver) commitLoop(root *pnode) float64 {
	s := ps.seq
	commitArena := s.scratch
	if s.hasDL {
		commitArena.SetDeadline(s.deadline)
		defer commitArena.SetDeadline(time.Time{})
	}
	for {
		n := ps.pop()
		if n == nil {
			break
		}
		if s.nodes >= s.maxNodes || (s.hasDL && time.Now().After(s.deadline)) {
			s.aborted = true
			break
		}
		s.nodes++

		// The committer solves unclaimed tops itself instead of waiting for
		// a worker to pick them up (with few workers the top is often still
		// unclaimed when its commit turn arrives).
		if n.claimed.CompareAndSwap(false, true) {
			solveNode(s.m, n, commitArena)
		} else {
			<-n.done
		}

		switch n.status {
		case lp.Infeasible:
			ps.finalize(n, math.Inf(1))
			continue
		case lp.Unbounded, lp.IterLimit:
			// Same conservative reading as the sequential solver: stop the
			// search, keep the incumbent, claim no bound.
			s.aborted = true
			ps.finalize(n, math.Inf(-1))
			goto done
		}
		if s.hasBest && n.obj >= s.bestObj-s.p.AbsGap {
			ps.finalize(n, n.obj) // pruned by bound
			continue
		}

		// Reduced-cost fixing against the canonical incumbent; the node owns
		// its bounds, so fixing mutates them in place for the subtree.
		if s.hasBest && n.red != nil {
			gap := s.bestObj - s.p.AbsGap - n.obj
			for _, j := range s.m.Ints {
				if n.lo[j] >= n.hi[j] {
					continue
				}
				d := n.red[j]
				if d > gap && n.x[j] <= n.lo[j]+intTol {
					n.hi[j] = n.lo[j]
				} else if -d > gap && n.x[j] >= n.hi[j]-intTol {
					n.lo[j] = n.hi[j]
				}
			}
		}

		fracVar := s.mostFractional(n.x)
		if fracVar == -1 {
			if !s.hasBest || n.obj < s.bestObj {
				s.bestObj = n.obj
				s.bestX = append(s.bestX[:0], n.x...)
				s.hasBest = true
			}
			ps.finalize(n, n.obj)
			continue
		}

		if s.p.Rounder != nil {
			if rx, robj, ok := s.p.Rounder(n.x); ok {
				if !s.hasBest || robj < s.bestObj {
					s.bestObj = robj
					s.bestX = append(s.bestX[:0], rx...)
					s.hasBest = true
				}
			}
		}

		ps.branch(n, fracVar)
	}
done:
	return root.bound
}

// finalize records a committed node's proven bound and folds completed
// subtrees into their parents (a branched node's bound is the min over its
// children, matching the sequential solver's return value), releasing
// bound vectors to the pool.
func (ps *psolver) finalize(n *pnode, bound float64) {
	s := ps.seq
	if bound < n.bound {
		n.bound = bound
	}
	for {
		s.putBounds(n.lo, n.hi)
		n.lo, n.hi = nil, nil
		p := n.parent
		if p == nil {
			return
		}
		if n.bound < p.bound {
			p.bound = n.bound
		}
		if p.kids--; p.kids > 0 {
			return
		}
		n = p
	}
}

// branch creates a node's children in sequential order and pushes them for
// speculative solving (second child first, so the stack pops the first
// child next — the order the recursive solver explores).
func (ps *psolver) branch(n *pnode, fracVar int) {
	s := ps.seq
	var kids []*pnode
	child := func(lo, hi []float64) *pnode {
		return &pnode{lo: lo, hi: hi, hint: n.x, parent: n,
			done: make(chan struct{}), bound: math.Inf(1)}
	}
	if gi := s.inGroup[fracVar]; gi >= 0 {
		active, cut := groupSplit(s, s.m.Groups[gi], n.hi, n.x)
		// Child A: winner inside S; child B: winner in the complement.
		hiA := s.getBounds(n.hi)
		for _, j := range active[cut:] {
			hiA[j] = 0
		}
		hiB := s.getBounds(n.hi)
		for _, j := range active[:cut] {
			hiB[j] = 0
		}
		s.putInts(active)
		kids = append(kids,
			child(s.getBounds(n.lo), hiA),
			child(s.getBounds(n.lo), hiB))
	} else {
		fl := math.Floor(n.x[fracVar])
		if n.lo[fracVar] <= fl {
			hi2 := s.getBounds(n.hi)
			hi2[fracVar] = fl
			kids = append(kids, child(s.getBounds(n.lo), hi2))
		}
		if n.hi[fracVar] >= fl+1 {
			lo2 := s.getBounds(n.lo)
			lo2[fracVar] = fl + 1
			kids = append(kids, child(lo2, s.getBounds(n.hi)))
		}
	}
	if len(kids) == 0 {
		ps.finalize(n, math.Inf(1))
		return
	}
	n.kids = len(kids)
	// Parent bound vectors are dead once the children copied them; the node
	// itself stays live for bound folding.
	s.putBounds(n.lo, n.hi)
	n.lo, n.hi = nil, nil
	ps.mu.Lock()
	for i := len(kids) - 1; i >= 0; i-- {
		ps.stack = append(ps.stack, kids[i])
	}
	if len(kids) > 1 {
		ps.cond.Broadcast()
	} else {
		ps.cond.Signal()
	}
	ps.mu.Unlock()
}

// groupSplit computes branchGroup's balanced partition of an exactly-one
// group: the active (unfixed) members sorted by LP value descending, and
// the cut index such that active[:cut] holds at least half the LP mass.
// The returned slice comes from the solver's int pool.
func groupSplit(s *solver, g []int, hi, x []float64) (active []int, cut int) {
	active = s.getInts(len(g))
	for _, j := range g {
		if hi[j] > 0.5 {
			active = append(active, j)
		}
	}
	for i := 0; i < len(active); i++ {
		for k := i + 1; k < len(active); k++ {
			if x[active[k]] > x[active[i]] {
				active[i], active[k] = active[k], active[i]
			}
		}
	}
	var mass, total float64
	for _, j := range active {
		total += x[j]
	}
	for cut < len(active)-1 {
		mass += x[active[cut]]
		cut++
		if mass >= total/2 {
			break
		}
	}
	return active, cut
}
