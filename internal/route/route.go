// Package route implements the multi-layer grid router that stands in for
// the commercial (Innovus) router of the DAC'17 paper. It is the component
// whose *response to vertical pin alignment* produces the paper's headline
// metrics: direct vertical M1 routes (dM1), routed wirelength (RWL), via12
// counts and congestion-driven DRVs.
//
// The routing fabric is a 3-D grid: one node per (layer, site-column, row)
// with preferred-direction edges (M1/M3 vertical, M2/M4 horizontal) and
// vias between adjacent layers. Nets are routed pin-by-pin onto their
// growing route tree with A* search; a short negotiated-congestion loop
// rips up and reroutes nets through overflowed edges. Key
// architecture-specific behaviours:
//
//   - ClosedM1: pins are M1 nodes; foreign M1 pins block M1 traversal, so
//     inter-row M1 routing exists only where tracks are clear and pins
//     align — exactly the regime the paper's optimizer targets.
//   - OpenM1: pins are M0 shapes reached from any M1 node above their
//     x-extent for a via01 cost; M1 is otherwise open.
//   - Conventional: M1 carries rails/pins only; routing starts at M2.
//
// A connection routed as a single vertical M1 segment between two pin
// nodes spanning at most γ rows is counted as a direct vertical M1 route.
//
// Routing is parallel: nets are greedily colored into batches whose
// dilated search regions are pairwise disjoint, each batch is routed
// concurrently by workers that own their complete A* state, and route
// records are committed at batch barriers in net order — so the final
// Metrics are bit-identical for every Workers value (see parallel.go).
package route

import (
	"runtime"

	"vm1place/internal/layout"
	"vm1place/internal/netlist"
	"vm1place/internal/tech"
)

// Config tunes the router.
type Config struct {
	// Caps is the per-layer routing capacity of one grid edge (tracks).
	Caps [tech.NumLayers]int
	// ViaCost is the cost of one layer change, in DBU-equivalent units.
	ViaCost int64
	// M1CostFactor scales M1 edge cost; < 1 makes the router prefer
	// direct vertical M1 where geometry permits (the dM1-aware mode).
	M1CostFactor float64
	// Gamma is the maximum dM1 span in rows (from tech).
	Gamma int
	// RipupIters is the number of congestion-negotiation passes after the
	// initial routing pass.
	RipupIters int
	// CongWeight scales the per-overflow cost penalty; it is further
	// multiplied by the pass number during rip-up.
	CongWeight float64
	// SearchMargin pads each connection's search bounding box, in grid
	// cells.
	SearchMargin int
	// M1Routable disables M1 inter-cell routing (Conventional libraries).
	M1Routable bool
	// Arch selects pin-access behaviour.
	Arch tech.Arch
	// Workers is the number of concurrent routing workers. <= 0 means 1.
	// Metrics are identical for every value (see parallel.go).
	Workers int
}

// DefaultConfig returns the router configuration for an architecture.
func DefaultConfig(t *tech.Tech, arch tech.Arch) Config {
	cfg := Config{
		ViaCost:      t.ViaCost,
		M1CostFactor: 0.3,
		Gamma:        t.Gamma,
		RipupIters:   2,
		CongWeight:   4.0,
		SearchMargin: 12,
		M1Routable:   arch != tech.Conventional,
		Arch:         arch,
		Workers:      runtime.GOMAXPROCS(0),
	}
	cfg.Caps[tech.M1] = 1
	cfg.Caps[tech.M2] = 3
	cfg.Caps[tech.M3] = 2
	cfg.Caps[tech.M4] = 3
	return cfg
}

// Metrics summarizes one routing of the design.
type Metrics struct {
	// RWL is total routed wirelength in DBU (all layers).
	RWL int64
	// LayerWL is per-layer wirelength in DBU.
	LayerWL [tech.NumLayers]int64
	// Via01/Via12/Via23/Via34 count vias by layer pair.
	Via01, Via12, Via23, Via34 int
	// DM1 is the number of direct vertical M1 routes (single M1 segment
	// pin-to-pin connections spanning <= Gamma rows).
	DM1 int
	// M1Segs is the number of distinct M1 route segments.
	M1Segs int
	// Overflow is the total edge overflow (Σ max(0, usage-cap)), the DRV
	// proxy.
	Overflow int
	// FailedConns counts connections the router could not complete.
	FailedConns int
}

// epRec is one net terminal — an instance pin or a port — with its access
// points stored flat in the router's apNode/apCost arrays.
type epRec struct {
	apStart, apEnd int32
	px, py         int64 // position, for endpoint ordering
	isPin          bool
}

// Router routes one placement. It retains per-net routes so callers can
// inspect them; RouteAll may be called repeatedly (e.g., after placement
// changes) and starts from a clean slate each time.
type Router struct {
	cfg Config
	p   *layout.Placement
	t   *tech.Tech

	nx, ny int // grid: site columns x rows

	// Edge usage per layer. Vertical layers use index y*nx+x for the edge
	// (x,y)-(x,y+1); horizontal layers use y*(nx-1)+x for (x,y)-(x+1,y).
	usage [tech.NumLayers][]int32

	// blockedM1[x*ny+y] = net index + 1 of the ClosedM1 pin occupying the
	// M1 track node, or 0.
	blockedM1 []int32

	// edgeCost caches the full traversal cost of every edge at the
	// current usage and congestion weight (indexed like usage). Rebuilt
	// when the congestion weight changes and maintained incrementally by
	// addUsage, it turns the hot relax-loop cost computation into one
	// array load.
	edgeCost [tech.NumLayers][]float64
	curCW    float64

	// edgeBase/edgePitch are the per-layer cost constants behind edgeCost.
	edgeBase, edgePitch [tech.NumLayers]float64

	// xOf/yOf/lOf decode a node id without div/mod (hot in the search
	// kernel).
	xOf, yOf []int16
	lOf      []int8

	// Per-RouteAll endpoint tables, read-only while batches are in
	// flight. netEpStart is CSR over eps (one range per net); apNode and
	// apCost hold every endpoint's access points flat; netRegion is each
	// net's exclusive routing region; portStart/portList is the CSR
	// ports-by-net index that replaces the old O(nets x ports) scan.
	apNode     []int32
	apCost     []int64
	eps        []epRec
	netEpStart []int32
	netRegion  []region
	portStart  []int32
	portList   []int32
	hpwlKey    []int64

	// searchers are the per-worker A* arenas, grown on demand and reused
	// across batches and RouteAll calls.
	searchers []*searcher

	// sched is the pooled batch-coloring state, reused across every
	// routeBatched call (initial pass and each rip-up iteration) so the
	// steady state allocates no per-call bitmaps or batch slices.
	sched batchSchedule

	// nrsBuf/defsBuf/deferBuf are the pooled per-batch result and
	// deferral buffers of routeBatched.
	nrsBuf   []*netRoute
	defsBuf  []bool
	deferBuf []int

	// routes holds the current route of each net.
	routes map[int]*netRoute

	metrics Metrics
}

// New creates a router over the placement.
func New(p *layout.Placement, cfg Config) *Router {
	r := &Router{
		cfg: cfg,
		p:   p,
		t:   p.Tech,
		nx:  p.NumSites,
		ny:  p.NumRows,
	}
	n := r.nx * r.ny
	for l := tech.M1; l <= tech.M4; l++ {
		r.usage[l] = make([]int32, n)
		r.edgeCost[l] = make([]float64, n)
		if l.Direction() == tech.Vertical {
			r.edgePitch[l] = float64(r.t.RowHeight)
		} else {
			r.edgePitch[l] = float64(r.t.SiteWidth)
		}
		r.edgeBase[l] = r.edgePitch[l]
		if l == tech.M1 {
			r.edgeBase[l] *= cfg.M1CostFactor
		}
	}
	r.blockedM1 = make([]int32, n)
	r.routes = make(map[int]*netRoute)
	size := int(tech.NumLayers) * n
	r.xOf = make([]int16, size)
	r.yOf = make([]int16, size)
	r.lOf = make([]int8, size)
	for id := 0; id < size; id++ {
		x := id % r.nx
		rest := id / r.nx
		r.xOf[id] = int16(x)
		r.yOf[id] = int16(rest % r.ny)
		r.lOf[id] = int8(rest / r.ny)
	}
	return r
}

// rebuildEdgeCosts recomputes the cached per-edge traversal costs for
// congestion weight cw; addUsage keeps them current between rebuilds.
func (r *Router) rebuildEdgeCosts(cw float64) {
	r.curCW = cw
	for l := tech.M1; l <= tech.M4; l++ {
		base, pen := r.edgeBase[l], r.edgePitch[l]*cw
		lcap := int32(r.cfg.Caps[l])
		u := r.usage[l]
		ec := r.edgeCost[l]
		for i, ui := range u {
			c := base
			if over := ui + 1 - lcap; over > 0 {
				c += pen * float64(over)
			}
			ec[i] = c
		}
	}
}

// workerCount returns the effective worker count.
func (r *Router) workerCount() int {
	if r.cfg.Workers <= 0 {
		return 1
	}
	return r.cfg.Workers
}

// ensureSearchers grows the searcher pool to n arenas.
func (r *Router) ensureSearchers(n int) {
	for len(r.searchers) < n {
		r.searchers = append(r.searchers, newSearcher(r))
	}
}

// node encoding: idx = (layer*ny + y)*nx + x.
func (r *Router) nodeID(l tech.Layer, x, y int) int32 {
	return int32((int(l)*r.ny+y)*r.nx + x)
}

func (r *Router) nodeOf(id int32) (l tech.Layer, x, y int) {
	return tech.Layer(r.lOf[id]), int(r.xOf[id]), int(r.yOf[id])
}

// vEdge returns the usage index of the vertical edge (x,y)-(x,y+1).
func (r *Router) vEdge(x, y int) int { return y*r.nx + x }

// hEdge returns the usage index of the horizontal edge (x,y)-(x+1,y).
func (r *Router) hEdge(x, y int) int { return y*(r.nx-1) + x }

// accessPoint is one grid node from which a pin can be reached.
type accessPoint struct {
	node    int32
	viaCost int64 // cost of dropping from the node into the pin (e.g. V01)
}

func (r *Router) clampX(x int) int {
	if x < 0 {
		return 0
	}
	if x >= r.nx {
		return r.nx - 1
	}
	return x
}

// appendPinAccess appends the access points of a connection's pin to the
// flat apNode/apCost arrays.
func (r *Router) appendPinAccess(c netlist.Conn) {
	shape := r.p.PinShape(c)
	row := r.p.Row[c.Inst]
	switch r.cfg.Arch {
	case tech.ClosedM1:
		cx := (shape.Rect.XLo + shape.Rect.XHi) / 2
		x := r.clampX(r.t.XToSite(cx))
		r.apNode = append(r.apNode, r.nodeID(tech.M1, x, row))
		r.apCost = append(r.apCost, 0)
	case tech.OpenM1:
		lo := r.clampX(r.t.XToSite(shape.Rect.XLo))
		hi := r.clampX(r.t.XToSite(shape.Rect.XHi - 1))
		for x := lo; x <= hi; x++ {
			r.apNode = append(r.apNode, r.nodeID(tech.M1, x, row))
			r.apCost = append(r.apCost, r.cfg.ViaCost)
		}
	default: // Conventional: access from M2 above the pin center.
		cx := (shape.Rect.XLo + shape.Rect.XHi) / 2
		x := r.clampX(r.t.XToSite(cx))
		r.apNode = append(r.apNode, r.nodeID(tech.M2, x, row))
		r.apCost = append(r.apCost, r.cfg.ViaCost)
	}
}

// portAccess returns the access point for a port.
func (r *Router) portAccess(pi int) accessPoint {
	pt := r.p.PortXY[pi]
	x := r.t.XToSite(pt.X)
	y := r.t.YToRow(pt.Y)
	if x < 0 {
		x = 0
	}
	if x >= r.nx {
		x = r.nx - 1
	}
	if y < 0 {
		y = 0
	}
	if y >= r.ny {
		y = r.ny - 1
	}
	return accessPoint{node: r.nodeID(tech.M2, x, y), viaCost: 0}
}

// buildPortIndex builds the CSR ports-by-net index.
func (r *Router) buildPortIndex() {
	d := r.p.Design
	nn := len(d.Nets)
	if cap(r.portStart) >= nn+1 {
		r.portStart = r.portStart[:nn+1]
		for i := range r.portStart {
			r.portStart[i] = 0
		}
	} else {
		r.portStart = make([]int32, nn+1)
	}
	for pi := range d.Ports {
		if ni := d.Ports[pi].Net; ni >= 0 && ni < nn {
			r.portStart[ni+1]++
		}
	}
	for i := 1; i <= nn; i++ {
		r.portStart[i] += r.portStart[i-1]
	}
	if cap(r.portList) >= len(d.Ports) {
		r.portList = r.portList[:len(d.Ports)]
	} else {
		r.portList = make([]int32, len(d.Ports))
	}
	fill := make([]int32, nn)
	for pi := range d.Ports {
		if ni := d.Ports[pi].Net; ni >= 0 && ni < nn {
			r.portList[r.portStart[ni]+fill[ni]] = int32(pi)
			fill[ni]++
		}
	}
}

// regionPadFactor dilates a net's endpoint bbox (in SearchMargin units) to
// form its exclusive routing region: wide enough that batch-mode searches
// almost never defer, tight enough that many nets stay disjoint.
const regionPadFactor = 2

// buildEndpoints collects every signal net's terminals and access points
// into the flat CSR tables, and derives each net's routing region. Built
// once per RouteAll and reused across the initial pass and every rip-up
// pass (the old kernel recomputed endpoints on each routeNet call).
func (r *Router) buildEndpoints() {
	d := r.p.Design
	nn := len(d.Nets)
	r.apNode = r.apNode[:0]
	r.apCost = r.apCost[:0]
	r.eps = r.eps[:0]
	if cap(r.netEpStart) >= nn+1 {
		r.netEpStart = r.netEpStart[:nn+1]
	} else {
		r.netEpStart = make([]int32, nn+1)
	}
	if len(r.netRegion) != nn {
		r.netRegion = make([]region, nn)
	}
	pad := regionPadFactor * r.cfg.SearchMargin
	for ni := 0; ni < nn; ni++ {
		r.netEpStart[ni] = int32(len(r.eps))
		n := &d.Nets[ni]
		if n.IsClock {
			continue
		}
		apLo := int32(len(r.apNode))
		if n.Driver.Inst >= 0 {
			r.appendEndpoint(n.Driver)
		}
		for _, c := range n.Sinks {
			r.appendEndpoint(c)
		}
		for k := r.portStart[ni]; k < r.portStart[ni+1]; k++ {
			pi := int(r.portList[k])
			apStart := int32(len(r.apNode))
			ap := r.portAccess(pi)
			r.apNode = append(r.apNode, ap.node)
			r.apCost = append(r.apCost, ap.viaCost)
			r.eps = append(r.eps, epRec{
				apStart: apStart, apEnd: int32(len(r.apNode)),
				px: r.p.PortXY[pi].X, py: r.p.PortXY[pi].Y,
			})
		}
		rg := r.apRegionOf(apLo, int32(len(r.apNode)))
		r.netRegion[ni] = r.clampRegion(region{
			xlo: rg.xlo - pad, ylo: rg.ylo - pad,
			xhi: rg.xhi + pad, yhi: rg.yhi + pad,
		})
	}
	r.netEpStart[nn] = int32(len(r.eps))
}

func (r *Router) appendEndpoint(c netlist.Conn) {
	apStart := int32(len(r.apNode))
	r.appendPinAccess(c)
	pos := r.p.PinPos(c)
	r.eps = append(r.eps, epRec{
		apStart: apStart, apEnd: int32(len(r.apNode)),
		px: pos.X, py: pos.Y, isPin: true,
	})
}

// buildBlockage records ClosedM1 pin blockages (foreign pins block M1).
func (r *Router) buildBlockage() {
	for i := range r.blockedM1 {
		r.blockedM1[i] = 0
	}
	if r.cfg.Arch != tech.ClosedM1 {
		return
	}
	d := r.p.Design
	for ii := range d.Insts {
		m := d.Insts[ii].Master
		row := r.p.Row[ii]
		for pi := range m.Pins {
			p := &m.Pins[pi]
			if !p.IsSignal() {
				continue
			}
			ni := d.Insts[ii].PinNets[pi]
			shape := r.p.PinShape(netlist.Conn{Inst: ii, Pin: pi})
			cx := (shape.Rect.XLo + shape.Rect.XHi) / 2
			x := r.t.XToSite(cx)
			if x < 0 || x >= r.nx {
				continue
			}
			r.blockedM1[r.blockIdx(x, row)] = int32(ni + 1)
		}
	}
}

func (r *Router) blockIdx(x, y int) int { return y*r.nx + x }

// Metrics returns the metrics of the last RouteAll.
func (r *Router) Metrics() Metrics { return r.metrics }
