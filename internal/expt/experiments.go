package expt

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"vm1place/internal/core"
	"vm1place/internal/tech"
)

// SuiteConfig sizes the experiment suite. Scale 1.0 uses the paper's
// instance counts; benches use smaller scales.
type SuiteConfig struct {
	Scale   float64
	Workers int
	// FlowParallel runs up to that many independent flow points of a sweep
	// (Fig. 5-8 samples, Table 2 designs) concurrently. Each point builds
	// its own placement and router, and output order matches the
	// sequential loop. Placement and routing are fully deterministic; the
	// optimizer's window MILPs are wall-clock budgeted, so point values
	// carry the same small run-to-run variance they have sequentially
	// (CPU contention can shrink the explored node count). When >1, set
	// Workers to a small value so points do not oversubscribe the machine.
	FlowParallel int
}

// forEachPoint evaluates fn(i) for i in [0, n), running up to
// cfg.FlowParallel points concurrently. Callers store results by index, so
// output order matches the sequential loop exactly; likewise the returned
// error is the failure with the lowest index, regardless of completion
// order.
func (c SuiteConfig) forEachPoint(n int, fn func(int) error) error {
	par := c.FlowParallel
	if par > n {
		par = n
	}
	if par <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < par; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// design returns the (possibly scaled) spec for a paper design name, or an
// error wrapping ErrUnknownDesign.
func (c SuiteConfig) design(name string) (DesignSpec, error) {
	specs := PaperDesigns
	if c.Scale > 0 && c.Scale < 1 {
		specs = ScaledDesigns(c.Scale)
	}
	for _, s := range specs {
		if s.Name == name {
			return s, nil
		}
	}
	return DesignSpec{}, fmt.Errorf("%w: %s", ErrUnknownDesign, name)
}

// --- ExptA-1 / Figure 5: window size & perturbation scalability ---------

// Fig5Point is one sweep sample.
type Fig5Point struct {
	WindowUm float64
	LX, LY   int
	RWL      int64
	Runtime  time.Duration
}

// RunFig5 sweeps square window sizes (and optionally perturbation ranges)
// on aes/ClosedM1 with a single DistOpt pair, as in ExptA-1.
func RunFig5(cfg SuiteConfig, windowsUm []float64, perturbations [][2]int) ([]Fig5Point, error) {
	if windowsUm == nil {
		windowsUm = []float64{5, 10, 20, 40, 80}
	}
	if perturbations == nil {
		perturbations = [][2]int{{4, 1}}
	}
	spec, err := cfg.design("aes")
	if err != nil {
		return nil, err
	}
	type fig5Case struct {
		um float64
		lp [2]int
	}
	var cases []fig5Case
	for _, um := range windowsUm {
		for _, lp := range perturbations {
			cases = append(cases, fig5Case{um, lp})
		}
	}
	out := make([]Fig5Point, len(cases))
	err = cfg.forEachPoint(len(cases), func(i int) error {
		c := cases[i]
		r, err := RunFlow(spec, FlowConfig{
			Arch: tech.ClosedM1,
			Sequence: core.Sequence{{
				BW: UmToDBU(c.um), BH: UmToDBU(c.um), LX: c.lp[0], LY: c.lp[1],
			}},
			MaxOuterIters: 1,
			Workers:       cfg.Workers,
		})
		if err != nil {
			return err
		}
		out[i] = Fig5Point{
			WindowUm: c.um, LX: c.lp[0], LY: c.lp[1],
			RWL: r.Final.RWL, Runtime: r.OptRuntime,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// WriteFig5 prints the normalized RWL / runtime series of Figure 5.
func WriteFig5(w io.Writer, pts []Fig5Point) {
	if len(pts) == 0 {
		return
	}
	minRWL := pts[0].RWL
	for _, p := range pts {
		if p.RWL < minRWL {
			minRWL = p.RWL
		}
	}
	fmt.Fprintln(w, "# Figure 5: normalized RWL and runtime vs window size (aes, ClosedM1)")
	fmt.Fprintln(w, "window_um  lx  ly  norm_rwl  runtime_s")
	for _, p := range pts {
		fmt.Fprintf(w, "%9.0f  %2d  %2d  %8.4f  %9.2f\n",
			p.WindowUm, p.LX, p.LY, float64(p.RWL)/float64(minRWL), p.Runtime.Seconds())
	}
}

// --- ExptA-2 / Figure 6: α sensitivity ----------------------------------

// Fig6Point is one α sample.
type Fig6Point struct {
	Alpha float64
	RWL   int64
	DM1   int
}

// RunFig6 sweeps α on aes with the given architecture, reporting RWL and
// #dM1 after optimization + reroute (ExptA-2).
func RunFig6(cfg SuiteConfig, arch tech.Arch, alphas []float64) ([]Fig6Point, error) {
	if alphas == nil {
		alphas = []float64{0, 10, 100, 400, 800, 1200, 2000, 4000, 6000}
	}
	spec, err := cfg.design("aes")
	if err != nil {
		return nil, err
	}
	out := make([]Fig6Point, len(alphas))
	err = cfg.forEachPoint(len(alphas), func(i int) error {
		a := alphas[i]
		r, err := RunFlow(spec, FlowConfig{
			Arch:          arch,
			Alpha:         a,
			AlphaSet:      true,
			MaxOuterIters: 2,
			Workers:       cfg.Workers,
		})
		if err != nil {
			return err
		}
		out[i] = Fig6Point{Alpha: a, RWL: r.Final.RWL, DM1: r.Final.DM1}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// WriteFig6 prints the Figure 6 series.
func WriteFig6(w io.Writer, arch tech.Arch, pts []Fig6Point) {
	fmt.Fprintf(w, "# Figure 6: RWL and #dM1 vs alpha (aes, %s)\n", arch)
	fmt.Fprintln(w, "alpha  rwl_um  dm1")
	for _, p := range pts {
		fmt.Fprintf(w, "%5.0f  %9.1f  %6d\n", p.Alpha, um(p.RWL), p.DM1)
	}
}

// --- ExptA-3 / Figure 7: optimization sequences --------------------------

// SequenceSpec is a named U sequence from §5.2, written in paper units.
type SequenceSpec struct {
	Name  string
	Steps [][3]int // (bw=bh µm, lx, ly)
}

// PaperSequences are the five example sequences of ExptA-3.
var PaperSequences = []SequenceSpec{
	{"seq1", [][3]int{{20, 4, 1}}},
	{"seq2", [][3]int{{10, 3, 1}, {10, 4, 0}, {20, 4, 0}}},
	{"seq3", [][3]int{{10, 3, 1}, {20, 3, 1}, {20, 3, 0}}},
	{"seq4", [][3]int{{10, 3, 1}, {20, 3, 0}}},
	{"seq5", [][3]int{{10, 3, 1}, {10, 3, 0}, {20, 3, 1}, {20, 3, 0}}},
}

// Fig7Point is one sequence's outcome.
type Fig7Point struct {
	Name    string
	RWL     int64
	Runtime time.Duration
}

// RunFig7 evaluates the five U sequences on aes/ClosedM1 (ExptA-3).
func RunFig7(cfg SuiteConfig, seqs []SequenceSpec) ([]Fig7Point, error) {
	if seqs == nil {
		seqs = PaperSequences
	}
	spec, err := cfg.design("aes")
	if err != nil {
		return nil, err
	}
	out := make([]Fig7Point, len(seqs))
	err = cfg.forEachPoint(len(seqs), func(i int) error {
		ss := seqs[i]
		var u core.Sequence
		for _, st := range ss.Steps {
			u = append(u, core.ParamSet{
				BW: UmToDBU(float64(st[0])), BH: UmToDBU(float64(st[0])),
				LX: st[1], LY: st[2],
			})
		}
		r, err := RunFlow(spec, FlowConfig{
			Arch:          tech.ClosedM1,
			Sequence:      u,
			MaxOuterIters: 2,
			Workers:       cfg.Workers,
		})
		if err != nil {
			return err
		}
		out[i] = Fig7Point{Name: ss.Name, RWL: r.Final.RWL, Runtime: r.OptRuntime}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// WriteFig7 prints the Figure 7 series.
func WriteFig7(w io.Writer, pts []Fig7Point) {
	fmt.Fprintln(w, "# Figure 7: RWL and runtime per optimization sequence (aes, ClosedM1)")
	fmt.Fprintln(w, "sequence  rwl_um  runtime_s")
	for _, p := range pts {
		fmt.Fprintf(w, "%-8s  %9.1f  %9.2f\n", p.Name, um(p.RWL), p.Runtime.Seconds())
	}
}

// --- ExptB / Table 2 ------------------------------------------------------

// RunTable2 runs the full flow on every design for one architecture.
func RunTable2(cfg SuiteConfig, arch tech.Arch) ([]FlowResult, error) {
	out := make([]FlowResult, len(PaperDesigns))
	err := cfg.forEachPoint(len(PaperDesigns), func(i int) error {
		spec, err := cfg.design(PaperDesigns[i].Name)
		if err != nil {
			return err
		}
		out[i], err = RunFlow(spec, FlowConfig{Arch: arch, Workers: cfg.Workers})
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// WriteTable2 prints the Table 2 block for one architecture.
func WriteTable2(w io.Writer, arch tech.Arch, rows []FlowResult) {
	fmt.Fprintf(w, "# Table 2 (%s-based designs)\n", arch)
	for _, r := range rows {
		WriteTable2Row(w, r)
	}
}

// --- Figure 8: DRVs vs utilization ---------------------------------------

// Fig8Point is one utilization sample.
type Fig8Point struct {
	Util     float64
	DRVsOrig int
	DRVsOpt  int
	DM1      int
}

// RunFig8 sweeps placement utilization on aes/ClosedM1 and reports DRVs
// before and after optimization plus the final dM1 count (the congestion
// study of ExptB-1).
func RunFig8(cfg SuiteConfig, utils []float64) ([]Fig8Point, error) {
	if utils == nil {
		utils = []float64{0.75, 0.78, 0.81, 0.82, 0.83, 0.84}
	}
	spec, err := cfg.design("aes")
	if err != nil {
		return nil, err
	}
	out := make([]Fig8Point, len(utils))
	err = cfg.forEachPoint(len(utils), func(i int) error {
		u := utils[i]
		r, err := RunFlow(spec, FlowConfig{Arch: tech.ClosedM1, Util: u, Workers: cfg.Workers})
		if err != nil {
			return err
		}
		out[i] = Fig8Point{
			Util: u, DRVsOrig: r.Init.DRVs, DRVsOpt: r.Final.DRVs, DM1: r.Final.DM1,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// WriteFig8 prints the Figure 8 series.
func WriteFig8(w io.Writer, pts []Fig8Point) {
	fmt.Fprintln(w, "# Figure 8: DRVs before/after optimization vs utilization (aes, ClosedM1)")
	fmt.Fprintln(w, "util_pct  drv_orig  drv_opt  dm1")
	for _, p := range pts {
		fmt.Fprintf(w, "%8.0f  %8d  %7d  %5d\n", p.Util*100, p.DRVsOrig, p.DRVsOpt, p.DM1)
	}
}

// --- Ablations -------------------------------------------------------------

// AblationResult compares two flow variants.
type AblationResult struct {
	Name            string
	BaseRWL, VarRWL int64
	BaseDM1, VarDM1 int
	BaseSec, VarSec float64
}

// RunAblationJointFlip compares the paper's sequential perturb-then-flip
// DistOpt pairs against a joint move+flip optimization (§4.2's
// observation: sequential is faster at similar quality).
func RunAblationJointFlip(cfg SuiteConfig) (AblationResult, error) {
	spec, err := cfg.design("aes")
	if err != nil {
		return AblationResult{}, err
	}
	seq := DefaultSequence()

	base, err := RunFlow(spec, FlowConfig{
		Arch: tech.ClosedM1, Sequence: seq, MaxOuterIters: 2, Workers: cfg.Workers,
	})
	if err != nil {
		return AblationResult{}, err
	}

	// Joint variant: one DistOpt with both degrees of freedom per
	// iteration (implemented via the core JointMode sequence flag).
	joint, err := RunJointFlow(spec, FlowConfig{
		Arch: tech.ClosedM1, Sequence: seq, MaxOuterIters: 2, Workers: cfg.Workers,
	})
	if err != nil {
		return AblationResult{}, err
	}

	return AblationResult{
		Name:    "sequential-vs-joint-flip",
		BaseRWL: base.Final.RWL, VarRWL: joint.Final.RWL,
		BaseDM1: base.Final.DM1, VarDM1: joint.Final.DM1,
		BaseSec: base.OptRuntime.Seconds(), VarSec: joint.OptRuntime.Seconds(),
	}, nil
}

// RunJointFlow mirrors RunFlow but optimizes moves and flips
// simultaneously in each window MILP. It is the same four-stage pipeline
// with the joint optimizer plugged into the optimize stage.
func RunJointFlow(spec DesignSpec, cfg FlowConfig) (FlowResult, error) {
	return runFlow(context.Background(), spec, cfg, core.VM1OptJointCtx, 0, false) // ctx-ok: context-free compat wrapper
}

// --- Guided window selection (congestion proxy) ----------------------------

// GuidedPoint compares uniform and proxy-guided MILP budgeting at one
// placement utilization: wall time of the optimizer plus the routed
// quality metrics that budget reallocation must not degrade.
type GuidedPoint struct {
	Util                    float64
	UniformSec, GuidedSec   float64
	UniformRWL, GuidedRWL   int64
	UniformDRVs, GuidedDRVs int
	UniformDM1, GuidedDM1   int
}

// RunGuidedSweep runs the aes/ClosedM1 flow at each utilization twice —
// uniform window-family budgeting versus proxy-guided selection
// (FlowConfig.Guided) — reporting optimizer wall time, routed wirelength,
// DRVs and dM1 for both. Higher utilizations concentrate congestion in
// fewer hotspots, which is where guided budgeting pays.
func RunGuidedSweep(cfg SuiteConfig, utils []float64) ([]GuidedPoint, error) {
	if utils == nil {
		utils = []float64{0.75, 0.82}
	}
	spec, err := cfg.design("aes")
	if err != nil {
		return nil, err
	}
	out := make([]GuidedPoint, len(utils))
	err = cfg.forEachPoint(len(utils), func(i int) error {
		u := utils[i]
		base := FlowConfig{
			Arch: tech.ClosedM1, Util: u, MaxOuterIters: 2, Workers: cfg.Workers,
		}
		uni, err := RunFlow(spec, base)
		if err != nil {
			return err
		}
		base.Guided = true
		gd, err := RunFlow(spec, base)
		if err != nil {
			return err
		}
		out[i] = GuidedPoint{
			Util:       u,
			UniformSec: uni.OptRuntime.Seconds(), GuidedSec: gd.OptRuntime.Seconds(),
			UniformRWL: uni.Final.RWL, GuidedRWL: gd.Final.RWL,
			UniformDRVs: uni.Final.DRVs, GuidedDRVs: gd.Final.DRVs,
			UniformDM1: uni.Final.DM1, GuidedDM1: gd.Final.DM1,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// WriteGuidedSweep prints the guided-vs-uniform comparison series.
func WriteGuidedSweep(w io.Writer, pts []GuidedPoint) {
	fmt.Fprintln(w, "# Guided window selection: uniform vs proxy-guided budgeting (aes, ClosedM1)")
	fmt.Fprintln(w, "util_pct  opt_s_uni  opt_s_gui  rwl_um_uni  rwl_um_gui  drv_uni  drv_gui  dm1_uni  dm1_gui")
	for _, p := range pts {
		fmt.Fprintf(w, "%8.0f  %9.2f  %9.2f  %10.1f  %10.1f  %7d  %7d  %7d  %7d\n",
			p.Util*100, p.UniformSec, p.GuidedSec,
			um(p.UniformRWL), um(p.GuidedRWL),
			p.UniformDRVs, p.GuidedDRVs, p.UniformDM1, p.GuidedDM1)
	}
}

// --- Timing-aware extension (paper future work (ii)) ----------------------

// TimingAwareBetas derives per-net βn multipliers from a slack analysis of
// the current placement: critical nets get up to (1+weight)× the HPWL
// weight so the optimizer resists stretching them while hunting
// alignments.
func TimingAwareBetas(spec DesignSpec, arch tech.Arch, util, weight float64) ([]float64, error) {
	p, err := BuildPlaced(spec, arch, util)
	if err != nil {
		return nil, err
	}
	cfg := staDefault()
	slacks := staNetSlacks(p, cfg)
	return staCriticalityBetas(slacks, cfg.ClockPeriodNs, weight), nil
}

// RunTimingAwareFlow mirrors RunFlow with slack-derived NetBeta weights:
// the build stage additionally runs the slack analysis on the fresh
// placement and threads the criticality betas into the optimizer params.
func RunTimingAwareFlow(spec DesignSpec, cfg FlowConfig, weight float64) (FlowResult, error) {
	return runFlow(context.Background(), spec, cfg, core.VM1OptCtx, weight, true) // ctx-ok: context-free compat wrapper
}
