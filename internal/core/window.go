package core

import (
	"vm1place/internal/cells"
	"vm1place/internal/geom"
	"vm1place/internal/layout"
	"vm1place/internal/netlist"
	"vm1place/internal/objective"
)

// cand is one SCP candidate for a movable cell: a location and orientation
// (the paper's λ_c^k with its x_c^k, y_c^k, f_c^k).
type cand struct {
	site, row int
	flip      bool
}

// window is one MILP subproblem: the movable cells fully inside a window
// rectangle, their candidates, and the nets/pairs they touch.
//
// A window is built in two stages so DistOpt can pipeline families:
// buildGeom captures everything derivable from the window's own tile
// (movable set, blocked sites, candidates, candidate costs) — quantities
// that are invariant under moves in *other* windows, because a cell fully
// inside one tile appears in no other tile's bucket and straddlers are
// immovable for the whole pass. buildNetsPairs then resolves net terminals,
// which may live anywhere on the die, so it must run after the previous
// family's moves are applied.
//
// Windows are pooled (solverPool.getWindow): all per-window storage is
// carved from slabs owned by the struct and reclaimed by reset(), so a
// steady-state build allocates nothing.
type window struct {
	p   *layout.Placement // read-only snapshot during parallel solves
	prm Params
	// obj/wts are the resolved geometry objective and its weight view,
	// hoisted once per build so pair tests and model assembly never
	// re-resolve them on the hot path.
	obj objective.GeomObjective
	wts objective.Weights

	s0, s1 int // site range [s0, s1)
	r0, r1 int // row range [r0, r1)

	movable []int    // instance indices
	cand    [][]cand // candidates per movable cell
	curCand []int    // index of the input-placement candidate per cell
	blocked []bool   // window sites blocked by non-movable cells
	// candCost[ci][k] is an extra linear objective cost for candidate k of
	// cell ci (pin-density term; zero when disabled).
	candCost [][]float64

	nets  []*winNet
	pairs []*winPair

	// sv is the per-worker solve workspace threaded from DistOpt for the
	// duration of one solve; solve()/buildModel lazily create a private one
	// when unset (standalone and test use).
	sv *winSolver

	// Pooled backing stores, reclaimed by reset(). Carves use full-capacity
	// (three-index) slices, so a slab growing later never aliases an
	// earlier carve; carves made before a slab reallocation simply keep the
	// old backing array alive until the next reset.
	candSlab []cand
	costSlab []float64
	i64Slab  []int64
	intSlab  []int
	colPins  []float64
	ownPins  []float64
	netSlab  []winNet
	pairSlab []winPair
	scoreBuf []scoredPair
	netSeen  map[int]*winNet
}

// winPin is a net terminal as seen by the window MILP: movable (cell index
// within window plus per-candidate geometry) or fixed (constants).
type winPin struct {
	cell int // index into movable, or -1 when fixed
	conn netlist.Conn

	// Per-candidate geometry (movable) or single-element (fixed):
	// centerX/centerY for HPWL, alignX for ClosedM1, extLo/extHi for
	// OpenM1, rowOf for pruning.
	centerX, centerY []int64
	alignX           []int64
	extLo, extHi     []int64
	rowOf            []int
}

// winNet is a net with at least one movable pin.
type winNet struct {
	ni      int
	terms   []winPin // every signal terminal, in connection order
	movable []winPin // the subset with cell >= 0
	// Fixed-terminal extremes folded into bounds (valid iff hasFixed).
	hasFixed                   bool
	fxMin, fxMax, fyMin, fyMax int64
}

// winPair is an eligible pin pair (p, q) of one net. alpha caches the
// objective's PairAlpha for the net (== Params.Alpha bitwise for uniform
// objectives), so the MILP objective coefficient and the greedy/objective
// arithmetic agree without per-evaluation lookups.
type winPair struct {
	net   *winNet
	p, q  winPin
	alpha float64
}

// occKey indexes window occupancy cells.
func (w *window) occIdx(row, site int) int {
	return (row-w.r0)*(w.s1-w.s0) + (site - w.s0)
}

// reset reclaims all pooled storage, leaving the window ready for a fresh
// buildGeom. Slab capacities (and the net-dedup map's buckets) survive, so
// a recycled window builds without allocating.
func (w *window) reset() {
	w.movable = w.movable[:0]
	w.cand = w.cand[:0]
	w.curCand = w.curCand[:0]
	w.candCost = w.candCost[:0]
	w.nets = w.nets[:0]
	w.pairs = w.pairs[:0]
	w.candSlab = w.candSlab[:0]
	w.costSlab = w.costSlab[:0]
	w.i64Slab = w.i64Slab[:0]
	w.intSlab = w.intSlab[:0]
	w.netSlab = w.netSlab[:0]
	w.pairSlab = w.pairSlab[:0]
	w.scoreBuf = w.scoreBuf[:0]
	clear(w.netSeen)
	w.sv = nil
}

// carve64 returns an n-element full-capacity slice carved from the int64
// slab. A reallocation resets the slab; earlier carves keep the old array.
func (w *window) carve64(n int) []int64 {
	l := len(w.i64Slab)
	if l+n > cap(w.i64Slab) {
		c := 2 * (l + n)
		if c < 4096 {
			c = 4096
		}
		w.i64Slab = make([]int64, 0, c)
		l = 0
	}
	w.i64Slab = w.i64Slab[:l+n]
	return w.i64Slab[l : l+n : l+n]
}

// carveInt is carve64 for the int slab.
func (w *window) carveInt(n int) []int {
	l := len(w.intSlab)
	if l+n > cap(w.intSlab) {
		c := 2 * (l + n)
		if c < 2048 {
			c = 2048
		}
		w.intSlab = make([]int, 0, c)
		l = 0
	}
	w.intSlab = w.intSlab[:l+n]
	return w.intSlab[l : l+n : l+n]
}

// buildWindow constructs the complete subproblem for the window rectangle
// in one shot (geometry plus nets/pairs). insts must contain every instance
// whose rect intersects the rectangle (a superset is fine). allowMove/
// allowFlip select the DistOpt pass mode. DistOpt itself calls the two
// stages separately to pipeline families; this wrapper serves standalone
// and test use.
func buildWindow(p *layout.Placement, prm Params, rect geom.Rect, ps ParamSet,
	insts []int, allowMove, allowFlip bool) *window {
	w := &window{}
	w.buildGeom(p, prm, rect, ps, insts, allowMove, allowFlip)
	w.buildNetsPairs()
	return w
}

// buildGeom constructs the window-local stage of the subproblem: movable
// set, blocked sites, candidates and candidate costs. Everything read here
// lives inside the window's instance bucket, so the result is invariant
// under concurrent optimization of other windows whose tiles are disjoint
// (their movable cells are not in this bucket; shared straddlers never
// move). The window is reset first, so pooled windows can be rebuilt
// directly.
func (w *window) buildGeom(p *layout.Placement, prm Params, rect geom.Rect, ps ParamSet,
	insts []int, allowMove, allowFlip bool) {
	w.reset()
	t := p.Tech
	w.p, w.prm = p, prm
	w.obj = prm.obj()
	w.wts = prm.weights()
	w.s0 = int(rect.XLo / t.SiteWidth)
	w.s1 = int(rect.XHi / t.SiteWidth)
	w.r0 = int(rect.YLo / t.RowHeight)
	w.r1 = int(rect.YHi / t.RowHeight)
	if w.s0 < 0 {
		w.s0 = 0
	}
	if w.r0 < 0 {
		w.r0 = 0
	}
	if w.s1 > p.NumSites {
		w.s1 = p.NumSites
	}
	if w.r1 > p.NumRows {
		w.r1 = p.NumRows
	}
	if w.s1 <= w.s0 || w.r1 <= w.r0 {
		w.blocked = w.blocked[:0]
		return
	}

	// Blocked sites: cells intersecting but not fully inside the window.
	w.blocked = grown(w.blocked, (w.r1-w.r0)*(w.s1-w.s0))
	clear(w.blocked)
	blocked := w.blocked
	for _, i := range insts {
		wi := p.Design.Insts[i].Master.WidthSites
		row, site := p.Row[i], p.SiteX[i]
		inside := row >= w.r0 && row < w.r1 && site >= w.s0 && site+wi <= w.s1
		if inside {
			w.movable = append(w.movable, i)
			continue
		}
		if row < w.r0 || row >= w.r1 {
			continue
		}
		for s := maxInt(site, w.s0); s < minInt(site+wi, w.s1); s++ {
			blocked[w.occIdx(row, s)] = true
		}
	}

	// Candidates.
	lx, ly := ps.LX, ps.LY
	if !allowMove {
		lx, ly = 0, 0
	}
	w.cand = grown(w.cand, len(w.movable))
	w.curCand = grown(w.curCand, len(w.movable))
	for ci, i := range w.movable {
		wi := p.Design.Insts[i].Master.WidthSites
		curSite, curRow, curFlip := p.SiteX[i], p.Row[i], p.Flip[i]
		flips := [2]bool{curFlip, true}
		nf := 1
		if allowFlip {
			flips = [2]bool{false, true}
			nf = 2
		}
		start := len(w.candSlab)
		cur := -1
		for r := curRow - ly; r <= curRow+ly; r++ {
			if r < w.r0 || r >= w.r1 {
				continue
			}
			for s := curSite - lx; s <= curSite+lx; s++ {
				if s < w.s0 || s+wi > w.s1 {
					continue
				}
				hitsBlocked := false
				for ss := s; ss < s+wi; ss++ {
					if blocked[w.occIdx(r, ss)] {
						hitsBlocked = true
						break
					}
				}
				if hitsBlocked {
					continue
				}
				for fi := 0; fi < nf; fi++ {
					f := flips[fi]
					if s == curSite && r == curRow && f == curFlip {
						cur = len(w.candSlab) - start
					}
					w.candSlab = append(w.candSlab, cand{site: s, row: r, flip: f})
				}
			}
		}
		if cur == -1 {
			// The current position must always be available (fixed cells
			// cannot overlap it). Guard against accounting bugs by adding
			// it explicitly.
			cur = len(w.candSlab) - start
			w.candSlab = append(w.candSlab, cand{site: curSite, row: curRow, flip: curFlip})
		}
		w.cand[ci] = w.candSlab[start:len(w.candSlab):len(w.candSlab)]
		w.curCand[ci] = cur
	}

	w.buildCandCosts(insts)
}

// buildNetsPairs resolves the nets and eligible pin pairs touching the
// movable cells. Net terminals may sit anywhere on the die, so this stage
// must run against the placement state the window will be solved on — i.e.
// after the previous family's moves are applied.
func (w *window) buildNetsPairs() {
	if len(w.movable) == 0 {
		return
	}
	w.collectNetsAndPairs()
}

// buildCandCosts precomputes the optional pin-density penalty: for each
// candidate, the number of signal pins of *other* cells whose access track
// falls into the candidate's site columns, scaled by PinDensityWeight.
func (w *window) buildCandCosts(insts []int) {
	w.candCost = grown(w.candCost, len(w.movable))
	for ci := range w.movable {
		n := len(w.cand[ci])
		start := len(w.costSlab)
		for j := 0; j < n; j++ {
			w.costSlab = append(w.costSlab, 0)
		}
		w.candCost[ci] = w.costSlab[start : start+n : start+n]
	}
	if w.prm.PinDensityWeight <= 0 {
		return
	}
	p := w.p
	t := p.Tech
	// Pin counts per window site column (all rows folded: vertical M1
	// access makes column crowding the relevant quantity).
	w.colPins = grown(w.colPins, w.s1-w.s0)
	colPins := w.colPins
	clear(colPins)
	for _, i := range insts {
		m := p.Design.Insts[i].Master
		for pi := range m.Pins {
			pin := &m.Pins[pi]
			if !pin.IsSignal() {
				continue
			}
			cx := p.InstX(i) + cells.AlignX(m, t, pin, p.Flip[i])
			sx := t.XToSite(cx)
			if sx >= w.s0 && sx < w.s1 {
				colPins[sx-w.s0]++
			}
		}
	}
	w.ownPins = grown(w.ownPins, w.s1-w.s0)
	own := w.ownPins
	for ci, i := range w.movable {
		m := p.Design.Insts[i].Master
		// Subtract the cell's own pins: they travel with the candidate and
		// must not penalize staying put.
		clear(own)
		for pi := range m.Pins {
			pin := &m.Pins[pi]
			if !pin.IsSignal() {
				continue
			}
			cx := p.InstX(i) + cells.AlignX(m, t, pin, p.Flip[i])
			sx := t.XToSite(cx)
			if sx >= w.s0 && sx < w.s1 {
				own[sx-w.s0]++
			}
		}
		for k, cd := range w.cand[ci] {
			var dens float64
			for s := cd.site; s < cd.site+m.WidthSites; s++ {
				dens += colPins[s-w.s0] - own[s-w.s0]
			}
			w.candCost[ci][k] = w.prm.PinDensityWeight * dens
		}
	}
}

// cellOf maps an instance to its movable index within the window, or -1.
func (w *window) cellOf(inst int) int {
	for ci, i := range w.movable {
		if i == inst {
			return ci
		}
	}
	return -1
}

// makePin builds the winPin view of a connection. Geometry arrays are
// carved from the window slabs.
func (w *window) makePin(c netlist.Conn) winPin {
	p := w.p
	t := p.Tech
	inst := &p.Design.Insts[c.Inst]
	pin := &inst.Master.Pins[c.Pin]
	wp := winPin{cell: w.cellOf(c.Inst), conn: c}
	geomFor := func(site, row int, flip bool) (cx, cy, ax, lo, hi int64, r int) {
		x := t.SiteX(site)
		y := t.RowY(row)
		ax = x + cells.AlignX(inst.Master, t, pin, flip)
		ext := cells.XExtent(inst.Master, t, pin, flip)
		lo, hi = x+ext.Lo, x+ext.Hi
		cx = (lo + hi) / 2
		cy = y + cells.PinY(inst.Master, t, pin)
		return cx, cy, ax, lo, hi, row
	}
	n := 1
	if wp.cell >= 0 {
		n = len(w.cand[wp.cell])
	}
	b := w.carve64(5 * n)
	wp.centerX = b[0*n : 1*n : 1*n]
	wp.centerY = b[1*n : 2*n : 2*n]
	wp.alignX = b[2*n : 3*n : 3*n]
	wp.extLo = b[3*n : 4*n : 4*n]
	wp.extHi = b[4*n : 5*n : 5*n]
	wp.rowOf = w.carveInt(n)
	if wp.cell < 0 {
		wp.centerX[0], wp.centerY[0], wp.alignX[0], wp.extLo[0], wp.extHi[0], wp.rowOf[0] =
			geomFor(p.SiteX[c.Inst], p.Row[c.Inst], p.Flip[c.Inst])
		return wp
	}
	for k, cd := range w.cand[wp.cell] {
		wp.centerX[k], wp.centerY[k], wp.alignX[k], wp.extLo[k], wp.extHi[k], wp.rowOf[k] =
			geomFor(cd.site, cd.row, cd.flip)
	}
	return wp
}

// collectNetsAndPairs gathers the nets touching movable cells, their fixed
// extremes, and the prunable pin pairs.
func (w *window) collectNetsAndPairs() {
	p := w.p
	d := p.Design
	if w.netSeen == nil {
		w.netSeen = map[int]*winNet{}
	}
	seen := w.netSeen
	for _, i := range w.movable {
		for _, ni := range d.Insts[i].PinNets {
			if ni < 0 || d.Nets[ni].IsClock || seen[ni] != nil {
				continue
			}
			wn := w.buildNet(ni)
			seen[ni] = wn
			w.nets = append(w.nets, wn)
		}
	}
	for _, wn := range w.nets {
		w.buildPairs(wn)
	}
}

// newNet carves a winNet from the net slab, reusing the entry's terminal
// slices when the slot has served a previous window.
func (w *window) newNet(ni int) *winNet {
	if len(w.netSlab) < cap(w.netSlab) {
		w.netSlab = w.netSlab[:len(w.netSlab)+1]
	} else {
		w.netSlab = append(w.netSlab, winNet{})
	}
	wn := &w.netSlab[len(w.netSlab)-1]
	*wn = winNet{ni: ni, terms: wn.terms[:0], movable: wn.movable[:0]}
	wn.fxMin, wn.fyMin = int64(1)<<62, int64(1)<<62
	wn.fxMax, wn.fyMax = -(int64(1) << 62), -(int64(1) << 62)
	return wn
}

// newPair carves a winPair from the pair slab.
func (w *window) newPair(wn *winNet, p, q winPin) *winPair {
	if len(w.pairSlab) < cap(w.pairSlab) {
		w.pairSlab = w.pairSlab[:len(w.pairSlab)+1]
	} else {
		w.pairSlab = append(w.pairSlab, winPair{})
	}
	pr := &w.pairSlab[len(w.pairSlab)-1]
	*pr = winPair{net: wn, p: p, q: q, alpha: w.obj.PairAlpha(w.wts, wn.ni)}
	return pr
}

func (w *window) buildNet(ni int) *winNet {
	p := w.p
	d := p.Design
	wn := w.newNet(ni)
	addFixed := func(x, y int64) {
		wn.hasFixed = true
		if x < wn.fxMin {
			wn.fxMin = x
		}
		if x > wn.fxMax {
			wn.fxMax = x
		}
		if y < wn.fyMin {
			wn.fyMin = y
		}
		if y > wn.fyMax {
			wn.fyMax = y
		}
	}
	d.Nets[ni].ForEachConn(func(c netlist.Conn) {
		wp := w.makePin(c)
		wn.terms = append(wn.terms, wp)
		if wp.cell >= 0 {
			wn.movable = append(wn.movable, wp)
		} else {
			addFixed(wp.centerX[0], wp.centerY[0])
		}
	})
	for pi := range d.Ports {
		if d.Ports[pi].Net == ni {
			addFixed(p.PortXY[pi].X, p.PortXY[pi].Y)
		}
	}
	return wn
}

// maxPairsPerNet bounds the pair variables contributed by one net; pairs
// are kept by priority (movable-movable first, then smallest current row
// distance), which keeps the MILP compact on high-fanout nets.
const maxPairsPerNet = 16

// scoredPair ranks a candidate pair during buildPairs: terminal indices
// into winNet.terms plus the selection keys.
type scoredPair struct {
	i, j  int
	mm    bool // movable-movable
	rdist int  // current row distance
}

// buildPairs enumerates the eligible (movable, movable) and (movable,
// fixed-pin) pairs of a net, pruning pairs that cannot possibly align or
// overlap under any candidate choice. The terminal views built by buildNet
// are reused directly (ports are excluded there — they are not M1 pins).
func (w *window) buildPairs(wn *winNet) {
	terms := wn.terms
	cands := w.scoreBuf[:0]
	for i := 0; i < len(terms); i++ {
		for j := i + 1; j < len(terms); j++ {
			a, b := terms[i], terms[j]
			if a.conn.Inst == b.conn.Inst {
				continue
			}
			if a.cell < 0 && b.cell < 0 {
				continue // fixed-fixed pairs are constants
			}
			if !w.pairFeasible(a, b) {
				continue
			}
			ra := w.p.Row[a.conn.Inst]
			rb := w.p.Row[b.conn.Inst]
			rd := ra - rb
			if rd < 0 {
				rd = -rd
			}
			cands = append(cands, scoredPair{
				i:     i,
				j:     j,
				mm:    a.cell >= 0 && b.cell >= 0,
				rdist: rd,
			})
		}
	}
	if len(cands) > maxPairsPerNet {
		for i := 0; i < len(cands); i++ {
			for j := i + 1; j < len(cands); j++ {
				better := (cands[j].mm && !cands[i].mm) ||
					(cands[j].mm == cands[i].mm && cands[j].rdist < cands[i].rdist)
				if better {
					cands[i], cands[j] = cands[j], cands[i]
				}
			}
		}
		cands = cands[:maxPairsPerNet]
	}
	for _, c := range cands {
		w.pairs = append(w.pairs, w.newPair(wn, terms[c.i], terms[c.j]))
	}
	w.scoreBuf = cands[:0]
}

// pairFeasible conservatively tests whether any candidate combination can
// realize the pair under the window's objective.
func (w *window) pairFeasible(a, b winPin) bool {
	// Row distance must be able to reach <= gamma (shared by every
	// objective); the x-geometry test is the objective's.
	aLo, aHi := minMaxInt(a.rowOf)
	bLo, bHi := minMaxInt(b.rowOf)
	dist := 0
	if aLo > bHi {
		dist = aLo - bHi
	} else if bLo > aHi {
		dist = bLo - aHi
	}
	if dist > w.prm.alignGamma() {
		return false
	}
	return w.obj.PairFeasible(w.wts, pinView(a, nil), pinView(b, nil))
}

// pinView adapts a winPin to the objective package's per-candidate view.
// lambda supplies the MILP λ variable ids per movable cell (model assembly);
// pass nil outside the MILP, where only the geometry arrays are read.
func pinView(p winPin, lambda [][]int) objective.PinView {
	v := objective.PinView{
		CenterX: p.centerX,
		CenterY: p.centerY,
		AlignX:  p.alignX,
		ExtLo:   p.extLo,
		ExtHi:   p.extHi,
		RowOf:   p.rowOf,
	}
	if p.cell >= 0 && lambda != nil {
		v.Lambda = lambda[p.cell]
	}
	return v
}

// grown returns s resized to length n, reusing its backing array when
// capacity allows. Contents are unspecified.
func grown[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// resliceAll returns s resized to n inner slices, each truncated to zero
// length with its backing capacity preserved.
func resliceAll[T any](s [][]T, n int) [][]T {
	if cap(s) < n {
		ns := make([][]T, n)
		copy(ns, s[:cap(s)])
		s = ns
	} else {
		s = s[:n]
	}
	for i := range s {
		s[i] = s[i][:0]
	}
	return s
}

func minMaxInt(v []int) (int, int) {
	lo, hi := v[0], v[0]
	for _, x := range v {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

func minMax64(v []int64) (int64, int64) {
	lo, hi := v[0], v[0]
	for _, x := range v {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
