// OpenM1 walkthrough: pin-overlap-driven optimization (Section 3.2).
//
// OpenM1 cells expose horizontal M0 pins; a direct vertical M1 route
// exists wherever two connected pins' x-extents overlap by at least δ.
// This example shows the overlap objective in action at the window level
// and then runs the full flow, contrasting the smaller OpenM1 gains the
// paper reports (ExptB-2) with ClosedM1.
//
//	go run ./examples/openm1_flow
package main

import (
	"fmt"
	"os"

	"vm1place/internal/cells"
	"vm1place/internal/core"
	"vm1place/internal/expt"
	"vm1place/internal/layout"
	"vm1place/internal/netlist"
	"vm1place/internal/place"
	"vm1place/internal/route"
	"vm1place/internal/tech"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "openm1_flow:", err)
		os.Exit(1)
	}
}

func run() error {
	t := tech.Default()
	lib, err := cells.NewLibrary(t, tech.OpenM1)
	if err != nil {
		return err
	}

	// Show the raw geometry the OpenM1 MILP reasons about.
	inv := lib.MustMaster("INV_X1")
	a := inv.Pin("A")
	zn := inv.Pin("ZN")
	fmt.Printf("OpenM1 INV_X1: A extent %v, ZN extent %v (delta = %d DBU)\n",
		cells.XExtent(inv, t, a, false), cells.XExtent(inv, t, zn, false), t.Delta)

	// Full flow on a small OpenM1 design.
	design, err := netlist.Generate(lib, netlist.DefaultGenConfig("openm1", 1200, 11))
	if err != nil {
		return err
	}
	p, err := layout.NewFloorplan(t, design, 0.75)
	if err != nil {
		return err
	}
	if err := place.Global(p, place.Options{}); err != nil {
		return err
	}

	router := route.New(p, route.DefaultConfig(t, tech.OpenM1))
	before := router.RouteAll()

	prm := core.DefaultParams(t, tech.OpenM1) // α = 1000, ε > 0, γ = 3
	fmt.Printf("params: alpha=%.0f epsilon=%.2f gamma=%d rows, delta=%d DBU\n",
		prm.Alpha, prm.Epsilon, prm.GammaRows, prm.DeltaDBU)

	res := core.VM1Opt(p, prm, expt.DefaultSequence())
	after := router.RouteAll()

	fmt.Printf("overlapping pairs: %d -> %d (overlap surplus %d -> %d DBU)\n",
		res.Initial.Alignments, res.Final.Alignments,
		res.Initial.OverlapSum, res.Final.OverlapSum)
	fmt.Printf("dM1 %d -> %d, RWL %.1f -> %.1f um, via01 %d -> %d\n",
		before.DM1, after.DM1,
		float64(before.RWL)/1000, float64(after.RWL)/1000,
		before.Via01, after.Via01)
	fmt.Println()
	fmt.Println("Note (paper §5.2): OpenM1 gains are structurally smaller than")
	fmt.Println("ClosedM1 — dM1 blocks M1 pin access for other nets, so the")
	fmt.Println("router monetizes fewer of the overlaps the placer creates.")
	return nil
}
