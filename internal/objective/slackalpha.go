package objective

import "vm1place/internal/tech"

// slackAlpha is the timing-driven ClosedM1 workload: each net's α is
// scaled by a per-net multiplier derived from STA slack
// (sta.CriticalityBetas over sta.NetSlacks — critical nets get
// multipliers > 1), so critical nets buy alignment first when windows
// trade pairs against HPWL (GOALPlace-style end-metric weighting, see
// PAPERS.md). Geometry and MILP rows are exactly ClosedM1's; only the
// per-pair reward weight and the scalarization differ.
type slackAlpha struct{ closedM1 }

var slackAlphaObj GeomObjective = slackAlpha{}

func init() { Register(slackAlphaObj) }

func (slackAlpha) Name() string    { return "slackalpha" }
func (slackAlpha) Arch() tech.Arch { return tech.ClosedM1 }

// PairAlpha scales α by the net's slack-derived multiplier (entries <= 0
// or beyond the slice mean 1, mirroring core.Params.NetBeta semantics).
func (slackAlpha) PairAlpha(w Weights, ni int) float64 {
	a := w.Alpha
	if ni < len(w.NetAlpha) && w.NetAlpha[ni] > 0 {
		a *= w.NetAlpha[ni]
	}
	return a
}

// Value uses the net-ordered reward sum Σ PairAlpha(n)·align(n) instead
// of the uniform α·#align term; the reduction order (reward accumulated
// net by net, then one subtraction each for reward and ε·over) is fixed
// so the incremental tracker reproduces a fresh rescan bit for bit.
func (slackAlpha) Value(w Weights, weighted float64, align int, over int64, reward float64) float64 {
	return weighted - reward - w.Epsilon*float64(over)
}
