package lefdef

import (
	"bytes"
	"strings"
	"testing"

	"vm1place/internal/cells"
	"vm1place/internal/layout"
	"vm1place/internal/netlist"
	"vm1place/internal/place"
	"vm1place/internal/tech"
)

// TestTokenizerLongLine pins the streaming property the DEF reader needs:
// a single statement far beyond the old 1 MiB Scanner line cap tokenizes
// fine, because the tokenizer reads byte-wise and never buffers a line.
func TestTokenizerLongLine(t *testing.T) {
	const terms = 250_000 // ≈ 2.5 MB on one line
	var sb strings.Builder
	sb.WriteString("- clk")
	for i := 0; i < terms; i++ {
		sb.WriteString(" ( ux CK )")
	}
	sb.WriteString(" ;\n")
	if sb.Len() < 2<<20 {
		t.Fatalf("test line only %d bytes; want > 2 MiB", sb.Len())
	}
	tk := newTokenizer(strings.NewReader(sb.String()))
	if got := tk.next(); got != "-" {
		t.Fatalf("first token %q", got)
	}
	if got := tk.next(); got != "clk" {
		t.Fatalf("second token %q", got)
	}
	rest := tk.until()
	// 4 tokens per term: ( name CK )
	if len(rest) != 4*terms {
		t.Fatalf("got %d tokens, want %d", len(rest), 4*terms)
	}
	if rest[0] != "(" || rest[1] != "ux" || rest[2] != "CK" || rest[3] != ")" {
		t.Fatalf("first term tokens %v", rest[:4])
	}
	if tk.next() != "" {
		t.Fatal("trailing tokens after ;")
	}
}

// TestDEFRoundTripMultiMB round-trips a DEF big enough that its clock
// net — one line in our writer — alone exceeds the old line cap: a
// 120k-instance, 90% flip-flop design puts >100k sink terms (> 1.5 MB)
// on that line, and the whole file runs to tens of MB. The parse must
// stream it and reproduce the placement exactly.
func TestDEFRoundTripMultiMB(t *testing.T) {
	if testing.Short() {
		t.Skip("generates and round-trips a ~40 MB DEF")
	}
	tc := tech.Default()
	lib := cells.MustNewLibrary(tc, tech.ClosedM1)
	cfg := netlist.DefaultGenConfig("bigdef", 120_000, 7)
	cfg.FFRatio = 0.9 // ~108k CK sinks on the single clk NETS line
	d := netlist.MustGenerate(lib, cfg)
	p := layout.MustNewFloorplan(tc, d, 0.7)
	if err := place.Global(p, place.Options{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(d.Insts); i += 7 {
		p.Flip[i] = true
	}

	var buf bytes.Buffer
	if err := WriteDEF(&buf, p); err != nil {
		t.Fatal(err)
	}
	if buf.Len() < 8<<20 {
		t.Fatalf("DEF only %d bytes; want a multi-MB file", buf.Len())
	}
	clkLine := 0
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "- clk") && len(line) > clkLine {
			clkLine = len(line)
		}
	}
	if clkLine < 1<<20 {
		t.Fatalf("clk NETS line only %d bytes; the test needs it past the old 1 MiB cap", clkLine)
	}

	got, err := ParseDEF(bytes.NewReader(buf.Bytes()), tc, lib)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Design.Insts) != len(d.Insts) || len(got.Design.Nets) != len(d.Nets) {
		t.Fatalf("shape changed: %d/%d insts, %d/%d nets",
			len(got.Design.Insts), len(d.Insts), len(got.Design.Nets), len(d.Nets))
	}
	for i := range d.Insts {
		if got.SiteX[i] != p.SiteX[i] || got.Row[i] != p.Row[i] || got.Flip[i] != p.Flip[i] {
			t.Fatalf("inst %d placement diverged: (%d,%d,%v) want (%d,%d,%v)", i,
				got.SiteX[i], got.Row[i], got.Flip[i], p.SiteX[i], p.Row[i], p.Flip[i])
		}
	}
	// The clock net must have survived with every CK sink bound.
	var clk *netlist.Net
	for ni := range got.Design.Nets {
		if got.Design.Nets[ni].IsClock {
			clk = &got.Design.Nets[ni]
			break
		}
	}
	if clk == nil {
		t.Fatal("clock net lost")
	}
	if want := 108_000; len(clk.Sinks) < want {
		t.Fatalf("clock sinks %d, want >= %d", len(clk.Sinks), want)
	}
}
