package analysis_test

import (
	"os"
	"testing"

	"vm1place/internal/analysis"
)

// TestSelfCheck asserts the repository itself is clean under the full
// vm1lint suite — the same gate `make lint` runs — so any change that
// introduces an untagged finding fails `go test ./...`, not just CI's
// lint step.
func TestSelfCheck(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, modulePath, err := analysis.FindModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	loader := analysis.NewLoader(modulePath, root)
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages from %s; pattern resolution looks broken", len(pkgs), root)
	}
	findings, err := analysis.Run(loader.Fset, pkgs, analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s:%d:%d: %s (%s)", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
	}
}
