package lefdef

import (
	"bytes"
	"strings"
	"testing"

	"vm1place/internal/cells"
	"vm1place/internal/layout"
	"vm1place/internal/netlist"
	"vm1place/internal/place"
	"vm1place/internal/tech"
)

func buildPlaced(t *testing.T, arch tech.Arch, n int) (*tech.Tech, *cells.Library, *layout.Placement) {
	t.Helper()
	tc := tech.Default()
	lib := cells.MustNewLibrary(tc, arch)
	d := netlist.MustGenerate(lib, netlist.DefaultGenConfig("io", n, 71))
	p := layout.MustNewFloorplan(tc, d, 0.7)
	if err := place.Global(p, place.Options{}); err != nil {
		t.Fatal(err)
	}
	// Flip a few instances so orientation round-trips are exercised.
	for i := 0; i < len(d.Insts); i += 7 {
		p.Flip[i] = true
	}
	return tc, lib, p
}

func TestLEFRoundTrip(t *testing.T) {
	for _, arch := range []tech.Arch{tech.ClosedM1, tech.OpenM1} {
		tc := tech.Default()
		lib := cells.MustNewLibrary(tc, arch)
		var buf bytes.Buffer
		if err := WriteLEF(&buf, lib); err != nil {
			t.Fatal(err)
		}
		got, err := ParseLEF(&buf, tc)
		if err != nil {
			t.Fatalf("%s: %v", arch, err)
		}
		if got.Arch != arch {
			t.Errorf("%s: parsed arch = %s", arch, got.Arch)
		}
		if len(got.Masters) != len(lib.Masters) {
			t.Fatalf("%s: %d masters, want %d", arch, len(got.Masters), len(lib.Masters))
		}
		for _, want := range lib.Masters {
			m := got.Master(want.Name)
			if m == nil {
				t.Fatalf("%s: master %s lost", arch, want.Name)
			}
			if m.WidthSites != want.WidthSites {
				t.Errorf("%s/%s: width %d, want %d", arch, m.Name, m.WidthSites, want.WidthSites)
			}
			if len(m.Pins) != len(want.Pins) {
				t.Fatalf("%s/%s: %d pins, want %d", arch, m.Name, len(m.Pins), len(want.Pins))
			}
			for pi := range want.Pins {
				wp, gp := &want.Pins[pi], &m.Pins[pi]
				if wp.Name != gp.Name || wp.Dir != gp.Dir {
					t.Errorf("%s/%s: pin %d = %s/%s, want %s/%s",
						arch, m.Name, pi, gp.Name, gp.Dir, wp.Name, wp.Dir)
				}
				if len(wp.Shapes) != len(gp.Shapes) {
					t.Fatalf("%s/%s/%s: %d shapes, want %d",
						arch, m.Name, wp.Name, len(gp.Shapes), len(wp.Shapes))
				}
				for si := range wp.Shapes {
					if wp.Shapes[si] != gp.Shapes[si] {
						t.Errorf("%s/%s/%s: shape %d = %+v, want %+v",
							arch, m.Name, wp.Name, si, gp.Shapes[si], wp.Shapes[si])
					}
				}
			}
		}
	}
}

func TestDEFRoundTrip(t *testing.T) {
	tc, lib, p := buildPlaced(t, tech.ClosedM1, 300)
	var buf bytes.Buffer
	if err := WriteDEF(&buf, p); err != nil {
		t.Fatal(err)
	}
	q, err := ParseDEF(&buf, tc, lib)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumSites != p.NumSites || q.NumRows != p.NumRows {
		t.Errorf("die mismatch: %dx%d vs %dx%d", q.NumSites, q.NumRows, p.NumSites, p.NumRows)
	}
	if len(q.Design.Insts) != len(p.Design.Insts) {
		t.Fatalf("instance count mismatch")
	}
	for i := range p.Design.Insts {
		if q.SiteX[i] != p.SiteX[i] || q.Row[i] != p.Row[i] || q.Flip[i] != p.Flip[i] {
			t.Fatalf("inst %d placement mismatch: (%d,%d,%v) vs (%d,%d,%v)",
				i, q.SiteX[i], q.Row[i], q.Flip[i], p.SiteX[i], p.Row[i], p.Flip[i])
		}
		if q.Design.Insts[i].Master.Name != p.Design.Insts[i].Master.Name {
			t.Fatalf("inst %d master mismatch", i)
		}
	}
	if got, want := q.TotalHPWL(), p.TotalHPWL(); got != want {
		t.Errorf("HPWL after round trip = %d, want %d", got, want)
	}
	// Clock net must survive.
	foundClock := false
	for ni := range q.Design.Nets {
		if q.Design.Nets[ni].IsClock {
			foundClock = true
		}
	}
	if !foundClock {
		t.Error("clock net lost in round trip")
	}
	if err := q.CheckLegal(); err != nil {
		t.Errorf("round-tripped placement illegal: %v", err)
	}
}

func TestDEFRoundTripOpenM1(t *testing.T) {
	tc, lib, p := buildPlaced(t, tech.OpenM1, 250)
	var buf bytes.Buffer
	if err := WriteDEF(&buf, p); err != nil {
		t.Fatal(err)
	}
	q, err := ParseDEF(&buf, tc, lib)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := q.TotalHPWL(), p.TotalHPWL(); got != want {
		t.Errorf("HPWL after round trip = %d, want %d", got, want)
	}
}

func TestParseDEFErrors(t *testing.T) {
	tc := tech.Default()
	lib := cells.MustNewLibrary(tc, tech.ClosedM1)
	cases := []string{
		"",                              // empty
		"DESIGN x ;\nEND DESIGN\n",      // no die
		"DIEAREA ( 0 0 ) ( 100 100 ) ;", // no rows
		"DIEAREA ( 0 0 ) ( 1000 1000 ) ;\nROW r coreSite 0 0 N DO 10 BY 1 STEP 100 0 ;\nCOMPONENTS 1 ;\n- u1 NOPE + PLACED ( 0 0 ) N ;\nEND COMPONENTS\n",
	}
	for i, src := range cases {
		if _, err := ParseDEF(strings.NewReader(src), tc, lib); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestParseLEFErrors(t *testing.T) {
	tc := tech.Default()
	bad := "MACRO X\n PIN A\n DIRECTION INPUT ;\n PORT\n LAYER M9 ;\n RECT 0 0 1 1 ;\n END\n END A\nEND X\n"
	if _, err := ParseLEF(strings.NewReader(bad), tc); err == nil {
		t.Error("unknown layer not rejected")
	}
}

func TestLEFContainsExpectedSections(t *testing.T) {
	tc := tech.Default()
	lib := cells.MustNewLibrary(tc, tech.ClosedM1)
	var buf bytes.Buffer
	if err := WriteLEF(&buf, lib); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"VERSION 5.7", "SITE coreSite", "MACRO INV_X1", "PIN ZN", "END LIBRARY"} {
		if !strings.Contains(out, want) {
			t.Errorf("LEF missing %q", want)
		}
	}
}

func TestDEFContainsExpectedSections(t *testing.T) {
	_, _, p := buildPlaced(t, tech.ClosedM1, 200)
	var buf bytes.Buffer
	if err := WriteDEF(&buf, p); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"VERSION 5.7", "DIEAREA", "COMPONENTS", "END COMPONENTS", "PINS", "NETS", "END DESIGN", "USE CLOCK"} {
		if !strings.Contains(out, want) {
			t.Errorf("DEF missing %q", want)
		}
	}
}
