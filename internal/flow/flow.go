// Package flow is the staged pipeline engine of vm1place: it turns the
// monolithic place→route→opt→reroute batch call into a composition of
// named Stages over a shared State, threaded by one context.Context from
// end to end.
//
// A Stage is a unit of the flow that can be rerun, budgeted and swapped
// independently — the shape the paper's Algorithm 1 asks for (a
// distributable metaheuristic run window-by-window under external
// budgets), and the shape a serving system needs (per-request deadlines,
// graceful cancellation, checkpointable intermediate state).
//
// Conventions:
//
//   - Cancellation: every Stage receives the pipeline's Context and must
//     return promptly once it is done — long-running stages check between
//     their natural commit boundaries (window families for the optimizer,
//     routing batches for the router) so interrupted state stays legal.
//   - Errors: the Pipeline stops at the first failing stage and returns a
//     *StageError wrapping the cause, so callers can errors.Is against
//     sentinel errors (or context.Canceled / context.DeadlineExceeded)
//     and errors.As to recover the failing stage's name.
//   - Timing: per-stage wall durations are recorded on the State and
//     reported through an optional Observer hook.
package flow

import (
	"context"
	"fmt"
	"time"

	"vm1place/internal/layout"
)

// Stage is one unit of a flow pipeline.
type Stage interface {
	// Name identifies the stage in timings, observer events and errors.
	Name() string
	// Run executes the stage against the shared state. It must honor ctx
	// cancellation and return a wrapped error on failure.
	Run(ctx context.Context, st *State) error
}

// Func adapts a named function to a Stage.
func Func(name string, run func(ctx context.Context, st *State) error) Stage {
	return funcStage{name: name, run: run}
}

type funcStage struct {
	name string
	run  func(ctx context.Context, st *State) error
}

func (s funcStage) Name() string                             { return s.name }
func (s funcStage) Run(ctx context.Context, st *State) error { return s.run(ctx, st) }

// State is the shared flow state stages read and write: the placement
// under construction, arbitrary per-stage snapshots, and per-stage wall
// timings.
type State struct {
	// Placement is the design being flowed. The Build-style stage that
	// creates it sets the field; later stages mutate it in place.
	Placement *layout.Placement

	// Timings records one entry per executed stage, in execution order.
	Timings []Timing

	values map[string]any
}

// Timing is the recorded wall time of one executed stage.
type Timing struct {
	Stage    string
	Duration time.Duration
}

// Put stores a per-stage snapshot or intermediate value under key.
func (st *State) Put(key string, v any) {
	if st.values == nil {
		st.values = make(map[string]any)
	}
	st.values[key] = v
}

// Value returns the snapshot stored under key, or nil.
func (st *State) Value(key string) any { return st.values[key] }

// StageDuration returns the total recorded duration of the named stage
// (summed, should the stage have been rerun).
func (st *State) StageDuration(name string) time.Duration {
	var d time.Duration
	for _, t := range st.Timings {
		if t.Stage == name {
			d += t.Duration
		}
	}
	return d
}

// Observer receives stage lifecycle events from a Pipeline run. Both
// methods are called on the goroutine running the pipeline.
type Observer interface {
	StageStart(name string)
	StageDone(name string, d time.Duration, err error)
}

// StageError wraps the error of a failing (or canceled) stage with the
// stage's name. It unwraps to the cause, so errors.Is sees sentinel
// errors and context errors through it.
type StageError struct {
	Stage string
	Err   error
}

func (e *StageError) Error() string {
	return fmt.Sprintf("flow: stage %s: %v", e.Stage, e.Err)
}

func (e *StageError) Unwrap() error { return e.Err }

// Pipeline is an ordered list of stages run against one shared State.
type Pipeline struct {
	stages []Stage
	obs    Observer
}

// New builds a pipeline from the given stages.
func New(stages ...Stage) *Pipeline {
	return &Pipeline{stages: stages}
}

// Observe attaches an observer to the pipeline and returns it.
func (pl *Pipeline) Observe(obs Observer) *Pipeline {
	pl.obs = obs
	return pl
}

// Stages returns the stage names in execution order.
func (pl *Pipeline) Stages() []string {
	names := make([]string, len(pl.stages))
	for i, s := range pl.stages {
		names[i] = s.Name()
	}
	return names
}

// Run executes the stages in order against st, threading ctx end to end.
// It stops at the first failing stage and returns its wrapped *StageError;
// a context that is already done fails the next stage before it runs.
// Completed stages' timings remain on st even when a later stage fails.
func (pl *Pipeline) Run(ctx context.Context, st *State) error {
	for _, s := range pl.stages {
		if err := ctx.Err(); err != nil {
			return &StageError{Stage: s.Name(), Err: err}
		}
		if pl.obs != nil {
			pl.obs.StageStart(s.Name())
		}
		start := time.Now()
		err := s.Run(ctx, st)
		d := time.Since(start)
		st.Timings = append(st.Timings, Timing{Stage: s.Name(), Duration: d})
		if pl.obs != nil {
			pl.obs.StageDone(s.Name(), d, err)
		}
		if err != nil {
			return &StageError{Stage: s.Name(), Err: err}
		}
	}
	return nil
}
