package core

import (
	"vm1place/internal/cells"
	"vm1place/internal/geom"
	"vm1place/internal/layout"
	"vm1place/internal/lp"
	"vm1place/internal/netlist"
	"vm1place/internal/tech"
)

// cand is one SCP candidate for a movable cell: a location and orientation
// (the paper's λ_c^k with its x_c^k, y_c^k, f_c^k).
type cand struct {
	site, row int
	flip      bool
}

// window is one MILP subproblem: the movable cells fully inside a window
// rectangle, their candidates, and the nets/pairs they touch.
type window struct {
	p   *layout.Placement // read-only snapshot during parallel solves
	prm Params

	s0, s1 int // site range [s0, s1)
	r0, r1 int // row range [r0, r1)

	movable []int    // instance indices
	cand    [][]cand // candidates per movable cell
	curCand []int    // index of the input-placement candidate per cell
	blocked []bool   // window sites blocked by non-movable cells
	// candCost[ci][k] is an extra linear objective cost for candidate k of
	// cell ci (pin-density term; zero when disabled).
	candCost [][]float64

	nets  []*winNet
	pairs []*winPair

	// scratch is the per-worker LP workspace threaded from DistOpt; the
	// window MILP reuses it for every node relaxation. nil is allowed (the
	// MILP solver then allocates a private arena).
	scratch *lp.Arena
}

// winPin is a net terminal as seen by the window MILP: movable (cell index
// within window plus per-candidate geometry) or fixed (constants).
type winPin struct {
	cell int // index into movable, or -1 when fixed
	conn netlist.Conn

	// Per-candidate geometry (movable) or single-element (fixed):
	// centerX/centerY for HPWL, alignX for ClosedM1, extLo/extHi for
	// OpenM1, rowOf for pruning.
	centerX, centerY []int64
	alignX           []int64
	extLo, extHi     []int64
	rowOf            []int
}

// winNet is a net with at least one movable pin.
type winNet struct {
	ni      int
	movable []winPin
	// Fixed-terminal extremes folded into bounds (valid iff hasFixed).
	hasFixed                   bool
	fxMin, fxMax, fyMin, fyMax int64
}

// winPair is an eligible pin pair (p, q) of one net.
type winPair struct {
	net  *winNet
	p, q winPin
}

// occKey indexes window occupancy cells.
func (w *window) occIdx(row, site int) int {
	return (row-w.r0)*(w.s1-w.s0) + (site - w.s0)
}

// buildWindow constructs the subproblem for the window rectangle. insts
// must contain every instance whose rect intersects the rectangle (a
// superset is fine). allowMove/allowFlip select the DistOpt pass mode.
func buildWindow(p *layout.Placement, prm Params, rect geom.Rect, ps ParamSet,
	insts []int, allowMove, allowFlip bool) *window {
	t := p.Tech
	w := &window{p: p, prm: prm}
	w.s0 = int(rect.XLo / t.SiteWidth)
	w.s1 = int(rect.XHi / t.SiteWidth)
	w.r0 = int(rect.YLo / t.RowHeight)
	w.r1 = int(rect.YHi / t.RowHeight)
	if w.s0 < 0 {
		w.s0 = 0
	}
	if w.r0 < 0 {
		w.r0 = 0
	}
	if w.s1 > p.NumSites {
		w.s1 = p.NumSites
	}
	if w.r1 > p.NumRows {
		w.r1 = p.NumRows
	}
	if w.s1 <= w.s0 || w.r1 <= w.r0 {
		return w
	}

	// Blocked sites: cells intersecting but not fully inside the window.
	w.blocked = make([]bool, (w.r1-w.r0)*(w.s1-w.s0))
	blocked := w.blocked
	for _, i := range insts {
		wi := p.Design.Insts[i].Master.WidthSites
		row, site := p.Row[i], p.SiteX[i]
		inside := row >= w.r0 && row < w.r1 && site >= w.s0 && site+wi <= w.s1
		if inside {
			w.movable = append(w.movable, i)
			continue
		}
		if row < w.r0 || row >= w.r1 {
			continue
		}
		for s := maxInt(site, w.s0); s < minInt(site+wi, w.s1); s++ {
			blocked[w.occIdx(row, s)] = true
		}
	}

	// Candidates.
	lx, ly := ps.LX, ps.LY
	if !allowMove {
		lx, ly = 0, 0
	}
	w.cand = make([][]cand, len(w.movable))
	w.curCand = make([]int, len(w.movable))
	for ci, i := range w.movable {
		wi := p.Design.Insts[i].Master.WidthSites
		curSite, curRow, curFlip := p.SiteX[i], p.Row[i], p.Flip[i]
		var flips []bool
		if allowFlip {
			flips = []bool{false, true}
		} else {
			flips = []bool{curFlip}
		}
		cur := -1
		for r := curRow - ly; r <= curRow+ly; r++ {
			if r < w.r0 || r >= w.r1 {
				continue
			}
			for s := curSite - lx; s <= curSite+lx; s++ {
				if s < w.s0 || s+wi > w.s1 {
					continue
				}
				hitsBlocked := false
				for ss := s; ss < s+wi; ss++ {
					if blocked[w.occIdx(r, ss)] {
						hitsBlocked = true
						break
					}
				}
				if hitsBlocked {
					continue
				}
				for _, f := range flips {
					if s == curSite && r == curRow && f == curFlip {
						cur = len(w.cand[ci])
					}
					w.cand[ci] = append(w.cand[ci], cand{site: s, row: r, flip: f})
				}
			}
		}
		if cur == -1 {
			// The current position must always be available (fixed cells
			// cannot overlap it). Guard against accounting bugs by adding
			// it explicitly.
			cur = len(w.cand[ci])
			w.cand[ci] = append(w.cand[ci], cand{site: curSite, row: curRow, flip: curFlip})
		}
		w.curCand[ci] = cur
	}

	w.buildCandCosts(insts)
	w.collectNetsAndPairs()
	return w
}

// buildCandCosts precomputes the optional pin-density penalty: for each
// candidate, the number of signal pins of *other* cells whose access track
// falls into the candidate's site columns, scaled by PinDensityWeight.
func (w *window) buildCandCosts(insts []int) {
	w.candCost = make([][]float64, len(w.movable))
	for ci := range w.movable {
		w.candCost[ci] = make([]float64, len(w.cand[ci]))
	}
	if w.prm.PinDensityWeight <= 0 {
		return
	}
	p := w.p
	t := p.Tech
	// Pin counts per window site column (all rows folded: vertical M1
	// access makes column crowding the relevant quantity).
	colPins := make([]float64, w.s1-w.s0)
	for _, i := range insts {
		m := p.Design.Insts[i].Master
		for pi := range m.Pins {
			pin := &m.Pins[pi]
			if !pin.IsSignal() {
				continue
			}
			cx := p.InstX(i) + cells.AlignX(m, t, pin, p.Flip[i])
			sx := t.XToSite(cx)
			if sx >= w.s0 && sx < w.s1 {
				colPins[sx-w.s0]++
			}
		}
	}
	for ci, i := range w.movable {
		m := p.Design.Insts[i].Master
		// Subtract the cell's own pins: they travel with the candidate and
		// must not penalize staying put.
		own := make(map[int]float64)
		for pi := range m.Pins {
			pin := &m.Pins[pi]
			if !pin.IsSignal() {
				continue
			}
			cx := p.InstX(i) + cells.AlignX(m, t, pin, p.Flip[i])
			sx := t.XToSite(cx)
			if sx >= w.s0 && sx < w.s1 {
				own[sx-w.s0]++
			}
		}
		for k, cd := range w.cand[ci] {
			var dens float64
			for s := cd.site; s < cd.site+m.WidthSites; s++ {
				dens += colPins[s-w.s0] - own[s-w.s0]
			}
			w.candCost[ci][k] = w.prm.PinDensityWeight * dens
		}
	}
}

// cellOf maps an instance to its movable index within the window, or -1.
func (w *window) cellOf(inst int) int {
	for ci, i := range w.movable {
		if i == inst {
			return ci
		}
	}
	return -1
}

// makePin builds the winPin view of a connection.
func (w *window) makePin(c netlist.Conn) winPin {
	p := w.p
	t := p.Tech
	inst := &p.Design.Insts[c.Inst]
	pin := &inst.Master.Pins[c.Pin]
	wp := winPin{cell: w.cellOf(c.Inst), conn: c}
	geomFor := func(site, row int, flip bool) (cx, cy, ax, lo, hi int64, r int) {
		x := t.SiteX(site)
		y := t.RowY(row)
		ax = x + cells.AlignX(inst.Master, t, pin, flip)
		ext := cells.XExtent(inst.Master, t, pin, flip)
		lo, hi = x+ext.Lo, x+ext.Hi
		cx = (lo + hi) / 2
		cy = y + cells.PinY(inst.Master, t, pin)
		return cx, cy, ax, lo, hi, row
	}
	if wp.cell < 0 {
		cx, cy, ax, lo, hi, r := geomFor(p.SiteX[c.Inst], p.Row[c.Inst], p.Flip[c.Inst])
		wp.centerX = []int64{cx}
		wp.centerY = []int64{cy}
		wp.alignX = []int64{ax}
		wp.extLo = []int64{lo}
		wp.extHi = []int64{hi}
		wp.rowOf = []int{r}
		return wp
	}
	cs := w.cand[wp.cell]
	wp.centerX = make([]int64, len(cs))
	wp.centerY = make([]int64, len(cs))
	wp.alignX = make([]int64, len(cs))
	wp.extLo = make([]int64, len(cs))
	wp.extHi = make([]int64, len(cs))
	wp.rowOf = make([]int, len(cs))
	for k, cd := range cs {
		wp.centerX[k], wp.centerY[k], wp.alignX[k], wp.extLo[k], wp.extHi[k], wp.rowOf[k] =
			geomFor(cd.site, cd.row, cd.flip)
	}
	return wp
}

// collectNetsAndPairs gathers the nets touching movable cells, their fixed
// extremes, and the prunable pin pairs.
func (w *window) collectNetsAndPairs() {
	p := w.p
	d := p.Design
	seen := map[int]*winNet{}
	for _, i := range w.movable {
		for _, ni := range d.Insts[i].PinNets {
			if ni < 0 || d.Nets[ni].IsClock || seen[ni] != nil {
				continue
			}
			seen[ni] = w.buildNet(ni)
			w.nets = append(w.nets, seen[ni])
		}
	}
	for _, wn := range w.nets {
		w.buildPairs(wn)
	}
}

func (w *window) buildNet(ni int) *winNet {
	p := w.p
	d := p.Design
	wn := &winNet{ni: ni}
	wn.fxMin, wn.fyMin = int64(1)<<62, int64(1)<<62
	wn.fxMax, wn.fyMax = -(int64(1) << 62), -(int64(1) << 62)
	addFixed := func(x, y int64) {
		wn.hasFixed = true
		if x < wn.fxMin {
			wn.fxMin = x
		}
		if x > wn.fxMax {
			wn.fxMax = x
		}
		if y < wn.fyMin {
			wn.fyMin = y
		}
		if y > wn.fyMax {
			wn.fyMax = y
		}
	}
	d.Nets[ni].ForEachConn(func(c netlist.Conn) {
		wp := w.makePin(c)
		if wp.cell >= 0 {
			wn.movable = append(wn.movable, wp)
		} else {
			addFixed(wp.centerX[0], wp.centerY[0])
		}
	})
	for pi := range d.Ports {
		if d.Ports[pi].Net == ni {
			addFixed(p.PortXY[pi].X, p.PortXY[pi].Y)
		}
	}
	return wn
}

// maxPairsPerNet bounds the pair variables contributed by one net; pairs
// are kept by priority (movable-movable first, then smallest current row
// distance), which keeps the MILP compact on high-fanout nets.
const maxPairsPerNet = 16

// buildPairs enumerates the eligible (movable, movable) and (movable,
// fixed-pin) pairs of a net, pruning pairs that cannot possibly align or
// overlap under any candidate choice.
func (w *window) buildPairs(wn *winNet) {
	d := w.p.Design
	// All signal terminals (fixed pins rebuilt for pairing; ports excluded
	// — they are not M1 pins).
	var terms []winPin
	d.Nets[wn.ni].ForEachConn(func(c netlist.Conn) {
		terms = append(terms, w.makePin(c))
	})
	type scored struct {
		pr    *winPair
		mm    bool // movable-movable
		rdist int  // current row distance
	}
	var cands []scored
	for i := 0; i < len(terms); i++ {
		for j := i + 1; j < len(terms); j++ {
			a, b := terms[i], terms[j]
			if a.conn.Inst == b.conn.Inst {
				continue
			}
			if a.cell < 0 && b.cell < 0 {
				continue // fixed-fixed pairs are constants
			}
			if !w.pairFeasible(a, b) {
				continue
			}
			ra := w.p.Row[a.conn.Inst]
			rb := w.p.Row[b.conn.Inst]
			rd := ra - rb
			if rd < 0 {
				rd = -rd
			}
			cands = append(cands, scored{
				pr:    &winPair{net: wn, p: a, q: b},
				mm:    a.cell >= 0 && b.cell >= 0,
				rdist: rd,
			})
		}
	}
	if len(cands) > maxPairsPerNet {
		for i := 0; i < len(cands); i++ {
			for j := i + 1; j < len(cands); j++ {
				better := (cands[j].mm && !cands[i].mm) ||
					(cands[j].mm == cands[i].mm && cands[j].rdist < cands[i].rdist)
				if better {
					cands[i], cands[j] = cands[j], cands[i]
				}
			}
		}
		cands = cands[:maxPairsPerNet]
	}
	for _, c := range cands {
		w.pairs = append(w.pairs, c.pr)
	}
}

// pairFeasible conservatively tests whether any candidate combination can
// realize the pair's alignment/overlap.
func (w *window) pairFeasible(a, b winPin) bool {
	// Row distance must be able to reach <= gamma.
	aLo, aHi := minMaxInt(a.rowOf)
	bLo, bHi := minMaxInt(b.rowOf)
	dist := 0
	if aLo > bHi {
		dist = aLo - bHi
	} else if bLo > aHi {
		dist = bLo - aHi
	}
	if dist > w.prm.alignGamma() {
		return false
	}
	if w.prm.Arch == tech.OpenM1 {
		loA, _ := minMax64(a.extLo)
		_, hiA := minMax64(a.extHi)
		loB, _ := minMax64(b.extLo)
		_, hiB := minMax64(b.extHi)
		// Best-case overlap upper bound.
		best := min64(hiA, hiB) - max64(loA, loB)
		return best >= w.prm.DeltaDBU
	}
	// ClosedM1: the achievable alignX sets must intersect as ranges.
	loA, hiA := minMax64(a.alignX)
	loB, hiB := minMax64(b.alignX)
	return loA <= hiB && loB <= hiA
}

func minMaxInt(v []int) (int, int) {
	lo, hi := v[0], v[0]
	for _, x := range v {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

func minMax64(v []int64) (int64, int64) {
	lo, hi := v[0], v[0]
	for _, x := range v {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
