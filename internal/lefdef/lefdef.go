// Package lefdef reads and writes the subset of LEF/DEF 5.7 that vm1place
// uses to exchange libraries and placed designs — the role OpenAccess +
// LEF/DEF play in the paper's flow. The writer emits exactly the subset
// the parser accepts, and round-tripping a placement is lossless for
// everything the optimizer consumes (cell geometry, pin shapes, locations,
// orientations, connectivity, ports).
package lefdef

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"vm1place/internal/cells"
	"vm1place/internal/geom"
	"vm1place/internal/layout"
	"vm1place/internal/netlist"
	"vm1place/internal/tech"
)

// WriteLEF emits the library as LEF: site, layers and one MACRO per
// master with PORT rectangles in µm.
func WriteLEF(w io.Writer, lib *cells.Library) error {
	t := lib.Tech
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "VERSION 5.7 ;\nBUSBITCHARS \"[]\" ;\nDIVIDERCHAR \"/\" ;\n")
	fmt.Fprintf(bw, "UNITS\n  DATABASE MICRONS %d ;\nEND UNITS\n\n", t.DBUPerMicron)
	fmt.Fprintf(bw, "SITE coreSite\n  CLASS CORE ;\n  SIZE %s BY %s ;\nEND coreSite\n\n",
		umStr(t, t.SiteWidth), umStr(t, t.RowHeight))
	for _, m := range lib.Masters {
		fmt.Fprintf(bw, "MACRO %s\n", m.Name)
		fmt.Fprintf(bw, "  CLASS CORE ;\n  ORIGIN 0 0 ;\n")
		fmt.Fprintf(bw, "  SIZE %s BY %s ;\n", umStr(t, m.WidthDBU(t)), umStr(t, t.RowHeight))
		fmt.Fprintf(bw, "  SITE coreSite ;\n")
		for pi := range m.Pins {
			p := &m.Pins[pi]
			fmt.Fprintf(bw, "  PIN %s\n    DIRECTION %s ;\n    USE %s ;\n    PORT\n",
				p.Name, lefDir(p.Dir), lefUse(p.Dir))
			for _, sh := range p.Shapes {
				fmt.Fprintf(bw, "      LAYER %s ;\n        RECT %s %s %s %s ;\n",
					sh.Layer,
					umStr(t, sh.Rect.XLo), umStr(t, sh.Rect.YLo),
					umStr(t, sh.Rect.XHi), umStr(t, sh.Rect.YHi))
			}
			fmt.Fprintf(bw, "    END\n  END %s\n", p.Name)
		}
		fmt.Fprintf(bw, "END %s\n\n", m.Name)
	}
	fmt.Fprintf(bw, "END LIBRARY\n")
	return bw.Flush()
}

func lefDir(d cells.PinDir) string {
	switch d {
	case cells.Input:
		return "INPUT"
	case cells.Output:
		return "OUTPUT"
	default:
		return "INOUT"
	}
}

func lefUse(d cells.PinDir) string {
	switch d {
	case cells.Power:
		return "POWER"
	case cells.Ground:
		return "GROUND"
	default:
		return "SIGNAL"
	}
}

func umStr(t *tech.Tech, dbu int64) string {
	return strconv.FormatFloat(float64(dbu)/float64(t.DBUPerMicron), 'f', -1, 64)
}

// WriteDEF emits the placed design as DEF (DBU coordinates).
func WriteDEF(w io.Writer, p *layout.Placement) error {
	t := p.Tech
	d := p.Design
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "VERSION 5.7 ;\nDIVIDERCHAR \"/\" ;\nBUSBITCHARS \"[]\" ;\n")
	fmt.Fprintf(bw, "DESIGN %s ;\n", d.Name)
	fmt.Fprintf(bw, "UNITS DISTANCE MICRONS %d ;\n", t.DBUPerMicron)
	fmt.Fprintf(bw, "DIEAREA ( 0 0 ) ( %d %d ) ;\n", p.DieWidth(), p.DieHeight())
	for r := 0; r < p.NumRows; r++ {
		orient := "N"
		if r%2 == 1 {
			orient = "FS"
		}
		fmt.Fprintf(bw, "ROW row_%d coreSite 0 %d %s DO %d BY 1 STEP %d 0 ;\n",
			r, t.RowY(r), orient, p.NumSites, t.SiteWidth)
	}

	fmt.Fprintf(bw, "COMPONENTS %d ;\n", len(d.Insts))
	for i := range d.Insts {
		orient := "N"
		if p.Flip[i] {
			orient = "FN"
		}
		fmt.Fprintf(bw, "- %s %s + PLACED ( %d %d ) %s ;\n",
			d.Insts[i].Name, d.Insts[i].Master.Name, p.InstX(i), p.InstY(i), orient)
	}
	fmt.Fprintf(bw, "END COMPONENTS\n")

	fmt.Fprintf(bw, "PINS %d ;\n", len(d.Ports))
	for pi := range d.Ports {
		pt := &d.Ports[pi]
		dir := "OUTPUT"
		if pt.Input {
			dir = "INPUT"
		}
		fmt.Fprintf(bw, "- %s + NET %s + DIRECTION %s + FIXED ( %d %d ) N ;\n",
			pt.Name, d.Nets[pt.Net].Name, dir, p.PortXY[pi].X, p.PortXY[pi].Y)
	}
	fmt.Fprintf(bw, "END PINS\n")

	fmt.Fprintf(bw, "NETS %d ;\n", len(d.Nets))
	for ni := range d.Nets {
		n := &d.Nets[ni]
		fmt.Fprintf(bw, "- %s", n.Name)
		n.ForEachConn(func(c netlist.Conn) {
			inst := &d.Insts[c.Inst]
			fmt.Fprintf(bw, " ( %s %s )", inst.Name, inst.Master.Pins[c.Pin].Name)
		})
		for pi := range d.Ports {
			if d.Ports[pi].Net == ni {
				fmt.Fprintf(bw, " ( PIN %s )", d.Ports[pi].Name)
			}
		}
		if n.IsClock {
			fmt.Fprintf(bw, " + USE CLOCK")
		}
		fmt.Fprintf(bw, " ;\n")
	}
	fmt.Fprintf(bw, "END NETS\nEND DESIGN\n")
	return bw.Flush()
}

// tokenizer splits LEF/DEF into whitespace-separated tokens, treating
// parentheses as separate tokens. It reads byte-wise off a bufio.Reader,
// so memory is O(longest token) regardless of line length — DEF writers
// (ours included) put an entire net on one line, and a large design's
// clock net makes that line arbitrarily long, which is why the previous
// line-based Scanner (1 MiB line cap) could not stream big DEFs.
type tokenizer struct {
	r       *bufio.Reader
	tok     []byte   // reused accumulation buffer for the current token
	pending []string // peeked tokens pushed back, consumed LIFO
}

func newTokenizer(r io.Reader) *tokenizer {
	return &tokenizer{r: bufio.NewReaderSize(r, 64*1024)}
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}

// next returns the next token, or "" at EOF (or on a read error, which
// the statement parsers then surface as a truncated/invalid input).
func (tk *tokenizer) next() string {
	if n := len(tk.pending); n > 0 {
		t := tk.pending[n-1]
		tk.pending = tk.pending[:n-1]
		return t
	}
	for {
		c, err := tk.r.ReadByte()
		if err != nil {
			return ""
		}
		if isSpace(c) {
			continue
		}
		if c == '(' {
			return "("
		}
		if c == ')' {
			return ")"
		}
		tk.tok = append(tk.tok[:0], c)
		for {
			c, err := tk.r.ReadByte()
			if err != nil {
				break
			}
			if isSpace(c) {
				break
			}
			if c == '(' || c == ')' {
				// Parens bind to no token; leave it for the next call.
				if uerr := tk.r.UnreadByte(); uerr != nil {
					panic(uerr) // panic-ok: UnreadByte cannot fail right after a successful ReadByte
				}
				break
			}
			tk.tok = append(tk.tok, c)
		}
		return string(tk.tok)
	}
}

// peek returns the next token without consuming it.
func (tk *tokenizer) peek() string {
	t := tk.next()
	if t != "" {
		tk.pending = append(tk.pending, t)
	}
	return t
}

// until consumes tokens through the next ";" and returns them (without the
// semicolon).
func (tk *tokenizer) until() []string {
	var out []string
	for {
		t := tk.next()
		if t == "" || t == ";" {
			return out
		}
		out = append(out, t)
	}
}

// ParseLEF reads a library in the subset written by WriteLEF.
func ParseLEF(r io.Reader, t *tech.Tech) (*cells.Library, error) {
	tk := newTokenizer(r)
	dbu := float64(t.DBUPerMicron)
	toDBU := func(s string) (int64, error) {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0, err
		}
		if v < 0 {
			return int64(v*dbu - 0.5), nil
		}
		return int64(v*dbu + 0.5), nil
	}

	var masters []*cells.Master
	var cur *cells.Master
	curPin := -1
	arch := tech.ClosedM1
	archSet := false
	for {
		tok := tk.next()
		if tok == "" {
			break
		}
		switch tok {
		case "MACRO":
			cur = &cells.Master{Name: tk.next()}
			masters = append(masters, cur)
			curPin = -1
		case "SIZE":
			rest := tk.until() // w BY h
			if cur != nil && len(rest) >= 1 {
				wdbu, err := toDBU(rest[0])
				if err != nil {
					return nil, fmt.Errorf("lefdef: bad SIZE %q: %w", rest[0], err)
				}
				cur.WidthSites = int(wdbu / t.SiteWidth)
			}
			if cur != nil && len(rest) >= 3 {
				hdbu, err := toDBU(rest[2])
				if err != nil {
					return nil, fmt.Errorf("lefdef: bad SIZE height %q: %w", rest[2], err)
				}
				// Rows covered, rounded up: library validation rejects
				// multi-height masters instead of letting the floorplan
				// overlap them.
				cur.HeightRows = int((hdbu + t.RowHeight - 1) / t.RowHeight)
			}
		case "PIN":
			if cur != nil {
				cur.Pins = append(cur.Pins, cells.Pin{Name: tk.next()})
				curPin = len(cur.Pins) - 1
			}
		case "DIRECTION":
			rest := tk.until()
			if cur != nil && curPin >= 0 && len(rest) > 0 {
				switch rest[0] {
				case "INPUT":
					cur.Pins[curPin].Dir = cells.Input
				case "OUTPUT":
					cur.Pins[curPin].Dir = cells.Output
				}
			}
		case "USE":
			rest := tk.until()
			if cur != nil && curPin >= 0 && len(rest) > 0 {
				switch rest[0] {
				case "POWER":
					cur.Pins[curPin].Dir = cells.Power
				case "GROUND":
					cur.Pins[curPin].Dir = cells.Ground
				}
			}
		case "LAYER":
			rest := tk.until()
			if cur == nil || curPin < 0 || len(rest) == 0 {
				continue
			}
			layer, err := parseLayer(rest[0])
			if err != nil {
				return nil, err
			}
			if tok2 := tk.next(); tok2 != "RECT" {
				return nil, fmt.Errorf("lefdef: expected RECT after LAYER, got %q", tok2)
			}
			coords := tk.until()
			if len(coords) != 4 {
				return nil, fmt.Errorf("lefdef: RECT wants 4 coords, got %d", len(coords))
			}
			var v [4]int64
			for i, c := range coords {
				x, err := toDBU(c)
				if err != nil {
					return nil, fmt.Errorf("lefdef: bad RECT coord %q: %w", c, err)
				}
				v[i] = x
			}
			pin := &cur.Pins[curPin]
			pin.Shapes = append(pin.Shapes, cells.Shape{
				Layer: layer,
				Rect:  geom.Rect{XLo: v[0], YLo: v[1], XHi: v[2], YHi: v[3]},
			})
			if pin.IsSignal() && !archSet {
				if layer == tech.M0 {
					arch = tech.OpenM1
				} else if layer == tech.M2 {
					arch = tech.Conventional
				}
				archSet = true
			}
		case "END":
			// Scope closers: "END <macro>", "END <pin>", "END LIBRARY",
			// or a bare PORT "END". Only consume the name when it closes
			// a known scope.
			nxt := tk.peek()
			switch {
			case cur != nil && nxt == cur.Name:
				tk.next()
				cur = nil
				curPin = -1
			case cur != nil && curPin >= 0 && nxt == cur.Pins[curPin].Name:
				tk.next()
				curPin = -1
			case nxt == "LIBRARY" || nxt == "UNITS" || nxt == "coreSite":
				tk.next()
			}
		}
	}
	for _, m := range masters {
		m.Arch = arch
	}
	lib, err := cells.NewLibraryFromMasters(t, arch, masters)
	if err != nil {
		return nil, fmt.Errorf("lefdef: parsed library: %w", err)
	}
	return lib, nil
}

func parseLayer(s string) (tech.Layer, error) {
	switch s {
	case "M0":
		return tech.M0, nil
	case "M1":
		return tech.M1, nil
	case "M2":
		return tech.M2, nil
	case "M3":
		return tech.M3, nil
	case "M4":
		return tech.M4, nil
	}
	return 0, fmt.Errorf("lefdef: unknown layer %q", s)
}
