package core

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"vm1place/internal/layout"
	"vm1place/internal/objective"
)

// objectiveParams builds Params for a registered objective on a placed
// design: the objective resolved into Params.Objective, plus synthetic
// per-net α multipliers so net-weighted objectives ("slackalpha") exercise
// their non-uniform path (entries deterministic in the net index, some
// <= 0 to cover the treated-as-1 fallback).
func objectiveParams(p *layout.Placement, o objective.GeomObjective) Params {
	prm := DefaultParams(p.Tech, o.Arch())
	prm.Objective = o
	netAlpha := make([]float64, len(p.Design.Nets))
	for ni := range netAlpha {
		switch ni % 4 {
		case 0:
			netAlpha[ni] = 1 + float64(ni%7)/2 // 1 .. 4
		case 1:
			netAlpha[ni] = 0 // treated as 1
		case 2:
			netAlpha[ni] = -1 // treated as 1
		default:
			netAlpha[ni] = 0.5
		}
	}
	prm.NetAlpha = netAlpha
	return prm
}

// TestObjTrackerMatchesRescanAllObjectives is the registry-wide exactness
// property: for EVERY registered geometry objective, the incremental
// ObjTracker must agree with a fresh CalculateObj rescan — integer fields
// identical and Value bit-identical — through random move batches and a
// real DistOpt pass. New objectives are covered automatically the moment
// they register.
func TestObjTrackerMatchesRescanAllObjectives(t *testing.T) {
	names := objective.Names()
	if len(names) < 4 {
		t.Fatalf("registry holds %d objectives (%v), want the two paper objectives plus netsep and slackalpha", len(names), names)
	}
	for _, name := range names {
		o, err := objective.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			p := genPlaced(t, o.Arch(), 250, 41, 0.72)
			prm := objectiveParams(p, o)
			tr := NewObjTracker(p, prm)
			requireObjEqual(t, name+"/initial", tr)

			// Random (not necessarily legal) relocations: the objective
			// identity must hold on any placement state.
			rng := rand.New(rand.NewSource(7))
			for batch := 0; batch < 12; batch++ {
				n := 1 + rng.Intn(6)
				moves := make([]Move, 0, n)
				for k := 0; k < n; k++ {
					i := rng.Intn(len(p.Design.Insts))
					wi := p.Design.Insts[i].Master.WidthSites
					moves = append(moves, Move{
						Inst: i,
						Site: rng.Intn(p.NumSites - wi + 1),
						Row:  rng.Intn(p.NumRows),
						Flip: rng.Intn(2) == 0,
					})
				}
				tr.ApplyMoves(moves)
				requireObjEqual(t, name+"/random", tr)
			}

			// One real DistOpt pass on a fresh (legal) placement: window
			// MILPs must emit solvable models for the objective, the pass
			// must preserve legality, and the tracked objective must stay
			// exact.
			p2 := genPlaced(t, o.Arch(), 250, 43, 0.72)
			prm2 := objectiveParams(p2, o)
			prm2.MaxNodes = 40
			prm2.TimeLimit = 100 * time.Millisecond
			tr2 := NewObjTracker(p2, prm2)
			ps := ParamSet{BW: 2000, BH: 2000, LX: 3, LY: 1}
			pool := newSolverPool(workersOf(prm2))
			g := makeGrid(p2, ps, 0, 0)
			distPass(context.Background(), tr2, ps, g, pool, true, false)
			requireObjEqual(t, name+"/distpass", tr2)
			if err := p2.CheckLegal(); err != nil {
				t.Fatalf("%s: illegal after tracked pass: %v", name, err)
			}
		})
	}
}
