package expt

import (
	"bytes"
	"strings"
	"testing"

	"vm1place/internal/tech"
)

const testScale = 0.04 // ~500-cell aes for fast tests

// mustDesign resolves a named paper design, failing the test on error.
func mustDesign(t *testing.T, cfg SuiteConfig, name string) DesignSpec {
	t.Helper()
	spec, err := cfg.design(name)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestUmToDBU(t *testing.T) {
	if UmToDBU(20) != 2000 {
		t.Errorf("UmToDBU(20) = %d", UmToDBU(20))
	}
}

func TestScaledDesigns(t *testing.T) {
	s := ScaledDesigns(0.1)
	if len(s) != len(PaperDesigns) {
		t.Fatal("wrong count")
	}
	if s[1].NumInsts != 1234 {
		t.Errorf("aes scaled = %d", s[1].NumInsts)
	}
	tiny := ScaledDesigns(0.0001)
	for _, d := range tiny {
		if d.NumInsts < 200 {
			t.Errorf("%s below floor: %d", d.Name, d.NumInsts)
		}
	}
}

func TestRunFlowClosedM1(t *testing.T) {
	cfg := SuiteConfig{Scale: testScale, Workers: 4}
	r, err := RunFlow(mustDesign(t, cfg, "aes"), FlowConfig{Arch: tech.ClosedM1, MaxOuterIters: 2, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r.Final.DM1 <= r.Init.DM1 {
		t.Errorf("dM1 did not increase: %d -> %d", r.Init.DM1, r.Final.DM1)
	}
	if r.OptFinal.Alignments <= r.OptInitial.Alignments {
		t.Errorf("alignments did not increase: %d -> %d",
			r.OptInitial.Alignments, r.OptFinal.Alignments)
	}
	if r.Final.RWL >= r.Init.RWL {
		t.Errorf("RWL did not decrease: %d -> %d", r.Init.RWL, r.Final.RWL)
	}
	var buf bytes.Buffer
	WriteTable2Row(&buf, r)
	if !strings.Contains(buf.String(), "aes") {
		t.Error("row formatting broken")
	}
}

func TestRunFlowOpenM1(t *testing.T) {
	cfg := SuiteConfig{Scale: testScale, Workers: 4}
	r, err := RunFlow(mustDesign(t, cfg, "aes"), FlowConfig{Arch: tech.OpenM1, MaxOuterIters: 2, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r.Final.DM1 <= r.Init.DM1 {
		t.Errorf("OpenM1 dM1 did not increase: %d -> %d", r.Init.DM1, r.Final.DM1)
	}
}

func TestFig6AlphaShape(t *testing.T) {
	cfg := SuiteConfig{Scale: testScale, Workers: 4}
	pts, err := RunFig6(cfg, tech.ClosedM1, []float64{0, 1200})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatal("wrong point count")
	}
	if pts[1].DM1 <= pts[0].DM1 {
		t.Errorf("alpha=1200 dM1 %d not above alpha=0 dM1 %d", pts[1].DM1, pts[0].DM1)
	}
	var buf bytes.Buffer
	WriteFig6(&buf, tech.ClosedM1, pts)
	if !strings.Contains(buf.String(), "alpha") {
		t.Error("fig6 formatting broken")
	}
}

func TestFig5Runs(t *testing.T) {
	cfg := SuiteConfig{Scale: testScale, Workers: 4}
	pts, err := RunFig5(cfg, []float64{10, 20}, [][2]int{{3, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatal("wrong point count")
	}
	var buf bytes.Buffer
	WriteFig5(&buf, pts)
	out := buf.String()
	if !strings.Contains(out, "window_um") || !strings.Contains(out, "norm_rwl") {
		t.Error("fig5 formatting broken")
	}
}

func TestFlowParallelMatchesSequential(t *testing.T) {
	// Concurrent flow points must land in sequential order with the same
	// sweep labels. Point values carry the optimizer's wall-clock-budget
	// variance (present sequentially too — see SuiteConfig.FlowParallel),
	// so RWL is only checked to a loose band, not for equality.
	windows := []float64{10, 20}
	perts := [][2]int{{3, 1}}
	seq, err := RunFig5(SuiteConfig{Scale: testScale, Workers: 1}, windows, perts)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunFig5(SuiteConfig{Scale: testScale, Workers: 1, FlowParallel: 2}, windows, perts)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("point counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		a, b := seq[i], par[i]
		if a.WindowUm != b.WindowUm || a.LX != b.LX || a.LY != b.LY {
			t.Errorf("point %d out of order: %+v vs %+v", i, a, b)
		}
		if b.RWL <= 0 {
			t.Errorf("point %d routed nothing: %+v", i, b)
		}
		lo, hi := a.RWL*95/100, a.RWL*105/100
		if b.RWL < lo || b.RWL > hi {
			t.Errorf("point %d RWL outside band: %d vs sequential %d", i, b.RWL, a.RWL)
		}
	}
}

func TestFig8Runs(t *testing.T) {
	cfg := SuiteConfig{Scale: testScale, Workers: 4}
	pts, err := RunFig8(cfg, []float64{0.75})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 {
		t.Fatal("wrong point count")
	}
	var buf bytes.Buffer
	WriteFig8(&buf, pts)
	if !strings.Contains(buf.String(), "drv_orig") {
		t.Error("fig8 formatting broken")
	}
}

func TestTimingAwareFlow(t *testing.T) {
	cfg := SuiteConfig{Scale: testScale, Workers: 4}
	r, err := RunTimingAwareFlow(mustDesign(t, cfg, "aes"),
		FlowConfig{Arch: tech.ClosedM1, MaxOuterIters: 1, Workers: 4}, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Final.DM1 <= 0 {
		t.Errorf("timing-aware flow produced no dM1: %+v", r.Final)
	}
	// Timing must not degrade (the paper's "no adverse timing impact").
	if r.Final.WNS < r.Init.WNS-0.05 {
		t.Errorf("timing degraded: WNS %f -> %f", r.Init.WNS, r.Final.WNS)
	}
}

func TestTimingAwareBetas(t *testing.T) {
	cfg := SuiteConfig{Scale: testScale, Workers: 4}
	betas, err := TimingAwareBetas(mustDesign(t, cfg, "aes"), tech.ClosedM1, 0.75, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	above := 0
	for _, b := range betas {
		if b < 1 {
			t.Fatalf("beta %f below 1", b)
		}
		if b > 1 {
			above++
		}
	}
	if above == 0 {
		t.Error("no critical nets weighted")
	}
}
