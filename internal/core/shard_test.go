package core

import (
	"testing"
	"time"

	"vm1place/internal/proxy"
	"vm1place/internal/tech"
)

// TestVM1OptShardsInvariance is the sharded optimizer's core guarantee:
// splitting the window grid into spatial stripes (Params.Shards) must
// not change the result at all. Every shard count — including 1, i.e.
// the pipelined single-shard engine, and counts exceeding the grid
// width — produces bit-identical placements and objectives, because
// window solves are independent of where they run and each family's
// moves merge at the barrier in family window order, the single batch
// the unsharded loop commits. Mirrors PR 7's worker-invariance tests.
func TestVM1OptShardsInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several full optimizer passes")
	}
	type snap struct {
		site []int
		row  []int
		flip []bool
		res  Result
	}
	run := func(shards int) snap {
		p := genPlaced(t, tech.ClosedM1, 300, 29, 0.75)
		prm := DefaultParams(p.Tech, tech.ClosedM1)
		prm.Workers = 1
		prm.Shards = shards
		prm.MaxNodes = 40
		prm.TimeLimit = 0 // untimed: identical work regardless of wall clock
		prm.MaxOuterIters = 1
		res := VM1Opt(p, prm, Sequence{{BW: 2000, BH: 2000, LX: 3, LY: 1}})
		return snap{
			site: append([]int(nil), p.SiteX...),
			row:  append([]int(nil), p.Row...),
			flip: append([]bool(nil), p.Flip...),
			res:  res,
		}
	}
	base := run(1)
	for _, k := range []int{2, 4, 8} {
		got := run(k)
		if got.res.Final != base.res.Final {
			t.Fatalf("Shards=%d final objective diverged:\n got %+v\nwant %+v",
				k, got.res.Final, base.res.Final)
		}
		for i := range base.site {
			if got.site[i] != base.site[i] || got.row[i] != base.row[i] ||
				got.flip[i] != base.flip[i] {
				t.Fatalf("Shards=%d placement diverged at inst %d: "+
					"(%d,%d,%v) vs (%d,%d,%v)", k, i,
					got.site[i], got.row[i], got.flip[i],
					base.site[i], base.row[i], base.flip[i])
			}
		}
	}
}

// TestVM1OptShardsGuidedInvariance repeats the invariance claim with
// guided scheduling active: there the stripe partition is balanced by
// the proxy's window scores (famPlan.score) instead of instance
// populations, and the guided family order/budgets must survive
// sharding unchanged.
func TestVM1OptShardsGuidedInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several full optimizer passes")
	}
	run := func(shards int) ([]int, []int, []bool, Result) {
		p := genPlaced(t, tech.ClosedM1, 300, 41, 0.75)
		prm := DefaultParams(p.Tech, tech.ClosedM1)
		prm.Workers = 1
		prm.Shards = shards
		prm.MaxNodes = 40
		prm.TimeLimit = 0
		prm.MaxOuterIters = 1
		prm.Guided = true
		prm.Proxy = proxy.New(p, proxy.DefaultConfig(p.Tech, tech.ClosedM1))
		res := VM1Opt(p, prm, Sequence{{BW: 2000, BH: 2000, LX: 3, LY: 1}})
		return append([]int(nil), p.SiteX...), append([]int(nil), p.Row...),
			append([]bool(nil), p.Flip...), res
	}
	bs, br, bf, bres := run(1)
	for _, k := range []int{2, 4} {
		gs, gr, gf, gres := run(k)
		if gres.Final != bres.Final {
			t.Fatalf("guided Shards=%d final objective diverged:\n got %+v\nwant %+v",
				k, gres.Final, bres.Final)
		}
		for i := range bs {
			if gs[i] != bs[i] || gr[i] != br[i] || gf[i] != bf[i] {
				t.Fatalf("guided Shards=%d placement diverged at inst %d", k, i)
			}
		}
	}
}

// TestVM1OptShardsLegalAndTracked checks the sharded path composes with
// the deadline machinery: a short timed run with Shards=2 and multiple
// workers per stripe stays legal and its tracked Final matches a fresh
// rescan.
func TestVM1OptShardsLegalAndTracked(t *testing.T) {
	p := genPlaced(t, tech.ClosedM1, 300, 31, 0.75)
	prm := DefaultParams(p.Tech, tech.ClosedM1)
	prm.Workers = 4
	prm.Shards = 2
	prm.MaxNodes = 40
	prm.TimeLimit = 100 * time.Millisecond
	prm.MaxOuterIters = 1
	res := VM1Opt(p, prm, Sequence{{BW: 2000, BH: 2000, LX: 3, LY: 1}})
	if err := p.CheckLegal(); err != nil {
		t.Fatalf("illegal after sharded pass: %v", err)
	}
	if want := CalculateObj(p, prm); res.Final != want {
		t.Fatalf("final objective diverged from rescan:\n got %+v\nwant %+v",
			res.Final, want)
	}
}
