package lp

import (
	"math"
	"math/rand"
	"testing"
)

// Property tests for the sparse LU simplex kernel: on randomly generated
// bounded LPs — including degenerate (duplicate rows, fixed variables) and
// near-singular (almost-parallel rows) instances — the factorized kernel
// must report the same status as the dense-inverse reference in
// denseref_test.go, and when both are optimal the objectives must agree to
// 1e-7. The warm half re-solves each instance through one shared Arena with
// branch-and-bound style bound tightenings, checking the dual warm-start
// path (eta accumulation, refactorization triggers) against cold reference
// solves of the identical bounds.

const objTol = 1e-7

// genLP builds a random sparse bounded LP from the seed. Roughly a quarter
// of the instances get a duplicated row (primal degeneracy), a fixed
// variable, and/or a nearly parallel row (ill-conditioned basis candidates).
func genLP(rng *rand.Rand) *Model {
	m := NewModel()
	n := 3 + rng.Intn(20)
	rows := 2 + rng.Intn(16)

	for j := 0; j < n; j++ {
		lo := float64(rng.Intn(9)) - 4 // -4..4
		width := float64(1 + rng.Intn(12))
		hi := lo + width
		if rng.Intn(4) == 0 && j > 0 {
			hi = lo // fixed variable
		}
		obj := float64(rng.Intn(21)-10) / 2 // -5..5 in halves
		m.AddVar(lo, hi, obj, "")
	}

	addRow := func() []Term {
		nt := 2 + rng.Intn(4)
		terms := make([]Term, 0, nt)
		for k := 0; k < nt; k++ {
			c := float64(rng.Intn(11) - 5)
			if c == 0 {
				c = 1
			}
			terms = append(terms, Term{Var: rng.Intn(n), Coef: c})
		}
		sense := []Sense{LE, GE, EQ}[rng.Intn(3)]
		// Anchor the RHS near the row's value at a random interior point so
		// most instances are feasible; the offset still leaves a healthy
		// share of clearly infeasible ones.
		v := 0.0
		for _, t := range terms {
			frac := rng.Float64()
			v += t.Coef * (m.lo[t.Var] + frac*(m.hi[t.Var]-m.lo[t.Var]))
		}
		rhs := math.Round(v) + float64(rng.Intn(13)-4)
		m.AddRow(sense, rhs, terms...)
		return terms
	}

	var prev []Term
	for i := 0; i < rows; i++ {
		terms := addRow()
		if prev == nil || rng.Intn(4) == 0 {
			prev = append([]Term(nil), terms...)
		}
	}
	if prev != nil && rng.Intn(4) == 0 {
		// Duplicate row: same terms, same-or-looser RHS. Degenerate basis.
		m.AddRow(LE, float64(rng.Intn(20)), prev...)
	}
	if prev != nil && rng.Intn(4) == 0 {
		// Nearly parallel row: one coefficient nudged by 1e-9. If both end
		// up basic the basis is near-singular, exercising the Markowitz
		// pivot tolerance and the eta stability check.
		near := append([]Term(nil), prev...)
		near[0].Coef += 1e-9
		m.AddRow(GE, float64(-rng.Intn(20)), near...)
	}
	return m
}

// checkAgainstRef solves m with the live kernel (through a, warm or cold as
// a's state dictates) and the dense reference (always cold) under the same
// bounds, and fails the test on any disagreement. Returns the live solution.
func checkAgainstRef(t *testing.T, m *Model, lo, hi []float64, a *Arena, tag string) *Solution {
	t.Helper()
	got := m.SolveWithScratch(lo, hi, nil, a)
	want := refSolve(m, lo, hi)
	if got.Status == IterLimit || want.Status == IterLimit {
		t.Fatalf("%s: iteration limit hit (lu=%v ref=%v) — cycling?", tag, got.Status, want.Status)
	}
	if got.Status != want.Status {
		t.Fatalf("%s: status mismatch: lu=%v ref=%v", tag, got.Status, want.Status)
	}
	if got.Status == Optimal {
		if diff := math.Abs(got.Obj - want.Obj); diff > objTol*(1+math.Max(math.Abs(got.Obj), math.Abs(want.Obj))) {
			t.Fatalf("%s: objective mismatch: lu=%.12g ref=%.12g (diff %.3g)", tag, got.Obj, want.Obj, diff)
		}
	}
	return got
}

// tightenBounds mimics a branch-and-bound child: shrink a few random
// variable intervals, keeping lo <= hi.
func tightenBounds(rng *rand.Rand, lo, hi []float64) {
	for k := 0; k < 1+rng.Intn(3); k++ {
		j := rng.Intn(len(lo))
		if math.IsInf(lo[j], -1) || math.IsInf(hi[j], 1) || hi[j]-lo[j] < 0.5 {
			continue
		}
		cut := lo[j] + rng.Float64()*(hi[j]-lo[j])
		if rng.Intn(2) == 0 {
			hi[j] = math.Ceil(cut)
			if hi[j] < lo[j] {
				hi[j] = lo[j]
			}
		} else {
			lo[j] = math.Floor(cut)
			if lo[j] > hi[j] {
				lo[j] = hi[j]
			}
		}
	}
}

func runKernelAgreement(t *testing.T, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := genLP(rng)
	a := NewArena()

	sol := checkAgainstRef(t, m, nil, nil, a, "cold")
	if sol.Status != Optimal {
		return // nothing to warm-start from
	}

	// Warm sequence: repeated bound tightenings through the same arena. The
	// live kernel takes the dual warm-start path; the reference re-solves
	// cold each time. Enough steps to cross the eta refactorization trigger.
	lo, hi := m.Bounds()
	for step := 0; step < 6; step++ {
		tightenBounds(rng, lo, hi)
		sol = checkAgainstRef(t, m, lo, hi, a, "warm")
		if sol.Status != Optimal {
			return
		}
	}
}

func TestLPKernelAgreement(t *testing.T) {
	n := 400
	if testing.Short() {
		n = 60
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		seed := seed
		if !t.Run("", func(t *testing.T) { runKernelAgreement(t, seed) }) {
			t.Fatalf("seed %d failed", seed)
		}
	}
}

// FuzzLPKernelAgreement is the same property exposed to `go test -fuzz`:
// each fuzz input is a generator seed.
func FuzzLPKernelAgreement(f *testing.F) {
	for _, s := range []int64{1, 7, 42, 1337, 99991} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		runKernelAgreement(t, seed)
	})
}

// TestLPDegenerateHandcrafted pins a few constructed worst cases that random
// generation only hits occasionally: a fully degenerate transportation-style
// block, exactly duplicated equality rows, and an equality pair differing by
// 1e-9 (a basis one eps from singular).
func TestLPDegenerateHandcrafted(t *testing.T) {
	t.Run("degenerate-assignment", func(t *testing.T) {
		m := NewModel()
		var v [9]int
		for i := range v {
			v[i] = m.AddVar(0, 1, float64((i*7)%5)-2, "")
		}
		for r := 0; r < 3; r++ {
			m.AddRow(EQ, 1, Term{v[3*r], 1}, Term{v[3*r+1], 1}, Term{v[3*r+2], 1})
			m.AddRow(EQ, 1, Term{v[r], 1}, Term{v[r+3], 1}, Term{v[r+6], 1})
		}
		checkAgainstRef(t, m, nil, nil, NewArena(), "assignment")
	})
	t.Run("duplicate-equalities", func(t *testing.T) {
		m := NewModel()
		x := m.AddVar(0, 10, 1, "")
		y := m.AddVar(0, 10, -2, "")
		m.AddRow(EQ, 7, Term{x, 1}, Term{y, 1})
		m.AddRow(EQ, 7, Term{x, 1}, Term{y, 1})
		m.AddRow(EQ, 7, Term{x, 1}, Term{y, 1})
		checkAgainstRef(t, m, nil, nil, NewArena(), "dup-eq")
	})
	t.Run("near-singular-pair", func(t *testing.T) {
		m := NewModel()
		x := m.AddVar(-5, 5, 1, "")
		y := m.AddVar(-5, 5, 1, "")
		z := m.AddVar(-5, 5, -1, "")
		m.AddRow(LE, 3, Term{x, 1}, Term{y, 2}, Term{z, 1})
		m.AddRow(LE, 3, Term{x, 1}, Term{y, 2 + 1e-9}, Term{z, 1})
		m.AddRow(GE, -2, Term{x, 1}, Term{y, -1})
		checkAgainstRef(t, m, nil, nil, NewArena(), "near-singular")
	})
}
