// Parallel batch routing.
//
// The engine partitions the (deterministically ordered) net list into
// batches by greedy first-fit coloring of each net's dilated search
// region: two nets share a batch only when their regions are disjoint.
// Every search a batch-mode net runs is clamped to its own region, so the
// edges it reads and writes all lie strictly inside that region — nets of
// one batch can therefore route concurrently against the live usage
// arrays without locks, and the outcome is identical to routing them in
// any sequential order. Route records are committed at the batch barrier
// in net order, and a net whose connection cannot complete inside its
// region is rolled back and deferred to a sequential cleanup phase with
// the classic widened-retry semantics.
//
// Batch composition, deferral decisions and the cleanup order depend only
// on the placement and configuration — never on the worker count or
// goroutine scheduling — so RouteAll returns bit-identical Metrics for
// every Workers value.
package route

import (
	"context"
	"sync"
	"sync/atomic"
)

// batchTile is the edge length (grid cells) of the coloring bitmap tiles.
// Region overlap is tested tile-conservatively: nets that share no tile
// certainly have disjoint regions.
const batchTile = 8

// colorProbeCap bounds how many existing batches a net probes before a
// fresh batch is opened, keeping coloring cheap on heavily overlapping
// designs. The cap is a constant, so batch composition stays deterministic.
const colorProbeCap = 128

// colorBatches greedily packs nets into conflict-free batches, preserving
// relative order within each batch.
func (r *Router) colorBatches(nets []int) [][]int {
	tx := (r.nx + batchTile - 1) / batchTile
	ty := (r.ny + batchTile - 1) / batchTile
	words := (tx*ty + 63) / 64
	type batch struct {
		nets []int
		bits []uint64
	}
	var batches []batch
	for _, ni := range nets {
		rg := r.netRegion[ni]
		tx0, tx1 := rg.xlo/batchTile, rg.xhi/batchTile
		ty0, ty1 := rg.ylo/batchTile, rg.yhi/batchTile
		found := -1
		limit := len(batches)
		if limit > colorProbeCap {
			limit = colorProbeCap
		}
	probe:
		for bi := 0; bi < limit; bi++ {
			bits := batches[bi].bits
			for tyi := ty0; tyi <= ty1; tyi++ {
				base := tyi * tx
				for txi := tx0; txi <= tx1; txi++ {
					t := base + txi
					if bits[t>>6]&(1<<(t&63)) != 0 {
						continue probe
					}
				}
			}
			found = bi
			break
		}
		if found < 0 {
			batches = append(batches, batch{bits: make([]uint64, words)})
			found = len(batches) - 1
		}
		b := &batches[found]
		b.nets = append(b.nets, ni)
		for tyi := ty0; tyi <= ty1; tyi++ {
			base := tyi * tx
			for txi := tx0; txi <= tx1; txi++ {
				t := base + txi
				b.bits[t>>6] |= 1 << (t & 63)
			}
		}
	}
	out := make([][]int, len(batches))
	for i := range batches {
		out[i] = batches[i].nets
	}
	return out
}

// routeBatched routes the given nets (already in deterministic order)
// through the batch schedule with congestion weight cw. Cancellation is
// checked between batches and between cleanup nets — the points where all
// in-flight work has been committed — so an early return leaves every
// committed net fully routed and the usage arrays consistent.
func (r *Router) routeBatched(ctx context.Context, nets []int, cw float64) error {
	if len(nets) == 0 {
		return nil
	}
	r.rebuildEdgeCosts(cw)
	workers := r.workerCount()
	r.ensureSearchers(workers)

	var deferred []int
	for _, batch := range r.colorBatches(nets) {
		if err := ctx.Err(); err != nil {
			return err
		}
		w := workers
		if w > len(batch) {
			w = len(batch)
		}
		if w <= 1 {
			// Same schedule, no goroutines: within a batch the regions
			// are disjoint, so sequential and concurrent execution are
			// equivalent by construction.
			s := r.searchers[0]
			for _, ni := range batch {
				nr, def := s.routeNet(ni, r.netRegion[ni], true)
				if def {
					deferred = append(deferred, ni)
				} else {
					r.routes[ni] = nr
				}
			}
			continue
		}

		nrs := make([]*netRoute, len(batch))
		defs := make([]bool, len(batch))
		var next atomic.Int64
		var wg sync.WaitGroup
		for k := 0; k < w; k++ {
			wg.Add(1)
			go func(s *searcher) {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(batch) {
						return
					}
					ni := batch[i]
					nrs[i], defs[i] = s.routeNet(ni, r.netRegion[ni], true)
				}
			}(r.searchers[k])
		}
		wg.Wait()

		// Barrier commit, in net order.
		for i, ni := range batch {
			if defs[i] {
				deferred = append(deferred, ni)
			} else {
				r.routes[ni] = nrs[i]
			}
		}
	}

	// Sequential cleanup: nets that could not finish inside their region
	// get the unbounded retry semantics, in deterministic order.
	full := region{xlo: 0, ylo: 0, xhi: r.nx - 1, yhi: r.ny - 1}
	s := r.searchers[0]
	for _, ni := range deferred {
		if err := ctx.Err(); err != nil {
			return err
		}
		nr, _ := s.routeNet(ni, full, false)
		r.routes[ni] = nr
	}
	return nil
}
