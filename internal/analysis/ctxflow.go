package analysis

import (
	"go/ast"
	"go/types"
)

// CtxFlowAnalyzer protects the PR 5 cancellation plumbing: once a
// context enters the pipeline it must flow through every layer, so a
// deadline or Ctrl-C reaches the LP arenas and routing batch commits.
//
// Three rules:
//
//  1. A function that receives a context.Context must not feed
//     context.Background()/context.TODO() to a callee — that severs the
//     chain exactly where it matters.
//  2. A named context parameter must actually be used whenever the body
//     calls anything that accepts a context (an ignored ctx means some
//     callee is being run uncancellable).
//  3. Under internal/, context.Background()/TODO() are banned outright in
//     non-test code; the only legitimate sites are context-free compat
//     wrappers (RouteAll around RouteAllCtx, VM1Opt around VM1OptCtx),
//     which carry an `// ctx-ok: <reason>` tag.
var CtxFlowAnalyzer = &Analyzer{
	Name: "ctxflow",
	Doc:  "requires received contexts to be propagated and bans fresh Background/TODO contexts in library code",
	Tag:  "ctx-ok",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	internal := isInternalPkg(pass.Pkg.Path())
	// reported tracks Background/TODO call positions already flagged by
	// rule 1 so rule 3 does not double-report them.
	reported := make(map[ast.Node]bool)

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ctxParam := contextParam(pass, fd)
			if ctxParam == nil {
				continue
			}
			used := false
			callsCtxCallee := 0
			severed := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == ctxParam {
					used = true
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if calleeAcceptsContext(pass, call) {
					callsCtxCallee++
					for _, arg := range call.Args {
						if inner, ok := arg.(*ast.CallExpr); ok && isFreshContext(pass, inner) {
							reported[inner] = true
							severed = true
							pass.Reportf(inner.Pos(), "function receives %s but passes a fresh context to this call; thread %s instead", ctxParam.Name(), ctxParam.Name())
						}
					}
				}
				return true
			})
			// The unused-parameter rule stays quiet when a fresh-context
			// diagnostic already explains why ctx never flowed anywhere.
			if !used && !severed && callsCtxCallee > 0 {
				pass.Reportf(fd.Name.Pos(), "context parameter %s is never used, yet the body calls context-accepting functions; propagate it", ctxParam.Name())
			}
		}

		if !internal {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || reported[call] || !isFreshContext(pass, call) {
				return true
			}
			pass.Reportf(call.Pos(), "context.Background/TODO in internal/ library code: accept and thread the caller's ctx, or tag // ctx-ok: for a compat wrapper")
			return true
		})
	}
	return nil
}

// contextParam returns the function's first named, non-blank parameter of
// type context.Context, or nil.
func contextParam(pass *Pass, fd *ast.FuncDecl) *types.Var {
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[name].(*types.Var)
			if ok && isContextType(obj.Type()) {
				return obj
			}
		}
	}
	return nil
}

// calleeAcceptsContext reports whether the call's static callee signature
// has a context.Context parameter.
func calleeAcceptsContext(pass *Pass, call *ast.CallExpr) bool {
	t := pass.TypesInfo.TypeOf(call.Fun)
	sig, ok := t.(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// isFreshContext reports whether call is context.Background() or
// context.TODO().
func isFreshContext(pass *Pass, call *ast.CallExpr) bool {
	return isPkgFunc(pass.TypesInfo, call, "context", "Background") ||
		isPkgFunc(pass.TypesInfo, call, "context", "TODO")
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
