package objective

import (
	"vm1place/internal/lp"
	"vm1place/internal/tech"
)

// openM1 is the paper's OpenM1 formulation: a pair is realized when the
// two pins' x extents overlap by at least δ within γ rows (Constraints
// (11)-(14)), with the overlap surplus beyond δ rewarded at ε. The MILP
// rows are ported verbatim from the pre-refactor wmilp assembly.
type openM1 struct{}

var openM1Obj GeomObjective = openM1{}

func init() { Register(openM1Obj) }

func (openM1) Name() string    { return "openm1" }
func (openM1) Arch() tech.Arch { return tech.OpenM1 }

func (openM1) AlignGammaDefault(gammaRows int) int { return gammaRows }

func (openM1) PairAlpha(w Weights, ni int) float64 { return w.Alpha }

func (openM1) PairEval(w Weights, a, b PinGeom) (bool, int64) {
	lo := max64(a.ExtLo, b.ExtLo)
	hi := min64(a.ExtHi, b.ExtHi)
	if hi-lo >= w.DeltaDBU {
		return true, hi - lo - w.DeltaDBU
	}
	return false, 0
}

// PairFeasible: the best-case overlap across all candidates must reach δ.
func (openM1) PairFeasible(w Weights, a, b PinView) bool {
	loA, _ := minMax64(a.ExtLo)
	_, hiA := minMax64(a.ExtHi)
	loB, _ := minMax64(b.ExtLo)
	_, hiB := minMax64(b.ExtHi)
	best := min64(hiA, hiB) - max64(loA, loB)
	return best >= w.DeltaDBU
}

// EmitPair emits Constraints (11)-(14): interval variables a/b bracket
// the overlap, o is the rewarded surplus, and the binary v releases the
// row gate (14) when the pair spans more than γ rows.
func (openM1) EmitPair(e Emit, w Weights, d int, p, q PinView, tb []lp.Term) []lp.Term {
	m, mm := e.M, e.MM
	loPl, _ := minMax64(p.ExtLo)
	loQl, _ := minMax64(q.ExtLo)
	_, hiPh := minMax64(p.ExtHi)
	_, hiQh := minMax64(q.ExtHi)
	aLo := float64(min64(loPl, loQl))
	bHi := float64(max64(hiPh, hiQh))
	spanX := bHi - aLo
	go1 := spanX + float64(w.DeltaDBU) + 1 // bounds o <= b-a-δ+G(1-d)
	loPy, hiPy := minMax64(p.CenterY)
	loQy, hiQy := minMax64(q.CenterY)
	gy := float64(max64(hiPy-loQy, hiQy-loPy)) + 1
	a := m.AddVar(aLo, bHi, 0, "a")
	b := m.AddVar(aLo, bHi, 0, "b")
	o := m.AddVar(0, spanX, -w.Epsilon, "o")
	v := m.AddVar(0, 1, 0, "v")
	mm.MarkInt(v)
	var c float64
	tb = tb[:0]
	tb, c = AppendPin(tb, p, p.ExtLo, -1)
	tb = append(tb, lp.Term{Var: a, Coef: 1})
	m.AddRow(lp.GE, c, tb...)
	tb = tb[:0]
	tb, c = AppendPin(tb, q, q.ExtLo, -1)
	tb = append(tb, lp.Term{Var: a, Coef: 1})
	m.AddRow(lp.GE, c, tb...)
	tb = tb[:0]
	tb, c = AppendPin(tb, p, p.ExtHi, -1)
	tb = append(tb, lp.Term{Var: b, Coef: 1})
	m.AddRow(lp.LE, c, tb...)
	tb = tb[:0]
	tb, c = AppendPin(tb, q, q.ExtHi, -1)
	tb = append(tb, lp.Term{Var: b, Coef: 1})
	m.AddRow(lp.LE, c, tb...)
	var cpy, cqy float64
	tb = tb[:0]
	tb, cpy = AppendPin(tb, p, p.CenterY, 1)
	tb, cqy = AppendPin(tb, q, q.CenterY, -1)
	n := len(tb)
	tb = append(tb, lp.Term{Var: v, Coef: -gy})
	m.AddRow(lp.LE, e.GammaH-cpy+cqy, tb...)
	tb = tb[:n]
	tb = append(tb, lp.Term{Var: v, Coef: gy})
	m.AddRow(lp.GE, -e.GammaH-cpy+cqy, tb...)
	// (13): o <= b - a - δ + G(1-d); o <= G·d.
	m.AddRow(lp.LE, go1-float64(w.DeltaDBU),
		lp.Term{Var: o, Coef: 1}, lp.Term{Var: b, Coef: -1},
		lp.Term{Var: a, Coef: 1}, lp.Term{Var: d, Coef: go1})
	m.AddRow(lp.LE, 0, lp.Term{Var: o, Coef: 1}, lp.Term{Var: d, Coef: -spanX})
	// (14): d + v <= 1.
	m.AddRow(lp.LE, 1, lp.Term{Var: d, Coef: 1}, lp.Term{Var: v, Coef: 1})
	return tb
}

func (openM1) Value(w Weights, weighted float64, align int, over int64, reward float64) float64 {
	return uniformValue(w, weighted, align, over)
}
