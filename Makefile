# Developer targets. The tier-1 gate is `make check`; `make bench-json`
# regenerates BENCH_core.json (minutes of wall time).

GO ?= go

.PHONY: check vet lint test race bench-smoke bench-proxy bench-objective bench-json bench-core bench-route bench-scale bench-scale-smoke

check: vet lint test race bench-smoke

vet:
	$(GO) vet ./...

# vm1lint is the static-invariant suite (internal/analysis): maporder,
# panicguard, ctxflow, wrapcheck and clockrand. It subsumes the old
# grep-based panic-guard with compiler-grade checks over the typed AST;
# see DESIGN.md "Static invariants" for what each analyzer enforces and
# the `// <tag>-ok: reason` suppression convention.
lint:
	$(GO) run ./cmd/vm1lint ./...

test:
	$(GO) build ./... && $(GO) test ./...

# The race gate covers the packages that own goroutines: parallel window
# solves sharing an objective tracker and per-worker LP arenas, the
# batched parallel router sharing live usage arrays, and the pipeline /
# parallel-sweep layers (flow, expt) that fan work out over them.
race:
	$(GO) test -race -timeout 30m ./internal/core/... ./internal/lp/... ./internal/milp/... ./internal/route/... ./internal/flow/... ./internal/expt/... ./internal/objective/...

# One iteration of each substrate microbenchmark — a fast sanity pass that
# the benchmarks still build and run, not a measurement.
bench-smoke: bench-proxy bench-objective bench-scale-smoke
	$(GO) test -run '^$$' -bench 'DistOptPass|LPSolve|CalculateObj' -benchtime 1x -timeout 20m .

# One rescan per registered geometry objective (BenchmarkObjectiveEval
# sub-benches). The measured series lands in BENCH_core.json's
# ObjectiveEval/<name> entries via bench-json; this target is the fast
# standalone pass.
bench-objective:
	$(GO) test -run '^$$' -bench 'ObjectiveEval' -benchtime 1x -timeout 10m .

# CI-sized scale sweep: one tiny design through the full flow at shard
# counts 1 and 2, checking the sharded engine completes, samples a peak
# heap, and routes to the same QoR (TestScaleSweepSmoke, ~5 s).
bench-scale-smoke:
	$(GO) test -run TestScaleSweepSmoke -timeout 10m ./internal/expt/

# The congestion-proxy evaluation hot path (incremental update + full
# window-grid scoring). Measured, not smoked: the guided selection design
# budget is <= ~50 us per family evaluation with a zero-alloc steady state
# (TestSteadyStateZeroAlloc in internal/proxy pins the alloc half).
bench-proxy:
	$(GO) test -run '^$$' -bench 'ProxyEval' -benchtime 100x -timeout 10m .

bench-json:
	BENCH_JSON=1 $(GO) test -run TestEmitBenchCoreJSON -timeout 30m -v .

# Regenerates BENCH_core.json (alias of bench-json, named for symmetry with
# bench-route): DistOptPass, LPSolve and the other core microbenchmarks,
# including the simplex-kernel counters (pivots/solve, refactors/solve).
bench-core: bench-json

# Regenerates BENCH_route.json: the sequential/parallel RouteAll pair plus
# the speedup over the seed router, with a Metrics-equality check.
bench-route:
	BENCH_JSON=1 $(GO) test -run TestEmitBenchRouteJSON -timeout 30m -v .

# Regenerates BENCH_scale.json: shard bitwise-invariance gate, then full
# flows at jpeg scales 0.1/0.5/2.0 x shard counts 1/2/4 recording wall,
# peak heap and routed QoR. The 2.0 points run a 109k-instance flow each;
# expect the better part of an hour on one core.
bench-scale:
	BENCH_JSON=1 $(GO) test -run TestEmitBenchScaleJSON -timeout 180m -v .
