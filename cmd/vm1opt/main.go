// Command vm1opt runs the full vertical-M1-aware detailed placement flow
// on one design: generate (or load) → place → route → VM1Opt → reroute,
// printing the before/after metric row of Table 2.
//
// The flow runs under a signal-aware context: Ctrl-C (SIGINT/SIGTERM)
// cancels it gracefully — the optimizer stops at the next window-family
// boundary, the router at the next batch commit — and the partial metrics
// accumulated so far are printed before exiting nonzero.
//
// Usage (synthetic design):
//
//	vm1opt -design aes -arch closedm1 -alpha 1200
//	vm1opt -n 5000 -arch openm1 -seq "10:3:1,20:4:0"
//
// Usage (existing LEF/DEF):
//
//	vm1opt -lef lib.lef -def placed.def -arch closedm1 -out opt.def
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"

	"vm1place/internal/core"
	"vm1place/internal/expt"
	"vm1place/internal/layout"
	"vm1place/internal/lefdef"
	"vm1place/internal/objective"
	"vm1place/internal/proxy"
	"vm1place/internal/route"
	"vm1place/internal/sta"
	"vm1place/internal/tech"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vm1opt:", err)
		os.Exit(1)
	}
}

func run() error {
	design := flag.String("design", "aes", "paper design name: m0|aes|jpeg|vga")
	n := flag.Int("n", 0, "override instance count (0: paper count)")
	scale := flag.Float64("scale", 1.0, "scale factor on the paper instance count")
	archStr := flag.String("arch", "closedm1", "cell architecture: closedm1|openm1")
	objStr := flag.String("objective", "",
		"geometry objective: "+strings.Join(objective.Names(), "|")+
			" (default: the paper objective for -arch; overrides -arch)")
	marginDBU := flag.Int64("margin", 0,
		"netsep separation margin in DBU (0: the objective's 4·δ default)")
	slackWeight := flag.Float64("slack-weight", 0,
		"slackalpha criticality weight: critical nets get up to (1+w)× α (0: uniform)")
	util := flag.Float64("util", 0.75, "placement utilization")
	alpha := flag.Float64("alpha", -1, "alignment weight (negative: architecture default)")
	seqStr := flag.String("seq", "", "U sequence 'bwUm:lx:ly,...' (default 20:4:1)")
	workers := flag.Int("workers", 8, "parallel window solvers")
	solverWorkers := flag.Int("solver-workers", 0,
		"branch-and-bound workers inside each window MILP (0: sequential)")
	shards := flag.Int("shards", 0,
		"spatial window-grid shards run concurrently (0/1: single shard; any count gives identical placements)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this path")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this path on exit")
	guided := flag.Bool("guided", false,
		"proxy-guided window selection: spend MILP budget hottest-family-first")
	guidedCold := flag.Float64("guided-cold", 0,
		"skip families scoring below this fraction of the hottest (0: default 0.01)")
	guidedShrink := flag.Float64("guided-shrink", 0,
		"budget floor multiplier for the coldest windows (0: default 0.25)")
	guidedBoost := flag.Float64("guided-boost", 0,
		"budget cap multiplier for the hottest windows (0: default 1.5)")
	lefPath := flag.String("lef", "", "read library LEF (with -def)")
	defPath := flag.String("def", "", "read placed DEF (with -lef)")
	outPath := flag.String("out", "", "write optimized DEF to this path")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		// Written on the way out (after the deferred StopCPUProfile),
		// capturing the flow's end-state live heap.
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "vm1opt: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "vm1opt: memprofile:", err)
			}
		}()
	}

	arch := tech.ClosedM1
	if *archStr == "openm1" {
		arch = tech.OpenM1
	}
	if *objStr != "" {
		// Validate here so a typo is a clean error, not a panic deep in the
		// flow; the objective dictates the pin architecture it scores.
		o, err := objective.Lookup(*objStr)
		if err != nil {
			return fmt.Errorf("-objective: %w", err)
		}
		arch = o.Arch()
	}

	var seq core.Sequence
	if *seqStr != "" {
		var err error
		seq, err = parseSeq(*seqStr)
		if err != nil {
			return err
		}
	}

	cfg := expt.FlowConfig{
		Arch:             arch,
		Objective:        *objStr,
		MarginDBU:        *marginDBU,
		SlackAlphaWeight: *slackWeight,
		Util:             *util,
		Sequence:         seq,
		Workers:          *workers,
		SolverWorkers:    *solverWorkers,
		Shards:           *shards,
		Guided:           *guided,
		GuidedColdFrac:   *guidedCold,
		GuidedShrink:     *guidedShrink,
		GuidedBoostCap:   *guidedBoost,
	}
	if *alpha >= 0 {
		cfg.Alpha = *alpha
		cfg.AlphaSet = true
	}

	if *lefPath != "" || *defPath != "" {
		if *lefPath == "" || *defPath == "" {
			return fmt.Errorf("-lef and -def must be given together")
		}
		return runOnDEF(ctx, *lefPath, *defPath, *outPath, cfg)
	}

	spec, err := specFor(*design, *n, *scale)
	if err != nil {
		return err
	}
	r, err := expt.RunFlowCtx(ctx, spec, cfg)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			// Graceful Ctrl-C: report what completed before the signal.
			fmt.Fprintln(os.Stderr, "vm1opt: interrupted; partial metrics follow")
			expt.WriteTable2Row(os.Stdout, r)
		}
		return err
	}
	expt.WriteTable2Row(os.Stdout, r)
	return nil
}

func specFor(name string, n int, scale float64) (expt.DesignSpec, error) {
	for _, d := range expt.PaperDesigns {
		if d.Name == name {
			if n > 0 {
				d.NumInsts = n
			} else if scale > 0 && scale != 1.0 {
				d.NumInsts = int(float64(d.NumInsts) * scale)
				if d.NumInsts < expt.MinScaledInsts {
					d.NumInsts = expt.MinScaledInsts
				}
			}
			return d, nil
		}
	}
	return expt.DesignSpec{}, fmt.Errorf("unknown design %q", name)
}

// runOnDEF optimizes an externally supplied placement.
func runOnDEF(ctx context.Context, lefPath, defPath, outPath string, cfg expt.FlowConfig) error {
	t := tech.Default()
	lf, err := os.Open(lefPath)
	if err != nil {
		return err
	}
	lib, err := lefdef.ParseLEF(lf, t)
	lf.Close()
	if err != nil {
		return err
	}
	df, err := os.Open(defPath)
	if err != nil {
		return err
	}
	p, err := lefdef.ParseDEF(df, t, lib)
	df.Close()
	if err != nil {
		return err
	}

	prm := core.DefaultParams(t, cfg.Arch)
	var obj objective.GeomObjective
	if cfg.Objective != "" {
		o, err := objective.Lookup(cfg.Objective)
		if err != nil {
			return fmt.Errorf("-objective: %w", err)
		}
		obj = o
		prm.Objective = o
		prm.MarginDBU = cfg.MarginDBU
		if cfg.SlackAlphaWeight > 0 {
			staCfg := sta.DefaultConfig()
			prm.NetAlpha = sta.CriticalityBetas(
				sta.NetSlacks(p, staCfg, nil), staCfg.ClockPeriodNs, cfg.SlackAlphaWeight)
		}
	}
	if cfg.AlphaSet {
		prm.Alpha = cfg.Alpha
	}
	if cfg.Workers > 0 {
		prm.Workers = cfg.Workers
	}
	if cfg.Shards > 1 {
		prm.Shards = cfg.Shards
	}
	if cfg.Guided {
		// DEF path has no init-route feedback stage; the estimator runs
		// uncalibrated (neutral per-region multipliers), which still ranks
		// families by predicted congestion.
		prm.Guided = true
		pcfg := proxy.DefaultConfig(t, cfg.Arch)
		if obj != nil {
			pcfg = proxy.DefaultConfigForObjective(t, obj)
		}
		prm.Proxy = proxy.New(p, pcfg)
		prm.GuidedColdFrac = cfg.GuidedColdFrac
		prm.GuidedShrink = cfg.GuidedShrink
		prm.GuidedBoostCap = cfg.GuidedBoostCap
	}
	seq := cfg.Sequence
	if seq == nil {
		seq = expt.DefaultSequence()
	}

	before, err := measure(ctx, p, cfg.Arch)
	if err != nil {
		return err
	}
	res, optErr := core.VM1OptCtx(ctx, p, prm, seq)
	// After an interrupt the flow ctx is dead, but the placement is legal;
	// measure the partial result under a fresh context so the user still
	// sees what the truncated optimization achieved.
	afterCtx := ctx
	if optErr != nil {
		afterCtx = context.Background()
	}
	after, err := measure(afterCtx, p, cfg.Arch)
	if err != nil {
		return err
	}
	fmt.Printf("%s: dM1 %d -> %d, RWL %.1f -> %.1f um, HPWL %.1f -> %.1f um, WNS %.3f -> %.3f, opt %.1fs\n",
		p.Design.Name, before.dm1, after.dm1,
		float64(before.rwl)/1000, float64(after.rwl)/1000,
		float64(before.hpwl)/1000, float64(after.hpwl)/1000,
		before.wns, after.wns, res.Duration.Seconds())
	if optErr != nil {
		// The interrupted placement is still legal; the numbers above
		// reflect the partial optimization.
		return optErr
	}

	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := lefdef.WriteDEF(f, p); err != nil {
			return err
		}
		fmt.Println("wrote", outPath)
	}
	return nil
}

type quickMetrics struct {
	dm1  int
	rwl  int64
	hpwl int64
	wns  float64
}

func measure(ctx context.Context, p *layout.Placement, arch tech.Arch) (quickMetrics, error) {
	r := route.New(p, route.DefaultConfig(p.Tech, arch))
	m, err := r.RouteAllCtx(ctx)
	if err != nil {
		return quickMetrics{}, err
	}
	rep := sta.Analyze(p, sta.DefaultConfig(), nil)
	return quickMetrics{dm1: m.DM1, rwl: m.RWL, hpwl: p.TotalHPWL(), wns: rep.WNS}, nil
}

// parseSeq parses "20:4:1,10:3:0" into a core.Sequence.
func parseSeq(s string) (core.Sequence, error) {
	var out core.Sequence
	for _, part := range strings.Split(s, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("bad sequence element %q (want bwUm:lx:ly)", part)
		}
		bw, err1 := strconv.ParseFloat(fields[0], 64)
		lx, err2 := strconv.Atoi(fields[1])
		ly, err3 := strconv.Atoi(fields[2])
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("bad sequence element %q", part)
		}
		out = append(out, core.ParamSet{
			BW: expt.UmToDBU(bw), BH: expt.UmToDBU(bw), LX: lx, LY: ly,
		})
	}
	return out, nil
}
