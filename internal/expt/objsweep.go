package expt

import (
	"fmt"
	"io"

	"vm1place/internal/tech"
)

// This file is the objective sweep (exptables -objsweep): the three
// workloads shipped on top of the pluggable geometry-objective interface
// (internal/objective), each run end-to-end through the same four-stage
// flow as the paper experiments.
//
//   - netsep: net-separation/margin maximization for PCB-style inputs,
//     swept over the separation margin;
//   - slackalpha: timing-driven per-net α weighting, swept over the
//     criticality weight (0 = the uniform ClosedM1 baseline);
//   - tracks: the paper ClosedM1 objective swept over cell architectures
//     with different track counts (6T / 7.5T / 9T row heights), showing
//     how dM1 gains vary with track count.

// TrackVariant names one row-height variant of the technology.
type TrackVariant struct {
	Label string
	Tech  func() *tech.Tech
}

// TrackVariants are the swept cell architectures: the default 7.5-track
// row plus the compressed 6-track and relaxed 9-track variants
// (internal/cells rescales the pin track template to each row height).
func TrackVariants() []TrackVariant {
	return []TrackVariant{
		{Label: "6T", Tech: tech.Default6Track},
		{Label: "7.5T", Tech: tech.Default},
		{Label: "9T", Tech: tech.Default9Track},
	}
}

// ObjSweepPoint is one flow point of the objective sweep.
type ObjSweepPoint struct {
	Workload  string // "netsep" | "slackalpha" | "tracks"
	Label     string // point label within the workload's sweep axis
	Objective string // registered objective name the flow ran
	Res       FlowResult
}

// objSweepCase is one pre-expanded sweep point.
type objSweepCase struct {
	workload, label string
	cfg             FlowConfig
}

// objSweepCases expands the three workload sweeps. base carries the
// shared knobs (workers, iteration caps, determinism overrides).
func objSweepCases(base FlowConfig) []objSweepCase {
	var cases []objSweepCase
	// (a) netsep over separation margins (DBU; 0 = the objective's 4·δ
	// default of 200).
	for _, margin := range []int64{100, 200, 400} {
		cfg := base
		cfg.Objective = "netsep"
		cfg.MarginDBU = margin
		cases = append(cases, objSweepCase{
			workload: "netsep",
			label:    fmt.Sprintf("margin=%d", margin),
			cfg:      cfg,
		})
	}
	// (b) slackalpha over criticality weights. Weight 0 keeps uniform α —
	// the ClosedM1 baseline the weighted runs are read against.
	for _, weight := range []float64{0, 1, 4} {
		cfg := base
		if weight > 0 {
			cfg.Objective = "slackalpha"
			cfg.SlackAlphaWeight = weight
		} else {
			cfg.Objective = "closedm1"
		}
		cases = append(cases, objSweepCase{
			workload: "slackalpha",
			label:    fmt.Sprintf("weight=%g", weight),
			cfg:      cfg,
		})
	}
	// (c) track-count sweep of the ClosedM1 objective.
	for _, tv := range TrackVariants() {
		cfg := base
		cfg.Objective = "closedm1"
		cfg.Tech = tv.Tech()
		cases = append(cases, objSweepCase{
			workload: "tracks",
			label:    tv.Label,
			cfg:      cfg,
		})
	}
	return cases
}

// RunObjSweep runs the three objective workloads on the m0 design and
// returns one point per sweep sample, in deterministic case order.
func RunObjSweep(cfg SuiteConfig) ([]ObjSweepPoint, error) {
	spec, err := cfg.design("m0")
	if err != nil {
		return nil, err
	}
	base := FlowConfig{MaxOuterIters: 2, Workers: cfg.Workers}
	cases := objSweepCases(base)
	out := make([]ObjSweepPoint, len(cases))
	err = cfg.forEachPoint(len(cases), func(i int) error {
		c := cases[i]
		res, err := RunFlow(spec, c.cfg)
		if err != nil {
			return fmt.Errorf("expt: objsweep %s/%s: %w", c.workload, c.label, err)
		}
		out[i] = ObjSweepPoint{
			Workload:  c.workload,
			Label:     c.label,
			Objective: c.cfg.Objective,
			Res:       res,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// WriteObjSweep prints the objective sweep series, one section per
// workload.
func WriteObjSweep(w io.Writer, pts []ObjSweepPoint) {
	fmt.Fprintln(w, "# Objective sweep: pluggable geometry workloads (m0)")
	last := ""
	for _, p := range pts {
		if p.Workload != last {
			last = p.Workload
			fmt.Fprintf(w, "## workload %s\n", p.Workload)
			fmt.Fprintln(w, "point            objective   insts  dm1_init  dm1_fin  hpwl_um_init  hpwl_um_fin  rwl_um_init  rwl_um_fin  obj_fin")
		}
		fmt.Fprintf(w, "%-16s %-10s %6d  %8d  %7d  %12.1f  %11.1f  %11.1f  %10.1f  %10.1f\n",
			p.Label, p.Objective, p.Res.NumInsts,
			p.Res.Init.DM1, p.Res.Final.DM1,
			um(p.Res.Init.HPWL), um(p.Res.Final.HPWL),
			um(p.Res.Init.RWL), um(p.Res.Final.RWL),
			p.Res.OptFinal.Value)
	}
}
