// Package mofix (flow variant) holds the same order-dependent loop as
// the core fixture, but vm1place/internal/flow is not a deterministic
// kernel package, so maporder must stay silent here.
package mofix

func keys(m map[int]string) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
