// Quickstart: the smallest end-to-end vm1place flow.
//
// Generates a ~1000-cell ClosedM1 design, places it, routes it, runs the
// vertical-M1-aware detailed placement optimization (the paper's
// Algorithm 1 with the preferred (20µm, lx=4, ly=1) parameter set), then
// reroutes and reports the improvement.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"vm1place/internal/cells"
	"vm1place/internal/core"
	"vm1place/internal/expt"
	"vm1place/internal/layout"
	"vm1place/internal/netlist"
	"vm1place/internal/place"
	"vm1place/internal/route"
	"vm1place/internal/tech"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Technology and ClosedM1 standard-cell library.
	t := tech.Default()
	lib, err := cells.NewLibrary(t, tech.ClosedM1)
	if err != nil {
		return err
	}

	// 2. Synthetic gate-level netlist (stands in for synthesized RTL).
	design, err := netlist.Generate(lib, netlist.DefaultGenConfig("quickstart", 1000, 7))
	if err != nil {
		return err
	}
	stats := design.Stats()
	fmt.Printf("design: %d instances, %d nets, avg fanout %.2f\n",
		stats.NumInsts, stats.NumNets, stats.AvgFanout)

	// 3. Floorplan at 75%% utilization, global placement, legalization.
	p, err := layout.NewFloorplan(t, design, 0.75)
	if err != nil {
		return err
	}
	if err := place.Global(p, place.Options{}); err != nil {
		return err
	}

	// 4. Route the initial placement and record baseline metrics.
	router := route.New(p, route.DefaultConfig(t, tech.ClosedM1))
	before := router.RouteAll()
	fmt.Printf("initial:   dM1 %4d   RWL %8.1f um   via12 %5d\n",
		before.DM1, float64(before.RWL)/1000, before.Via12)

	// 5. Vertical-M1-aware detailed placement (the paper's contribution).
	prm := core.DefaultParams(t, tech.ClosedM1) // α = 1200
	res := core.VM1Opt(p, prm, expt.DefaultSequence())
	fmt.Printf("optimizer: alignments %d -> %d in %s\n",
		res.Initial.Alignments, res.Final.Alignments, res.Duration.Round(1e9))

	// 6. Reroute and compare.
	after := router.RouteAll()
	fmt.Printf("optimized: dM1 %4d   RWL %8.1f um   via12 %5d\n",
		after.DM1, float64(after.RWL)/1000, after.Via12)
	fmt.Printf("deltas:    dM1 %+.1f%%   RWL %+.2f%%   via12 %+.2f%%\n",
		pct(before.DM1, after.DM1), pct64(before.RWL, after.RWL), pct(before.Via12, after.Via12))
	return nil
}

func pct(a, b int) float64     { return float64(b-a) / float64(a) * 100 }
func pct64(a, b int64) float64 { return float64(b-a) / float64(a) * 100 }
