package tech

import (
	"testing"
	"testing/quick"
)

func TestDefaultValidates(t *testing.T) {
	tc := Default()
	if err := tc.Validate(); err != nil {
		t.Fatalf("default tech invalid: %v", err)
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	mods := []func(*Tech){
		func(tc *Tech) { tc.SiteWidth = 0 },
		func(tc *Tech) { tc.RowHeight = -1 },
		func(tc *Tech) { tc.DBUPerMicron = 999 }, // not multiple of site width
		func(tc *Tech) { tc.RowHeight = 300 },    // not divisor of DBUPerMicron
		func(tc *Tech) { tc.M1TrackPitch = 50 },
		func(tc *Tech) { tc.Gamma = 0 },
		func(tc *Tech) { tc.Delta = -5 },
		func(tc *Tech) { tc.EdgeCapacity = 0 },
	}
	for i, mod := range mods {
		tc := Default()
		mod(tc)
		if err := tc.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestUnitConversions(t *testing.T) {
	tc := Default()
	if tc.SitesPerU() != 10 {
		t.Errorf("SitesPerU = %d, want 10", tc.SitesPerU())
	}
	if tc.RowsPerU() != 4 {
		t.Errorf("RowsPerU = %d, want 4", tc.RowsPerU())
	}
	if tc.UToDBU(20) != 20000 {
		t.Errorf("UToDBU(20) = %d", tc.UToDBU(20))
	}
	if tc.DBUToU(5000) != 5.0 {
		t.Errorf("DBUToU(5000) = %f", tc.DBUToU(5000))
	}
}

func TestSiteRowMapping(t *testing.T) {
	tc := Default()
	if tc.SiteX(3) != 300 || tc.RowY(2) != 500 {
		t.Error("SiteX/RowY broken")
	}
	if tc.XToSite(0) != 0 || tc.XToSite(99) != 0 || tc.XToSite(100) != 1 {
		t.Error("XToSite floor semantics broken")
	}
	if tc.YToRow(249) != 0 || tc.YToRow(250) != 1 {
		t.Error("YToRow floor semantics broken")
	}
	if tc.XToSite(-1) != -1 || tc.XToSite(-100) != -1 || tc.XToSite(-101) != -2 {
		t.Error("XToSite negative floor broken")
	}
	if tc.YToRow(-1) != -1 || tc.YToRow(-250) != -1 || tc.YToRow(-251) != -2 {
		t.Error("YToRow negative floor broken")
	}
}

// Property: SiteX and XToSite round-trip for any site index, and XToSite is
// the floor inverse for any coordinate.
func TestSiteRoundTripQuick(t *testing.T) {
	tc := Default()
	f := func(sx int16, off uint8) bool {
		s := int(sx)
		x := tc.SiteX(s) + int64(off)%tc.SiteWidth
		return tc.XToSite(x) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(ry int16, off uint8) bool {
		r := int(ry)
		y := tc.RowY(r) + int64(off)%tc.RowHeight
		return tc.YToRow(y) == r
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestLayerProperties(t *testing.T) {
	if M1.Direction() != Vertical || M3.Direction() != Vertical {
		t.Error("odd layers must be vertical")
	}
	if M0.Direction() != Horizontal || M2.Direction() != Horizontal || M4.Direction() != Horizontal {
		t.Error("even layers must be horizontal")
	}
	if M1.String() != "M1" || M0.String() != "M0" {
		t.Error("layer names broken")
	}
	if Horizontal.String() != "H" || Vertical.String() != "V" {
		t.Error("dir names broken")
	}
}

func TestArchString(t *testing.T) {
	if Conventional.String() != "Conventional" ||
		ClosedM1.String() != "ClosedM1" ||
		OpenM1.String() != "OpenM1" {
		t.Error("arch names broken")
	}
	if Arch(42).String() != "Arch(42)" {
		t.Error("unknown arch name broken")
	}
}
