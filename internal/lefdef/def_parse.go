package lefdef

import (
	"fmt"
	"io"
	"strconv"

	"vm1place/internal/cells"
	"vm1place/internal/geom"
	"vm1place/internal/layout"
	"vm1place/internal/netlist"
	"vm1place/internal/tech"
)

// ParseDEF reads a placed design in the subset written by WriteDEF, binding
// instances to masters from lib. It reconstructs the netlist (components,
// pins, nets) and the placement (locations, orientations, die, ports).
func ParseDEF(r io.Reader, t *tech.Tech, lib *cells.Library) (*layout.Placement, error) {
	tk := newTokenizer(r)
	d := &netlist.Design{Lib: lib}
	var dieW, dieH int64
	numRows := 0

	instIdx := map[string]int{}
	netIdx := map[string]int{}
	type portLoc struct {
		idx  int
		x, y int64
	}
	var portLocs []portLoc

	type placedInst struct {
		x, y int64
		flip bool
	}
	var placed []placedInst

	getNet := func(name string) int {
		if ni, ok := netIdx[name]; ok {
			return ni
		}
		ni := len(d.Nets)
		d.Nets = append(d.Nets, netlist.Net{Name: name, Driver: netlist.Conn{Inst: -1}})
		netIdx[name] = ni
		return ni
	}

	for {
		tok := tk.next()
		if tok == "" {
			break
		}
		switch tok {
		case "DESIGN":
			rest := tk.until()
			if len(rest) > 0 {
				d.Name = rest[0]
			}
		case "DIEAREA":
			rest := tk.until() // ( 0 0 ) ( w h )
			var nums []int64
			for _, r := range rest {
				if v, err := strconv.ParseInt(r, 10, 64); err == nil {
					nums = append(nums, v)
				}
			}
			if len(nums) >= 4 {
				dieW, dieH = nums[2], nums[3]
			}
		case "ROW":
			tk.until()
			numRows++
		case "COMPONENTS":
			tk.until()
			for {
				lead := tk.next()
				if lead == "END" {
					tk.peekConsume("COMPONENTS")
					break
				}
				if lead != "-" {
					return nil, fmt.Errorf("lefdef: expected '-' in COMPONENTS, got %q", lead)
				}
				rest := tk.until()
				if len(rest) < 2 {
					return nil, fmt.Errorf("lefdef: short component line %v", rest)
				}
				name, masterName := rest[0], rest[1]
				master := lib.Master(masterName)
				if master == nil {
					return nil, fmt.Errorf("lefdef: unknown master %q", masterName)
				}
				inst := netlist.Instance{
					Name:    name,
					Master:  master,
					PinNets: make([]int, len(master.Pins)),
				}
				for k := range inst.PinNets {
					inst.PinNets[k] = -1
				}
				var pl placedInst
				for k := 0; k < len(rest); k++ {
					if rest[k] == "PLACED" && k+4 < len(rest) {
						x, err1 := strconv.ParseInt(rest[k+2], 10, 64)
						y, err2 := strconv.ParseInt(rest[k+3], 10, 64)
						if err1 != nil || err2 != nil {
							return nil, fmt.Errorf("lefdef: bad PLACED coords in %v", rest)
						}
						pl.x, pl.y = x, y
						if k+5 < len(rest) && rest[k+5] == "FN" {
							pl.flip = true
						}
					}
				}
				instIdx[name] = len(d.Insts)
				d.Insts = append(d.Insts, inst)
				placed = append(placed, pl)
			}
		case "PINS":
			tk.until()
			for {
				lead := tk.next()
				if lead == "END" {
					tk.peekConsume("PINS")
					break
				}
				if lead != "-" {
					return nil, fmt.Errorf("lefdef: expected '-' in PINS, got %q", lead)
				}
				rest := tk.until()
				if len(rest) < 1 {
					continue
				}
				port := netlist.Port{Name: rest[0]}
				var px, py int64
				for k := 0; k < len(rest); k++ {
					switch rest[k] {
					case "NET":
						if k+1 < len(rest) {
							port.Net = getNet(rest[k+1])
						}
					case "DIRECTION":
						if k+1 < len(rest) {
							port.Input = rest[k+1] == "INPUT"
						}
					case "FIXED":
						if k+4 < len(rest) {
							px, _ = strconv.ParseInt(rest[k+2], 10, 64)
							py, _ = strconv.ParseInt(rest[k+3], 10, 64)
						}
					}
				}
				portLocs = append(portLocs, portLoc{idx: len(d.Ports), x: px, y: py})
				d.Ports = append(d.Ports, port)
			}
		case "NETS":
			tk.until()
			for {
				lead := tk.next()
				if lead == "END" {
					tk.peekConsume("NETS")
					break
				}
				if lead != "-" {
					return nil, fmt.Errorf("lefdef: expected '-' in NETS, got %q", lead)
				}
				rest := tk.until()
				if len(rest) < 1 {
					continue
				}
				ni := getNet(rest[0])
				net := &d.Nets[ni]
				for k := 1; k < len(rest); k++ {
					if rest[k] != "(" {
						if rest[k] == "USE" && k+1 < len(rest) && rest[k+1] == "CLOCK" {
							net.IsClock = true
						}
						continue
					}
					if k+2 >= len(rest) {
						return nil, fmt.Errorf("lefdef: truncated net term in %v", rest)
					}
					a, b := rest[k+1], rest[k+2]
					k += 3 // skip "( a b )"
					if a == "PIN" {
						continue // port membership is recorded in PINS
					}
					ii, ok := instIdx[a]
					if !ok {
						return nil, fmt.Errorf("lefdef: net %s references unknown component %q", net.Name, a)
					}
					master := d.Insts[ii].Master
					pinIdx := -1
					for piX := range master.Pins {
						if master.Pins[piX].Name == b {
							pinIdx = piX
							break
						}
					}
					if pinIdx < 0 {
						return nil, fmt.Errorf("lefdef: unknown pin %s/%s", master.Name, b)
					}
					conn := netlist.Conn{Inst: ii, Pin: pinIdx}
					if master.Pins[pinIdx].Dir == cells.Output {
						net.Driver = conn
					} else {
						net.Sinks = append(net.Sinks, conn)
					}
					d.Insts[ii].PinNets[pinIdx] = ni
				}
			}
		}
	}

	if dieW <= 0 || dieH <= 0 || numRows == 0 {
		return nil, fmt.Errorf("lefdef: DEF missing DIEAREA or ROW statements")
	}

	p := &layout.Placement{
		Tech:     t,
		Design:   d,
		NumSites: int(dieW / t.SiteWidth),
		NumRows:  numRows,
		SiteX:    make([]int, len(d.Insts)),
		Row:      make([]int, len(d.Insts)),
		Flip:     make([]bool, len(d.Insts)),
		PortXY:   make([]geom.Point, len(d.Ports)),
	}
	for i, pl := range placed {
		p.SiteX[i] = t.XToSite(pl.x)
		p.Row[i] = t.YToRow(pl.y)
		p.Flip[i] = pl.flip
	}
	for _, pl := range portLocs {
		p.PortXY[pl.idx] = geom.Point{X: pl.x, Y: pl.y}
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("lefdef: parsed design invalid: %w", err)
	}
	return p, nil
}

// peekConsume consumes the next token when it equals want.
func (tk *tokenizer) peekConsume(want string) {
	if tk.peek() == want {
		tk.next()
	}
}
