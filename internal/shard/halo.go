package shard

// Halo accounting. A shard's halo is everything it reads but must not
// write: cells straddling window boundaries (immovable for the pass)
// and net terminals outside its stripe. Between two family barriers the
// halo is stable — moves commit only at barriers — so shards need no
// locking, only the deterministic merge the optimizer performs at each
// barrier. These helpers quantify the exchange so benches and tests can
// assert the boundary stays thin relative to shard interiors.

// Boundaries returns the interior cut columns of the partition (the
// window-grid x-indices where one stripe ends and the next begins),
// i.e. cuts[1:K]. The slice is freshly allocated.
func (p Partition) Boundaries() []int {
	b := make([]int, 0, p.K()-1)
	for s := 1; s < p.K(); s++ {
		b = append(b, p.cuts[s])
	}
	return b
}

// HaloCounts reports, per stripe, how many windows touch a stripe
// boundary (own a column adjacent to an interior cut). Those windows'
// straddler sets form the halo exchanged at family barriers; interior
// windows never observe another shard at all.
func (p Partition) HaloCounts() []int {
	h := make([]int, p.K())
	for s := 0; s < p.K(); s++ {
		lo, hi := p.Stripe(s)
		cols := 0
		if lo > 0 {
			cols++ // leftmost column borders stripe s-1
		}
		if hi < p.nwx {
			cols++ // rightmost column borders stripe s+1
		}
		if w := hi - lo; cols > w {
			cols = w
		}
		h[s] = cols * p.nwy
	}
	return h
}

// HaloFrac returns the fraction of all windows that sit on a stripe
// boundary — the share of the grid whose straddler halos are exchanged
// at barriers. 0 for a single stripe.
func (p Partition) HaloFrac() float64 {
	tot := 0
	for _, h := range p.HaloCounts() {
		tot += h
	}
	return float64(tot) / float64(p.NumWindows())
}
