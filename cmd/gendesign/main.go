// Command gendesign generates a synthetic benchmark design (the stand-in
// for the paper's synthesized OpenCores/Cortex-M0 testcases), places it,
// and writes LEF/DEF.
//
// Usage:
//
//	gendesign -name aes -n 12345 -arch closedm1 -util 0.75 \
//	          -lef out.lef -def out.def
package main

import (
	"flag"
	"fmt"
	"os"

	"vm1place/internal/cells"
	"vm1place/internal/layout"
	"vm1place/internal/lefdef"
	"vm1place/internal/netlist"
	"vm1place/internal/place"
	"vm1place/internal/tech"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gendesign:", err)
		os.Exit(1)
	}
}

func run() error {
	name := flag.String("name", "design", "design name")
	n := flag.Int("n", 5000, "instance count")
	seed := flag.Int64("seed", 1, "generator seed")
	archStr := flag.String("arch", "closedm1", "cell architecture: closedm1|openm1|conventional")
	util := flag.Float64("util", 0.75, "placement utilization")
	lefPath := flag.String("lef", "", "write library LEF to this path")
	defPath := flag.String("def", "", "write placed DEF to this path")
	flag.Parse()

	arch, err := parseArch(*archStr)
	if err != nil {
		return err
	}
	t := tech.Default()
	lib, err := cells.NewLibrary(t, arch)
	if err != nil {
		return err
	}
	d, err := netlist.Generate(lib, netlist.DefaultGenConfig(*name, *n, *seed))
	if err != nil {
		return err
	}
	p, err := layout.NewFloorplan(t, d, *util)
	if err != nil {
		return err
	}
	if err := place.Global(p, place.Options{}); err != nil {
		return err
	}
	st := d.Stats()
	fmt.Printf("%s: %d insts (%d FFs), %d nets, %d ports, die %d sites x %d rows, HPWL %.1f um\n",
		d.Name, st.NumInsts, st.NumFFs, st.NumNets, st.NumPorts,
		p.NumSites, p.NumRows, float64(p.TotalHPWL())/1000)

	if *lefPath != "" {
		if err := writeTo(*lefPath, func(f *os.File) error { return lefdef.WriteLEF(f, lib) }); err != nil {
			return err
		}
		fmt.Println("wrote", *lefPath)
	}
	if *defPath != "" {
		if err := writeTo(*defPath, func(f *os.File) error { return lefdef.WriteDEF(f, p) }); err != nil {
			return err
		}
		fmt.Println("wrote", *defPath)
	}
	return nil
}

func parseArch(s string) (tech.Arch, error) {
	switch s {
	case "closedm1":
		return tech.ClosedM1, nil
	case "openm1":
		return tech.OpenM1, nil
	case "conventional":
		return tech.Conventional, nil
	}
	return 0, fmt.Errorf("unknown architecture %q", s)
}

func writeTo(path string, f func(*os.File) error) error {
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	defer file.Close()
	return f(file)
}
