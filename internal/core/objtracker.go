package core

import (
	"vm1place/internal/layout"
	"vm1place/internal/netlist"
)

// Move is one accepted placement change: instance Inst moves to site/row
// with orientation Flip. DistOpt emits one Move per cell a window MILP
// relocated; ObjTracker.ApplyMoves consumes them.
type Move struct {
	Inst int
	Site int
	Row  int
	Flip bool
}

// ObjTracker maintains the global objective of a placement incrementally.
// A full DistOpt pass moves only the cells inside changed windows, yet the
// seed implementation re-scanned every net afterwards — O(nets·terms²) per
// pass. The tracker caches per-net HPWL, alignment and overlap statistics
// plus an inst→nets index, so ApplyMoves re-evaluates only the nets
// incident to moved cells. CalculateObj remains the oracle; the tracker's
// Objective is bit-identical to it (the weighted-HPWL sum is re-added in
// net order every batch, so even float accumulation order matches).
//
// The tracker owns all placement mutation while in use: apply moves only
// through ApplyMoves so the caches never go stale. It is not safe for
// concurrent use.
type ObjTracker struct {
	p   *layout.Placement
	prm Params

	netHPWL   []int64   // per-net HPWL, zero for clock nets (as TotalHPWL)
	netWght   []float64 // per-net βn·HPWL, zero for clock nets
	netAlign  []int     // per-net dM1-eligible pair count (non-clock)
	netOver   []int64   // per-net overlap surplus (OpenM1, non-clock)
	netReward []float64 // per-net PairAlpha·align (non-clock)
	instNets  [][]int   // inst -> distinct incident net indices

	// epoch-marked dedup of nets touched by one ApplyMoves batch.
	mark    []int
	epoch   int
	touched []int

	termBuf []pinRef // reused terminal scratch (no per-net allocation)

	// est, when attached, observes every committed move batch so the QoR
	// proxy's congestion model tracks the placement. instBuf is the
	// pooled moved-instance list handed to it.
	est     WindowScorer
	instBuf []int

	align int
	over  int64
}

// AttachEstimator registers a QoR estimator to be notified after every
// ApplyMoves batch. The estimator must already reflect the current
// placement (build it before moving anything). Passing nil detaches.
func (t *ObjTracker) AttachEstimator(est WindowScorer) { t.est = est }

// NewObjTracker fully evaluates the placement and builds the incremental
// caches. Cost is one CalculateObj-equivalent scan plus the inst→nets
// index.
func NewObjTracker(p *layout.Placement, prm Params) *ObjTracker {
	nNets := len(p.Design.Nets)
	nInsts := len(p.Design.Insts)
	t := &ObjTracker{
		p:         p,
		prm:       prm,
		netHPWL:   make([]int64, nNets),
		netWght:   make([]float64, nNets),
		netAlign:  make([]int, nNets),
		netOver:   make([]int64, nNets),
		netReward: make([]float64, nNets),
		instNets:  make([][]int, nInsts),
		mark:      make([]int, nNets),
	}

	// inst→nets index over non-clock nets (clock nets never contribute to
	// the objective), deduplicating nets that touch an instance through
	// several pins.
	counts := make([]int, nInsts)
	for ni := range p.Design.Nets {
		if p.Design.Nets[ni].IsClock {
			continue
		}
		p.Design.Nets[ni].ForEachConn(func(c netlist.Conn) {
			counts[c.Inst]++
		})
	}
	backing := make([]int, 0, sumInts(counts))
	for i, c := range counts {
		t.instNets[i] = backing[len(backing) : len(backing) : len(backing)+c]
		backing = backing[:len(backing)+c]
	}
	last := make([]int, nInsts)
	for i := range last {
		last[i] = -1
	}
	for ni := range p.Design.Nets {
		if p.Design.Nets[ni].IsClock {
			continue
		}
		p.Design.Nets[ni].ForEachConn(func(c netlist.Conn) {
			if last[c.Inst] != ni {
				last[c.Inst] = ni
				t.instNets[c.Inst] = append(t.instNets[c.Inst], ni)
			}
		})
	}

	for ni := range p.Design.Nets {
		t.refreshNet(ni)
		t.align += t.netAlign[ni]
		t.over += t.netOver[ni]
	}
	return t
}

// refreshNet recomputes the cached statistics of one net from the current
// placement.
func (t *ObjTracker) refreshNet(ni int) {
	p, prm := t.p, t.prm
	if p.Design.Nets[ni].IsClock {
		return // never contributes; caches stay zero
	}
	t.netHPWL[ni] = p.NetHPWL(ni)
	t.netWght[ni] = prm.betaOf(ni) * float64(t.netHPWL[ni])
	terms := appendNetTerminals(t.termBuf[:0], p, ni)
	t.termBuf = terms
	align, over := pairStats(prm, terms)
	t.netAlign[ni] = align
	t.netOver[ni] = over
	t.netReward[ni] = prm.obj().PairAlpha(prm.weights(), ni) * float64(align)
}

// ApplyMoves applies a batch of accepted moves to the placement and
// returns the updated global objective, re-evaluating only the nets
// incident to the moved instances.
func (t *ObjTracker) ApplyMoves(moves []Move) Objective {
	t.epoch++
	t.touched = t.touched[:0]
	for _, mv := range moves {
		t.p.SetLoc(mv.Inst, mv.Site, mv.Row, mv.Flip)
		for _, ni := range t.instNets[mv.Inst] {
			if t.mark[ni] != t.epoch {
				t.mark[ni] = t.epoch
				t.touched = append(t.touched, ni)
			}
		}
	}
	for _, ni := range t.touched {
		t.align -= t.netAlign[ni]
		t.over -= t.netOver[ni]
		t.refreshNet(ni)
		t.align += t.netAlign[ni]
		t.over += t.netOver[ni]
	}
	if t.est != nil {
		t.instBuf = t.instBuf[:0]
		for _, mv := range moves {
			t.instBuf = append(t.instBuf, mv.Inst)
		}
		t.est.Update(t.instBuf)
	}
	return t.Objective()
}

// Objective assembles the tracked global objective. HPWL, the weighted sum
// and the pair reward are reduced in net order so the result is
// bit-identical to a fresh CalculateObj of the same placement.
func (t *ObjTracker) Objective() Objective {
	var obj Objective
	var weighted, reward float64
	for ni := range t.netHPWL {
		obj.HPWL += t.netHPWL[ni]
		weighted += t.netWght[ni]
		reward += t.netReward[ni]
	}
	obj.Alignments = t.align
	obj.OverlapSum = t.over
	obj.Value = t.prm.obj().Value(t.prm.weights(), weighted,
		obj.Alignments, obj.OverlapSum, reward)
	return obj
}

func sumInts(s []int) int {
	n := 0
	for _, v := range s {
		n += v
	}
	return n
}
