// Parallel batch routing.
//
// The engine partitions the (deterministically ordered) net list into
// batches by greedy first-fit coloring of each net's dilated search
// region: two nets share a batch only when their regions are disjoint.
// Every search a batch-mode net runs is clamped to its own region, so the
// edges it reads and writes all lie strictly inside that region — nets of
// one batch can therefore route concurrently against the live usage
// arrays without locks, and the outcome is identical to routing them in
// any sequential order. Route records are committed at the batch barrier
// in net order, and a net whose connection cannot complete inside its
// region is rolled back and deferred to a sequential cleanup phase with
// the classic widened-retry semantics.
//
// Batch composition, deferral decisions and the cleanup order depend only
// on the placement and configuration — never on the worker count or
// goroutine scheduling — so RouteAll returns bit-identical Metrics for
// every Workers value. In particular the single-worker path below walks
// the same batch-concatenation order the barriers produce (it cannot use
// plain net order: first-fit coloring can seat a later net in an earlier
// batch than an earlier conflicting net), just without the goroutine and
// buffer machinery.
package route

import (
	"context"
	"sync"
	"sync/atomic"
)

// batchTile is the edge length (grid cells) of the coloring bitmap tiles.
// Region overlap is tested tile-conservatively: nets that share no tile
// certainly have disjoint regions.
const batchTile = 8

// colorProbeCap bounds how many existing batches a net probes before a
// fresh batch is opened, keeping coloring cheap on heavily overlapping
// designs. The cap is a constant, so batch composition stays deterministic.
const colorProbeCap = 128

// batchSchedule is the Router-owned coloring state: per-batch net lists
// and tile bitmaps, pooled across routeBatched calls. used counts the
// batches of the current build; entries beyond it are free capacity kept
// for reuse.
type batchSchedule struct {
	nets  [][]int
	bits  [][]uint64
	used  int
	words int
}

// buildSchedule greedily packs nets into conflict-free batches,
// preserving relative order within each batch. The schedule's storage is
// reused: rebuilding for a new net list allocates only when the batch
// count or bitmap size grows past anything seen before.
func (r *Router) buildSchedule(nets []int) {
	s := &r.sched
	tx := (r.nx + batchTile - 1) / batchTile
	ty := (r.ny + batchTile - 1) / batchTile
	words := (tx*ty + 63) / 64
	if words != s.words {
		s.bits = nil
		s.nets = nil
		s.words = words
	}
	s.used = 0
	for _, ni := range nets {
		rg := r.netRegion[ni]
		tx0, tx1 := rg.xlo/batchTile, rg.xhi/batchTile
		ty0, ty1 := rg.ylo/batchTile, rg.yhi/batchTile
		found := -1
		limit := s.used
		if limit > colorProbeCap {
			limit = colorProbeCap
		}
	probe:
		for bi := 0; bi < limit; bi++ {
			bits := s.bits[bi]
			for tyi := ty0; tyi <= ty1; tyi++ {
				base := tyi * tx
				for txi := tx0; txi <= tx1; txi++ {
					t := base + txi
					if bits[t>>6]&(1<<(t&63)) != 0 {
						continue probe
					}
				}
			}
			found = bi
			break
		}
		if found < 0 {
			if s.used < len(s.nets) {
				s.nets[s.used] = s.nets[s.used][:0]
				clearWords(s.bits[s.used])
			} else {
				s.nets = append(s.nets, nil)
				s.bits = append(s.bits, make([]uint64, words))
			}
			found = s.used
			s.used++
		}
		s.nets[found] = append(s.nets[found], ni)
		bits := s.bits[found]
		for tyi := ty0; tyi <= ty1; tyi++ {
			base := tyi * tx
			for txi := tx0; txi <= tx1; txi++ {
				t := base + txi
				bits[t>>6] |= 1 << (t & 63)
			}
		}
	}
}

func clearWords(w []uint64) {
	for i := range w {
		w[i] = 0
	}
}

// routeBatched routes the given nets (already in deterministic order)
// through the batch schedule with congestion weight cw. Cancellation is
// checked between batches and between cleanup nets — the points where all
// in-flight work has been committed — so an early return leaves every
// committed net fully routed and the usage arrays consistent.
func (r *Router) routeBatched(ctx context.Context, nets []int, cw float64) error {
	if len(nets) == 0 {
		return nil
	}
	r.rebuildEdgeCosts(cw)
	workers := r.workerCount()
	r.ensureSearchers(workers)
	r.buildSchedule(nets)

	deferred := r.deferBuf[:0]
	var err error
	if workers <= 1 {
		deferred, err = r.runScheduleSeq(ctx, deferred)
	} else {
		deferred, err = r.runSchedulePar(ctx, workers, deferred)
	}
	r.deferBuf = deferred[:0]
	if err != nil {
		return err
	}

	// Sequential cleanup: nets that could not finish inside their region
	// get the unbounded retry semantics, in deterministic order.
	full := region{xlo: 0, ylo: 0, xhi: r.nx - 1, yhi: r.ny - 1}
	s := r.searchers[0]
	for _, ni := range deferred {
		if err := ctx.Err(); err != nil {
			return err
		}
		nr, _ := s.routeNet(ni, full, false)
		r.routes[ni] = nr
	}
	return nil
}

// runScheduleSeq is the single-worker fast path: it walks the schedule in
// batch-concatenation order — the same order the parallel barriers commit
// in — routing and committing each net immediately. Within a batch the
// regions are disjoint, so in-place sequential execution is equivalent to
// the concurrent run; across batches the commit order is the
// concatenation order either way. No goroutines, no cursor, no per-batch
// result buffers.
func (r *Router) runScheduleSeq(ctx context.Context, deferred []int) ([]int, error) {
	s := r.searchers[0]
	for bi := 0; bi < r.sched.used; bi++ {
		if err := ctx.Err(); err != nil {
			return deferred, err
		}
		for _, ni := range r.sched.nets[bi] {
			nr, def := s.routeNet(ni, r.netRegion[ni], true)
			if def {
				deferred = append(deferred, ni)
			} else {
				r.routes[ni] = nr
			}
		}
	}
	return deferred, nil
}

// runSchedulePar drains each batch with a worker pool and commits at the
// batch barrier in net order. Result buffers are pooled on the Router.
func (r *Router) runSchedulePar(ctx context.Context, workers int, deferred []int) ([]int, error) {
	for bi := 0; bi < r.sched.used; bi++ {
		if err := ctx.Err(); err != nil {
			return deferred, err
		}
		batch := r.sched.nets[bi]
		w := workers
		if w > len(batch) {
			w = len(batch)
		}
		if w <= 1 {
			// One-net batch: skip the pool.
			s := r.searchers[0]
			for _, ni := range batch {
				nr, def := s.routeNet(ni, r.netRegion[ni], true)
				if def {
					deferred = append(deferred, ni)
				} else {
					r.routes[ni] = nr
				}
			}
			continue
		}

		if cap(r.nrsBuf) < len(batch) {
			r.nrsBuf = make([]*netRoute, len(batch))
			r.defsBuf = make([]bool, len(batch))
		}
		nrs := r.nrsBuf[:len(batch)]
		defs := r.defsBuf[:len(batch)]
		var next atomic.Int64
		var wg sync.WaitGroup
		for k := 0; k < w; k++ {
			wg.Add(1)
			go func(s *searcher) {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(batch) {
						return
					}
					ni := batch[i]
					nrs[i], defs[i] = s.routeNet(ni, r.netRegion[ni], true)
				}
			}(r.searchers[k])
		}
		wg.Wait()

		// Barrier commit, in net order.
		for i, ni := range batch {
			if defs[i] {
				deferred = append(deferred, ni)
			} else {
				r.routes[ni] = nrs[i]
			}
		}
	}
	return deferred, nil
}
