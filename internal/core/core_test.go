package core

import (
	"testing"

	"vm1place/internal/cells"
	"vm1place/internal/geom"
	"vm1place/internal/layout"
	"vm1place/internal/netlist"
	"vm1place/internal/place"
	"vm1place/internal/tech"
)

// manual builds tiny hand-wired designs (mirrors the router test helper).
type manual struct{ d *netlist.Design }

func newManual(lib *cells.Library) *manual {
	return &manual{d: &netlist.Design{Name: "manual", Lib: lib}}
}

func (m *manual) addInst(master string) int {
	ms := m.d.Lib.MustMaster(master)
	inst := netlist.Instance{
		Name:    "u" + string(rune('a'+len(m.d.Insts))),
		Master:  ms,
		PinNets: make([]int, len(ms.Pins)),
	}
	for i := range inst.PinNets {
		inst.PinNets[i] = -1
	}
	m.d.Insts = append(m.d.Insts, inst)
	return len(m.d.Insts) - 1
}

func (m *manual) pinIdx(inst int, pin string) int {
	ms := m.d.Insts[inst].Master
	for i := range ms.Pins {
		if ms.Pins[i].Name == pin {
			return i
		}
	}
	panic("no pin " + pin)
}

func (m *manual) connect(drvInst int, drvPin string, sinks ...[2]interface{}) int {
	ni := len(m.d.Nets)
	dp := m.pinIdx(drvInst, drvPin)
	net := netlist.Net{
		Name:   "n" + string(rune('a'+ni)),
		Driver: netlist.Conn{Inst: drvInst, Pin: dp},
	}
	m.d.Insts[drvInst].PinNets[dp] = ni
	for _, s := range sinks {
		si := s[0].(int)
		sp := m.pinIdx(si, s[1].(string))
		net.Sinks = append(net.Sinks, netlist.Conn{Inst: si, Pin: sp})
		m.d.Insts[si].PinNets[sp] = ni
	}
	m.d.Nets = append(m.d.Nets, net)
	return ni
}

func (m *manual) tieOff() {
	for ii := range m.d.Insts {
		inst := &m.d.Insts[ii]
		for pi := range inst.PinNets {
			p := &inst.Master.Pins[pi]
			if !p.IsSignal() || inst.PinNets[pi] != -1 {
				continue
			}
			ni := len(m.d.Nets)
			if p.Dir == cells.Input {
				m.d.Nets = append(m.d.Nets, netlist.Net{
					Name: "tie", Driver: netlist.Conn{Inst: -1},
					Sinks: []netlist.Conn{{Inst: ii, Pin: pi}},
				})
				m.d.Ports = append(m.d.Ports, netlist.Port{
					Name: "tp", Net: ni, Input: true, Side: netlist.West, Pos: 0.5,
				})
			} else {
				m.d.Nets = append(m.d.Nets, netlist.Net{
					Name: "obs", Driver: netlist.Conn{Inst: ii, Pin: pi},
				})
				m.d.Ports = append(m.d.Ports, netlist.Port{
					Name: "op", Net: ni, Input: false, Side: netlist.East, Pos: 0.5,
				})
			}
			inst.PinNets[pi] = ni
		}
	}
	if err := m.d.Validate(); err != nil {
		panic(err)
	}
}

func genPlaced(t *testing.T, arch tech.Arch, n int, seed int64, util float64) *layout.Placement {
	t.Helper()
	tc := tech.Default()
	lib := cells.MustNewLibrary(tc, arch)
	d := netlist.MustGenerate(lib, netlist.DefaultGenConfig("c", n, seed))
	p := layout.MustNewFloorplan(tc, d, util)
	if err := place.Global(p, place.Options{}); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCalculateObjManualClosedM1(t *testing.T) {
	tc := tech.Default()
	lib := cells.MustNewLibrary(tc, tech.ClosedM1)
	m := newManual(lib)
	u0 := m.addInst("INV_X1")
	u1 := m.addInst("INV_X1")
	m.connect(u0, "ZN", [2]interface{}{u1, "A"})
	m.tieOff()
	p := layout.MustNewFloorplan(tc, m.d, 0.05)
	p.SpreadEven()
	prm := DefaultParams(tc, tech.ClosedM1)

	// Aligned: ZN(u0)@site1, A(u1)@site1 with u1 at site 1.
	p.SetLoc(u0, 0, 0, false)
	p.SetLoc(u1, 1, 1, false)
	obj := CalculateObj(p, prm)
	if obj.Alignments != 1 {
		t.Errorf("aligned: Alignments = %d, want 1", obj.Alignments)
	}

	// Misaligned.
	p.SetLoc(u1, 3, 1, false)
	obj = CalculateObj(p, prm)
	if obj.Alignments != 0 {
		t.Errorf("misaligned: Alignments = %d, want 0", obj.Alignments)
	}

	// Aligned but beyond gamma rows.
	p.SetLoc(u1, 1, prm.GammaRows+2, false)
	obj = CalculateObj(p, prm)
	if obj.Alignments != 0 {
		t.Errorf("beyond gamma: Alignments = %d, want 0", obj.Alignments)
	}
}

func TestCalculateObjManualOpenM1(t *testing.T) {
	tc := tech.Default()
	lib := cells.MustNewLibrary(tc, tech.OpenM1)
	m := newManual(lib)
	u0 := m.addInst("INV_X1")
	u1 := m.addInst("INV_X1")
	m.connect(u0, "ZN", [2]interface{}{u1, "A"})
	m.tieOff()
	p := layout.MustNewFloorplan(tc, m.d, 0.05)
	p.SpreadEven()
	prm := DefaultParams(tc, tech.OpenM1)

	p.SetLoc(u0, 0, 0, false)
	p.SetLoc(u1, 0, 1, false)
	obj := CalculateObj(p, prm)
	if obj.Alignments != 1 {
		t.Errorf("overlapping: Alignments = %d, want 1", obj.Alignments)
	}
	if obj.OverlapSum <= 0 {
		t.Errorf("overlapping: OverlapSum = %d, want > 0", obj.OverlapSum)
	}

	p.SetLoc(u1, 8, 1, false)
	obj = CalculateObj(p, prm)
	if obj.Alignments != 0 {
		t.Errorf("disjoint: Alignments = %d, want 0", obj.Alignments)
	}
}

func TestWindowMILPAlignsPair(t *testing.T) {
	tc := tech.Default()
	lib := cells.MustNewLibrary(tc, tech.ClosedM1)
	m := newManual(lib)
	u0 := m.addInst("INV_X1")
	u1 := m.addInst("INV_X1")
	m.connect(u0, "ZN", [2]interface{}{u1, "A"})
	m.tieOff()
	p := layout.MustNewFloorplan(tc, m.d, 0.05)
	p.SpreadEven()
	// Misaligned by 2 sites; within lx=3 of alignment.
	p.SetLoc(u0, 0, 0, false)
	p.SetLoc(u1, 3, 1, false)

	prm := DefaultParams(tc, tech.ClosedM1)
	ps := ParamSet{BW: p.DieWidth(), BH: p.DieHeight(), LX: 3, LY: 1}
	insts := []int{u0, u1}
	w := buildWindow(p, prm, p.DieRect(), ps, insts, true, false)
	if len(w.movable) != 2 {
		t.Fatalf("movable = %d, want 2", len(w.movable))
	}
	if len(w.pairs) == 0 {
		t.Fatal("no pairs built")
	}
	assign := w.solve()
	if assign == nil {
		t.Fatal("window solve found no improvement")
	}
	// Apply and check alignment achieved.
	for ci, inst := range w.movable {
		cd := w.cand[ci][assign[ci]]
		p.SetLoc(inst, cd.site, cd.row, cd.flip)
	}
	obj := CalculateObj(p, prm)
	if obj.Alignments != 1 {
		t.Errorf("after MILP: Alignments = %d, want 1", obj.Alignments)
	}
	if err := p.CheckLegal(); err != nil {
		t.Errorf("illegal after MILP: %v", err)
	}
}

func TestWindowFlipPassAligns(t *testing.T) {
	tc := tech.Default()
	lib := cells.MustNewLibrary(tc, tech.ClosedM1)
	m := newManual(lib)
	u0 := m.addInst("INV_X1")
	u1 := m.addInst("INV_X1")
	m.connect(u0, "ZN", [2]interface{}{u1, "A"})
	m.tieOff()
	p := layout.MustNewFloorplan(tc, m.d, 0.05)
	p.SpreadEven()
	// u0 ZN at site 1; u1 at site 0: A at site 0 unflipped, site 1 flipped.
	p.SetLoc(u0, 0, 0, false)
	p.SetLoc(u1, 0, 1, false)

	prm := DefaultParams(tc, tech.ClosedM1)
	ps := ParamSet{BW: p.DieWidth(), BH: p.DieHeight(), LX: 0, LY: 0}
	w := buildWindow(p, prm, p.DieRect(), ps, []int{u0, u1}, false, true)
	assign := w.solve()
	if assign == nil {
		t.Fatal("flip pass found no improvement")
	}
	for ci, inst := range w.movable {
		cd := w.cand[ci][assign[ci]]
		p.SetLoc(inst, cd.site, cd.row, cd.flip)
	}
	if CalculateObj(p, prm).Alignments != 1 {
		t.Error("flip pass did not align the pair")
	}
}

func TestWindowOpenM1IncreasesOverlap(t *testing.T) {
	tc := tech.Default()
	lib := cells.MustNewLibrary(tc, tech.OpenM1)
	m := newManual(lib)
	u0 := m.addInst("INV_X1")
	u1 := m.addInst("INV_X1")
	m.connect(u0, "ZN", [2]interface{}{u1, "A"})
	m.tieOff()
	p := layout.MustNewFloorplan(tc, m.d, 0.05)
	p.SpreadEven()
	p.SetLoc(u0, 0, 0, false)
	p.SetLoc(u1, 4, 1, false) // no overlap

	prm := DefaultParams(tc, tech.OpenM1)
	before := CalculateObj(p, prm)
	if before.Alignments != 0 {
		t.Fatalf("setup: Alignments = %d", before.Alignments)
	}
	ps := ParamSet{BW: p.DieWidth(), BH: p.DieHeight(), LX: 4, LY: 1}
	w := buildWindow(p, prm, p.DieRect(), ps, []int{u0, u1}, true, false)
	assign := w.solve()
	if assign == nil {
		t.Fatal("OpenM1 window solve found no improvement")
	}
	for ci, inst := range w.movable {
		cd := w.cand[ci][assign[ci]]
		p.SetLoc(inst, cd.site, cd.row, cd.flip)
	}
	after := CalculateObj(p, prm)
	if after.Alignments != 1 {
		t.Errorf("after: Alignments = %d, want 1", after.Alignments)
	}
}

func TestPartitionCoversDie(t *testing.T) {
	p := genPlaced(t, tech.ClosedM1, 300, 51, 0.75)
	ps := ParamSet{BW: 2000, BH: 2000, LX: 2, LY: 1}
	for _, shift := range []int64{0, 1000, 700} {
		rects, nwx, nwy := partition(p, ps, shift, shift)
		if len(rects) != nwx*nwy {
			t.Fatalf("rects = %d, want %d", len(rects), nwx*nwy)
		}
		// Every die point must be in exactly one window.
		for _, pt := range []geom.Point{
			{X: 0, Y: 0},
			{X: p.DieWidth() - 1, Y: p.DieHeight() - 1},
			{X: p.DieWidth() / 2, Y: p.DieHeight() / 3},
		} {
			count := 0
			for _, r := range rects {
				if r.Contains(pt) {
					count++
				}
			}
			if count != 1 {
				t.Errorf("shift %d: point %v in %d windows", shift, pt, count)
			}
		}
	}
}

func TestDiagonalFamiliesDisjoint(t *testing.T) {
	// Recompute the family grouping logic and verify disjoint projections
	// (the Figure 3/4 invariant).
	nwx, nwy := 5, 3
	d := nwx
	if nwy > d {
		d = nwy
	}
	for f := 0; f < d; f++ {
		var is, js []int
		for wj := 0; wj < nwy; wj++ {
			for wi := 0; wi < nwx; wi++ {
				if ((wi-wj)%d+d)%d == f {
					is = append(is, wi)
					js = append(js, wj)
				}
			}
		}
		seenI := map[int]bool{}
		seenJ := map[int]bool{}
		for k := range is {
			if seenI[is[k]] || seenJ[js[k]] {
				t.Fatalf("family %d shares a projection: is=%v js=%v", f, is, js)
			}
			seenI[is[k]] = true
			seenJ[js[k]] = true
		}
	}
}

func TestDistOptPreservesLegality(t *testing.T) {
	p := genPlaced(t, tech.ClosedM1, 400, 52, 0.75)
	prm := DefaultParams(p.Tech, tech.ClosedM1)
	prm.MaxNodes = 50
	ps := ParamSet{BW: 2000, BH: 2000, LX: 3, LY: 1}
	DistOpt(p, prm, ps, 0, 0, true, false)
	if err := p.CheckLegal(); err != nil {
		t.Fatalf("illegal after DistOpt: %v", err)
	}
	DistOpt(p, prm, ps, 1000, 1000, false, true)
	if err := p.CheckLegal(); err != nil {
		t.Fatalf("illegal after flip DistOpt: %v", err)
	}
}

func TestVM1OptImprovesObjective(t *testing.T) {
	for _, arch := range []tech.Arch{tech.ClosedM1, tech.OpenM1} {
		p := genPlaced(t, arch, 500, 53, 0.75)
		prm := DefaultParams(p.Tech, arch)
		prm.MaxNodes = 60
		prm.MaxOuterIters = 2
		u := Sequence{{BW: 2000, BH: 2000, LX: 3, LY: 1}}
		res := VM1Opt(p, prm, u)
		if err := p.CheckLegal(); err != nil {
			t.Fatalf("%s: illegal after VM1Opt: %v", arch, err)
		}
		if res.Final.Value > res.Initial.Value {
			t.Errorf("%s: objective worsened: %f -> %f", arch, res.Initial.Value, res.Final.Value)
		}
		if res.Final.Alignments <= res.Initial.Alignments {
			t.Errorf("%s: alignments did not increase: %d -> %d",
				arch, res.Initial.Alignments, res.Final.Alignments)
		}
		if res.Iters == 0 || len(res.History) != res.Iters {
			t.Errorf("%s: bad iteration accounting: %+v", arch, res)
		}
	}
}

func TestVM1OptAlphaZeroReducesHPWL(t *testing.T) {
	p := genPlaced(t, tech.ClosedM1, 500, 54, 0.75)
	prm := DefaultParams(p.Tech, tech.ClosedM1)
	prm.Alpha = 0 // pure HPWL-driven detailed placement (the baseline)
	prm.MaxNodes = 60
	prm.MaxOuterIters = 2
	res := VM1Opt(p, prm, Sequence{{BW: 2000, BH: 2000, LX: 3, LY: 1}})
	if res.Final.HPWL >= res.Initial.HPWL {
		t.Errorf("alpha=0 did not reduce HPWL: %d -> %d", res.Initial.HPWL, res.Final.HPWL)
	}
}

func TestGreedyFallbackWorks(t *testing.T) {
	p := genPlaced(t, tech.ClosedM1, 500, 55, 0.75)
	prm := DefaultParams(p.Tech, tech.ClosedM1)
	prm.MaxMILPCells = 1 // force the greedy path everywhere
	prm.MaxOuterIters = 1
	res := VM1Opt(p, prm, Sequence{{BW: 2000, BH: 2000, LX: 3, LY: 1}})
	if err := p.CheckLegal(); err != nil {
		t.Fatalf("illegal after greedy VM1Opt: %v", err)
	}
	if res.Final.Value > res.Initial.Value {
		t.Errorf("greedy worsened objective: %f -> %f", res.Initial.Value, res.Final.Value)
	}
	if res.Final.Alignments <= res.Initial.Alignments {
		t.Errorf("greedy did not increase alignments: %d -> %d",
			res.Initial.Alignments, res.Final.Alignments)
	}
}

func TestHigherAlphaMoreAlignments(t *testing.T) {
	run := func(alpha float64) Objective {
		p := genPlaced(t, tech.ClosedM1, 400, 56, 0.75)
		prm := DefaultParams(p.Tech, tech.ClosedM1)
		prm.Alpha = alpha
		prm.MaxNodes = 60
		prm.MaxOuterIters = 1
		return VM1Opt(p, prm, Sequence{{BW: 2000, BH: 2000, LX: 3, LY: 1}}).Final
	}
	low := run(0)
	high := run(4000)
	if high.Alignments <= low.Alignments {
		t.Errorf("alpha 4000 alignments %d not above alpha 0 alignments %d",
			high.Alignments, low.Alignments)
	}
}

func TestWindowCandidatesIncludeCurrent(t *testing.T) {
	p := genPlaced(t, tech.ClosedM1, 200, 57, 0.75)
	prm := DefaultParams(p.Tech, tech.ClosedM1)
	ps := ParamSet{BW: 2000, BH: 2000, LX: 2, LY: 1}
	rects, _, _ := partition(p, ps, 0, 0)
	buckets := bucketInsts(p, ps, 0, 0, 1, 1)
	_ = buckets
	all := make([]int, len(p.Design.Insts))
	for i := range all {
		all[i] = i
	}
	for _, r := range rects {
		w := buildWindow(p, prm, r, ps, all, true, false)
		for ci, inst := range w.movable {
			cd := w.cand[ci][w.curCand[ci]]
			if cd.site != p.SiteX[inst] || cd.row != p.Row[inst] || cd.flip != p.Flip[inst] {
				t.Fatalf("curCand mismatch for inst %d", inst)
			}
		}
	}
}
