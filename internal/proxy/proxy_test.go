package proxy_test

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"vm1place/internal/cells"
	"vm1place/internal/layout"
	"vm1place/internal/netlist"
	"vm1place/internal/place"
	"vm1place/internal/proxy"
	"vm1place/internal/route"
	"vm1place/internal/tech"
)

// genPlaced builds a generated, globally placed design (same helper shape
// as the core and route test suites).
func genPlaced(t *testing.T, arch tech.Arch, n int, seed int64, util float64) *layout.Placement {
	t.Helper()
	tc := tech.Default()
	lib := cells.MustNewLibrary(tc, arch)
	d := netlist.MustGenerate(lib, netlist.DefaultGenConfig("px", n, seed))
	p := layout.MustNewFloorplan(tc, d, util)
	if err := place.Global(p, place.Options{}); err != nil {
		t.Fatal(err)
	}
	return p
}

// randomMoves perturbs k random instances (placement legality is
// irrelevant to the estimator's caches) and returns the moved indices.
func randomMoves(rng *rand.Rand, p *layout.Placement, k int) []int {
	insts := make([]int, 0, k)
	for j := 0; j < k; j++ {
		i := rng.Intn(len(p.Design.Insts))
		w := p.Design.Insts[i].Master.WidthSites
		site := rng.Intn(p.NumSites - w + 1)
		row := rng.Intn(p.NumRows)
		p.SetLoc(i, site, row, rng.Intn(2) == 1)
		insts = append(insts, i)
	}
	return insts
}

// TestIncrementalMatchesRebuild is the exactness property of the
// estimator: after any sequence of Update batches — including batches
// that move the same instance repeatedly — every tile demand, pin count
// and the wirelength sum must be bit-identical to a freshly constructed
// estimator over the same placement. Integer fixed-point demand makes
// this an equality, not a tolerance.
func TestIncrementalMatchesRebuild(t *testing.T) {
	for _, arch := range []tech.Arch{tech.ClosedM1, tech.OpenM1} {
		p := genPlaced(t, arch, 300, 11, 0.7)
		e := proxy.New(p, proxy.DefaultConfig(p.Tech, arch))
		rng := rand.New(rand.NewSource(42))
		for batch := 0; batch < 60; batch++ {
			k := 1 + rng.Intn(8)
			insts := randomMoves(rng, p, k)
			if batch%5 == 0 && len(insts) > 1 {
				// Duplicate an instance within the batch: ApplyMoves never
				// emits one, but the estimator promises idempotent
				// re-placement anyway.
				insts = append(insts, insts[0])
			}
			e.Update(insts)
		}
		if err := e.Check(); err != nil {
			t.Fatalf("%v: %v", arch, err)
		}
	}
}

// TestUpdateDeterministicAcrossBatching splits the same move sequence
// into different batch shapes; the resulting estimator state must agree
// (scores are read between families in any order, so per-batch grouping
// must not matter).
func TestUpdateDeterministicAcrossBatching(t *testing.T) {
	p1 := genPlaced(t, tech.ClosedM1, 250, 13, 0.7)
	p2 := p1.Clone()
	e1 := proxy.New(p1, proxy.DefaultConfig(p1.Tech, tech.ClosedM1))
	e2 := proxy.New(p2, proxy.DefaultConfig(p2.Tech, tech.ClosedM1))

	rng := rand.New(rand.NewSource(5))
	var moves [][3]int
	var flips []bool
	for j := 0; j < 40; j++ {
		i := rng.Intn(len(p1.Design.Insts))
		w := p1.Design.Insts[i].Master.WidthSites
		moves = append(moves, [3]int{i, rng.Intn(p1.NumSites - w + 1), rng.Intn(p1.NumRows)})
		flips = append(flips, rng.Intn(2) == 1)
	}
	// e1: one move per batch; e2: all moves in one batch.
	all := make([]int, 0, len(moves))
	for j, mv := range moves {
		p1.SetLoc(mv[0], mv[1], mv[2], flips[j])
		e1.Update([]int{mv[0]})
		p2.SetLoc(mv[0], mv[1], mv[2], flips[j])
		all = append(all, mv[0])
	}
	e2.Update(all)

	if g, w := e1.Overflow(), e2.Overflow(); g != w {
		t.Fatalf("Overflow diverged across batching: %v vs %v", g, w)
	}
	if g, w := e1.WL(), e2.WL(); g != w {
		t.Fatalf("WL diverged across batching: %d vs %d", g, w)
	}
	if g, w := e1.TopFracOverflow(), e2.TopFracOverflow(); g != w {
		t.Fatalf("TopFracOverflow diverged across batching: %v vs %v", g, w)
	}
}

// spearman computes the rank correlation of two equal-length series with
// average-rank tie handling.
func spearman(a, b []float64) float64 {
	ra := ranks(a)
	rb := ranks(b)
	n := float64(len(a))
	var ma, mb float64
	for i := range ra {
		ma += ra[i]
		mb += rb[i]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range ra {
		da, db := ra[i]-ma, rb[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

func ranks(v []float64) []float64 {
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return v[idx[a]] < v[idx[b]] })
	r := make([]float64, len(v))
	for i := 0; i < len(idx); {
		j := i
		for j+1 < len(idx) && v[idx[j+1]] == v[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			r[idx[k]] = avg
		}
		i = j + 1
	}
	return r
}

// TestTileRankingCorrelatesWithRouter is the fidelity property from the
// issue: on a scale-0.1 design the proxy's per-tile congestion ranking
// must Spearman-correlate with the full router's per-tile overflow. The
// proxy never runs a maze search, so the bar is rank agreement — where
// the hotspots are — not magnitude agreement.
func TestTileRankingCorrelatesWithRouter(t *testing.T) {
	if testing.Short() {
		t.Skip("routes a scale-0.1 design")
	}
	// m0 at scale 0.1 (992 insts), utilization high enough that the
	// router actually overflows (Fig. 8's congested regime).
	p := genPlaced(t, tech.ClosedM1, 992, 101, 0.82)
	e := proxy.New(p, proxy.DefaultConfig(p.Tech, tech.ClosedM1))

	r := route.New(p, route.DefaultConfig(p.Tech, tech.ClosedM1))
	m := r.RouteAll()
	ts, tr := e.TileSize()
	actual := r.OverflowGrid(ts, tr, nil)

	nonzero := 0
	for _, v := range actual {
		if v > 0 {
			nonzero++
		}
	}
	if m.Overflow == 0 || nonzero < 8 {
		t.Fatalf("test design not congested enough to rank (overflow %d, %d hot tiles) — raise util",
			m.Overflow, nonzero)
	}

	ntx, nty := e.TileDims()
	pred := make([]float64, ntx*nty)
	act := make([]float64, ntx*nty)
	for i := range pred {
		pred[i] = e.TileOverflow(i)
		act[i] = float64(actual[i])
	}
	rho := spearman(pred, act)
	t.Logf("spearman=%.3f over %d tiles (%d with routed overflow, router overflow %d)",
		rho, len(act), nonzero, m.Overflow)
	// Measured ~0.88 on this design; 0.5 leaves seed margin while still
	// failing if the demand model drifts from the router's cost model.
	if rho < 0.5 {
		t.Fatalf("proxy tile ranking does not track routed overflow: spearman %.3f < 0.5", rho)
	}
}

// TestSteadyStateZeroAlloc pins the allocation-free steady state: score
// reads and incremental updates must not allocate.
func TestSteadyStateZeroAlloc(t *testing.T) {
	p := genPlaced(t, tech.ClosedM1, 300, 17, 0.7)
	e := proxy.New(p, proxy.DefaultConfig(p.Tech, tech.ClosedM1))
	insts := []int{3, 41, 97}
	rect := p.DieRect()
	rect.XHi /= 2
	rect.YHi /= 2

	if n := testing.AllocsPerRun(100, func() { e.Update(insts) }); n != 0 {
		t.Errorf("Update allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { _ = e.WindowScore(rect) }); n != 0 {
		t.Errorf("WindowScore allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { _ = e.Overflow() }); n != 0 {
		t.Errorf("Overflow allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { _ = e.TopFracOverflow() }); n != 0 {
		t.Errorf("TopFracOverflow allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { _ = e.WL() }); n != 0 {
		t.Errorf("WL allocates %v/op, want 0", n)
	}
}

// TestCalibrateShiftsWeight checks the feedback loop mechanics: a region
// the "router" reports hotter than predicted must gain score relative to
// a region reported colder, and multipliers must respect the clamp.
func TestCalibrateShiftsWeight(t *testing.T) {
	p := genPlaced(t, tech.ClosedM1, 300, 19, 0.7)
	e := proxy.New(p, proxy.DefaultConfig(p.Tech, tech.ClosedM1))
	ntx, nty := e.TileDims()

	die := p.DieRect()
	left := die
	left.XHi = die.XHi / 4
	before := e.WindowScore(left)

	// Fabricate feedback: heavy overflow in the left quarter, none
	// elsewhere.
	actual := make([]int64, ntx*nty)
	for ty := 0; ty < nty; ty++ {
		for tx := 0; tx < ntx/4+1; tx++ {
			actual[ty*ntx+tx] = 50
		}
	}
	e.Calibrate(actual, 1)

	after := e.WindowScore(left)
	if after < before {
		t.Fatalf("hot-reported region lost score after calibration: %v -> %v", before, after)
	}
	for r := 0; r < 16; r++ {
		a := e.Alpha(r)
		if a < 0.25-1e-9 || a > 4+1e-9 {
			t.Fatalf("alpha[%d]=%v outside clamp", r, a)
		}
	}
	e.ResetCalibration()
	if g := e.WindowScore(left); g != before {
		t.Fatalf("ResetCalibration did not restore neutral score: %v vs %v", g, before)
	}
}
