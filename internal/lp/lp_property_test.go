package lp

import (
	"math"
	"math/rand"
	"testing"
)

// randModel builds a random bounded LP with n vars and r rows.
func randModel(rng *rand.Rand, n, r int) *Model {
	m := NewModel()
	vars := make([]int, n)
	for i := 0; i < n; i++ {
		lo := float64(rng.Intn(5) - 2)
		vars[i] = m.AddVar(lo, lo+float64(1+rng.Intn(8)), float64(rng.Intn(9)-4), "v")
	}
	for i := 0; i < r; i++ {
		var terms []Term
		for k := 0; k < 1+rng.Intn(4); k++ {
			terms = append(terms, Term{Var: vars[rng.Intn(n)], Coef: float64(rng.Intn(7) - 3)})
		}
		m.AddRow(Sense(rng.Intn(3)), float64(rng.Intn(15)-5), terms...)
	}
	return m
}

// TestHintInvariance: warm-start hints must never change the optimum.
func TestHintInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 150; trial++ {
		n := 2 + rng.Intn(6)
		m := randModel(rng, n, 1+rng.Intn(5))
		base := m.Solve()

		hint := make([]float64, n)
		for i := range hint {
			hint[i] = float64(rng.Intn(10) - 3)
		}
		hinted := m.SolveWithHint(nil, nil, hint)

		if base.Status != hinted.Status {
			t.Fatalf("trial %d: status %s vs hinted %s", trial, base.Status, hinted.Status)
		}
		if base.Status == Optimal && math.Abs(base.Obj-hinted.Obj) > 1e-5 {
			t.Fatalf("trial %d: obj %f vs hinted %f", trial, base.Obj, hinted.Obj)
		}
	}
}

// TestSolveIsRepeatable: solving the same model twice gives identical
// results (no hidden state).
func TestSolveIsRepeatable(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 60; trial++ {
		m := randModel(rng, 3+rng.Intn(4), 2+rng.Intn(4))
		a := m.Solve()
		b := m.Solve()
		if a.Status != b.Status || math.Abs(a.Obj-b.Obj) > 1e-12 {
			t.Fatalf("trial %d: %v vs %v", trial, a, b)
		}
	}
}

// TestTightenedBoundsOnlyRestrict: shrinking a variable's bounds can never
// improve the optimum of a minimization.
func TestTightenedBoundsOnlyRestrict(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(5)
		m := randModel(rng, n, 1+rng.Intn(4))
		base := m.Solve()
		if base.Status != Optimal {
			continue
		}
		lo, hi := m.Bounds()
		j := rng.Intn(n)
		mid := (lo[j] + hi[j]) / 2
		if rng.Intn(2) == 0 {
			lo[j] = mid
		} else {
			hi[j] = mid
		}
		tight := m.SolveWithBounds(lo, hi)
		if tight.Status == Optimal && tight.Obj < base.Obj-1e-6 {
			t.Fatalf("trial %d: tightening improved objective %f -> %f",
				trial, base.Obj, tight.Obj)
		}
	}
}

// TestEqualityChainExactness: long chains of equalities solve exactly.
func TestEqualityChainExactness(t *testing.T) {
	m := NewModel()
	const n = 40
	vars := make([]int, n)
	for i := range vars {
		vars[i] = m.AddVar(math.Inf(-1), math.Inf(1), 0, "x")
	}
	m.SetObj(vars[n-1], 1)
	// x0 = 1; x_{i} - x_{i-1} = 2.
	m.AddRow(EQ, 1, Term{Var: vars[0], Coef: 1})
	for i := 1; i < n; i++ {
		m.AddRow(EQ, 2, Term{Var: vars[i], Coef: 1}, Term{Var: vars[i-1], Coef: -1})
	}
	sol := m.Solve()
	if sol.Status != Optimal {
		t.Fatalf("status %s", sol.Status)
	}
	want := 1.0 + 2*float64(n-1)
	if math.Abs(sol.X[vars[n-1]]-want) > 1e-6 {
		t.Errorf("x[last] = %f, want %f", sol.X[vars[n-1]], want)
	}
}

// TestLargeSparseAssignment exercises the solver at window-MILP scale.
func TestLargeSparseAssignment(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	m := NewModel()
	const groups, per = 30, 12
	var allVars [][]int
	var costs [][]float64
	for g := 0; g < groups; g++ {
		var terms []Term
		var vars []int
		var cs []float64
		for k := 0; k < per; k++ {
			c := float64(rng.Intn(100))
			v := m.AddVar(0, 1, c, "l")
			vars = append(vars, v)
			cs = append(cs, c)
			terms = append(terms, Term{Var: v, Coef: 1})
		}
		m.AddRow(EQ, 1, terms...)
		allVars = append(allVars, vars)
		costs = append(costs, cs)
	}
	sol := m.Solve()
	if sol.Status != Optimal {
		t.Fatalf("status %s", sol.Status)
	}
	// The LP optimum of independent exactly-one groups is the sum of the
	// per-group cost minima.
	want := 0.0
	for g := 0; g < groups; g++ {
		best := math.Inf(1)
		for _, c := range costs[g] {
			if c < best {
				best = c
			}
		}
		want += best
	}
	if math.Abs(sol.Obj-want) > 1e-5 {
		t.Fatalf("obj = %f, want %f", sol.Obj, want)
	}
	for g := 0; g < groups; g++ {
		sum := 0.0
		for _, v := range allVars[g] {
			sum += sol.X[v]
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("group %d sums to %f", g, sum)
		}
	}
}
