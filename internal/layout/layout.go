// Package layout is the placement database of vm1place: a row/site
// floorplan, per-instance locations and orientations, port locations,
// occupancy-based legality checking and HPWL evaluation.
//
// Coordinates are DBU. Instances sit on row boundaries (y = row *
// RowHeight) and site boundaries (x = site * SiteWidth), matching the
// paper's site-granular SCP placement model. Orientation is the horizontal
// flip f_c of the paper.
package layout

import (
	"errors"
	"fmt"
	"math"

	"vm1place/internal/cells"
	"vm1place/internal/geom"
	"vm1place/internal/netlist"
	"vm1place/internal/tech"
)

// ErrBadUtilization reports a floorplan utilization outside (0, 1].
// NewFloorplan wraps it, so callers can errors.Is against it.
var ErrBadUtilization = errors.New("layout: utilization out of (0,1]")

// Placement binds a design to a floorplan and holds the current location of
// every instance.
type Placement struct {
	Tech   *tech.Tech
	Design *netlist.Design

	// Die dimensions in sites and rows.
	NumSites int
	NumRows  int

	// Per-instance state, indexed like Design.Insts.
	SiteX []int  // leftmost occupied site
	Row   []int  // row index
	Flip  []bool // horizontal mirror (paper's f_c)

	// PortXY are resolved port locations, indexed like Design.Ports.
	PortXY []geom.Point
}

// NewFloorplan creates an unplaced Placement whose die accommodates the
// design at the given utilization with a near-square aspect ratio. All
// instances start at site 0, row 0 (call a placer or SpreadEven next). A
// utilization outside (0, 1] is reported as an error wrapping
// ErrBadUtilization.
func NewFloorplan(t *tech.Tech, d *netlist.Design, util float64) (*Placement, error) {
	if util <= 0 || util > 1 {
		return nil, fmt.Errorf("%w: %f", ErrBadUtilization, util)
	}
	var totalSites int64
	for i := range d.Insts {
		totalSites += int64(d.Insts[i].Master.WidthSites)
	}
	need := float64(totalSites) / util
	// Square die in DBU: numSites*SiteWidth == numRows*RowHeight.
	ratio := float64(t.RowHeight) / float64(t.SiteWidth)
	numRows := int(math.Ceil(math.Sqrt(need / ratio)))
	if numRows < 1 {
		numRows = 1
	}
	numSites := int(math.Ceil(need / float64(numRows)))
	// Ensure the widest cell fits.
	for i := range d.Insts {
		if w := d.Insts[i].Master.WidthSites; w > numSites {
			numSites = w
		}
	}
	p := &Placement{
		Tech:     t,
		Design:   d,
		NumSites: numSites,
		NumRows:  numRows,
		SiteX:    make([]int, len(d.Insts)),
		Row:      make([]int, len(d.Insts)),
		Flip:     make([]bool, len(d.Insts)),
	}
	p.resolvePorts()
	return p, nil
}

// MustNewFloorplan is NewFloorplan panicking on error; for tests and
// examples where the utilization is a compile-time constant.
func MustNewFloorplan(t *tech.Tech, d *netlist.Design, util float64) *Placement {
	p, err := NewFloorplan(t, d, util)
	if err != nil {
		panic(err) // panic-ok: Must* wrapper
	}
	return p
}

// resolvePorts turns side+fraction port specs into DBU boundary points.
func (p *Placement) resolvePorts() {
	w := p.DieWidth()
	h := p.DieHeight()
	p.PortXY = make([]geom.Point, len(p.Design.Ports))
	for i, pt := range p.Design.Ports {
		switch pt.Side {
		case netlist.West:
			p.PortXY[i] = geom.Point{X: 0, Y: int64(pt.Pos * float64(h))}
		case netlist.East:
			p.PortXY[i] = geom.Point{X: w, Y: int64(pt.Pos * float64(h))}
		case netlist.North:
			p.PortXY[i] = geom.Point{X: int64(pt.Pos * float64(w)), Y: h}
		default:
			p.PortXY[i] = geom.Point{X: int64(pt.Pos * float64(w)), Y: 0}
		}
	}
}

// DieWidth returns the die width in DBU.
func (p *Placement) DieWidth() int64 { return int64(p.NumSites) * p.Tech.SiteWidth }

// DieHeight returns the die height in DBU.
func (p *Placement) DieHeight() int64 { return int64(p.NumRows) * p.Tech.RowHeight }

// DieRect returns the die as a rectangle.
func (p *Placement) DieRect() geom.Rect {
	return geom.Rect{XLo: 0, YLo: 0, XHi: p.DieWidth(), YHi: p.DieHeight()}
}

// Utilization returns placed cell area over die area.
func (p *Placement) Utilization() float64 {
	var totalSites int64
	for i := range p.Design.Insts {
		totalSites += int64(p.Design.Insts[i].Master.WidthSites)
	}
	return float64(totalSites) / float64(int64(p.NumSites)*int64(p.NumRows))
}

// InstX returns the DBU x of instance i's lower-left corner.
func (p *Placement) InstX(i int) int64 { return p.Tech.SiteX(p.SiteX[i]) }

// InstY returns the DBU y of instance i's lower-left corner.
func (p *Placement) InstY(i int) int64 { return p.Tech.RowY(p.Row[i]) }

// InstRect returns the occupied rectangle of instance i.
func (p *Placement) InstRect(i int) geom.Rect {
	m := p.Design.Insts[i].Master
	x := p.InstX(i)
	y := p.InstY(i)
	return geom.Rect{XLo: x, YLo: y, XHi: x + m.WidthDBU(p.Tech), YHi: y + p.Tech.RowHeight}
}

// SetLoc places instance i at (site, row) with the given flip. It performs
// no legality checking; use CheckLegal or an Occupancy.
func (p *Placement) SetLoc(i, site, row int, flip bool) {
	p.SiteX[i] = site
	p.Row[i] = row
	p.Flip[i] = flip
}

// PinShape returns the absolute access shape of a connection's pin.
func (p *Placement) PinShape(c netlist.Conn) cells.Shape {
	inst := &p.Design.Insts[c.Inst]
	return cells.AbsShape(inst.Master, p.Tech, &inst.Master.Pins[c.Pin],
		p.InstX(c.Inst), p.InstY(c.Inst), p.Flip[c.Inst])
}

// PinPos returns the absolute center point of a connection's pin — the
// (x_c+x_p, y_c+y_p) coordinate of the paper's MILP.
func (p *Placement) PinPos(c netlist.Conn) geom.Point {
	s := p.PinShape(c)
	return geom.Point{X: (s.Rect.XLo + s.Rect.XHi) / 2, Y: (s.Rect.YLo + s.Rect.YHi) / 2}
}

// PinXExtent returns the absolute x-extent of a connection's pin (the
// paper's [x_c+x_min,p, x_c+x_max,p] for OpenM1 overlap).
func (p *Placement) PinXExtent(c netlist.Conn) geom.Interval {
	s := p.PinShape(c)
	return geom.Interval{Lo: s.Rect.XLo, Hi: s.Rect.XHi}
}

// NetBBox accumulates the bounding box of a net over instance pins and
// ports. Returns an invalid box for nets with no endpoints.
func (p *Placement) NetBBox(ni int) geom.BBox {
	var b geom.BBox
	n := &p.Design.Nets[ni]
	n.ForEachConn(func(c netlist.Conn) { b.Add(p.PinPos(c)) })
	for pi := range p.Design.Ports {
		if p.Design.Ports[pi].Net == ni {
			b.Add(p.PortXY[pi])
		}
	}
	return b
}

// NetHPWL returns the half-perimeter wirelength of net ni.
func (p *Placement) NetHPWL(ni int) int64 {
	b := p.NetBBox(ni)
	return b.HalfPerim()
}

// TotalHPWL returns the summed HPWL of all non-clock nets.
func (p *Placement) TotalHPWL() int64 {
	var sum int64
	for ni := range p.Design.Nets {
		if p.Design.Nets[ni].IsClock {
			continue
		}
		sum += p.NetHPWL(ni)
	}
	return sum
}

// Clone returns a deep copy sharing the immutable design/tech.
func (p *Placement) Clone() *Placement {
	q := *p
	q.SiteX = append([]int(nil), p.SiteX...)
	q.Row = append([]int(nil), p.Row...)
	q.Flip = append([]bool(nil), p.Flip...)
	q.PortXY = append([]geom.Point(nil), p.PortXY...)
	return &q
}

// CopyFrom copies the mutable placement state of src (same design) into p.
func (p *Placement) CopyFrom(src *Placement) {
	copy(p.SiteX, src.SiteX)
	copy(p.Row, src.Row)
	copy(p.Flip, src.Flip)
}

// SpreadEven places instances left-to-right, row by row, in index order —
// a trivial legal placement used by tests and as a placer fallback.
func (p *Placement) SpreadEven() {
	site, row := 0, 0
	for i := range p.Design.Insts {
		w := p.Design.Insts[i].Master.WidthSites
		if site+w > p.NumSites {
			site = 0
			row++
			if row >= p.NumRows {
				// NewFloorplan sizes the die to hold the design at any legal
				// utilization, so overflow here is a corrupted placement.
				panic("layout: SpreadEven overflowed die") // panic-ok: invariant
			}
		}
		p.SetLoc(i, site, row, false)
		site += w
	}
}

// CheckLegal verifies the placement: every instance inside the die and no
// two instances overlapping. Returns nil if legal.
func (p *Placement) CheckLegal() error {
	occ := NewOccupancy(p)
	for i := range p.Design.Insts {
		if err := occ.Place(i); err != nil {
			return err
		}
	}
	return nil
}

// Occupancy is a site-granular occupancy grid for incremental legality
// checking. Sites hold the occupying instance index, or -1.
type Occupancy struct {
	p     *Placement
	sites []int32 // NumRows * NumSites
}

// NewOccupancy returns an empty occupancy grid for p.
func NewOccupancy(p *Placement) *Occupancy {
	o := &Occupancy{p: p, sites: make([]int32, p.NumRows*p.NumSites)}
	for i := range o.sites {
		o.sites[i] = -1
	}
	return o
}

func (o *Occupancy) idx(row, site int) int { return row*o.p.NumSites + site }

// At returns the instance occupying (row, site), or -1.
func (o *Occupancy) At(row, site int) int { return int(o.sites[o.idx(row, site)]) }

// Place marks instance i's sites occupied, failing if any is outside the
// die or already taken.
func (o *Occupancy) Place(i int) error {
	p := o.p
	w := p.Design.Insts[i].Master.WidthSites
	row, site := p.Row[i], p.SiteX[i]
	if row < 0 || row >= p.NumRows || site < 0 || site+w > p.NumSites {
		return fmt.Errorf("layout: inst %s at row %d site %d width %d outside die (%d rows x %d sites)",
			p.Design.Insts[i].Name, row, site, w, p.NumRows, p.NumSites)
	}
	for s := site; s < site+w; s++ {
		if got := o.sites[o.idx(row, s)]; got != -1 {
			return fmt.Errorf("layout: inst %s overlaps inst %s at row %d site %d",
				p.Design.Insts[i].Name, p.Design.Insts[got].Name, row, s)
		}
	}
	for s := site; s < site+w; s++ {
		o.sites[o.idx(row, s)] = int32(i)
	}
	return nil
}

// Remove clears instance i's sites (must currently be placed there).
func (o *Occupancy) Remove(i int) {
	p := o.p
	w := p.Design.Insts[i].Master.WidthSites
	row, site := p.Row[i], p.SiteX[i]
	for s := site; s < site+w; s++ {
		if o.sites[o.idx(row, s)] == int32(i) {
			o.sites[o.idx(row, s)] = -1
		}
	}
}

// FreeRun reports whether sites [site, site+w) in row are all free or
// occupied only by instance ignore (pass -1 to ignore nothing).
func (o *Occupancy) FreeRun(row, site, w, ignore int) bool {
	p := o.p
	if row < 0 || row >= p.NumRows || site < 0 || site+w > p.NumSites {
		return false
	}
	for s := site; s < site+w; s++ {
		got := o.sites[o.idx(row, s)]
		if got != -1 && got != int32(ignore) {
			return false
		}
	}
	return true
}
