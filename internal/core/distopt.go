package core

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"vm1place/internal/geom"
	"vm1place/internal/layout"
)

// passGrid is the window decomposition of one DistOpt call: the window
// rectangles, the grid dimensions, and per-window instance buckets. The
// perturbation and flip passes of one Algorithm 1 iteration use the same
// offset (tx, ty), and a movable cell only ever relocates within the one
// window that fully contains it, so the grid stays exact across the pass
// pair and is computed once per iteration instead of once per pass.
type passGrid struct {
	rects    []geom.Rect
	nwx, nwy int
	buckets  [][]int
}

func makeGrid(p *layout.Placement, ps ParamSet, tx, ty int64) passGrid {
	rects, nwx, nwy := partition(p, ps, tx, ty)
	return passGrid{
		rects:   rects,
		nwx:     nwx,
		nwy:     nwy,
		buckets: bucketInsts(p, ps, tx, ty, nwx, nwy),
	}
}

func workersOf(prm Params) int {
	if prm.Workers <= 0 {
		return 1
	}
	return prm.Workers
}

// DistOpt is Algorithm 2: partition the layout into bw x bh windows at
// offset (tx, ty), then optimize diagonal families of windows (disjoint x
// and y projections, Figure 3) in parallel. allowMove/allowFlip select the
// pass mode of Algorithm 1 (perturb with f=0, or flip-only with f=1).
//
// This entry point builds a fresh objective tracker and grid for a single
// standalone pass; VM1Opt drives distPass directly so the tracker, grid
// and solve workspaces persist across passes.
func DistOpt(p *layout.Placement, prm Params, ps ParamSet, tx, ty int64,
	allowMove, allowFlip bool) Objective {
	t := NewObjTracker(p, prm)
	if prm.guided() {
		t.AttachEstimator(prm.Proxy)
	}
	// ctx-ok: context-free compatibility entry point; cancellable callers use distPass via VM1OptCtx.
	obj, _ := distPass(context.Background(), t, ps, makeGrid(p, ps, tx, ty),
		newSolverPool(poolWorkers(prm)), allowMove, allowFlip)
	return obj
}

// diagonalFamilies groups the grid's windows into diagonal families:
// family f holds windows with (wi - wj) ≡ f (mod D); within a family,
// window x indices and y indices are all distinct, so projections are
// disjoint and the family's windows never interfere.
func diagonalFamilies(g passGrid) [][]int {
	d := g.nwx
	if g.nwy > d {
		d = g.nwy
	}
	var families [][]int
	for f := 0; f < d; f++ {
		var fam []int
		for wj := 0; wj < g.nwy; wj++ {
			for wi := 0; wi < g.nwx; wi++ {
				if ((wi-wj)%d+d)%d == f {
					fam = append(fam, wj*g.nwx+wi)
				}
			}
		}
		if len(fam) > 0 {
			families = append(families, fam)
		}
	}
	return families
}

// appendWindowMoves appends one solved window's accepted relocations to
// moves, comparing each candidate against the live (pre-commit)
// placement so unmoved cells produce no Move. Shared by the pipelined
// and sharded inner loops: during a family the placement is read-only,
// so the comparison is race-free wherever extraction happens.
func appendWindowMoves(moves []Move, p *layout.Placement, w *window, assign []int) []Move {
	if assign == nil {
		return moves
	}
	for ci, inst := range w.movable {
		cd := w.cand[ci][assign[ci]]
		if cd.site == p.SiteX[inst] && cd.row == p.Row[inst] && cd.flip == p.Flip[inst] {
			continue // cell kept its placement; nothing to refresh
		}
		moves = append(moves, Move{Inst: inst, Site: cd.site, Row: cd.row, Flip: cd.flip})
	}
	return moves
}

// distPass runs one DistOpt pass through an ObjTracker. Each family's
// windows are built against the live placement and solved in parallel;
// every build in a family completes (and only reads) before any of the
// family's moves are applied, and families with disjoint projections never
// conflict, so no placement snapshot is needed. Accepted relocations are
// funneled through t.ApplyMoves, which updates only the nets incident to
// moved cells instead of rescanning the design.
//
// The pass pipelines build against solve across neighboring diagonal
// families: while family f's windows are being solved, the same workers
// also prebuild family f+1's geometry stage (movable sets, blocked sites,
// candidates — see window.buildGeom for why that stage is invariant under
// family f's moves). Only the net/pair stage, which reads terminal
// positions anywhere on the die, waits for family f's moves to commit.
//
// Cancellation is checked between window families — the pass's commit
// boundaries — so an interrupted pass returns with the placement legal and
// the tracker consistent, together with the ctx error. A context deadline
// additionally clamps the per-window MILP wall budget: familyParams
// derives one budget from the shared pass deadline at pass start, and the
// milp solver arms lp.Arena.SetDeadline with exactly that budget.
func distPass(ctx context.Context, t *ObjTracker, ps ParamSet, g passGrid,
	pool *solverPool, allowMove, allowFlip bool) (Objective, error) {
	p, prm := t.p, t.prm
	fprm := familyParams(ctx, prm)
	families := diagonalFamilies(g)

	// Guided selection: score the windows with the QoR proxy and derive
	// the family processing order, skip set and per-window budgets;
	// otherwise run every family in diagonal order under the uniform
	// budget. Reordering and skipping are safe for the build/solve
	// pipeline below: windows of different families occupy disjoint
	// rectangles and boundary straddlers are immovable, so a family's
	// geometry stage is invariant under any other family's moves,
	// whichever one runs first.
	plan := uniformPlan(g, families, fprm.TimeLimit)
	if prm.guided() {
		plan = guidedPlan(prm, prm.Proxy, g, families, fprm.TimeLimit)
	}
	winPrm := func(wi int) Params {
		q := fprm
		q.TimeLimit = plan.wtl[wi]
		return q
	}

	if shardsOf(prm) > 1 {
		// Spatially sharded inner loop (distopt_shard.go): column stripes
		// of the grid run concurrently, windows are materialized lazily
		// and released per window, and each family's moves merge at the
		// barrier in family window order — the identical single batch the
		// loop below commits, so placements match bit for bit.
		return distPassSharded(ctx, t, ps, g, pool, fprm, families, plan,
			allowMove, allowFlip)
	}

	var moves []Move
	var pre []*window // prebuilt geometry for the family about to run
	for oi := 0; oi < len(plan.order); oi++ {
		if err := ctx.Err(); err != nil {
			pool.putWindows(pre)
			return t.Objective(), err
		}
		fi := plan.order[oi]
		curFam := families[fi]
		cur := pre
		if cur == nil {
			// First family: no prebuild happened yet; its windows are
			// built from scratch inside the solve tasks below.
			cur = make([]*window, len(curFam))
		}
		var next []*window
		var nextFam []int
		if oi+1 < len(plan.order) {
			nextFam = families[plan.order[oi+1]]
			next = make([]*window, len(nextFam))
		}
		pre = next

		// Combined task list for this family's barrier: first the solve
		// tasks (finish nets/pairs on prebuilt geometry, then solve), then
		// the geometry prebuilds for the next family. Workers drain the
		// list through an atomic cursor; results land at fixed indices, so
		// scheduling order never affects the outcome.
		assigns := make([][]int, len(cur))
		total := len(cur) + len(next)
		workers := pool.workers
		if workers > total {
			workers = total
		}
		var cursor atomic.Int64
		var wg sync.WaitGroup
		for wk := 0; wk < workers; wk++ {
			wg.Add(1)
			sv := <-pool.solvers
			go func(sv *winSolver) {
				defer wg.Done()
				defer func() { pool.solvers <- sv }()
				for {
					i := int(cursor.Add(1)) - 1
					if i >= total {
						return
					}
					if i < len(cur) {
						w := cur[i]
						if w == nil {
							w = pool.getWindow()
							w.buildGeom(p, winPrm(curFam[i]), g.rects[curFam[i]], ps,
								g.buckets[curFam[i]], allowMove, allowFlip)
							cur[i] = w
						}
						w.buildNetsPairs()
						w.sv = sv
						assigns[i] = w.solve()
						w.sv = nil
					} else {
						j := i - len(cur)
						w := pool.getWindow()
						w.buildGeom(p, winPrm(nextFam[j]), g.rects[nextFam[j]], ps,
							g.buckets[nextFam[j]], allowMove, allowFlip)
						next[j] = w
					}
				}
			}(sv)
		}
		wg.Wait()

		moves = moves[:0]
		for k, w := range cur {
			moves = appendWindowMoves(moves, p, w, assigns[k])
		}
		pool.putWindows(cur)
		if len(moves) > 0 {
			t.ApplyMoves(moves)
		}
	}
	return t.Objective(), nil
}

// familyParams clamps the per-window MILP budget of one pass to the
// remaining time before the context deadline. The budget is derived once
// at pass start from the shared deadline — not re-read per family — so
// every family of the pass solves under the same wall budget and an
// untimed run's params pass through untouched, keeping that path identical
// to the pre-context engine. (The per-family ctx.Err() gate in distPass is
// what stops a pass whose deadline has already expired.)
func familyParams(ctx context.Context, prm Params) Params {
	dl, ok := ctx.Deadline()
	if !ok {
		return prm
	}
	rem := time.Until(dl) // clock-ok: converts the caller's ctx deadline into a milp TimeLimit; budgets, not results
	if rem < time.Millisecond {
		// The pass runs anyway (the caller's ctx.Err() gate decides when to
		// stop); a floor keeps the milp deadline armed rather than treating
		// a non-positive TimeLimit as "no budget".
		rem = time.Millisecond
	}
	if prm.TimeLimit <= 0 || rem < prm.TimeLimit {
		prm.TimeLimit = rem
	}
	return prm
}

// partition tiles the die with bw x bh windows offset by (tx, ty),
// returning the window rectangles in row-major order plus grid dimensions.
func partition(p *layout.Placement, ps ParamSet, tx, ty int64) ([]geom.Rect, int, int) {
	bw, bh := ps.BW, ps.BH
	if bw <= 0 {
		bw = p.DieWidth()
	}
	if bh <= 0 {
		bh = p.DieHeight()
	}
	x0 := mod64(tx, bw) - bw
	y0 := mod64(ty, bh) - bh
	nwx := int((p.DieWidth()-x0)/bw) + 1
	nwy := int((p.DieHeight()-y0)/bh) + 1
	rects := make([]geom.Rect, 0, nwx*nwy)
	for wj := 0; wj < nwy; wj++ {
		for wi := 0; wi < nwx; wi++ {
			rects = append(rects, geom.Rect{
				XLo: x0 + int64(wi)*bw,
				YLo: y0 + int64(wj)*bh,
				XHi: x0 + int64(wi+1)*bw,
				YHi: y0 + int64(wj+1)*bh,
			})
		}
	}
	return rects, nwx, nwy
}

// bucketInsts assigns every instance to each window its rectangle
// intersects.
func bucketInsts(p *layout.Placement, ps ParamSet, tx, ty int64, nwx, nwy int) [][]int {
	bw, bh := ps.BW, ps.BH
	if bw <= 0 {
		bw = p.DieWidth()
	}
	if bh <= 0 {
		bh = p.DieHeight()
	}
	x0 := mod64(tx, bw) - bw
	y0 := mod64(ty, bh) - bh
	buckets := make([][]int, nwx*nwy)
	for i := range p.Design.Insts {
		r := p.InstRect(i)
		wi0 := int((r.XLo - x0) / bw)
		wi1 := int((r.XHi - 1 - x0) / bw)
		wj0 := int((r.YLo - y0) / bh)
		wj1 := int((r.YHi - 1 - y0) / bh)
		for wj := clampInt(wj0, 0, nwy-1); wj <= clampInt(wj1, 0, nwy-1); wj++ {
			for wi := clampInt(wi0, 0, nwx-1); wi <= clampInt(wi1, 0, nwx-1); wi++ {
				buckets[wj*nwx+wi] = append(buckets[wj*nwx+wi], i)
			}
		}
	}
	return buckets
}

func mod64(a, m int64) int64 {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
