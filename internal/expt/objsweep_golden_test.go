package expt

import (
	"testing"

	"vm1place/internal/core"
	"vm1place/internal/tech"
)

// objGoldenCfg is the deterministic single-worker flow configuration the
// workload golden tests share: one pass over one small window family with
// the wall-clock MILP budget disabled, so repeated runs must be
// bit-identical (the same regime as TestGoldenFlowDeterministic).
func objGoldenCfg() FlowConfig {
	return FlowConfig{
		Sequence:      []core.ParamSet{{BW: UmToDBU(10), BH: UmToDBU(10), LX: 3, LY: 1}},
		MaxOuterIters: 1,
		Workers:       1,
		TimeLimit:     -1,
	}
}

// runObjGolden runs one workload flow twice on a floored m0 and pins the
// repeat to bit-identity, returning the metrics for workload-specific
// assertions.
func runObjGolden(t *testing.T, cfg FlowConfig) goldenMetrics {
	t.Helper()
	spec := ScaledDesigns(0.02)[0] // m0 floored to MinScaledInsts
	r1, err := RunFlow(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunFlow(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g1, g2 := golden(r1), golden(r2)
	if g1 != g2 {
		t.Errorf("workload flow metrics not bit-identical:\nrun1: %+v\nrun2: %+v", g1, g2)
	}
	return g1
}

// TestGoldenNetSepFlow pins the netsep workload: the margin-maximization
// objective must run end-to-end on the OpenM1 pin geometry,
// deterministically, and must not regress the optimizer objective.
func TestGoldenNetSepFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("full deterministic flow is slow")
	}
	cfg := objGoldenCfg()
	cfg.Objective = "netsep"
	g := runObjGolden(t, cfg)
	if g.Arch != tech.OpenM1 {
		t.Errorf("netsep flow arch = %v, want OpenM1 (derived from the objective)", g.Arch)
	}
	if g.OptFinal > g.OptInit {
		t.Errorf("netsep optimizer objective regressed: %v -> %v", g.OptInit, g.OptFinal)
	}
	if g.OptFinalAl < g.OptInitAl {
		t.Errorf("netsep in-margin pair count regressed: %d -> %d", g.OptInitAl, g.OptFinalAl)
	}
}

// TestGoldenSlackAlphaFlow pins the timing-driven workload: per-net α
// derived from STA slack, ClosedM1 geometry, deterministic repeats.
func TestGoldenSlackAlphaFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("full deterministic flow is slow")
	}
	cfg := objGoldenCfg()
	cfg.Objective = "slackalpha"
	cfg.SlackAlphaWeight = 2
	g := runObjGolden(t, cfg)
	if g.Arch != tech.ClosedM1 {
		t.Errorf("slackalpha flow arch = %v, want ClosedM1 (derived from the objective)", g.Arch)
	}
	if g.OptFinal > g.OptInit {
		t.Errorf("slackalpha optimizer objective regressed: %v -> %v", g.OptInit, g.OptFinal)
	}
}

// TestGoldenTrackVariantFlows pins the track-count workload: the ClosedM1
// objective on the 6-track and 9-track cell architectures, each
// deterministic and improving dM1 alignments.
func TestGoldenTrackVariantFlows(t *testing.T) {
	if testing.Short() {
		t.Skip("full deterministic flow is slow")
	}
	for _, tv := range TrackVariants() {
		if tv.Label == "7.5T" {
			continue // the default tech is TestGoldenFlowDeterministic's job
		}
		t.Run(tv.Label, func(t *testing.T) {
			cfg := objGoldenCfg()
			cfg.Objective = "closedm1"
			cfg.Tech = tv.Tech()
			g := runObjGolden(t, cfg)
			if g.OptFinalAl < g.OptInitAl {
				t.Errorf("%s alignment count regressed: %d -> %d", tv.Label, g.OptInitAl, g.OptFinalAl)
			}
		})
	}
}
