package analysis

import (
	"go/token"
	"sort"
	"strings"
)

// Run executes the analyzers over the packages and returns the surviving
// findings sorted by file, line, column and analyzer name. Suppression is
// applied here, centrally: a finding is dropped when a comment containing
// "<analyzer.Tag>:" sits on the flagged line or the line directly above
// it, in the same file. Analyzers therefore never need to inspect
// comments themselves.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		tags := collectTags(fset, pkg)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d Diagnostic) {
				pos := fset.Position(d.Pos)
				if tags.suppressed(a.Tag, pos) {
					return
				}
				findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
			if err := a.Run(pass); err != nil {
				return nil, err
			}
		}
	}
	sortFindings(findings)
	return findings, nil
}

// tagIndex records which suppression tags appear on which source lines.
type tagIndex map[tagKey]bool

type tagKey struct {
	file string
	line int
	tag  string
}

// suppressed reports whether tag is present on pos's line or the line
// directly above it.
func (t tagIndex) suppressed(tag string, pos token.Position) bool {
	return t[tagKey{pos.Filename, pos.Line, tag}] || t[tagKey{pos.Filename, pos.Line - 1, tag}]
}

// knownTags are the suppression markers the suite recognizes; anything
// else in a comment is ignored.
var knownTags = []string{"order-ok", "panic-ok", "ctx-ok", "wrap-ok", "clock-ok"}

// collectTags scans every comment of the package for suppression tags.
// Multi-line comment groups register each tag on the line it appears on.
func collectTags(fset *token.FileSet, pkg *Package) tagIndex {
	idx := make(tagIndex)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for i, line := range strings.Split(c.Text, "\n") {
					for _, tag := range knownTags {
						if strings.Contains(line, tag+":") {
							pos := fset.Position(c.Pos())
							idx[tagKey{pos.Filename, pos.Line + i, tag}] = true
						}
					}
				}
			}
		}
	}
	return idx
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
