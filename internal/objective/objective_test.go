package objective

import (
	"errors"
	"sort"
	"strings"
	"testing"

	"vm1place/internal/tech"
)

func TestRegistryNamesSortedAndComplete(t *testing.T) {
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Errorf("Names() not sorted: %v", names)
	}
	for _, want := range []string{"closedm1", "openm1", "netsep", "slackalpha"} {
		if _, err := Lookup(want); err != nil {
			t.Errorf("Lookup(%q) failed: %v", want, err)
		}
	}
	// Names must round-trip: every listed name resolves to an objective
	// reporting that name.
	for _, n := range names {
		o, err := Lookup(n)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", n, err)
		}
		if o.Name() != n {
			t.Errorf("Lookup(%q).Name() = %q", n, o.Name())
		}
	}
}

func TestLookupUnknownWrapsSentinel(t *testing.T) {
	_, err := Lookup("no-such-objective")
	if err == nil {
		t.Fatal("Lookup of unknown name succeeded")
	}
	if !errors.Is(err, ErrUnknownObjective) {
		t.Errorf("error %v does not wrap ErrUnknownObjective", err)
	}
	if !strings.Contains(err.Error(), "closedm1") {
		t.Errorf("error %v does not list registered names", err)
	}
}

func TestForArchMapping(t *testing.T) {
	cases := []struct {
		arch tech.Arch
		name string
	}{
		{tech.ClosedM1, "closedm1"},
		{tech.OpenM1, "openm1"},
		{tech.Conventional, "none"},
	}
	for _, c := range cases {
		o := ForArch(c.arch)
		if o.Name() != c.name {
			t.Errorf("ForArch(%v) = %q, want %q", c.arch, o.Name(), c.name)
		}
	}
	// The Conventional fallback must be inert: no pair ever feasible or
	// realized, and the uniform scalarization.
	o := ForArch(tech.Conventional)
	w := Weights{Alpha: 100, Epsilon: 0.5}
	if ok, _ := o.PairEval(w, PinGeom{AlignX: 5}, PinGeom{AlignX: 5}); ok {
		t.Error("inert objective realized a pair")
	}
	pv := PinView{AlignX: []int64{5}, ExtLo: []int64{0}, ExtHi: []int64{100},
		CenterX: []int64{50}, CenterY: []int64{0}, RowOf: []int{0}}
	if o.PairFeasible(w, pv, pv) {
		t.Error("inert objective reported a feasible pair")
	}
	if got := o.Value(w, 10, 3, 4, 0); got != 10-100*3-0.5*4 {
		t.Errorf("inert Value = %v", got)
	}
}

func TestClosedM1PairEval(t *testing.T) {
	o, _ := Lookup("closedm1")
	w := Weights{}
	if ok, _ := o.PairEval(w, PinGeom{AlignX: 350}, PinGeom{AlignX: 350}); !ok {
		t.Error("equal tracks not realized")
	}
	if ok, _ := o.PairEval(w, PinGeom{AlignX: 350}, PinGeom{AlignX: 450}); ok {
		t.Error("different tracks realized")
	}
}

func TestOpenM1PairEval(t *testing.T) {
	o, _ := Lookup("openm1")
	w := Weights{DeltaDBU: 50}
	a := PinGeom{ExtLo: 0, ExtHi: 140}
	b := PinGeom{ExtLo: 60, ExtHi: 200}
	ok, over := o.PairEval(w, a, b) // overlap 60..140 = 80 >= 50
	if !ok || over != 30 {
		t.Errorf("PairEval = (%v, %d), want (true, 30)", ok, over)
	}
}

func TestOpenM1PairEvalBelowDelta(t *testing.T) {
	o, _ := Lookup("openm1")
	w := Weights{DeltaDBU: 50}
	a := PinGeom{ExtLo: 0, ExtHi: 140}
	c := PinGeom{ExtLo: 100, ExtHi: 240} // overlap 40 < delta
	if ok, _ := o.PairEval(w, a, c); ok {
		t.Error("sub-delta overlap realized")
	}
}

func TestNetSepPairEval(t *testing.T) {
	o, _ := Lookup("netsep")
	w := Weights{DeltaDBU: 50} // margin defaults to 4*delta = 200
	a := PinGeom{CenterX: 1000}
	b := PinGeom{CenterX: 1150}
	ok, surplus := o.PairEval(w, a, b)
	if !ok || surplus != 50 {
		t.Errorf("PairEval = (%v, %d), want (true, 50)", ok, surplus)
	}
	far := PinGeom{CenterX: 1300}
	if ok, _ := o.PairEval(w, a, far); ok {
		t.Error("pair beyond margin realized")
	}
	// Explicit margin overrides the default.
	w.MarginDBU = 400
	if ok, surplus := o.PairEval(w, a, far); !ok || surplus != 100 {
		t.Errorf("PairEval with margin 400 = (%v, %d), want (true, 100)", ok, surplus)
	}
}

func TestSlackAlphaPairAlphaAndValue(t *testing.T) {
	o, _ := Lookup("slackalpha")
	w := Weights{Alpha: 1200, Epsilon: 0.02, NetAlpha: []float64{2, 0, -3}}
	cases := []struct {
		ni   int
		want float64
	}{
		{0, 2400}, // scaled
		{1, 1200}, // zero entry -> 1
		{2, 1200}, // negative entry -> 1
		{9, 1200}, // out of bounds -> 1
	}
	for _, c := range cases {
		if got := o.PairAlpha(w, c.ni); got != c.want {
			t.Errorf("PairAlpha(ni=%d) = %v, want %v", c.ni, got, c.want)
		}
	}
	// Value consumes the net-ordered reward sum, not alpha*align.
	if got := o.Value(w, 100, 3, 50, 2400); got != 100-2400-0.02*50 {
		t.Errorf("Value = %v", got)
	}
	// Geometry is inherited from closedm1.
	if o.Arch() != tech.ClosedM1 {
		t.Errorf("slackalpha arch = %v", o.Arch())
	}
	if ok, _ := o.PairEval(w, PinGeom{AlignX: 7}, PinGeom{AlignX: 7}); !ok {
		t.Error("slackalpha did not realize aligned tracks")
	}
}

func TestUniformObjectivesValueFormula(t *testing.T) {
	// Every uniform objective must scalarize exactly like the paper flows:
	// weighted - alpha*align - epsilon*over, ignoring the reward argument.
	w := Weights{Alpha: 1000, Epsilon: 0.02}
	for _, name := range []string{"closedm1", "openm1", "netsep"} {
		o, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		want := 12345.5 - w.Alpha*float64(7) - w.Epsilon*float64(900)
		if got := o.Value(w, 12345.5, 7, 900, 999); got != want {
			t.Errorf("%s.Value = %v, want %v", name, got, want)
		}
		if o.PairAlpha(w, 3) != w.Alpha {
			t.Errorf("%s.PairAlpha != Alpha", name)
		}
	}
}
