package lp

import "time"

// Arena is a reusable scratch workspace for repeated solves. A single
// branch-and-bound run over one window MILP re-solves the same Model
// hundreds of times with different bounds; without a scratch arena every
// solve allocates a fresh basis factorization plus a dozen working
// vectors, which makes allocation and GC a significant cost of the
// optimizer on top of the simplex arithmetic itself.
//
// An Arena is owned by exactly one caller at a time (one DistOpt worker
// goroutine, one MILP solve); it is not safe for concurrent use. Slices
// grow monotonically and are reused across solves of any model — only the
// columns/norm cache below is keyed to a specific model.
type Arena struct {
	// Model-keyed cache: the slack/artificial column structure, the
	// pricing norms and the perturbed RHS depend only on the model's
	// constraint matrix, which is immutable once rows are added (AddVar/
	// AddRow change the dimensions and invalidate the key; SetObj touches
	// only the objective, which is copied fresh every solve).
	model        *Model
	modelGen     uint64
	nVars, nRows int

	cols    [][]entry
	unit    []entry // backing store for slack/artificial unit columns
	colNorm []float64
	rhs     []float64 // perturbed RHS cache

	// Row-wise (CSR) copy of the structural constraint matrix, for the
	// dual-simplex pivot-row computation: α = ρᵀ·A gathered column-by-column
	// costs O(nTotal·nnz/col) per pivot, but scattered row-by-row it only
	// touches the columns of ρ's nonzero rows — and ρ = Bᵀ⁻¹·e_r is usually
	// hyper-sparse. Slack/artificial columns are unit vectors and are
	// scattered directly, so only structural entries are stored.
	rowPtr []int32
	rowCol []int32
	rowVal []float64
	rowCur []int32 // CSR fill cursor scratch (ensureRowMatrix)

	// lu is the sparse basis factorization (factor.go). It persists
	// across solves: a warm re-solve picks up the previous optimal basis's
	// factor and eta file as-is, refactorizing only when the fill or
	// stability triggers fire.
	lu *luFactor

	// Per-solve working storage, reset by newSimplex/solve.
	objP2      []float64
	lo, hi     []float64
	state      []varState
	xN, xB     []float64
	basis      []int
	inBasisRow []int
	resid      []float64
	phase1Obj  []float64
	y, w       []float64
	rho        []float64 // dual-simplex pivot-row BTRAN result
	wInd       []int32   // nonzero slots of the FTRAN spike in w
	cand       []int32   // pricing candidate list (lp.go)
	candScore  []float64
	d, alpha   []float64 // dual-simplex reduced costs and pivot row
	alphaInd   []int32   // nonzero columns of alpha (dual pivot-row scatter)
	alphaSeen  []bool    // scatter dedup marks; all-false outside the scatter
	redCost    []float64 // Solution.RedCost backing store

	// deadline, when set, makes iterate/dualIterate abort with IterLimit
	// once wall time passes it, so a caller's time budget also interrupts
	// long individual LP solves (big-window root relaxations), not just the
	// gaps between them.
	deadline time.Time
	hasDL    bool

	// Warm-start state: warm is set when the last solve of the bound model
	// finished phase 2 optimal, so the basis factorization left in lu/
	// basis/state/xN is dual feasible for any bound-change re-solve (branch-
	// and-bound children). warmSolves counts consecutive warm solves for
	// the coarse cold-refresh backstop in dual.go.
	warm       bool
	warmSolves int
}

// NewArena returns an empty scratch workspace.
func NewArena() *Arena { return &Arena{lu: &luFactor{}} }

// SetDeadline arms (or, with the zero time, disarms) the wall-clock abort
// for every solve that uses this arena.
func (a *Arena) SetDeadline(t time.Time) {
	a.deadline = t
	a.hasDL = !t.IsZero()
}

// InvalidateWarm drops the warm-start state, forcing the next solve through
// the deterministic cold path regardless of what this arena solved before.
// Parallel branch-and-bound uses it so a node relaxation's result is a pure
// function of (model, bounds, hint) — independent of which worker's arena
// solved it, and of what that arena solved previously.
func (a *Arena) InvalidateWarm() { a.warm = false }

// Stats returns the cumulative simplex-kernel counters of every solve that
// used this arena (solves, pivots, refactorizations, fill-in, eta file
// growth). See GlobalStats for the process-wide aggregate.
func (a *Arena) Stats() Stats {
	if a.lu == nil {
		return Stats{}
	}
	return a.lu.stats
}

// bind points the arena at a model, rebuilding the model-keyed caches if
// the model changed, and sizes all per-solve storage. It reports whether
// the caches were reused.
func (a *Arena) bind(m *Model) bool {
	n := m.NumVars()
	rows := m.NumRows()
	nTotal := n + 2*rows
	if a.lu == nil {
		a.lu = &luFactor{}
	}
	cached := a.model == m && a.modelGen == m.gen && a.nVars == n && a.nRows == rows
	if !cached {
		a.model, a.modelGen, a.nVars, a.nRows = m, m.gen, n, rows
		a.warm = false
		a.lu.reset(rows)
		a.cols = growSlice(a.cols, nTotal)
		copy(a.cols, m.cols)
		a.unit = growSlice(a.unit, 2*rows)
		for i := 0; i < rows; i++ {
			a.unit[i] = entry{row: i, val: 1}
			a.unit[rows+i] = entry{row: i, val: 1}
			a.cols[n+i] = a.unit[i : i+1 : i+1]
			a.cols[n+rows+i] = a.unit[rows+i : rows+i+1 : rows+i+1]
		}
		a.colNorm = a.colNorm[:0] // recomputed lazily by iterate
		a.rowPtr = a.rowPtr[:0] // CSR rebuilt lazily by ensureRowMatrix
		a.rhs = growSlice(a.rhs, rows)
		copy(a.rhs, m.rhs)
		perturbRHS(a.rhs)
	}
	a.objP2 = growSlice(a.objP2, nTotal)
	a.lo = growSlice(a.lo, nTotal)
	a.hi = growSlice(a.hi, nTotal)
	a.state = growSlice(a.state, nTotal)
	a.xN = growSlice(a.xN, nTotal)
	a.xB = growSlice(a.xB, rows)
	a.basis = growSlice(a.basis, rows)
	a.inBasisRow = growSlice(a.inBasisRow, nTotal)
	a.resid = growSlice(a.resid, rows)
	a.phase1Obj = growSlice(a.phase1Obj, nTotal)
	a.y = growSlice(a.y, rows)
	a.w = growSlice(a.w, rows)
	clear(a.w) // spike scratch must start zero (ftranSpike contract)
	a.rho = growSlice(a.rho, rows)
	a.wInd = growSlice(a.wInd, rows)[:0]
	a.cand = growSlice(a.cand, candListCap)[:0]
	a.candScore = growSlice(a.candScore, candListCap)[:0]
	a.d = growSlice(a.d, nTotal)
	a.alpha = growSlice(a.alpha, nTotal)
	a.alphaInd = growSlice(a.alphaInd, nTotal)[:0]
	a.alphaSeen = growSlice(a.alphaSeen, nTotal)
	return cached
}

// ensureRowMatrix transposes the bound model's structural columns into the
// CSR rows used by the dual pivot-row scatter (see rowPtr). Built on the
// first warm solve rather than in bind: purely cold consumers never pay for
// it. Entries within a row are in ascending column order, which keeps the
// dual candidate walk deterministic.
func (a *Arena) ensureRowMatrix() {
	rows := a.nRows
	if len(a.rowPtr) == rows+1 {
		return
	}
	m := a.model
	a.rowPtr = growSlice(a.rowPtr, rows+1)
	clear(a.rowPtr)
	for j := 0; j < a.nVars; j++ {
		for _, e := range m.cols[j] {
			a.rowPtr[e.row+1]++
		}
	}
	for i := 0; i < rows; i++ {
		a.rowPtr[i+1] += a.rowPtr[i]
	}
	nnz := int(a.rowPtr[rows])
	a.rowCol = growSlice(a.rowCol, nnz)
	a.rowVal = growSlice(a.rowVal, nnz)
	a.rowCur = growSlice(a.rowCur, rows)
	cur := a.rowCur
	copy(cur, a.rowPtr[:rows])
	for j := 0; j < a.nVars; j++ {
		for _, e := range m.cols[j] {
			p := cur[e.row]
			a.rowCol[p] = int32(j)
			a.rowVal[p] = e.val
			cur[e.row] = p + 1
		}
	}
}

// growSlice returns s resized to length n, reusing its backing array when
// capacity allows. Contents are unspecified.
func growSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// perturbRHS applies the deterministic tiny RHS shift that breaks the
// heavy primal degeneracy of assignment-structured models (thousands of
// stalled pivots otherwise). The shift is ~1e-9 of the problem scale, far
// below integrality and pruning tolerances.
func perturbRHS(rhs []float64) {
	scale := 1.0
	for _, b := range rhs {
		if b > scale {
			scale = b
		} else if -b > scale {
			scale = -b
		}
	}
	for i := range rhs {
		h := uint64(i+1) * 0x9E3779B97F4A7C15
		rhs[i] += 1e-9 * scale * (float64(h%1024)/1024.0 + 0.1)
	}
}
