package lp

// Sparse FTRAN/BTRAN over the LU factorization in factor.go.
//
// FTRAN solves B·x = b (constraint-row space → basis-slot space); BTRAN
// solves Bᵀ·y = c (slot space → row space). Both run in O(m + nnz) — the
// lower-triangular replay skips steps whose right-hand side is still zero,
// so a hyper-sparse RHS (an entering column with three nonzeros, a unit
// vector for a dual pivot row) touches only the entries it can reach, and
// the results carry indexed nonzero lists so the ratio test, the basic-
// value update and the eta append iterate nonzeros instead of dense
// m-vectors.

// ftranDense solves B·x = v in place: v enters indexed by constraint row,
// leaves indexed by basis slot.
func (f *luFactor) ftranDense(v []float64) {
	f.ftranBase(v)
	f.ftranEtas(v)
}

// ftranBase applies the base LU solve only (no etas).
func (f *luFactor) ftranBase(v []float64) {
	m := f.m
	// Lower replay in elimination order: rows reduced during elimination
	// get the same multiples of the pivot row subtracted. Only the steps
	// with multipliers (lsteps) are visited, and a step whose pivot-row
	// value is zero moves nothing — the hyper-sparse skip.
	for _, k := range f.lsteps {
		t := v[f.pr[k]]
		if t == 0 {
			continue
		}
		for e := f.lptr[k]; e < f.lptr[k+1]; e++ {
			v[f.lrow[e]] -= f.lval[e] * t
		}
	}
	// Back substitution on U, column-scatter form: once step c's value is
	// known, subtract its contribution from every earlier row carrying
	// column c. A step whose right-hand side is zero yields zero and
	// scatters nothing — its whole U column is skipped.
	tmp := f.tmp
	for c := m - 1; c >= 0; c-- {
		t := v[f.pr[c]]
		if t == 0 {
			tmp[c] = 0
			continue
		}
		t /= f.upiv[c]
		tmp[c] = t
		for e := f.ucptr[c]; e < f.ucptr[c+1]; e++ {
			v[f.pr[f.ucrow[e]]] -= f.ucval[e] * t
		}
	}
	for k := 0; k < m; k++ {
		v[f.pc[k]] = tmp[k]
	}
}

// ftranEtas applies the product-form updates in append order. An update
// whose pivot slot holds zero is a no-op and is skipped outright.
func (f *luFactor) ftranEtas(v []float64) {
	for t := 0; t < len(f.epos); t++ {
		r := f.epos[t]
		if v[r] == 0 {
			continue
		}
		pv := v[r] / f.epiv[t]
		v[r] = pv
		for e := f.eptr[t]; e < f.eptr[t+1]; e++ {
			v[f.eidx[e]] -= f.eval[e] * pv
		}
	}
}

// ftranSpike solves B·w = A_col for a sparse constraint column. w must be
// zero on entry; the result is left in w with its nonzero slots appended
// to ind (returned). The list is what keeps the downstream ratio test and
// xB update O(nnz) instead of O(m).
func (f *luFactor) ftranSpike(col []entry, w []float64, ind []int32) []int32 {
	for _, e := range col {
		w[e.row] += e.val
	}
	f.ftranDense(w)
	ind = ind[:0]
	for i := 0; i < f.m; i++ {
		if w[i] != 0 {
			ind = append(ind, int32(i))
		}
	}
	return ind
}

// clearSpike rezeroes w using its nonzero list.
func clearSpike(w []float64, ind []int32) {
	for _, i := range ind {
		w[i] = 0
	}
}

// btranDense solves Bᵀ·y = v in place: v enters indexed by basis slot,
// leaves indexed by constraint row.
func (f *luFactor) btranDense(v []float64) {
	f.btranEtas(v)
	m := f.m
	// Uᵀ forward solve, gather form: row k of Uᵀ is column k of U, already
	// available as the ucptr/ucrow/ucval column form, and every entry it
	// references (earlier steps) is solved by the time step k runs.
	tmp := f.tmp
	for k := 0; k < m; k++ {
		t := v[f.pc[k]]
		for e := f.ucptr[k]; e < f.ucptr[k+1]; e++ {
			if x := tmp[f.ucrow[e]]; x != 0 {
				t -= f.ucval[e] * x
			}
		}
		tmp[k] = t / f.upiv[k]
	}
	for k := 0; k < m; k++ {
		v[f.pr[k]] = tmp[k]
	}
	// Lᵀ replay in reverse elimination order: the pivot row of step k
	// absorbs the multipliers times the rows they fed during elimination.
	for s := len(f.lsteps) - 1; s >= 0; s-- {
		k := f.lsteps[s]
		acc := 0.0
		for e := f.lptr[k]; e < f.lptr[k+1]; e++ {
			acc += f.lval[e] * v[f.lrow[e]]
		}
		if acc != 0 {
			v[f.pr[k]] -= acc
		}
	}
}

// btranEtas applies the transposed eta inverses in reverse append order
// (only the pivot slot of each update changes).
func (f *luFactor) btranEtas(v []float64) {
	for t := len(f.epos) - 1; t >= 0; t-- {
		dot := 0.0
		for e := f.eptr[t]; e < f.eptr[t+1]; e++ {
			dot += f.eval[e] * v[f.eidx[e]]
		}
		r := f.epos[t]
		v[r] = (v[r] - dot) / f.epiv[t]
	}
}

// btranUnit solves Bᵀ·ρ = e_slot into rho (zeroed here first), yielding
// the constraint-row-space vector whose dot with a column gives that
// column's entry in basis row `slot` — the dual simplex pivot row.
func (f *luFactor) btranUnit(slot int, rho []float64) {
	clear(rho)
	rho[slot] = 1
	f.btranDense(rho)
}

// appendEta records the pivot (entering spike w with nonzero list ind,
// leaving slot r) as a product-form update. It returns false when the
// spike's pivot entry is too small relative to its largest entry for the
// update to be stable — the caller must then refactorize, recompute the
// spike and retry. force bypasses the stability check; callers set it when
// the factorization is already fresh, where refusing would loop (the ratio
// test has bounded the pivot away from zero).
func (f *luFactor) appendEta(w []float64, ind []int32, r int, force bool) bool {
	piv := w[r]
	if !force {
		maxAbs := 0.0
		for _, i := range ind {
			if v := abs(w[i]); v > maxAbs {
				maxAbs = v
			}
		}
		if abs(piv) < etaPivotTol*maxAbs {
			return false
		}
	}
	for _, i := range ind {
		if int(i) == r || w[i] == 0 {
			continue
		}
		f.eidx = append(f.eidx, i)
		f.eval = append(f.eval, w[i])
	}
	f.eptr = append(f.eptr, int32(len(f.eidx)))
	f.epos = append(f.epos, int32(r))
	f.epiv = append(f.epiv, piv)
	f.stats.EtaNnz += int64(len(f.eidx)) - int64(f.eptr[len(f.eptr)-2])
	return true
}
