package milp

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"vm1place/internal/lp"
)

// buildWindowLike constructs a random MILP shaped like the paper's window
// problems: exactly-one candidate groups with distinct fractional costs,
// continuous net-bound variables tied to the candidate choice, conflict
// rows, and indicator binaries with big-G coupling. Fractional costs keep
// LP optima unique, which is the regime the window MILPs live in after the
// lp package's deterministic RHS perturbation.
func buildWindowLike(rng *rand.Rand) *Model {
	m := lp.NewModel()
	mm := NewModel(m)
	nGroups := 2 + rng.Intn(3) // 2..4 cells
	varOf := make([][]int, nGroups)
	pos := make([][]float64, nGroups) // candidate "positions" for bounds
	for g := 0; g < nGroups; g++ {
		size := 2 + rng.Intn(4) // 2..5 candidates
		varOf[g] = make([]int, size)
		pos[g] = make([]float64, size)
		terms := make([]lp.Term, size)
		for k := 0; k < size; k++ {
			cost := rng.Float64() * 10
			varOf[g][k] = m.AddVar(0, 1, cost, "l")
			pos[g][k] = float64(rng.Intn(20)) + rng.Float64()
			terms[k] = lp.Term{Var: varOf[g][k], Coef: 1}
		}
		m.AddRow(lp.EQ, 1, terms...)
		mm.AddGroup(varOf[g])
	}
	// Net-bound variable: vmax >= position of each cell's choice.
	vmax := m.AddVar(0, math.Inf(1), 1+rng.Float64(), "max")
	for g := 0; g < nGroups; g++ {
		for k, v := range varOf[g] {
			m.AddRow(lp.GE, 0, lp.Term{Var: vmax, Coef: 1},
				lp.Term{Var: v, Coef: -pos[g][k]})
		}
	}
	// Conflict rows between random candidate pairs.
	for c := 0; c < 2+rng.Intn(3); c++ {
		g1, g2 := rng.Intn(nGroups), rng.Intn(nGroups)
		if g1 == g2 {
			continue
		}
		m.AddRow(lp.LE, 1,
			lp.Term{Var: varOf[g1][rng.Intn(len(varOf[g1]))], Coef: 1},
			lp.Term{Var: varOf[g2][rng.Intn(len(varOf[g2]))], Coef: 1})
	}
	// Indicator binary with big-G reward when two choices "pair up".
	if nGroups >= 2 {
		d := m.AddVar(0, 1, -(1 + rng.Float64()), "d")
		mm.MarkInt(d)
		k1, k2 := rng.Intn(len(varOf[0])), rng.Intn(len(varOf[1]))
		m.AddRow(lp.LE, 1, lp.Term{Var: d, Coef: 1},
			lp.Term{Var: varOf[0][k1], Coef: -0.5},
			lp.Term{Var: varOf[1][k2], Coef: -0.5})
	}
	return mm
}

// TestParallelWorkerInvariance checks the tentpole determinism contract:
// untimed parallel solves return identical results — status, objective,
// incumbent vector, node count and proven bound — at any Workers >= 2.
// (Workers <= 1 runs the sequential solver, whose warm-started dual
// re-solves follow different pivot paths; its agreement with the parallel
// scheme is checked to tolerance in TestSequentialVsParallel instead, since
// two different floating-point pivot sequences cannot promise bitwise-equal
// vertices.)
func TestParallelWorkerInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(90210))
	for trial := 0; trial < 60; trial++ {
		mm := buildWindowLike(rng)
		var base Result
		for wi, workers := range []int{2, 3, 8} {
			res := Solve(mm, Params{MaxNodes: 5000, Workers: workers})
			if wi == 0 {
				base = res
				continue
			}
			if res.Status != base.Status || res.Nodes != base.Nodes {
				t.Fatalf("trial %d workers %d: status/nodes = %s/%d, want %s/%d",
					trial, workers, res.Status, res.Nodes, base.Status, base.Nodes)
			}
			if res.Obj != base.Obj || res.BestBound != base.BestBound {
				t.Fatalf("trial %d workers %d: obj/bound = %v/%v, want %v/%v",
					trial, workers, res.Obj, res.BestBound, base.Obj, base.BestBound)
			}
			if len(res.X) != len(base.X) {
				t.Fatalf("trial %d workers %d: |X| = %d, want %d",
					trial, workers, len(res.X), len(base.X))
			}
			for j := range res.X {
				if res.X[j] != base.X[j] {
					t.Fatalf("trial %d workers %d: X[%d] = %v, want %v",
						trial, workers, j, res.X[j], base.X[j])
				}
			}
		}
	}
}

// TestSequentialVsParallel checks that the sequential solver (Workers=1)
// and the parallel scheme agree on every trial's outcome: same status,
// objectives equal to well under the branch-and-bound pruning tolerance,
// and the same integer assignment. Objectives are compared to 1e-7 — the
// two regimes solve node relaxations by different pivot sequences (warm
// dual chains vs cold from the parent vertex), so their vertices agree
// only to floating-point accumulation, not bitwise.
func TestSequentialVsParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(2718))
	for trial := 0; trial < 60; trial++ {
		mm := buildWindowLike(rng)
		seq := Solve(mm, Params{MaxNodes: 5000})
		par := Solve(mm, Params{MaxNodes: 5000, Workers: 4})
		if seq.Status != par.Status {
			t.Fatalf("trial %d: status %s (seq) != %s (par)", trial, seq.Status, par.Status)
		}
		if seq.Status != Optimal {
			continue
		}
		if math.Abs(seq.Obj-par.Obj) > 1e-7 {
			t.Fatalf("trial %d: obj %v (seq) != %v (par)", trial, seq.Obj, par.Obj)
		}
		for _, j := range mm.Ints {
			if math.Round(seq.X[j]) != math.Round(par.X[j]) {
				t.Fatalf("trial %d: int var %d = %v (seq) vs %v (par)",
					trial, j, seq.X[j], par.X[j])
			}
		}
	}
}

// TestParallelVsBrute cross-checks the parallel solver's optima against
// exhaustive enumeration on random binary problems (the sequential solver
// has the same check in TestRandomBinaryVsBrute).
func TestParallelVsBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(1331))
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(5)
		c := make([]float64, n)
		for i := range c {
			c[i] = rng.Float64()*20 - 10
		}
		row := make([]float64, n)
		for i := range row {
			row[i] = float64(rng.Intn(7) - 3)
		}
		rhs := float64(rng.Intn(9) - 2)

		bestObj := math.Inf(1)
		found := false
		for mask := 0; mask < 1<<n; mask++ {
			s := 0.0
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					s += row[i]
				}
			}
			if s > rhs+1e-9 {
				continue
			}
			obj := 0.0
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					obj += c[i]
				}
			}
			if obj < bestObj {
				bestObj = obj
				found = true
			}
		}

		m := lp.NewModel()
		mm := NewModel(m)
		for i := 0; i < n; i++ {
			mm.MarkInt(m.AddVar(0, 1, c[i], "v"))
		}
		var terms []lp.Term
		for i := 0; i < n; i++ {
			if row[i] != 0 {
				terms = append(terms, lp.Term{Var: i, Coef: row[i]})
			}
		}
		m.AddRow(lp.LE, rhs, terms...)
		res := Solve(mm, Params{Workers: 4})

		if !found {
			if res.Status != Infeasible {
				t.Fatalf("trial %d: brute infeasible, parallel %s", trial, res.Status)
			}
			continue
		}
		if res.Status != Optimal || math.Abs(res.Obj-bestObj) > 1e-4 {
			t.Fatalf("trial %d: parallel %s obj %f != brute %f", trial, res.Status, res.Obj, bestObj)
		}
	}
}

// TestParallelCancellation aborts parallel solves mid-tree via TimeLimit
// while workers hold speculative nodes. Run under -race (make race) it
// also exercises the claim/commit/quit synchronization. The seeded
// incumbent must survive every abort.
func TestParallelCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(5150))
	for trial := 0; trial < 20; trial++ {
		mm := buildWindowLike(rng)
		incumbent := make([]float64, mm.LP.NumVars())
		// All-zero is integral but violates the exactly-one rows; seed a
		// valid selection instead: first candidate of each group.
		for _, g := range mm.Groups {
			incumbent[g[0]] = 1
		}
		res := Solve(mm, Params{
			Workers:      8,
			TimeLimit:    time.Duration(1+trial%3) * time.Millisecond,
			Incumbent:    incumbent,
			IncumbentObj: 1e9,
		})
		if res.X == nil {
			t.Fatalf("trial %d: incumbent lost (status %s)", trial, res.Status)
		}
		if res.Obj > 1e9 {
			t.Fatalf("trial %d: incumbent worsened: %v", trial, res.Obj)
		}
	}
}
