package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"vm1place/internal/tech"
)

// TestVM1OptCtxCanceledBeforeStart: a context canceled up front must end
// the run at the first family boundary — no moves, empty history, legal
// placement — with an errors.Is-able cancellation error.
func TestVM1OptCtxCanceledBeforeStart(t *testing.T) {
	p := genPlaced(t, tech.ClosedM1, 300, 7, 0.75)
	prm := DefaultParams(p.Tech, tech.ClosedM1)
	prm.Workers = 2

	before := append([]int(nil), p.SiteX...)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	res, err := VM1OptCtx(ctx, p, prm, Sequence{{BW: 2000, BH: 2000, LX: 3, LY: 1}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res.Iters != 0 || len(res.History) != 0 {
		t.Errorf("canceled run executed pairs: iters %d, history %d", res.Iters, len(res.History))
	}
	for i, s := range p.SiteX {
		if s != before[i] {
			t.Fatalf("canceled run moved instance %d", i)
		}
	}
	if err := p.CheckLegal(); err != nil {
		t.Errorf("placement illegal after canceled run: %v", err)
	}
	if res.Final != res.Initial {
		t.Errorf("final objective drifted without moves: %+v vs %+v", res.Final, res.Initial)
	}
}

// TestVM1OptCtxCancelMidRun cancels while the optimizer is working. The
// run must stop at a family boundary with a legal placement, a truncated
// history, and a Final objective that matches a fresh full rescan of the
// partial placement.
func TestVM1OptCtxCancelMidRun(t *testing.T) {
	p := genPlaced(t, tech.ClosedM1, 500, 9, 0.75)
	prm := DefaultParams(p.Tech, tech.ClosedM1)
	prm.Workers = 2
	prm.TimeLimit = 50 * time.Millisecond

	// Long sequence so cancellation lands mid-run, not after convergence.
	var u Sequence
	for i := 0; i < 50; i++ {
		u = append(u, ParamSet{BW: 1000, BH: 1000, LX: 3, LY: 1})
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	res, err := VM1OptCtx(ctx, p, prm, u)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if len(res.History) != res.Iters {
		t.Errorf("history truncated inconsistently: %d entries, %d iters",
			len(res.History), res.Iters)
	}
	if err := p.CheckLegal(); err != nil {
		t.Errorf("placement illegal after mid-run cancel: %v", err)
	}
	got := CalculateObj(p, prm)
	if got.Alignments != res.Final.Alignments || got.HPWL != res.Final.HPWL {
		t.Errorf("partial Final inconsistent with rescan: %+v vs %+v", res.Final, got)
	}
}

// TestVM1OptCtxDeadlineClampsAndStops: an already-near deadline must end
// the run promptly (clamped window budgets plus the family-boundary check)
// and report context.DeadlineExceeded.
func TestVM1OptCtxDeadlineClampsAndStops(t *testing.T) {
	p := genPlaced(t, tech.ClosedM1, 400, 11, 0.75)
	prm := DefaultParams(p.Tech, tech.ClosedM1)
	prm.Workers = 2

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := VM1OptCtx(ctx, p, prm, Sequence{{BW: 1000, BH: 1000, LX: 3, LY: 1}})
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
	if err := p.CheckLegal(); err != nil {
		t.Errorf("placement illegal after deadline: %v", err)
	}
	// One window family may still be in flight at the deadline, but its
	// MILP budgets are clamped to the remaining time, so the overrun is
	// bounded by one family of clamped solves — far below the seconds an
	// unclamped family would take. Generous bound for CI noise.
	if elapsed > 5*time.Second {
		t.Errorf("deadline overrun: run took %v", elapsed)
	}
	if res.Final.HPWL == 0 {
		t.Errorf("partial result missing objective: %+v", res.Final)
	}
}

// TestVM1OptCtxBackgroundMatchesVM1Opt: with no deadline and a single
// worker the ctx path must be byte-for-byte the legacy path.
func TestVM1OptCtxBackgroundMatchesVM1Opt(t *testing.T) {
	pa := genPlaced(t, tech.ClosedM1, 300, 13, 0.75)
	pb := genPlaced(t, tech.ClosedM1, 300, 13, 0.75)
	u := Sequence{{BW: 2000, BH: 2000, LX: 3, LY: 1}}

	prm := DefaultParams(pa.Tech, tech.ClosedM1)
	prm.Workers = 1
	prm.TimeLimit = 0 // node-capped only: fully deterministic
	prm.MaxOuterIters = 1

	ra := VM1Opt(pa, prm, u)
	rb, err := VM1OptCtx(context.Background(), pb, prm, u)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Final != rb.Final || ra.Iters != rb.Iters {
		t.Errorf("ctx run diverged: %+v vs %+v", ra.Final, rb.Final)
	}
	for i := range pa.SiteX {
		if pa.SiteX[i] != pb.SiteX[i] || pa.Row[i] != pb.Row[i] || pa.Flip[i] != pb.Flip[i] {
			t.Fatalf("placements diverged at instance %d", i)
		}
	}
}
