package milp

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"vm1place/internal/lp"
)

const tol = 1e-5

func TestKnapsack(t *testing.T) {
	// max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6, binary.
	// (min negated): candidates: a+b (w7 no), a+c (w5, v17), b+c (w6, v20),
	// a (10), b (13), c (7). Best = b+c = 20.
	m := lp.NewModel()
	a := m.AddVar(0, 1, -10, "a")
	b := m.AddVar(0, 1, -13, "b")
	c := m.AddVar(0, 1, -7, "c")
	m.AddRow(lp.LE, 6, lp.Term{Var: a, Coef: 3}, lp.Term{Var: b, Coef: 4}, lp.Term{Var: c, Coef: 2})
	mm := NewModel(m)
	mm.MarkInt(a)
	mm.MarkInt(b)
	mm.MarkInt(c)
	res := Solve(mm, Params{})
	if res.Status != Optimal {
		t.Fatalf("status = %s", res.Status)
	}
	if math.Abs(res.Obj-(-20)) > tol {
		t.Errorf("obj = %f, want -20", res.Obj)
	}
	if math.Round(res.X[a]) != 0 || math.Round(res.X[b]) != 1 || math.Round(res.X[c]) != 1 {
		t.Errorf("x = %v, want (0,1,1)", res.X)
	}
}

func TestIntegerGeneral(t *testing.T) {
	// min -x - y s.t. 2x + 3y <= 12, x <= 4, y <= 3, integers.
	// LP opt is fractional; ILP best: try x=4: 8+3y<=12 -> y=1 -> obj -5;
	// x=3: 6+3y<=12 -> y=2 -> -5; x=1,y=3: 2+9=11<=12 -> -4... best -5.
	m := lp.NewModel()
	x := m.AddVar(0, 4, -1, "x")
	y := m.AddVar(0, 3, -1, "y")
	m.AddRow(lp.LE, 12, lp.Term{Var: x, Coef: 2}, lp.Term{Var: y, Coef: 3})
	mm := NewModel(m)
	mm.MarkInt(x)
	mm.MarkInt(y)
	res := Solve(mm, Params{})
	if res.Status != Optimal || math.Abs(res.Obj-(-5)) > tol {
		t.Fatalf("res = %+v, want obj -5", res)
	}
}

func TestInfeasibleMILP(t *testing.T) {
	m := lp.NewModel()
	x := m.AddVar(0, 1, 1, "x")
	y := m.AddVar(0, 1, 1, "y")
	// x + y = 1 and x + y = 2 simultaneously: infeasible even as LP.
	m.AddRow(lp.EQ, 1, lp.Term{Var: x, Coef: 1}, lp.Term{Var: y, Coef: 1})
	m.AddRow(lp.EQ, 2, lp.Term{Var: x, Coef: 1}, lp.Term{Var: y, Coef: 1})
	mm := NewModel(m)
	mm.MarkInt(x)
	mm.MarkInt(y)
	res := Solve(mm, Params{})
	if res.Status != Infeasible {
		t.Fatalf("status = %s, want infeasible", res.Status)
	}
}

func TestIntegralityInfeasible(t *testing.T) {
	// 2x = 1 with x binary: LP feasible (x=0.5) but no integer solution.
	m := lp.NewModel()
	x := m.AddVar(0, 1, 0, "x")
	m.AddRow(lp.EQ, 1, lp.Term{Var: x, Coef: 2})
	mm := NewModel(m)
	mm.MarkInt(x)
	res := Solve(mm, Params{})
	if res.Status != Infeasible {
		t.Fatalf("status = %s, want infeasible", res.Status)
	}
}

func TestGroupBranching(t *testing.T) {
	// Two exactly-one groups; coupling constraint forbids the cheap combo.
	m := lp.NewModel()
	a0 := m.AddVar(0, 1, 1, "a0")
	a1 := m.AddVar(0, 1, 5, "a1")
	b0 := m.AddVar(0, 1, 1, "b0")
	b1 := m.AddVar(0, 1, 4, "b1")
	m.AddRow(lp.EQ, 1, lp.Term{Var: a0, Coef: 1}, lp.Term{Var: a1, Coef: 1})
	m.AddRow(lp.EQ, 1, lp.Term{Var: b0, Coef: 1}, lp.Term{Var: b1, Coef: 1})
	// a0 + b0 <= 1: can't take both cheap options.
	m.AddRow(lp.LE, 1, lp.Term{Var: a0, Coef: 1}, lp.Term{Var: b0, Coef: 1})
	mm := NewModel(m)
	mm.AddGroup([]int{a0, a1})
	mm.AddGroup([]int{b0, b1})
	res := Solve(mm, Params{})
	if res.Status != Optimal {
		t.Fatalf("status = %s", res.Status)
	}
	// Best: a0 + b1 = 5 or a1 + b0 = 6 -> 5.
	if math.Abs(res.Obj-5) > tol {
		t.Errorf("obj = %f, want 5", res.Obj)
	}
}

func TestIncumbentPruning(t *testing.T) {
	// With a perfect incumbent and zero budget headroom, the solver should
	// still confirm optimality quickly and not degrade the incumbent.
	m := lp.NewModel()
	x := m.AddVar(0, 1, -3, "x")
	y := m.AddVar(0, 1, -2, "y")
	m.AddRow(lp.LE, 1, lp.Term{Var: x, Coef: 1}, lp.Term{Var: y, Coef: 1})
	mm := NewModel(m)
	mm.MarkInt(x)
	mm.MarkInt(y)
	res := Solve(mm, Params{Incumbent: []float64{1, 0}, IncumbentObj: -3})
	if res.Status != Optimal || math.Abs(res.Obj-(-3)) > tol {
		t.Fatalf("res = %+v, want optimal -3", res)
	}
}

func TestNodeLimit(t *testing.T) {
	// A larger knapsack with MaxNodes=1 must return the seeded incumbent
	// as Feasible (or prove optimality at the root, which small cases may).
	rng := rand.New(rand.NewSource(4))
	m := lp.NewModel()
	n := 20
	vars := make([]int, n)
	terms := make([]lp.Term, n)
	for i := 0; i < n; i++ {
		vars[i] = m.AddVar(0, 1, -float64(1+rng.Intn(20)), "v")
		terms[i] = lp.Term{Var: vars[i], Coef: float64(1 + rng.Intn(10))}
	}
	m.AddRow(lp.LE, 25, terms...)
	mm := NewModel(m)
	for _, v := range vars {
		mm.MarkInt(v)
	}
	zero := make([]float64, n)
	res := Solve(mm, Params{MaxNodes: 1, Incumbent: zero, IncumbentObj: 0})
	if res.Status != Feasible && res.Status != Optimal {
		t.Fatalf("status = %s", res.Status)
	}
	if res.Obj > 0 {
		t.Errorf("incumbent degraded: obj %f > 0", res.Obj)
	}
	if res.Nodes > 1 {
		t.Errorf("nodes = %d, want <= 1", res.Nodes)
	}
}

func TestTimeLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := lp.NewModel()
	n := 30
	var terms []lp.Term
	mm := NewModel(m)
	for i := 0; i < n; i++ {
		v := m.AddVar(0, 1, -float64(1+rng.Intn(100)), "v")
		terms = append(terms, lp.Term{Var: v, Coef: float64(1 + rng.Intn(30))})
		mm.MarkInt(v)
	}
	m.AddRow(lp.LE, 70, terms...)
	start := time.Now()
	res := Solve(mm, Params{TimeLimit: time.Millisecond})
	if time.Since(start) > 2*time.Second {
		t.Error("time limit not respected")
	}
	_ = res // any status is acceptable; we only test that it stops
}

func TestRounderHeuristic(t *testing.T) {
	// Rounder returns a known feasible point; with MaxNodes=1 the solver
	// must surface it even though it cannot finish the search.
	m := lp.NewModel()
	x := m.AddVar(0, 1, -2, "x")
	y := m.AddVar(0, 1, -3, "y")
	z := m.AddVar(0, 1, -4, "z")
	m.AddRow(lp.LE, 1.5, lp.Term{Var: x, Coef: 1}, lp.Term{Var: y, Coef: 1}, lp.Term{Var: z, Coef: 1})
	mm := NewModel(m)
	mm.MarkInt(x)
	mm.MarkInt(y)
	mm.MarkInt(z)
	called := false
	rounder := func(frac []float64) ([]float64, float64, bool) {
		called = true
		return []float64{0, 0, 1}, -4, true
	}
	res := Solve(mm, Params{MaxNodes: 1, Rounder: rounder})
	if !called {
		t.Fatal("rounder not invoked")
	}
	if res.Status == Limit || res.Status == Infeasible {
		t.Fatalf("status = %s, want a solution from the rounder", res.Status)
	}
	if res.Obj > -4+tol {
		t.Errorf("obj = %f, want <= -4", res.Obj)
	}
}

// TestRandomBinaryVsBrute cross-checks branch and bound against exhaustive
// enumeration on random binary MILPs.
func TestRandomBinaryVsBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 120; trial++ {
		n := 3 + rng.Intn(5) // 3..7 binaries
		nRows := 1 + rng.Intn(3)
		c := make([]float64, n)
		for i := range c {
			c[i] = float64(rng.Intn(21) - 10)
		}
		rows := make([][]float64, nRows)
		senses := make([]lp.Sense, nRows)
		rhs := make([]float64, nRows)
		for r := 0; r < nRows; r++ {
			rows[r] = make([]float64, n)
			for i := range rows[r] {
				rows[r][i] = float64(rng.Intn(7) - 3)
			}
			senses[r] = lp.Sense(rng.Intn(2)) // LE or GE (EQ rarely feasible)
			rhs[r] = float64(rng.Intn(9) - 2)
		}

		// Brute force.
		bestObj := math.Inf(1)
		found := false
		for mask := 0; mask < 1<<n; mask++ {
			ok := true
			for r := 0; r < nRows && ok; r++ {
				s := 0.0
				for i := 0; i < n; i++ {
					if mask&(1<<i) != 0 {
						s += rows[r][i]
					}
				}
				if senses[r] == lp.LE && s > rhs[r]+1e-9 {
					ok = false
				}
				if senses[r] == lp.GE && s < rhs[r]-1e-9 {
					ok = false
				}
			}
			if !ok {
				continue
			}
			obj := 0.0
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					obj += c[i]
				}
			}
			if obj < bestObj {
				bestObj = obj
				found = true
			}
		}

		// MILP.
		m := lp.NewModel()
		vars := make([]int, n)
		for i := 0; i < n; i++ {
			vars[i] = m.AddVar(0, 1, c[i], "v")
		}
		for r := 0; r < nRows; r++ {
			var terms []lp.Term
			for i := 0; i < n; i++ {
				if rows[r][i] != 0 {
					terms = append(terms, lp.Term{Var: vars[i], Coef: rows[r][i]})
				}
			}
			m.AddRow(senses[r], rhs[r], terms...)
		}
		mm := NewModel(m)
		for _, v := range vars {
			mm.MarkInt(v)
		}
		res := Solve(mm, Params{})

		if !found {
			if res.Status != Infeasible {
				t.Fatalf("trial %d: brute infeasible, milp %s obj %f", trial, res.Status, res.Obj)
			}
			continue
		}
		if res.Status != Optimal {
			t.Fatalf("trial %d: milp status %s, brute obj %f", trial, res.Status, bestObj)
		}
		if math.Abs(res.Obj-bestObj) > 1e-4 {
			t.Fatalf("trial %d: milp obj %f != brute %f (c=%v rows=%v senses=%v rhs=%v)",
				trial, res.Obj, bestObj, c, rows, senses, rhs)
		}
	}
}

// TestRandomSCPVsBrute cross-checks group branching on random
// candidate-selection problems shaped like the paper's window MILPs: k
// groups with exactly-one selection, pairwise coupling penalties via
// indicator rows.
func TestRandomSCPVsBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 60; trial++ {
		nGroups := 2 + rng.Intn(2) // 2..3 cells
		sizes := make([]int, nGroups)
		for g := range sizes {
			sizes[g] = 2 + rng.Intn(3) // 2..4 candidates
		}
		costs := make([][]float64, nGroups)
		for g := range costs {
			costs[g] = make([]float64, sizes[g])
			for k := range costs[g] {
				costs[g][k] = float64(rng.Intn(15))
			}
		}
		// Conflicts: random pairs (g1,k1,g2,k2) forbidden.
		type conflict struct{ g1, k1, g2, k2 int }
		var conflicts []conflict
		for c := 0; c < 3; c++ {
			g1 := rng.Intn(nGroups)
			g2 := rng.Intn(nGroups)
			if g1 == g2 {
				continue
			}
			conflicts = append(conflicts, conflict{g1, rng.Intn(sizes[g1]), g2, rng.Intn(sizes[g2])})
		}

		// Brute force over all selections.
		sel := make([]int, nGroups)
		bestObj := math.Inf(1)
		found := false
		var visit func(g int)
		visit = func(g int) {
			if g == nGroups {
				for _, cf := range conflicts {
					if sel[cf.g1] == cf.k1 && sel[cf.g2] == cf.k2 {
						return
					}
				}
				obj := 0.0
				for gg, k := range sel {
					obj += costs[gg][k]
				}
				if obj < bestObj {
					bestObj = obj
					found = true
				}
				return
			}
			for k := 0; k < sizes[g]; k++ {
				sel[g] = k
				visit(g + 1)
			}
		}
		visit(0)

		// MILP with groups.
		m := lp.NewModel()
		varOf := make([][]int, nGroups)
		mm := NewModel(m)
		for g := 0; g < nGroups; g++ {
			varOf[g] = make([]int, sizes[g])
			var terms []lp.Term
			for k := 0; k < sizes[g]; k++ {
				varOf[g][k] = m.AddVar(0, 1, costs[g][k], "l")
				terms = append(terms, lp.Term{Var: varOf[g][k], Coef: 1})
			}
			m.AddRow(lp.EQ, 1, terms...)
			mm.AddGroup(varOf[g])
		}
		for _, cf := range conflicts {
			m.AddRow(lp.LE, 1,
				lp.Term{Var: varOf[cf.g1][cf.k1], Coef: 1},
				lp.Term{Var: varOf[cf.g2][cf.k2], Coef: 1})
		}
		res := Solve(mm, Params{})

		if !found {
			if res.Status != Infeasible {
				t.Fatalf("trial %d: brute infeasible, milp %s", trial, res.Status)
			}
			continue
		}
		if res.Status != Optimal || math.Abs(res.Obj-bestObj) > 1e-4 {
			t.Fatalf("trial %d: milp %s obj %f != brute %f", trial, res.Status, res.Obj, bestObj)
		}
	}
}

func TestBestBoundReported(t *testing.T) {
	m := lp.NewModel()
	x := m.AddVar(0, 1, -1, "x")
	mm := NewModel(m)
	mm.MarkInt(x)
	res := Solve(mm, Params{})
	if res.Status != Optimal {
		t.Fatalf("status = %s", res.Status)
	}
	if res.BestBound > res.Obj+tol {
		t.Errorf("best bound %f exceeds obj %f", res.BestBound, res.Obj)
	}
}

func TestStatusStrings(t *testing.T) {
	for s, want := range map[Status]string{
		Optimal: "optimal", Feasible: "feasible", Infeasible: "infeasible",
		Limit: "limit", Status(9): "unknown",
	} {
		if s.String() != want {
			t.Errorf("Status(%d) = %q, want %q", int(s), s.String(), want)
		}
	}
}
