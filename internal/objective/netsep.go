package objective

import (
	"vm1place/internal/lp"
	"vm1place/internal/tech"
)

// netSep is the net-separation/margin-maximization objective for
// PCB-style inputs (Cheng et al., "Net Separation-Oriented Printed
// Circuit Board Placement via Margin Maximization" — see PAPERS.md): a
// pair is realized when its pin centers sit within MarginDBU of each
// other horizontally (short, directly escapable connections), and the
// surplus margin MarginDBU − |Δx| is maximized at weight ε — the same
// margin-as-objective idea, mapped onto the window MILP's pair machinery.
//
// The objective runs on the OpenM1 pin geometry (wide horizontal pads,
// the closest library analogue of PCB pads) and the γ-row eligibility
// window.
type netSep struct{}

var netSepObj GeomObjective = netSep{}

func init() { Register(netSepObj) }

func (netSep) Name() string    { return "netsep" }
func (netSep) Arch() tech.Arch { return tech.OpenM1 }

func (netSep) AlignGammaDefault(gammaRows int) int { return gammaRows }

func (netSep) PairAlpha(w Weights, ni int) float64 { return w.Alpha }

// marginOf is the effective separation margin: MarginDBU when set, else
// 4·δ (200 DBU = 2 sites at the default technology).
func marginOf(w Weights) int64 {
	if w.MarginDBU > 0 {
		return w.MarginDBU
	}
	return 4 * w.DeltaDBU
}

func (netSep) PairEval(w Weights, a, b PinGeom) (bool, int64) {
	d := a.CenterX - b.CenterX
	if d < 0 {
		d = -d
	}
	if margin := marginOf(w); d <= margin {
		return true, margin - d
	}
	return false, 0
}

// PairFeasible: the minimum achievable |Δx| across candidates must reach
// the margin. The minimum distance of the two center ranges is 0 when
// they intersect, else the gap between them.
func (netSep) PairFeasible(w Weights, a, b PinView) bool {
	loA, hiA := minMax64(a.CenterX)
	loB, hiB := minMax64(b.CenterX)
	var dist int64
	if loA > hiB {
		dist = loA - hiB
	} else if loB > hiA {
		dist = loB - hiA
	}
	return dist <= marginOf(w)
}

// EmitPair linearizes the margin reward. With Δ = cx_p − cx_q (linear in
// λ), t ≥ |Δ| and s the rewarded surplus:
//
//	Δ ± gx·d within ±(margin + gx)   — d=1 forces |Δ| <= margin
//	|Δy| <= γH + gy(1−d)             — row gate, as ClosedM1
//	t ≥ Δ, t ≥ −Δ                    — t upper-bounds nothing: s pushes it to |Δ|
//	s + t <= margin + gx(1−d)        — d=1: s <= margin − |Δ|
//	s <= margin·d                    — d=0: no surplus
//
// where gx is the tightest big-G from the candidate center ranges.
func (netSep) EmitPair(e Emit, w Weights, d int, p, q PinView, tb []lp.Term) []lp.Term {
	m := e.M
	margin := float64(marginOf(w))
	loP, hiP := minMax64(p.CenterX)
	loQ, hiQ := minMax64(q.CenterX)
	gx := float64(max64(hiP-loQ, hiQ-loP)) + 1
	loPy, hiPy := minMax64(p.CenterY)
	loQy, hiQy := minMax64(q.CenterY)
	gy := float64(max64(hiPy-loQy, hiQy-loPy)) + 1
	t := m.AddVar(0, gx, 0, "t")
	s := m.AddVar(0, margin, -w.Epsilon, "s")
	// |Δ| <= margin when d=1.
	var cp, cq float64
	tb = tb[:0]
	tb, cp = AppendPin(tb, p, p.CenterX, 1)
	tb, cq = AppendPin(tb, q, q.CenterX, -1)
	n := len(tb)
	tb = append(tb, lp.Term{Var: d, Coef: gx})
	m.AddRow(lp.LE, gx+margin-cp+cq, tb...)
	tb = tb[:n]
	tb = append(tb, lp.Term{Var: d, Coef: -gx})
	m.AddRow(lp.GE, -gx-margin-cp+cq, tb...)
	// t >= |Δ|.
	tb = tb[:n]
	tb = append(tb, lp.Term{Var: t, Coef: -1})
	m.AddRow(lp.LE, -cp+cq, tb...)
	tb = tb[:0]
	tb, cp = AppendPin(tb, p, p.CenterX, -1)
	tb, cq = AppendPin(tb, q, q.CenterX, 1)
	tb = append(tb, lp.Term{Var: t, Coef: -1})
	m.AddRow(lp.LE, cp-cq, tb...)
	// Row gate: |Δy| <= γH + gy(1-d).
	var cpy, cqy float64
	tb = tb[:0]
	tb, cpy = AppendPin(tb, p, p.CenterY, 1)
	tb, cqy = AppendPin(tb, q, q.CenterY, -1)
	n = len(tb)
	tb = append(tb, lp.Term{Var: d, Coef: gy})
	m.AddRow(lp.LE, gy+e.GammaH-cpy+cqy, tb...)
	tb = tb[:n]
	tb = append(tb, lp.Term{Var: d, Coef: -gy})
	m.AddRow(lp.GE, -gy-e.GammaH-cpy+cqy, tb...)
	// Surplus linearization.
	m.AddRow(lp.LE, gx+margin,
		lp.Term{Var: s, Coef: 1}, lp.Term{Var: t, Coef: 1}, lp.Term{Var: d, Coef: gx})
	m.AddRow(lp.LE, 0, lp.Term{Var: s, Coef: 1}, lp.Term{Var: d, Coef: -margin})
	return tb
}

func (netSep) Value(w Weights, weighted float64, align int, over int64, reward float64) float64 {
	return uniformValue(w, weighted, align, over)
}
