// Package objective defines the pluggable geometry-objective interface of
// vm1place: the per-pair reward a placement earns when two pins of a net
// become directly routable (or otherwise geometrically "good"), together
// with the MILP variable/constraint rows that linearize the reward inside
// a window subproblem (internal/core's wmilp).
//
// The paper's two formulations — ClosedM1 track alignment and OpenM1 pin
// overlap — are the first two registered implementations; the optimizer
// itself (candidate enumeration, occupancy rows, HPWL bounds, incremental
// tracking, sharding) is objective-agnostic. New placement workloads plug
// in by implementing GeomObjective and registering under a name:
//
//   - "netsep": net-separation/margin maximization for PCB-style inputs
//     (Cheng et al., see PAPERS.md) — pairs are rewarded for keeping their
//     pin centers within a margin, with the surplus margin maximized;
//   - "slackalpha": timing-driven weighting where per-net STA slack scales
//     each net's α, so critical nets buy alignment first (GOALPlace-style
//     end-metric weighting).
//
// # Determinism contract
//
// Implementations MUST be pure functions of their inputs: no clocks, no
// global randomness, no hidden state (the package is covered by vm1lint's
// maporder/clockrand analyzers). EmitPair must emit its AddVar/AddRow
// calls in a fixed order — row order steers simplex pivoting, and the
// repo's golden-flow tests pin single-worker runs bit-for-bit. PairEval
// must be exact integer geometry so core.ObjTracker's incremental caches
// reproduce a full rescan; Value must reduce its float terms in a fixed
// order for the same reason.
package objective

import (
	"vm1place/internal/lp"
	"vm1place/internal/milp"
	"vm1place/internal/tech"
)

// Weights bundles the scalarization constants an objective consumes. It
// is a cheap value view assembled from core.Params on the fly; the slice
// field aliases the caller's storage and is never mutated.
type Weights struct {
	// Alpha is the reward per realized pair (the paper's α).
	Alpha float64
	// Epsilon weighs the pair's surplus quantity — overlap length beyond δ
	// for "openm1", separation margin for "netsep" (the paper's ε).
	Epsilon float64
	// DeltaDBU is the minimum OpenM1 overlap length (the paper's δ).
	DeltaDBU int64
	// MarginDBU is the "netsep" separation margin; <= 0 selects the
	// objective's default (4·δ).
	MarginDBU int64
	// NetAlpha holds optional per-net α multipliers (indexed like
	// Design.Nets); "slackalpha" consumes it, uniform objectives ignore
	// it. Entries <= 0 or beyond the slice bounds mean 1.
	NetAlpha []float64
}

// PinGeom is the scalar geometry of one pin under one concrete placement
// choice — the view PairEval scores.
type PinGeom struct {
	// Row is the pin's placement row (the caller gates |Δrow| <= γ before
	// calling PairEval, so implementations need not re-check it).
	Row int
	// AlignX is the absolute ClosedM1 track x of the pin.
	AlignX int64
	// ExtLo/ExtHi are the absolute OpenM1 x extent.
	ExtLo, ExtHi int64
	// CenterX is the pin's x center ((ExtLo+ExtHi)/2 for library pins).
	CenterX int64
}

// PinView is the per-candidate geometry of one window pin: index k holds
// the pin's geometry under the owning cell's k-th placement candidate.
// Fixed pins have single-element arrays and a nil Lambda.
type PinView struct {
	// Lambda holds the MILP λ variable ids of the owning cell's
	// candidates, or nil for a fixed pin.
	Lambda []int

	CenterX, CenterY []int64
	AlignX           []int64
	ExtLo, ExtHi     []int64
	RowOf            []int
}

// At returns the scalar geometry of candidate k (0 for fixed pins).
func (p PinView) At(k int) PinGeom {
	return PinGeom{
		Row:     p.RowOf[k],
		AlignX:  p.AlignX[k],
		ExtLo:   p.ExtLo[k],
		ExtHi:   p.ExtHi[k],
		CenterX: p.CenterX[k],
	}
}

// Emit is the window-MILP assembly context handed to EmitPair.
type Emit struct {
	M  *lp.Model
	MM *milp.Model
	// GammaH is the pair-eligibility row window in DBU
	// (alignGamma · RowHeight), for the |Δy| gating rows.
	GammaH float64
}

// GeomObjective is one pluggable geometry objective: the per-pair reward
// terms, the per-net α weights, and the MILP rows that linearize them.
// Implementations must be stateless values safe for concurrent use.
type GeomObjective interface {
	// Name is the registry key ("closedm1", "openm1", ...).
	Name() string
	// Arch is the cell architecture whose pin geometry the objective
	// evaluates — it selects the library pin synthesis and the router's
	// capacity model for flows driven by an objective name.
	Arch() tech.Arch
	// AlignGammaDefault is the pair-eligibility row window used when the
	// caller does not override it (the paper uses 1 for ClosedM1
	// Constraint (4), γ for OpenM1 Constraint (12)).
	AlignGammaDefault(gammaRows int) int
	// PairAlpha is the effective α of one pair on net ni. Uniform
	// objectives return w.Alpha exactly (bit-identical scalarization).
	PairAlpha(w Weights, ni int) float64
	// PairEval scores one pair under concrete geometry: whether the pair
	// is realized (counted as an "alignment") and its integer surplus
	// (overlap beyond δ, margin below MarginDBU, ... — weighted by ε).
	// The caller has already gated |Δrow| <= alignGamma.
	PairEval(w Weights, a, b PinGeom) (bool, int64)
	// PairFeasible conservatively tests whether ANY candidate combination
	// of the two pins can realize the pair (row distance is pre-gated by
	// the caller). Used to prune pair variables from the window MILP.
	PairFeasible(w Weights, a, b PinView) bool
	// EmitPair appends the pair's constraint rows (and any auxiliary
	// variables) to the window MILP. d is the pair's binary reward
	// variable, already added with objective coefficient -PairAlpha and
	// marked integer by the caller. tb is a reusable term buffer; the
	// (possibly regrown) buffer is returned so the caller's workspace
	// keeps it. Emission order must be deterministic — see the package
	// comment.
	EmitPair(e Emit, w Weights, d int, p, q PinView, tb []lp.Term) []lp.Term
	// Value scalarizes the accumulated totals: weighted is Σ βn·HPWL(n)
	// (net order), align/over the integer pair totals, and reward the
	// net-ordered float sum Σ PairAlpha(n)·align(n) for objectives whose
	// α varies per net. Uniform objectives must compute exactly
	// weighted − α·align − ε·over to stay bit-identical with the paper
	// flows.
	Value(w Weights, weighted float64, align int, over int64, reward float64) float64
}

// AppendPin appends the λ-terms of a pin coordinate (scaled by sign) to
// dst and returns the pin's constant contribution (fixed pins contribute
// no terms; the caller folds the constant into the row's RHS). vals must
// be one of the PinView's per-candidate arrays.
func AppendPin(dst []lp.Term, p PinView, vals []int64, sign float64) ([]lp.Term, float64) {
	if p.Lambda == nil {
		return dst, float64(vals[0])
	}
	for k, v := range vals {
		dst = append(dst, lp.Term{Var: p.Lambda[k], Coef: sign * float64(v)})
	}
	return dst, 0
}

// uniformValue is the paper's scalarization Σβn·wn − α·#pairs − ε·Σsurplus,
// with the exact float reduction order the pre-refactor code used (the
// golden-flow tests pin it bit-for-bit).
func uniformValue(w Weights, weighted float64, align int, over int64) float64 {
	return weighted - w.Alpha*float64(align) - w.Epsilon*float64(over)
}

func minMax64(v []int64) (int64, int64) {
	lo, hi := v[0], v[0]
	for _, x := range v {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
