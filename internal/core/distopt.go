package core

import (
	"sync"

	"vm1place/internal/geom"
	"vm1place/internal/layout"
)

// DistOpt is Algorithm 2: partition the layout into bw x bh windows at
// offset (tx, ty), then optimize diagonal families of windows (disjoint x
// and y projections, Figure 3) in parallel. allowMove/allowFlip select the
// pass mode of Algorithm 1 (perturb with f=0, or flip-only with f=1).
//
// Each family is solved against a snapshot of the placement and applied
// before the next family starts, so parallel solves never race; windows in
// one family are disjoint, so applying their solutions cannot conflict.
func DistOpt(p *layout.Placement, prm Params, ps ParamSet, tx, ty int64,
	allowMove, allowFlip bool) Objective {
	rects, nwx, nwy := partition(p, ps, tx, ty)
	buckets := bucketInsts(p, ps, tx, ty, nwx, nwy)

	workers := prm.Workers
	if workers <= 0 {
		workers = 1
	}

	// Diagonal scheduling: family f holds windows with (wi - wj) ≡ f
	// (mod D); within a family, window x indices and y indices are all
	// distinct, so projections are disjoint.
	d := nwx
	if nwy > d {
		d = nwy
	}
	for f := 0; f < d; f++ {
		var family []int
		for wj := 0; wj < nwy; wj++ {
			for wi := 0; wi < nwx; wi++ {
				if ((wi-wj)%d+d)%d == f {
					family = append(family, wj*nwx+wi)
				}
			}
		}
		if len(family) == 0 {
			continue
		}

		snap := p.Clone()
		type result struct {
			w      *window
			assign []int
		}
		results := make([]result, len(family))
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for k, widx := range family {
			wg.Add(1)
			sem <- struct{}{}
			go func(k, widx int) {
				defer wg.Done()
				defer func() { <-sem }()
				w := buildWindow(snap, prm, rects[widx], ps, buckets[widx], allowMove, allowFlip)
				results[k] = result{w: w, assign: w.solve()}
			}(k, widx)
		}
		wg.Wait()

		for _, res := range results {
			if res.assign == nil {
				continue
			}
			for ci, inst := range res.w.movable {
				cd := res.w.cand[ci][res.assign[ci]]
				p.SetLoc(inst, cd.site, cd.row, cd.flip)
			}
		}
	}
	return CalculateObj(p, prm)
}

// partition tiles the die with bw x bh windows offset by (tx, ty),
// returning the window rectangles in row-major order plus grid dimensions.
func partition(p *layout.Placement, ps ParamSet, tx, ty int64) ([]geom.Rect, int, int) {
	bw, bh := ps.BW, ps.BH
	if bw <= 0 {
		bw = p.DieWidth()
	}
	if bh <= 0 {
		bh = p.DieHeight()
	}
	x0 := mod64(tx, bw) - bw
	y0 := mod64(ty, bh) - bh
	nwx := int((p.DieWidth()-x0)/bw) + 1
	nwy := int((p.DieHeight()-y0)/bh) + 1
	rects := make([]geom.Rect, 0, nwx*nwy)
	for wj := 0; wj < nwy; wj++ {
		for wi := 0; wi < nwx; wi++ {
			rects = append(rects, geom.Rect{
				XLo: x0 + int64(wi)*bw,
				YLo: y0 + int64(wj)*bh,
				XHi: x0 + int64(wi+1)*bw,
				YHi: y0 + int64(wj+1)*bh,
			})
		}
	}
	return rects, nwx, nwy
}

// bucketInsts assigns every instance to each window its rectangle
// intersects.
func bucketInsts(p *layout.Placement, ps ParamSet, tx, ty int64, nwx, nwy int) [][]int {
	bw, bh := ps.BW, ps.BH
	if bw <= 0 {
		bw = p.DieWidth()
	}
	if bh <= 0 {
		bh = p.DieHeight()
	}
	x0 := mod64(tx, bw) - bw
	y0 := mod64(ty, bh) - bh
	buckets := make([][]int, nwx*nwy)
	for i := range p.Design.Insts {
		r := p.InstRect(i)
		wi0 := int((r.XLo - x0) / bw)
		wi1 := int((r.XHi - 1 - x0) / bw)
		wj0 := int((r.YLo - y0) / bh)
		wj1 := int((r.YHi - 1 - y0) / bh)
		for wj := clampInt(wj0, 0, nwy-1); wj <= clampInt(wj1, 0, nwy-1); wj++ {
			for wi := clampInt(wi0, 0, nwx-1); wi <= clampInt(wi1, 0, nwx-1); wi++ {
				buckets[wj*nwx+wi] = append(buckets[wj*nwx+wi], i)
			}
		}
	}
	return buckets
}

func mod64(a, m int64) int64 {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
