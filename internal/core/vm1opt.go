package core

import (
	"math"
	"time"

	"vm1place/internal/layout"
)

// Result summarizes one VM1Opt run.
type Result struct {
	// Initial and Final objectives.
	Initial, Final Objective
	// History holds the objective after every DistOpt pair.
	History []Objective
	// Iters counts DistOpt pairs executed.
	Iters int
	// Duration is wall time of the optimization.
	Duration time.Duration
}

// VM1Opt is Algorithm 1: for each parameter set u in the sequence U,
// alternate a perturbation pass (f=0) and a flip pass (f=1) of DistOpt,
// shifting the window grid between iterations to cover boundary cells,
// until the relative objective improvement drops below θ; then advance to
// the next parameter set.
//
// The placement is optimized in place and stays legal throughout. One
// ObjTracker carries the objective incrementally across every pass, the
// window grid is computed once per perturb+flip pair (both passes share
// the same offset), and each worker keeps one LP arena for the whole run
// so warm starts survive across windows, families and passes.
func VM1Opt(p *layout.Placement, prm Params, u Sequence) Result {
	start := time.Now()
	t := NewObjTracker(p, prm)
	res := Result{Initial: t.Objective()}
	obj := res.Initial
	arenas := newArenaPool(workersOf(prm))

	for _, ps := range u {
		var tx, ty int64
		iters := 0
		for {
			preObj := obj.Value
			g := makeGrid(p, ps, tx, ty)

			// Perturbation pass: move within (lx, ly), keep orientation.
			distPass(t, ps, g, arenas, true, false)
			// Flip pass: keep location, optimize orientation.
			obj = distPass(t, ps, g, arenas, false, true)

			// Shift windows to pick up previously-unoptimizable boundary
			// cells (Section 4.2).
			tx += ps.BW / 2
			ty += ps.BH / 2

			res.History = append(res.History, obj)
			res.Iters++
			iters++

			dObj := (preObj - obj.Value) / math.Max(math.Abs(preObj), 1)
			if dObj < prm.Theta {
				break
			}
			if prm.MaxOuterIters > 0 && iters >= prm.MaxOuterIters {
				break
			}
		}
	}
	res.Final = obj
	res.Duration = time.Since(start)
	return res
}

// VM1OptJoint is the ablation variant of Algorithm 1 that optimizes
// location and orientation *simultaneously* in each window MILP instead of
// the paper's sequential perturb-then-flip passes. The paper observes the
// sequential scheme is faster at similar quality (§4.2); this variant
// exists to reproduce that comparison.
func VM1OptJoint(p *layout.Placement, prm Params, u Sequence) Result {
	start := time.Now()
	t := NewObjTracker(p, prm)
	res := Result{Initial: t.Objective()}
	obj := res.Initial
	arenas := newArenaPool(workersOf(prm))

	for _, ps := range u {
		var tx, ty int64
		iters := 0
		for {
			preObj := obj.Value
			obj = distPass(t, ps, makeGrid(p, ps, tx, ty), arenas, true, true)
			tx += ps.BW / 2
			ty += ps.BH / 2
			res.History = append(res.History, obj)
			res.Iters++
			iters++
			dObj := (preObj - obj.Value) / math.Max(math.Abs(preObj), 1)
			if dObj < prm.Theta {
				break
			}
			if prm.MaxOuterIters > 0 && iters >= prm.MaxOuterIters {
				break
			}
		}
	}
	res.Final = obj
	res.Duration = time.Since(start)
	return res
}
