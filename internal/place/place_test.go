package place

import (
	"math/rand"
	"testing"

	"vm1place/internal/cells"
	"vm1place/internal/layout"
	"vm1place/internal/netlist"
	"vm1place/internal/tech"
)

func mkPlacement(t *testing.T, n int, util float64, seed int64) *layout.Placement {
	t.Helper()
	tc := tech.Default()
	lib := cells.MustNewLibrary(tc, tech.ClosedM1)
	d := netlist.MustGenerate(lib, netlist.DefaultGenConfig("p", n, seed))
	return layout.MustNewFloorplan(tc, d, util)
}

func TestGlobalProducesLegalPlacement(t *testing.T) {
	p := mkPlacement(t, 800, 0.75, 21)
	if err := Global(p, Options{}); err != nil {
		t.Fatalf("Global failed: %v", err)
	}
	if err := p.CheckLegal(); err != nil {
		t.Fatalf("placement illegal: %v", err)
	}
}

func TestGlobalBeatsRandomHPWL(t *testing.T) {
	p := mkPlacement(t, 1000, 0.75, 22)
	if err := Global(p, Options{}); err != nil {
		t.Fatal(err)
	}
	placed := p.TotalHPWL()

	// Random legal placement of the same design for comparison.
	q := p.Clone()
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, len(q.Design.Insts))
	ys := make([]float64, len(q.Design.Insts))
	for i := range xs {
		xs[i] = rng.Float64() * float64(q.DieWidth())
		ys[i] = rng.Float64() * float64(q.DieHeight())
	}
	if err := Legalize(q, xs, ys); err != nil {
		t.Fatal(err)
	}
	random := q.TotalHPWL()

	if placed >= random {
		t.Errorf("global placement HPWL %d not better than random %d", placed, random)
	}
	// Expect a solid improvement, not a rounding artifact.
	if float64(placed) > 0.8*float64(random) {
		t.Errorf("global placement HPWL %d only marginally better than random %d", placed, random)
	}
}

func TestGlobalHighUtilization(t *testing.T) {
	p := mkPlacement(t, 600, 0.84, 23)
	if err := Global(p, Options{}); err != nil {
		t.Fatalf("Global at 84%% util failed: %v", err)
	}
	if err := p.CheckLegal(); err != nil {
		t.Fatalf("placement illegal: %v", err)
	}
}

func TestGlobalDeterministic(t *testing.T) {
	p1 := mkPlacement(t, 400, 0.75, 24)
	p2 := mkPlacement(t, 400, 0.75, 24)
	if err := Global(p1, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := Global(p2, Options{}); err != nil {
		t.Fatal(err)
	}
	for i := range p1.SiteX {
		if p1.SiteX[i] != p2.SiteX[i] || p1.Row[i] != p2.Row[i] {
			t.Fatalf("instance %d placed differently across runs", i)
		}
	}
}

func TestLegalizeRespectsDesiredPositions(t *testing.T) {
	p := mkPlacement(t, 200, 0.5, 25)
	n := len(p.Design.Insts)
	xs := make([]float64, n)
	ys := make([]float64, n)
	// Desired: everything spread on a diagonal.
	for i := 0; i < n; i++ {
		f := float64(i) / float64(n)
		xs[i] = f * float64(p.DieWidth())
		ys[i] = f * float64(p.DieHeight())
	}
	if err := Legalize(p, xs, ys); err != nil {
		t.Fatal(err)
	}
	if err := p.CheckLegal(); err != nil {
		t.Fatal(err)
	}
	// Average displacement should be modest (< 8 rows equivalent).
	var total float64
	for i := 0; i < n; i++ {
		dx := float64(p.InstX(i)) - xs[i]
		dy := float64(p.InstY(i)) - ys[i]
		if dx < 0 {
			dx = -dx
		}
		if dy < 0 {
			dy = -dy
		}
		total += dx + dy
	}
	avg := total / float64(n)
	if avg > 8*float64(p.Tech.RowHeight) {
		t.Errorf("average displacement %f DBU too large", avg)
	}
}

func TestLegalizeOverflowErrors(t *testing.T) {
	tc := tech.Default()
	lib := cells.MustNewLibrary(tc, tech.ClosedM1)
	d := netlist.MustGenerate(lib, netlist.DefaultGenConfig("of", 50, 26))
	p := layout.MustNewFloorplan(tc, d, 0.5)
	// Shrink the die so the design cannot fit.
	p.NumRows = 1
	p.NumSites = 10
	xs := make([]float64, len(d.Insts))
	ys := make([]float64, len(d.Insts))
	if err := Legalize(p, xs, ys); err == nil {
		t.Fatal("expected legalization failure on tiny die")
	}
}
