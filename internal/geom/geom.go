// Package geom provides the integer geometry primitives used throughout
// vm1place: points, rectangles and 1-D intervals in database units (DBU),
// plus the overlap and bounding-box operations that the placement and
// routing engines are built on.
//
// All coordinates are int64 DBU. The package is allocation-free and all
// types are plain values, so they are safe to copy and to share between
// goroutines.
package geom

import "fmt"

// Point is a location in the layout, in DBU.
type Point struct {
	X, Y int64
}

// Add returns the translate of p by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// ManhattanDist returns the L1 distance between p and q.
func (p Point) ManhattanDist(q Point) int64 {
	return Abs(p.X-q.X) + Abs(p.Y-q.Y)
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// Abs returns |v| for int64 v.
func Abs(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// Min returns the smaller of a and b.
func Min(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of a and b.
func Max(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Clamp limits v to the inclusive range [lo, hi].
func Clamp(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Interval is a half-open 1-D range [Lo, Hi). An interval with Hi <= Lo is
// empty. Intervals are used for pin extents, window projections and routing
// track spans.
type Interval struct {
	Lo, Hi int64
}

// Empty reports whether the interval contains no points.
func (iv Interval) Empty() bool { return iv.Hi <= iv.Lo }

// Len returns the length of the interval (0 if empty).
func (iv Interval) Len() int64 {
	if iv.Empty() {
		return 0
	}
	return iv.Hi - iv.Lo
}

// Contains reports whether x lies in [Lo, Hi).
func (iv Interval) Contains(x int64) bool { return x >= iv.Lo && x < iv.Hi }

// Intersect returns the intersection of iv and other. The result may be
// empty.
func (iv Interval) Intersect(other Interval) Interval {
	return Interval{Max(iv.Lo, other.Lo), Min(iv.Hi, other.Hi)}
}

// Overlaps reports whether the two intervals share at least one point.
func (iv Interval) Overlaps(other Interval) bool {
	return !iv.Intersect(other).Empty()
}

// OverlapLen returns the length of the intersection of iv and other, or 0
// if they are disjoint. This is the o_pq quantity of the paper's OpenM1
// formulation when applied to pin x-extents.
func (iv Interval) OverlapLen(other Interval) int64 {
	return iv.Intersect(other).Len()
}

// Union returns the smallest interval containing both iv and other. Empty
// inputs are ignored.
func (iv Interval) Union(other Interval) Interval {
	if iv.Empty() {
		return other
	}
	if other.Empty() {
		return iv
	}
	return Interval{Min(iv.Lo, other.Lo), Max(iv.Hi, other.Hi)}
}

// Shift returns the interval translated by d.
func (iv Interval) Shift(d int64) Interval { return Interval{iv.Lo + d, iv.Hi + d} }

// Rect is an axis-aligned rectangle with half-open extent
// [XLo, XHi) x [YLo, YHi). A rectangle with non-positive width or height is
// empty.
type Rect struct {
	XLo, YLo, XHi, YHi int64
}

// RectFromPoints returns the bounding rectangle of two corner points (in any
// order), as a closed->half-open box that contains both points' coordinates
// as its corners.
func RectFromPoints(a, b Point) Rect {
	return Rect{Min(a.X, b.X), Min(a.Y, b.Y), Max(a.X, b.X), Max(a.Y, b.Y)}
}

// Empty reports whether r has no area. Note that a degenerate (zero width or
// height) rectangle is considered empty.
func (r Rect) Empty() bool { return r.XHi <= r.XLo || r.YHi <= r.YLo }

// W returns the width of r (0 if inverted).
func (r Rect) W() int64 { return Max(0, r.XHi-r.XLo) }

// H returns the height of r (0 if inverted).
func (r Rect) H() int64 { return Max(0, r.YHi-r.YLo) }

// Area returns the area of r.
func (r Rect) Area() int64 { return r.W() * r.H() }

// HalfPerim returns the half-perimeter (W + H) of r, the HPWL of a
// two-corner bounding box.
func (r Rect) HalfPerim() int64 { return r.W() + r.H() }

// XSpan returns the x-projection of r as an interval.
func (r Rect) XSpan() Interval { return Interval{r.XLo, r.XHi} }

// YSpan returns the y-projection of r as an interval.
func (r Rect) YSpan() Interval { return Interval{r.YLo, r.YHi} }

// Contains reports whether the point p lies inside the half-open extent of
// r.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.XLo && p.X < r.XHi && p.Y >= r.YLo && p.Y < r.YHi
}

// ContainsRect reports whether other lies entirely within r.
func (r Rect) ContainsRect(other Rect) bool {
	if other.Empty() {
		return true
	}
	return other.XLo >= r.XLo && other.XHi <= r.XHi &&
		other.YLo >= r.YLo && other.YHi <= r.YHi
}

// Intersect returns the intersection of r and other (possibly empty).
func (r Rect) Intersect(other Rect) Rect {
	return Rect{
		Max(r.XLo, other.XLo), Max(r.YLo, other.YLo),
		Min(r.XHi, other.XHi), Min(r.YHi, other.YHi),
	}
}

// Overlaps reports whether r and other share interior area.
func (r Rect) Overlaps(other Rect) bool { return !r.Intersect(other).Empty() }

// Union returns the bounding box of r and other, ignoring empty inputs.
func (r Rect) Union(other Rect) Rect {
	if r.Empty() {
		return other
	}
	if other.Empty() {
		return r
	}
	return Rect{
		Min(r.XLo, other.XLo), Min(r.YLo, other.YLo),
		Max(r.XHi, other.XHi), Max(r.YHi, other.YHi),
	}
}

// Shift returns r translated by (dx, dy).
func (r Rect) Shift(dx, dy int64) Rect {
	return Rect{r.XLo + dx, r.YLo + dy, r.XHi + dx, r.YHi + dy}
}

// Center returns the center point of r (rounded down).
func (r Rect) Center() Point { return Point{(r.XLo + r.XHi) / 2, (r.YLo + r.YHi) / 2} }

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%d,%d)x[%d,%d)", r.XLo, r.XHi, r.YLo, r.YHi)
}

// BBox accumulates a bounding box over a stream of points. The zero value is
// an empty box; use Add to extend it. It is the workhorse of HPWL
// computation.
type BBox struct {
	set                bool
	xlo, ylo, xhi, yhi int64
}

// Add extends the box to include p.
func (b *BBox) Add(p Point) {
	if !b.set {
		b.set = true
		b.xlo, b.xhi = p.X, p.X
		b.ylo, b.yhi = p.Y, p.Y
		return
	}
	if p.X < b.xlo {
		b.xlo = p.X
	}
	if p.X > b.xhi {
		b.xhi = p.X
	}
	if p.Y < b.ylo {
		b.ylo = p.Y
	}
	if p.Y > b.yhi {
		b.yhi = p.Y
	}
}

// Valid reports whether at least one point has been added.
func (b *BBox) Valid() bool { return b.set }

// HalfPerim returns the half-perimeter wirelength of the accumulated box, or
// 0 if no points were added.
func (b *BBox) HalfPerim() int64 {
	if !b.set {
		return 0
	}
	return (b.xhi - b.xlo) + (b.yhi - b.ylo)
}

// Rect returns the accumulated box as a closed Rect whose corners are the
// extreme points (width/height may be zero for degenerate boxes).
func (b *BBox) Rect() Rect {
	if !b.set {
		return Rect{}
	}
	return Rect{b.xlo, b.ylo, b.xhi, b.yhi}
}
