// Package crfix (lp variant): vm1place/internal/lp owns solver
// deadlines, so wall-clock reads are allowed untagged and clockrand must
// stay silent here.
package crfix

import "time"

func pastDeadline(dl time.Time) bool {
	return time.Now().After(dl)
}
