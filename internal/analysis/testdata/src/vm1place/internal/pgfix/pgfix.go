// Package pgfix is a panicguard fixture under internal/: untagged
// panics, os.Exit and log.Fatal must be flagged; Must* wrappers and
// tagged invariant checks pass.
package pgfix

import (
	"errors"
	"log"
	"os"
)

var errBoom = errors.New("boom")

func bad() {
	panic("boom") // want `panic in library code`
}

func badExit() {
	os.Exit(1) // want `os\.Exit in library code`
}

func badFatal() {
	log.Fatal("boom") // want `log\.Fatal in library code`
}

func badFatalf() {
	log.Fatalf("boom %d", 1) // want `log\.Fatal in library code`
}

// tagged is an unreachable-invariant check: suppressed.
func tagged(x int) {
	if x < 0 {
		panic("pgfix: negative size") // panic-ok: invariant
	}
}

// MustValue is a Must* wrapper: panicking is its documented contract.
func MustValue(v int, err error) int {
	if err != nil {
		panic(err)
	}
	return v
}

func returnsError() error { return errBoom }
