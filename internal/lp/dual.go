package lp

import (
	"math"
	"sort"
	"time"
)

// Dual-simplex warm starts.
//
// A branch-and-bound driver re-solves one model hundreds of times where
// consecutive solves differ only in variable bounds. Bound changes leave a
// basis dual feasible (reduced costs depend on the objective and the basis,
// not on the bounds), so the optimal basis of any previous solve is a valid
// dual-simplex start for the next one: typically only the handful of basic
// variables whose bounds tightened violate primality, and each is repaired
// by one dual pivot. That turns an O(rows²)-per-pivot, hundreds-of-pivots
// cold solve into a few pivots plus two dense mat-vecs — the difference
// between window MILPs hitting their time budget and finishing it.

// maxWarmSolves bounds consecutive warm solves before a forced cold
// refresh. Each warm solve appends a few eta updates to the basis inverse
// without refactorization; a periodic cold start (which rebuilds binv from
// the identity) keeps the accumulated floating-point drift comparable to a
// single cold solve's pivot count.
const maxWarmSolves = 64

// warmTol is the dual-feasibility and primal-violation tolerance of the
// warm path; looser than costTol because the inherited basis carries drift.
const warmTol = 1e-6

// warmSolve attempts a dual-simplex solve from the basis the arena kept
// from the previous optimal solve. It returns nil when warm starting is not
// applicable or fails (dual infeasibility after an objective change,
// iteration cap, numerical trouble); the caller then falls back to the cold
// primal path, which rebuilds every piece of state warmSolve touched.
func (s *simplex) warmSolve() *Solution {
	a := s.arena
	if !a.warm || a.warmSolves >= maxWarmSolves {
		return nil
	}
	rows := s.nRows
	s.state = a.state
	s.xN = a.xN
	s.basis = a.basis
	s.inBasisRow = a.inBasisRow
	s.binv = a.binv
	s.xB = a.xB

	// Re-park nonbasic variables on their (possibly changed) bounds. Free
	// variables parked off-bound keep their value.
	for j := 0; j < s.nTotal; j++ {
		switch {
		case s.state[j] == basic:
		case s.state[j] == atUpper:
			if math.IsInf(s.hi[j], 1) {
				return nil
			}
			s.xN[j] = s.hi[j]
		case !math.IsInf(s.lo[j], -1):
			s.xN[j] = s.lo[j]
		}
	}

	// Reduced costs d_j = c_j − y·A_j with y = c_B·Binv. Dual
	// infeasibilities are repaired by bound flips below; computing d before
	// xB lets the flips feed into the basic-value computation.
	y := a.y
	for k := 0; k < rows; k++ {
		y[k] = 0
	}
	for i := 0; i < rows; i++ {
		cb := s.objP2[s.basis[i]]
		if cb == 0 {
			continue
		}
		row := s.binv[i*rows : (i+1)*rows]
		for k := 0; k < rows; k++ {
			y[k] += cb * row[k]
		}
	}
	d := a.d
	for j := 0; j < s.nTotal; j++ {
		if s.state[j] == basic {
			d[j] = 0
			continue
		}
		v := s.objP2[j]
		for _, e := range s.cols[j] {
			v -= y[e.row] * e.val
		}
		d[j] = v
		if s.lo[j] == s.hi[j] && !math.IsInf(s.lo[j], 0) {
			continue // fixed variable: any reduced cost is dual feasible
		}
		// Repair dual infeasibilities by bound flips: a nonbasic variable
		// sitting at the wrong bound for its reduced-cost sign simply moves
		// to the other bound (both stay nonbasic, the basis is untouched).
		// These arise because primal pricing tolerances are column-norm
		// scaled, so an “optimal” start can carry reduced costs slightly
		// past warmTol on huge-coefficient columns.
		switch {
		case s.state[j] == atUpper:
			if v > warmTol {
				if math.IsInf(s.lo[j], -1) {
					return nil
				}
				s.state[j] = atLower
				s.xN[j] = s.lo[j]
			}
		case math.IsInf(s.lo[j], -1):
			if math.Abs(v) > warmTol { // free variable needs d ≈ 0
				return nil
			}
		default:
			if v < -warmTol {
				if math.IsInf(s.hi[j], 1) {
					return nil
				}
				s.state[j] = atUpper
				s.xN[j] = s.hi[j]
			}
		}
	}

	// xB = Binv · (b − Σ_{j nonbasic} A_j·xN_j).
	resid := a.resid
	copy(resid, s.rhs)
	for j := 0; j < s.nTotal; j++ {
		if s.state[j] == basic || s.xN[j] == 0 {
			continue
		}
		v := s.xN[j]
		for _, e := range s.cols[j] {
			resid[e.row] -= e.val * v
		}
	}
	for i := 0; i < rows; i++ {
		row := s.binv[i*rows : (i+1)*rows]
		sum := 0.0
		for k := 0; k < rows; k++ {
			sum += row[k] * resid[k]
		}
		s.xB[i] = sum
	}

	sol := s.dualIterate(d, rows+200)
	if sol != nil {
		a.warmSolves++
	}
	return sol
}

// dualIterate runs bounded-variable dual simplex from the current (dual
// feasible) basis until primal feasibility, using the bound-flip ratio
// test: within one iteration, candidates are taken in increasing dual
// ratio; each that cannot absorb the leaving row's whole violation flips
// to its opposite bound (O(rows), no basis change), and the first that can
// performs the single actual pivot. One iteration therefore fully repairs
// one violated row, so the pivot count tracks the number of bound changes
// since the basis was optimal — a handful for branch-and-bound children.
//
// It returns a nil Solution when the caller should fall back to a cold
// solve (iteration cap: the basis is too far from the new bounds to be
// worth repairing), and an Infeasible Solution when the dual is unbounded
// — the standard certificate that the new bounds admit no feasible point.
// In both cases the basis remains dual feasible for future warm starts.
func (s *simplex) dualIterate(d []float64, maxIters int) *Solution {
	rows := s.nRows
	alpha := s.arena.alpha
	w := s.arena.w
	type cand struct {
		j     int
		ratio float64
	}
	var cands []cand

	// applyCol moves nonbasic variable j by t: xB -= t·(Binv·A_j), leaving
	// the result in w for a subsequent pivot.
	applyCol := func(j int, t float64) {
		for i := 0; i < rows; i++ {
			w[i] = 0
		}
		for _, e := range s.cols[j] {
			v := e.val
			for i := 0; i < rows; i++ {
				w[i] += v * s.binv[i*rows+e.row]
			}
		}
		if t != 0 {
			for i := 0; i < rows; i++ {
				s.xB[i] -= t * w[i]
			}
		}
	}

	for iters := 0; ; iters++ {
		// Leaving row: the most violated basic variable.
		r, viol := -1, warmTol
		toUpper := false
		for i := 0; i < rows; i++ {
			bj := s.basis[i]
			if v := s.lo[bj] - s.xB[i]; v > viol {
				r, viol, toUpper = i, v, false
			}
			if v := s.xB[i] - s.hi[bj]; v > viol {
				r, viol, toUpper = i, v, true
			}
		}
		if r == -1 {
			// Primal feasible and dual feasible throughout: optimal.
			x := s.extractX()
			obj := 0.0
			for j := 0; j < s.nStruct; j++ {
				obj += s.objP2[j] * x[j]
			}
			s.arena.redCost = growSlice(s.arena.redCost, s.nStruct)
			rc := s.arena.redCost[:s.nStruct]
			copy(rc, d[:s.nStruct])
			return &Solution{Status: Optimal, Obj: obj, X: x, Iters: iters,
				RedCost: rc}
		}
		if iters >= maxIters {
			return nil
		}
		if s.arena.hasDL && iters&31 == 31 && time.Now().After(s.arena.deadline) {
			return nil // the primal fallback aborts on the same deadline
		}

		out := s.basis[r]
		target := s.lo[out]
		if toUpper {
			target = s.hi[out]
		}
		delta := s.xB[r] - target // >0 leaving to upper, <0 to lower

		// Pivot row α_j = (e_r·Binv)·A_j; collect the candidates that can
		// move in the direction that shrinks row r's violation, with their
		// dual ratios |d_j/α_rj| (the θ at which reduced cost j would turn
		// infeasible under the update d'_j = d_j − θ·α_rj).
		brow := s.binv[r*rows : (r+1)*rows]
		cands = cands[:0]
		for j := 0; j < s.nTotal; j++ {
			if s.state[j] == basic {
				continue
			}
			av := 0.0
			for _, e := range s.cols[j] {
				av += brow[e.row] * e.val
			}
			alpha[j] = av
			if math.Abs(av) < pivotTol {
				continue
			}
			if s.lo[j] == s.hi[j] && !math.IsInf(s.lo[j], 0) {
				continue // fixed variable cannot move
			}
			free := math.IsInf(s.lo[j], -1) && s.state[j] != atUpper
			canInc := s.state[j] == atLower || free
			canDec := s.state[j] == atUpper || free
			if delta > 0 {
				if !((canInc && av > 0) || (canDec && av < 0)) {
					continue
				}
			} else {
				if !((canInc && av < 0) || (canDec && av > 0)) {
					continue
				}
			}
			cands = append(cands, cand{j: j, ratio: math.Abs(d[j]) / math.Abs(av)})
		}
		sort.Slice(cands, func(a, b int) bool { return cands[a].ratio < cands[b].ratio })

		// Walk candidates in ratio order, flipping each one whose range
		// cannot absorb the remaining violation; the first that can absorb
		// it becomes the pivot.
		rem := delta
		enter := -1
		var tPivot float64
		for _, c := range cands {
			j := c.j
			av := alpha[j]
			dir := 1.0 // movement sign: need sign(av·dir) == sign(rem)
			if (rem > 0) != (av > 0) {
				dir = -1
			}
			tNeed := rem / (av * dir) // ≥ 0 by construction
			rng := s.hi[j] - s.lo[j]  // +Inf for free variables
			// The warmTol slack absorbs RHS-perturbation and drift epsilons:
			// a candidate whose range covers the step up to tolerance pivots
			// (entering ends at most warmTol past its bound, within the warm
			// path's own violation tolerance) rather than flipping and
			// leaving an epsilon remainder that would read as infeasible.
			if tNeed <= rng+warmTol {
				enter = j
				tPivot = dir * tNeed
				break
			}
			// Full flip to the opposite bound: no basis change, O(rows).
			applyCol(j, dir*rng)
			if dir > 0 {
				s.state[j] = atUpper
				s.xN[j] = s.hi[j]
			} else {
				s.state[j] = atLower
				s.xN[j] = s.lo[j]
			}
			rem -= av * dir * rng
		}
		if enter == -1 {
			// Dual unbounded ⇒ primal infeasible: even with every eligible
			// column flipped to its far bound, row r cannot reach its bound.
			// This is the standard dual-simplex infeasibility certificate;
			// the basis stays dual feasible (flips and pivots preserved it),
			// so later warm starts remain valid. Infeasible children are the
			// common case under group branching, which makes certifying them
			// in a few pivots — instead of a cold two-phase proof — a large
			// share of the warm-start win.
			return &Solution{Status: Infeasible, Iters: iters}
		}

		// Pivot: entering moves by tPivot, absorbing the rest of the
		// violation; the leaving variable exits to the violated bound.
		applyCol(enter, tPivot)
		enterVal := s.xN[enter] + tPivot
		s.inBasisRow[out] = -1
		if toUpper {
			s.state[out] = atUpper
		} else {
			s.state[out] = atLower
		}
		s.xN[out] = target
		s.basis[r] = enter
		s.inBasisRow[enter] = r
		s.state[enter] = basic
		s.xB[r] = enterVal

		// Eta update of Binv (same transform as the primal path).
		piv := w[r]
		prow := s.binv[r*rows : (r+1)*rows]
		inv := 1 / piv
		for k := 0; k < rows; k++ {
			prow[k] *= inv
		}
		for i := 0; i < rows; i++ {
			if i == r {
				continue
			}
			f := w[i]
			if f == 0 {
				continue
			}
			row := s.binv[i*rows : (i+1)*rows]
			for k := 0; k < rows; k++ {
				row[k] -= f * prow[k]
			}
		}

		// Dual update: θ = d_enter/α_r,enter; d'_j = d_j − θ·α_rj for the
		// still-nonbasic columns, d'_out = −θ (α_r,out = 1), d'_enter = 0.
		theta := d[enter] / alpha[enter]
		if theta != 0 {
			for j := 0; j < s.nTotal; j++ {
				if s.state[j] != basic && alpha[j] != 0 {
					d[j] -= theta * alpha[j]
				}
			}
		}
		d[out] = -theta
		d[enter] = 0
	}
}
