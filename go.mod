module vm1place

go 1.22
