// Package cells models sub-10nm standard-cell masters for the three
// architectures of the DAC'17 paper (Figure 1): conventional 12-track,
// ClosedM1 7.5-track (1-D vertical M1 pins at site pitch) and OpenM1
// 7.5-track (horizontal M0 pins).
//
// Masters are geometry + a small timing/power model. Pin shapes are given
// in cell-local DBU coordinates with the origin at the cell's lower-left
// corner; Place* helpers produce absolute shapes for a placed, possibly
// flipped instance. Flipping is the horizontal mirror (MY) used by the
// paper's f_c degree of freedom.
package cells

import (
	"fmt"

	"vm1place/internal/geom"
	"vm1place/internal/tech"
)

// PinDir classifies a pin's electrical direction.
type PinDir int

const (
	Input PinDir = iota
	Output
	Power
	Ground
)

// String implements fmt.Stringer.
func (d PinDir) String() string {
	switch d {
	case Input:
		return "INPUT"
	case Output:
		return "OUTPUT"
	case Power:
		return "POWER"
	case Ground:
		return "GROUND"
	default:
		return fmt.Sprintf("PinDir(%d)", int(d))
	}
}

// Shape is one rectangle of pin metal on a given layer, in cell-local DBU.
type Shape struct {
	Layer tech.Layer
	Rect  geom.Rect
}

// Pin is a logical pin of a master with its physical shapes.
type Pin struct {
	Name   string
	Dir    PinDir
	Shapes []Shape
}

// IsSignal reports whether the pin carries a signal (not power/ground).
func (p *Pin) IsSignal() bool { return p.Dir == Input || p.Dir == Output }

// AccessShape returns the shape the router and the MILP use for dM1
// geometry: the M1 shape for ClosedM1 masters, the M0 shape for OpenM1
// masters. It returns the first shape on the lowest pin layer.
func (p *Pin) AccessShape() Shape {
	best := p.Shapes[0]
	for _, s := range p.Shapes[1:] {
		if s.Layer < best.Layer {
			best = s
		}
	}
	return best
}

// Master is a standard-cell template.
type Master struct {
	Name       string
	Arch       tech.Arch
	WidthSites int
	// HeightRows is the cell height in placement rows; 0 means 1. The
	// row-uniform floorplan and window optimizer assume single-height
	// cells, so Library.Validate rejects taller masters up front instead
	// of silently producing an overlapping floorplan.
	HeightRows int
	Pins       []Pin

	// Timing/power model: delay(ns) = Intrinsic + DriveRes * loadCap;
	// each input presents InputCap. LeakageUW is static power in µW.
	Intrinsic float64
	DriveRes  float64
	InputCap  float64
	LeakageUW float64

	// IsFF marks sequential cells (timing start/end points).
	IsFF bool
}

// WidthDBU returns the cell width in DBU for technology t.
func (m *Master) WidthDBU(t *tech.Tech) int64 {
	return int64(m.WidthSites) * t.SiteWidth
}

// heightRows returns the effective cell height in rows (>= 1).
func (m *Master) heightRows() int {
	if m.HeightRows <= 0 {
		return 1
	}
	return m.HeightRows
}

// HeightDBU returns the cell height in DBU for technology t.
func (m *Master) HeightDBU(t *tech.Tech) int64 {
	return int64(m.heightRows()) * t.RowHeight
}

// Pin returns the named pin, or nil.
func (m *Master) Pin(name string) *Pin {
	for i := range m.Pins {
		if m.Pins[i].Name == name {
			return &m.Pins[i]
		}
	}
	return nil
}

// SignalPins returns the signal (non-power) pins in declaration order.
func (m *Master) SignalPins() []*Pin {
	var out []*Pin
	for i := range m.Pins {
		if m.Pins[i].IsSignal() {
			out = append(out, &m.Pins[i])
		}
	}
	return out
}

// InputPins returns the input pins in declaration order.
func (m *Master) InputPins() []*Pin {
	var out []*Pin
	for i := range m.Pins {
		if m.Pins[i].Dir == Input {
			out = append(out, &m.Pins[i])
		}
	}
	return out
}

// OutputPin returns the (single) output pin, or nil for masters without
// one.
func (m *Master) OutputPin() *Pin {
	for i := range m.Pins {
		if m.Pins[i].Dir == Output {
			return &m.Pins[i]
		}
	}
	return nil
}

// FlipRect mirrors a cell-local rectangle about the cell's vertical center
// line (MY orientation) for a master of width w DBU.
func FlipRect(r geom.Rect, w int64) geom.Rect {
	return geom.Rect{XLo: w - r.XHi, YLo: r.YLo, XHi: w - r.XLo, YHi: r.YHi}
}

// LocalShape returns the pin's access shape in cell-local coordinates for
// the given orientation.
func LocalShape(m *Master, t *tech.Tech, p *Pin, flipped bool) Shape {
	s := p.AccessShape()
	if flipped {
		s.Rect = FlipRect(s.Rect, m.WidthDBU(t))
	}
	return s
}

// AbsShape returns the pin's access shape in absolute coordinates for an
// instance of m placed with its lower-left corner at (x, y) with the given
// orientation.
func AbsShape(m *Master, t *tech.Tech, p *Pin, x, y int64, flipped bool) Shape {
	s := LocalShape(m, t, p, flipped)
	s.Rect = s.Rect.Shift(x, y)
	return s
}

// AlignX returns the cell-local x coordinate used for ClosedM1 alignment:
// the center of the pin's vertical M1 shape. Two pins are alignable when
// their absolute AlignX values are equal (paper's d_pq for ClosedM1).
func AlignX(m *Master, t *tech.Tech, p *Pin, flipped bool) int64 {
	s := LocalShape(m, t, p, flipped)
	return (s.Rect.XLo + s.Rect.XHi) / 2
}

// XExtent returns the cell-local x extent of the pin used for OpenM1
// overlap (the paper's [x_min,p, x_max,p]).
func XExtent(m *Master, t *tech.Tech, p *Pin, flipped bool) geom.Interval {
	s := LocalShape(m, t, p, flipped)
	return geom.Interval{Lo: s.Rect.XLo, Hi: s.Rect.XHi}
}

// PinY returns the cell-local y coordinate of the pin (paper's y_p),
// taken as the vertical center of the access shape.
func PinY(m *Master, t *tech.Tech, p *Pin) int64 {
	s := p.AccessShape()
	return (s.Rect.YLo + s.Rect.YHi) / 2
}

// Library is a set of masters sharing one technology and architecture.
type Library struct {
	Tech    *tech.Tech
	Arch    tech.Arch
	Masters []*Master
	byName  map[string]*Master
}

// Master returns the named master, or nil.
func (l *Library) Master(name string) *Master { return l.byName[name] }

// MustMaster returns the named master or panics; for use in generators and
// tests where the name is a compile-time constant.
func (l *Library) MustMaster(name string) *Master {
	m := l.byName[name]
	if m == nil {
		panic(fmt.Sprintf("cells: no master %q in %s library", name, l.Arch)) // panic-ok: Must* wrapper
	}
	return m
}

// Validate checks the structural invariants the optimizer relies on.
//
// Heights are validated up front: the floorplanner assigns every instance
// one row slot of pitch RowHeight, so a master taller than one row — or a
// library mixing heights — would silently produce an overlapping floorplan
// if it got past construction. NewLibrary and NewLibraryFromMasters wrap
// any failure in ErrInvalidLibrary.
func (l *Library) Validate() error {
	for _, m := range l.Masters {
		if m.WidthSites <= 0 {
			return fmt.Errorf("cells: master %s has non-positive width", m.Name)
		}
		if hr := m.heightRows(); hr != 1 {
			return fmt.Errorf("cells: master %s is %d rows tall; the row-uniform floorplan supports only single-height cells (mixed-height library)",
				m.Name, hr)
		}
		w := m.WidthDBU(l.Tech)
		nOut := 0
		for i := range m.Pins {
			p := &m.Pins[i]
			if len(p.Shapes) == 0 {
				return fmt.Errorf("cells: master %s pin %s has no shapes", m.Name, p.Name)
			}
			if p.Dir == Output {
				nOut++
			}
			if !p.IsSignal() {
				continue
			}
			s := p.AccessShape()
			if s.Rect.XLo < 0 || s.Rect.XHi > w {
				return fmt.Errorf("cells: master %s pin %s shape %v outside cell width %d",
					m.Name, p.Name, s.Rect, w)
			}
			if s.Rect.YLo < 0 || s.Rect.YHi > l.Tech.RowHeight {
				return fmt.Errorf("cells: master %s pin %s shape %v outside row height",
					m.Name, p.Name, s.Rect)
			}
			switch l.Arch {
			case tech.ClosedM1:
				if s.Layer != tech.M1 {
					return fmt.Errorf("cells: ClosedM1 master %s pin %s access layer %s, want M1",
						m.Name, p.Name, s.Layer)
				}
				// 1-D vertical pins centered on the site-pitch track grid.
				cx := (s.Rect.XLo + s.Rect.XHi) / 2
				if (cx-l.Tech.SiteWidth/2)%l.Tech.SiteWidth != 0 {
					return fmt.Errorf("cells: ClosedM1 master %s pin %s center %d off track grid",
						m.Name, p.Name, cx)
				}
			case tech.OpenM1:
				if s.Layer != tech.M0 {
					return fmt.Errorf("cells: OpenM1 master %s pin %s access layer %s, want M0",
						m.Name, p.Name, s.Layer)
				}
				if s.Rect.W() < l.Tech.Delta {
					return fmt.Errorf("cells: OpenM1 master %s pin %s width %d below delta %d",
						m.Name, p.Name, s.Rect.W(), l.Tech.Delta)
				}
			}
		}
		if nOut > 1 {
			return fmt.Errorf("cells: master %s has %d output pins", m.Name, nOut)
		}
	}
	return nil
}

// NewLibraryFromMasters assembles a Library from externally constructed
// masters (e.g. parsed from LEF), builds the lookup index and validates
// the structural invariants up front. A failure — notably multi- or
// mixed-row-height masters the row-uniform floorplan cannot place — is
// reported as an error wrapping ErrInvalidLibrary rather than surfacing
// later as a silently overlapping floorplan.
func NewLibraryFromMasters(t *tech.Tech, arch tech.Arch, masters []*Master) (*Library, error) {
	lib := &Library{Tech: t, Arch: arch, Masters: masters, byName: make(map[string]*Master)}
	for _, m := range masters {
		lib.byName[m.Name] = m
	}
	if err := lib.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrInvalidLibrary, err)
	}
	return lib, nil
}
