package netlist

import (
	"errors"
	"testing"

	"vm1place/internal/cells"
	"vm1place/internal/tech"
)

func testLib(t *testing.T, arch tech.Arch) *cells.Library {
	t.Helper()
	return cells.MustNewLibrary(tech.Default(), arch)
}

func TestGenerateValidates(t *testing.T) {
	for _, arch := range []tech.Arch{tech.ClosedM1, tech.OpenM1} {
		lib := testLib(t, arch)
		d := MustGenerate(lib, DefaultGenConfig("t1", 500, 42))
		if err := d.Validate(); err != nil {
			t.Fatalf("%s: %v", arch, err)
		}
		if len(d.Insts) != 500 {
			t.Errorf("%s: got %d instances", arch, len(d.Insts))
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	lib := testLib(t, tech.ClosedM1)
	a := MustGenerate(lib, DefaultGenConfig("x", 300, 7))
	b := MustGenerate(lib, DefaultGenConfig("x", 300, 7))
	if len(a.Nets) != len(b.Nets) || len(a.Ports) != len(b.Ports) {
		t.Fatal("same seed produced different shapes")
	}
	for i := range a.Insts {
		if a.Insts[i].Master.Name != b.Insts[i].Master.Name {
			t.Fatalf("inst %d differs: %s vs %s", i, a.Insts[i].Master.Name, b.Insts[i].Master.Name)
		}
		for k := range a.Insts[i].PinNets {
			if a.Insts[i].PinNets[k] != b.Insts[i].PinNets[k] {
				t.Fatalf("inst %d pin %d net differs", i, k)
			}
		}
	}
	c := MustGenerate(lib, DefaultGenConfig("x", 300, 8))
	same := true
	for i := range a.Insts {
		if a.Insts[i].Master.Name != c.Insts[i].Master.Name {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical master sequence (suspicious)")
	}
}

func TestGenerateStats(t *testing.T) {
	lib := testLib(t, tech.ClosedM1)
	cfg := DefaultGenConfig("s", 2000, 1)
	d := MustGenerate(lib, cfg)
	s := d.Stats()
	if s.NumInsts != 2000 {
		t.Errorf("NumInsts = %d", s.NumInsts)
	}
	ffLo, ffHi := int(0.8*cfg.FFRatio*2000), int(1.2*cfg.FFRatio*2000)+1
	if s.NumFFs < ffLo || s.NumFFs > ffHi {
		t.Errorf("NumFFs = %d, want within [%d,%d]", s.NumFFs, ffLo, ffHi)
	}
	if s.MaxFanout > cfg.MaxFanout {
		t.Errorf("MaxFanout = %d exceeds cap %d", s.MaxFanout, cfg.MaxFanout)
	}
	if s.AvgFanout <= 0.5 || s.AvgFanout > 5 {
		t.Errorf("AvgFanout = %f implausible", s.AvgFanout)
	}
	if s.TotalSites <= int64(2*s.NumInsts) {
		t.Errorf("TotalSites = %d implausible", s.TotalSites)
	}
}

func TestCombinationalAcyclicity(t *testing.T) {
	lib := testLib(t, tech.ClosedM1)
	d := MustGenerate(lib, DefaultGenConfig("dag", 1500, 3))
	// Every combinational instance's fanins must come from strictly
	// lower-index combinational instances, FFs, or ports.
	for i := range d.Insts {
		m := d.Insts[i].Master
		if m.IsFF {
			continue
		}
		for pi, ni := range d.Insts[i].PinNets {
			if ni < 0 || m.Pins[pi].Dir != cells.Input {
				continue
			}
			drv := d.Nets[ni].Driver
			if drv.Inst < 0 {
				continue // port-driven
			}
			if !d.Insts[drv.Inst].Master.IsFF && drv.Inst >= i {
				t.Fatalf("comb inst %d has fanin from comb inst %d (cycle risk)", i, drv.Inst)
			}
		}
	}
}

func TestClockNetOnlyFFs(t *testing.T) {
	lib := testLib(t, tech.ClosedM1)
	d := MustGenerate(lib, DefaultGenConfig("clk", 800, 9))
	var clock *Net
	for i := range d.Nets {
		if d.Nets[i].IsClock {
			if clock != nil {
				t.Fatal("multiple clock nets")
			}
			clock = &d.Nets[i]
		}
	}
	if clock == nil {
		t.Fatal("no clock net")
	}
	for _, s := range clock.Sinks {
		m := d.Insts[s.Inst].Master
		if !m.IsFF || m.Pins[s.Pin].Name != "CK" {
			t.Errorf("clock sink %s.%s is not a FF CK pin", m.Name, m.Pins[s.Pin].Name)
		}
	}
	st := d.Stats()
	if len(clock.Sinks) != st.NumFFs {
		t.Errorf("clock fanout %d != #FFs %d", len(clock.Sinks), st.NumFFs)
	}
}

func TestNoDanglingNets(t *testing.T) {
	lib := testLib(t, tech.OpenM1)
	d := MustGenerate(lib, DefaultGenConfig("dangle", 600, 11))
	portNets := map[int]bool{}
	for _, p := range d.Ports {
		portNets[p.Net] = true
	}
	for i := range d.Nets {
		n := &d.Nets[i]
		if n.IsClock {
			continue
		}
		if len(n.Sinks) == 0 && !portNets[i] {
			t.Errorf("net %s has no sinks and no port", n.Name)
		}
	}
}

func TestSignalNetsExcludesClock(t *testing.T) {
	lib := testLib(t, tech.ClosedM1)
	d := MustGenerate(lib, DefaultGenConfig("sn", 400, 5))
	for _, ni := range d.SignalNets() {
		if d.Nets[ni].IsClock {
			t.Fatal("SignalNets returned the clock net")
		}
	}
}

func TestNetForEachConn(t *testing.T) {
	n := Net{
		Driver: Conn{Inst: 3, Pin: 1},
		Sinks:  []Conn{{Inst: 4, Pin: 0}, {Inst: 5, Pin: 2}},
	}
	var got []Conn
	n.ForEachConn(func(c Conn) { got = append(got, c) })
	if len(got) != 3 || got[0] != n.Driver {
		t.Errorf("ForEachConn = %v", got)
	}
	if n.NumConns() != 3 {
		t.Errorf("NumConns = %d", n.NumConns())
	}
	portDriven := Net{Driver: Conn{Inst: -1}, Sinks: []Conn{{Inst: 1, Pin: 0}}}
	if portDriven.NumConns() != 1 {
		t.Errorf("port-driven NumConns = %d", portDriven.NumConns())
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	lib := testLib(t, tech.ClosedM1)
	base := func() *Design { return MustGenerate(lib, DefaultGenConfig("v", 100, 2)) }

	d := base()
	d.Nets[1].Sinks = append(d.Nets[1].Sinks, Conn{Inst: 10_000, Pin: 0})
	if d.Validate() == nil {
		t.Error("bad instance index not caught")
	}

	d = base()
	// Bind a signal input pin to -1.
	for i := range d.Insts {
		for pi := range d.Insts[i].PinNets {
			if d.Insts[i].Master.Pins[pi].Dir == cells.Input {
				d.Insts[i].PinNets[pi] = -1
				if d.Validate() == nil {
					t.Error("unconnected input not caught")
				}
				return
			}
		}
	}
}

func TestGenerateRejectsTinyN(t *testing.T) {
	lib := testLib(t, tech.ClosedM1)
	d, err := Generate(lib, DefaultGenConfig("tiny", 2, 1))
	if !errors.Is(err, ErrBadGenConfig) {
		t.Errorf("want ErrBadGenConfig for NumInsts < 4, got %v", err)
	}
	if d != nil {
		t.Error("got non-nil design alongside error")
	}
}
