package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func TestParseVerbs(t *testing.T) {
	cases := []struct {
		format string
		want   string
		ok     bool
	}{
		{"plain", "", true},
		{"%d items", "d", true},
		{"%s: %v", "sv", true},
		{"%w: %w", "ww", true},
		{"100%% done %v", "v", true},
		{"%+v %#v % d", "vvd", true},
		{"%8.3f", "f", true},
		{"%*d", "*d", true},
		{"%[1]d", "", false}, // explicit index: bail out
	}
	for _, c := range cases {
		got, ok := parseVerbs(c.format)
		if ok != c.ok {
			t.Errorf("parseVerbs(%q) ok = %v, want %v", c.format, ok, c.ok)
			continue
		}
		if c.ok && string(got) != c.want {
			t.Errorf("parseVerbs(%q) = %q, want %q", c.format, got, c.want)
		}
	}
}

func TestCollectTagsAndSuppression(t *testing.T) {
	const src = `package p

// clock-ok: tag on the line above the site
var a = 1
var b = 2 // order-ok: tag on the flagged line
/*
panic-ok: tag inside a block comment
*/
var c = 3
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	idx := collectTags(fset, &Package{Files: []*ast.File{f}})

	at := func(tag string, line int) bool {
		return idx.suppressed(tag, token.Position{Filename: "p.go", Line: line})
	}
	checks := []struct {
		tag  string
		line int
		want bool
	}{
		{"clock-ok", 3, true},  // on the tag line itself
		{"clock-ok", 4, true},  // line below a tag-above comment
		{"clock-ok", 5, false}, // two lines below: out of reach
		{"order-ok", 5, true},  // inline tag
		{"order-ok", 3, false}, // wrong tag does not suppress
		{"panic-ok", 7, true},  // block-comment tag, its own line
		{"panic-ok", 8, true},  // line below the block-comment tag line
		{"panic-ok", 9, false}, // var c: no adjacent tag
	}
	for _, c := range checks {
		if got := at(c.tag, c.line); got != c.want {
			t.Errorf("suppressed(%s, line %d) = %v, want %v", c.tag, c.line, got, c.want)
		}
	}
}

func TestFindModuleRoot(t *testing.T) {
	root, path, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	if path != "vm1place" {
		t.Errorf("module path = %q, want vm1place", path)
	}
	if root == "" {
		t.Error("empty module root")
	}
}
