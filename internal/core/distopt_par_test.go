package core

import (
	"testing"
	"time"

	"vm1place/internal/tech"
)

// TestVM1OptSolverWorkersInvariance checks the parallel branch-and-bound
// determinism guarantee at the placement level: with canonically-ordered
// commits and cold node relaxations (lp.Arena.InvalidateWarm before every
// parallel solve), any SolverWorkers count >= 2 must produce bit-identical
// placements and objectives. Sequential (SolverWorkers <= 1) runs use warm
// dual chains whose float pivot paths legitimately differ, so they are not
// part of the bitwise claim — milp's TestSequentialVsParallel covers that
// regime with an objective tolerance instead.
func TestVM1OptSolverWorkersInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several full optimizer passes")
	}
	type snap struct {
		site []int
		row  []int
		flip []bool
		res  Result
	}
	run := func(solverWorkers int) snap {
		p := genPlaced(t, tech.ClosedM1, 300, 29, 0.75)
		prm := DefaultParams(p.Tech, tech.ClosedM1)
		prm.Workers = 2
		prm.SolverWorkers = solverWorkers
		prm.MaxNodes = 40
		prm.TimeLimit = 0 // untimed: identical work regardless of wall clock
		prm.MaxOuterIters = 1
		res := VM1Opt(p, prm, Sequence{{BW: 2000, BH: 2000, LX: 3, LY: 1}})
		return snap{
			site: append([]int(nil), p.SiteX...),
			row:  append([]int(nil), p.Row...),
			flip: append([]bool(nil), p.Flip...),
			res:  res,
		}
	}
	base := run(2)
	for _, w := range []int{3, 8} {
		got := run(w)
		if got.res.Final != base.res.Final {
			t.Fatalf("SolverWorkers=%d final objective diverged:\n got %+v\nwant %+v",
				w, got.res.Final, base.res.Final)
		}
		for i := range base.site {
			if got.site[i] != base.site[i] || got.row[i] != base.row[i] ||
				got.flip[i] != base.flip[i] {
				t.Fatalf("SolverWorkers=%d placement diverged at inst %d: "+
					"(%d,%d,%v) vs (%d,%d,%v)", w, i,
					got.site[i], got.row[i], got.flip[i],
					base.site[i], base.row[i], base.flip[i])
			}
		}
	}
}

// TestVM1OptSolverWorkersLegalAndTracked checks that the parallel in-window
// solver composes with the deadline machinery: a short timed run with
// SolverWorkers=4 must stay legal and report a Final objective matching a
// fresh rescan.
func TestVM1OptSolverWorkersLegalAndTracked(t *testing.T) {
	p := genPlaced(t, tech.ClosedM1, 300, 31, 0.75)
	prm := DefaultParams(p.Tech, tech.ClosedM1)
	prm.Workers = 2
	prm.SolverWorkers = 4
	prm.MaxNodes = 40
	prm.TimeLimit = 100 * time.Millisecond
	prm.MaxOuterIters = 1
	res := VM1Opt(p, prm, Sequence{{BW: 2000, BH: 2000, LX: 3, LY: 1}})
	if err := p.CheckLegal(); err != nil {
		t.Fatalf("illegal after parallel-solver pass: %v", err)
	}
	if want := CalculateObj(p, prm); res.Final != want {
		t.Fatalf("final objective diverged from rescan:\n got %+v\nwant %+v",
			res.Final, want)
	}
}
