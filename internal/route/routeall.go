package route

import (
	"context"
	"fmt"
	"sort"

	"vm1place/internal/tech"
)

// RouteAll routes every signal net from scratch (clearing any previous
// routing), runs the configured rip-up-and-reroute passes, and returns the
// final metrics. Nets are routed in conflict-free parallel batches (see
// parallel.go); the result is identical for every cfg.Workers value.
func (r *Router) RouteAll() Metrics {
	m, _ := r.RouteAllCtx(context.Background()) // ctx-ok: context-free compat wrapper
	return m
}

// RouteAllCtx is RouteAll under a context. Cancellation is checked at the
// router's commit boundaries — between batches, between sequential cleanup
// nets, and between rip-up passes — so when it returns early the usage
// arrays and route records agree: every committed net is fully routed and
// accounted, every uncommitted net is absent. The returned Metrics are
// computed from the committed routes, alongside an error wrapping
// ctx.Err().
func (r *Router) RouteAllCtx(ctx context.Context) (Metrics, error) {
	// Reset state.
	for l := tech.M1; l <= tech.M4; l++ {
		for i := range r.usage[l] {
			r.usage[l][i] = 0
		}
	}
	r.routes = make(map[int]*netRoute, len(r.p.Design.Nets))
	r.metrics = Metrics{}
	for _, s := range r.searchers {
		s.failedConns = 0
	}
	r.buildBlockage()
	r.buildPortIndex()
	r.buildEndpoints()

	nets := r.routableNets()
	// Route short nets first: they have the least flexibility.
	if len(r.hpwlKey) != len(r.p.Design.Nets) {
		r.hpwlKey = make([]int64, len(r.p.Design.Nets))
	}
	for _, ni := range nets {
		r.hpwlKey[ni] = r.p.NetHPWL(ni)
	}
	sort.SliceStable(nets, func(a, b int) bool {
		return r.hpwlKey[nets[a]] < r.hpwlKey[nets[b]]
	})

	if err := r.routeBatched(ctx, nets, r.cfg.CongWeight); err != nil {
		return r.finishMetrics(), fmt.Errorf("route: RouteAll interrupted: %w", err)
	}

	// Negotiated-congestion rip-up: nets crossing overflowed edges are
	// rerouted with a stiffer congestion penalty.
	cw := r.cfg.CongWeight
	for pass := 0; pass < r.cfg.RipupIters; pass++ {
		if r.totalOverflow() == 0 {
			break
		}
		if err := ctx.Err(); err != nil {
			return r.finishMetrics(), fmt.Errorf("route: RouteAll interrupted: %w", err)
		}
		cw *= 2
		victims := r.overflowVictims(nets)
		for _, ni := range victims {
			r.ripNet(ni)
		}
		if err := r.routeBatched(ctx, victims, cw); err != nil {
			return r.finishMetrics(), fmt.Errorf("route: RouteAll interrupted: %w", err)
		}
	}

	return r.finishMetrics(), nil
}

// finishMetrics folds the searchers' failure counts into the metrics and
// derives the final Metrics from whatever routes are committed. It is the
// common tail of complete and interrupted RouteAllCtx runs: ripNet keeps
// usage and route records consistent, so partial metrics are exact over
// the committed subset.
func (r *Router) finishMetrics() Metrics {
	for _, s := range r.searchers {
		r.metrics.FailedConns += s.failedConns
	}
	r.computeMetrics()
	return r.metrics
}

// routableNets returns signal nets with at least two endpoints, using the
// endpoint CSR built by buildEndpoints (the old implementation rescanned
// every port for every net).
func (r *Router) routableNets() []int {
	d := r.p.Design
	var nets []int
	for ni := range d.Nets {
		if d.Nets[ni].IsClock {
			continue
		}
		if r.netEpStart[ni+1]-r.netEpStart[ni] >= 2 {
			nets = append(nets, ni)
		}
	}
	return nets
}

// ripNet removes a net's routing from the usage maps.
func (r *Router) ripNet(ni int) {
	nr := r.routes[ni]
	if nr == nil {
		return
	}
	for _, path := range nr.paths {
		r.addUsage(path, -1)
	}
	delete(r.routes, ni)
}

// overflowVictims returns nets with at least one path edge over capacity.
func (r *Router) overflowVictims(nets []int) []int {
	var victims []int
	for _, ni := range nets {
		nr := r.routes[ni]
		if nr == nil {
			continue
		}
		hit := false
		for _, path := range nr.paths {
			if r.pathOverflows(path) {
				hit = true
				break
			}
		}
		if hit {
			victims = append(victims, ni)
		}
	}
	return victims
}

func (r *Router) pathOverflows(path []int32) bool {
	for i := 1; i < len(path); i++ {
		la, xa, ya := r.nodeOf(path[i-1])
		lb, xb, yb := r.nodeOf(path[i])
		if la != lb {
			continue
		}
		var u int32
		switch {
		case xa == xb && yb == ya+1:
			u = r.usage[la][r.vEdge(xa, ya)]
		case xa == xb && yb == ya-1:
			u = r.usage[la][r.vEdge(xa, yb)]
		case ya == yb && xb == xa+1:
			u = r.usage[la][r.hEdge(xa, ya)]
		case ya == yb && xb == xa-1:
			u = r.usage[la][r.hEdge(xb, ya)]
		}
		if int(u) > r.cfg.Caps[la] {
			return true
		}
	}
	return false
}

// totalOverflow sums edge overflow across all layers (the DRV proxy).
func (r *Router) totalOverflow() int {
	total := 0
	for l := tech.M1; l <= tech.M4; l++ {
		cap := int32(r.cfg.Caps[l])
		if l.Direction() == tech.Vertical {
			for x := 0; x < r.nx; x++ {
				for y := 0; y < r.ny-1; y++ {
					if u := r.usage[l][r.vEdge(x, y)]; u > cap {
						total += int(u - cap)
					}
				}
			}
		} else {
			for y := 0; y < r.ny; y++ {
				for x := 0; x < r.nx-1; x++ {
					if u := r.usage[l][r.hEdge(x, y)]; u > cap {
						total += int(u - cap)
					}
				}
			}
		}
	}
	return total
}

// computeMetrics derives all metrics from the stored routes. Every term is
// a commutative integer sum, so map iteration order does not matter.
func (r *Router) computeMetrics() {
	m := Metrics{FailedConns: r.metrics.FailedConns}
	for _, nr := range r.routes {
		for pi, path := range nr.paths {
			if nr.dm1[pi] {
				m.DM1++
			}
			inM1Run := false
			for i := 1; i < len(path); i++ {
				la, _, ya := r.nodeOf(path[i-1])
				lb, _, yb := r.nodeOf(path[i])
				if la != lb {
					// Via.
					lo := la
					if lb < lo {
						lo = lb
					}
					switch lo {
					case tech.M1:
						m.Via12++
					case tech.M2:
						m.Via23++
					case tech.M3:
						m.Via34++
					}
					inM1Run = false
					continue
				}
				if la.Direction() == tech.Vertical {
					m.LayerWL[la] += r.t.RowHeight * absI64(int64(yb-ya))
					if la == tech.M1 {
						if !inM1Run {
							m.M1Segs++
							inM1Run = true
						}
					} else {
						inM1Run = false
					}
				} else {
					m.LayerWL[la] += r.t.SiteWidth
					inM1Run = false
				}
			}
		}
		// Pin-access vias, once per pin terminal.
		switch r.cfg.Arch {
		case tech.OpenM1:
			m.Via01 += nr.pinConns
		case tech.Conventional:
			m.Via12 += nr.pinConns
		}
	}
	for l := tech.M1; l <= tech.M4; l++ {
		m.RWL += m.LayerWL[l]
	}
	m.Overflow = r.totalOverflow()
	r.metrics = m
}

func absI64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
