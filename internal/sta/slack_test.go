package sta

import (
	"math"
	"testing"

	"vm1place/internal/cells"
	"vm1place/internal/layout"
	"vm1place/internal/netlist"
	"vm1place/internal/place"
	"vm1place/internal/tech"
)

func slackFixture(t *testing.T, n int, seed int64) (*layout.Placement, Config) {
	t.Helper()
	tc := tech.Default()
	lib := cells.MustNewLibrary(tc, tech.ClosedM1)
	d := netlist.MustGenerate(lib, netlist.DefaultGenConfig("slk", n, seed))
	p := layout.MustNewFloorplan(tc, d, 0.75)
	if err := place.Global(p, place.Options{}); err != nil {
		t.Fatal(err)
	}
	return p, DefaultConfig()
}

func TestNetSlacksMatchWNS(t *testing.T) {
	p, cfg := slackFixture(t, 600, 91)
	rep := Analyze(p, cfg, nil)
	slacks := NetSlacks(p, cfg, nil)
	minSlack := math.Inf(1)
	for ni, s := range slacks {
		if p.Design.Nets[ni].IsClock {
			if !math.IsInf(s, 1) {
				t.Errorf("clock net slack = %f, want +Inf", s)
			}
			continue
		}
		if s < minSlack {
			minSlack = s
		}
	}
	if rep.WNS < 0 {
		if math.Abs(minSlack-rep.WNS) > 0.01 {
			t.Errorf("min net slack %f != WNS %f", minSlack, rep.WNS)
		}
	} else if minSlack < -0.01 {
		t.Errorf("WNS = 0 but min slack %f < 0", minSlack)
	}
}

func TestSlacksRespondToClock(t *testing.T) {
	p, cfg := slackFixture(t, 400, 92)
	tight := cfg
	tight.ClockPeriodNs = 0.5
	loose := cfg
	loose.ClockPeriodNs = 50
	sTight := NetSlacks(p, tight, nil)
	sLoose := NetSlacks(p, loose, nil)
	for ni := range sTight {
		if math.IsInf(sTight[ni], 1) {
			continue
		}
		if sLoose[ni] <= sTight[ni] {
			t.Fatalf("net %d: loose clock slack %f not above tight %f",
				ni, sLoose[ni], sTight[ni])
		}
	}
}

func TestCriticalityBetas(t *testing.T) {
	slacks := []float64{math.Inf(1), -0.5, 0, 1.0, 2.0, 5.0}
	betas := CriticalityBetas(slacks, 2.0, 3.0)
	if betas[0] != 1 {
		t.Errorf("unconstrained beta = %f", betas[0])
	}
	if betas[1] != 4 || betas[2] != 4 {
		t.Errorf("critical betas = %f, %f, want 4", betas[1], betas[2])
	}
	if math.Abs(betas[3]-2.5) > 1e-9 {
		t.Errorf("half-critical beta = %f, want 2.5", betas[3])
	}
	if betas[4] != 1 || betas[5] != 1 {
		t.Errorf("relaxed betas = %f, %f, want 1", betas[4], betas[5])
	}
	for _, b := range betas {
		if b < 1 {
			t.Errorf("beta %f below 1", b)
		}
	}
}

func TestTimingAwareOptimizationKeepsCriticalNetsShort(t *testing.T) {
	// Smoke test of the NetBeta plumbing: slack-weighted betas must be
	// accepted by the optimizer and not break legality. (The quality
	// comparison lives in the experiment harness.)
	p, cfg := slackFixture(t, 300, 93)
	slacks := NetSlacks(p, cfg, nil)
	betas := CriticalityBetas(slacks, cfg.ClockPeriodNs, 2.0)
	if len(betas) != len(p.Design.Nets) {
		t.Fatalf("beta length %d, want %d", len(betas), len(p.Design.Nets))
	}
	nGT1 := 0
	for _, b := range betas {
		if b > 1 {
			nGT1++
		}
	}
	if nGT1 == 0 {
		t.Error("no net received a criticality weight (suspicious)")
	}
}
