package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("vm1place/internal/core").
	Path string
	// Dir is the directory the sources were read from.
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of one module without the go
// tool: module-internal imports resolve against the module tree on disk,
// everything else is type-checked from GOROOT source via the stdlib
// source importer. Test files (_test.go) are excluded — the suite's
// invariants govern library and binary code; tests are free to panic,
// use context.Background, and read the clock.
type Loader struct {
	// Fset positions every file loaded directly or via the importer.
	Fset *token.FileSet
	// ModulePath is the module's import-path prefix ("vm1place").
	ModulePath string
	// ModuleDir is the directory holding the module root.
	ModuleDir string

	std  types.Importer
	pkgs map[string]*Package
	// loading guards against import cycles (a cycle would otherwise
	// recurse forever; go/types reports the real error later).
	loading map[string]bool
}

// NewLoader returns a Loader for the module rooted at dir with the given
// import-path prefix.
func NewLoader(modulePath, dir string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModulePath: modulePath,
		ModuleDir:  dir,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}
}

// Load resolves patterns into module packages and type-checks them, in
// deterministic (sorted import path) order. Supported patterns are
// relative directories ("./internal/lp") and recursive globs ("./...",
// "./internal/..."), both interpreted against the module root.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs := make(map[string]bool)
	for _, pat := range patterns {
		rec := false
		if pat == "./..." || pat == "..." {
			pat, rec = ".", true
		} else if d, ok := strings.CutSuffix(pat, "/..."); ok {
			pat, rec = d, true
		}
		root := filepath.Join(l.ModuleDir, filepath.FromSlash(pat))
		if !rec {
			// An explicitly named package must exist and build; only
			// recursive walks may skip go-file-less directories.
			if !hasGoFiles(root) {
				return nil, fmt.Errorf("analysis: no buildable Go files in %s", root)
			}
			dirs[root] = true
			continue
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			dirs[path] = true
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	var paths []string
	for dir := range dirs {
		if !hasGoFiles(dir) {
			continue
		}
		rel, err := filepath.Rel(l.ModuleDir, dir)
		if err != nil {
			return nil, err
		}
		path := l.ModulePath
		if rel != "." {
			path = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		paths = append(paths, path)
	}
	sort.Strings(paths)

	pkgs := make([]*Package, 0, len(paths))
	for _, path := range paths {
		p, err := l.loadPath(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// loadPath loads one module package by import path, memoized.
func (l *Loader) loadPath(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	rel := strings.TrimPrefix(path, l.ModulePath)
	dir := filepath.Join(l.ModuleDir, filepath.FromSlash(strings.TrimPrefix(rel, "/")))

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: load %s: %w", path, err)
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %w", path, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importerFunc(l.importPkg)}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typecheck %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// importPkg resolves an import for the type checker: module-internal
// paths recurse into loadPath, everything else goes to the stdlib source
// importer.
func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		p, err := l.loadPath(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// FindModuleRoot walks up from dir to the nearest go.mod and returns the
// module directory and module path.
func FindModuleRoot(dir string) (root, modulePath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, rerr := os.ReadFile(filepath.Join(dir, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}
