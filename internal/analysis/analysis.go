// Package analysis is vm1place's static-invariant suite: a set of custom
// analyzers that mechanically enforce the properties the reproduction's
// results depend on — bit-determinism of the single-worker flow, panic
// discipline in library code, end-to-end context propagation, and the
// structured-error contract.
//
// The package deliberately mirrors the golang.org/x/tools/go/analysis API
// (Analyzer, Pass, Diagnostic, and an analysistest-style fixture runner
// with `// want` comments) but is self-contained on the standard library:
// the build environment is offline, so packages are loaded and
// type-checked through go/parser + go/types with the stdlib source
// importer instead of x/tools' go/packages. Should the x/tools dependency
// become available, each analyzer's Run func ports over unchanged.
//
// Invariants are suppressible only at tagged sites: a `// <tag>-ok:
// reason` comment on the flagged line (or the line above) silences the
// analyzer that owns the tag. The colon and reason are part of the
// convention — an untagged suppression is a review smell.
//
// The suite runs as `cmd/vm1lint ./...` from `make lint` / `make check`,
// and TestSelfCheck keeps the repository itself at zero findings.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant checker. It mirrors
// golang.org/x/tools/go/analysis.Analyzer so the Run functions are
// portable to the real driver.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and test output.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Tag is the suppression-comment prefix (e.g. "order-ok"): a comment
	// containing "<Tag>:" on the flagged line or the line above silences
	// this analyzer's diagnostics at that site.
	Tag string
	// Run reports diagnostics for one type-checked package.
	Run func(*Pass) error
}

// Pass provides one analyzer run with a single type-checked package and a
// sink for its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers a diagnostic. Suppression tags are applied by the
	// driver, not the analyzer.
	Report func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Finding is a resolved diagnostic: position plus the analyzer that
// produced it, as emitted by Run.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// All returns the full vm1lint suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		MapOrderAnalyzer,
		PanicGuardAnalyzer,
		CtxFlowAnalyzer,
		WrapCheckAnalyzer,
		ClockRandAnalyzer,
	}
}

// errorType is the universe error interface, shared by several analyzers.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// implementsError reports whether t satisfies the error interface.
func implementsError(t types.Type) bool {
	return types.Implements(t, errorType)
}

// isPkgFunc reports whether call is a call of the package-level function
// pkgPath.name (e.g. "os".Exit), resolved through the type info so local
// shadows and renamed imports are handled.
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// rootIdent returns the leftmost identifier of a selector chain, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}
