package core

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"vm1place/internal/tech"
)

// requireObjEqual fails unless the tracker's objective is exactly the
// oracle's — integer fields identical and Value bit-identical (the tracker
// re-sums the weighted HPWL in net order precisely so the float result
// matches a fresh scan).
func requireObjEqual(t *testing.T, stage string, tr *ObjTracker) {
	t.Helper()
	got := tr.Objective()
	want := CalculateObj(tr.p, tr.prm)
	if got.HPWL != want.HPWL || got.Alignments != want.Alignments ||
		got.OverlapSum != want.OverlapSum || got.Value != want.Value {
		t.Fatalf("%s: tracker diverged from CalculateObj:\n got %+v\nwant %+v",
			stage, got, want)
	}
}

// TestObjTrackerMatchesOptimizerPasses drives the incremental tracker
// through real DistOpt passes — perturb, flips-only, and grid offsets that
// create clipped boundary windows — on both architectures, checking exact
// agreement with the full rescan after every pass.
func TestObjTrackerMatchesOptimizerPasses(t *testing.T) {
	for _, arch := range []tech.Arch{tech.ClosedM1, tech.OpenM1} {
		p := genPlaced(t, arch, 400, 91, 0.75)
		prm := DefaultParams(p.Tech, arch)
		prm.MaxNodes = 40
		prm.TimeLimit = 100 * time.Millisecond
		tr := NewObjTracker(p, prm)
		requireObjEqual(t, arch.String()+"/initial", tr)

		ps := ParamSet{BW: 2000, BH: 2000, LX: 3, LY: 1}
		pool := newSolverPool(workersOf(prm))
		var tx, ty int64
		for it := 0; it < 3; it++ {
			g := makeGrid(p, ps, tx, ty)
			distPass(context.Background(), tr, ps, g, pool, true, false)
			requireObjEqual(t, arch.String()+"/perturb", tr)
			distPass(context.Background(), tr, ps, g, pool, false, true)
			requireObjEqual(t, arch.String()+"/flip", tr)
			// Half-window shifts produce clipped windows on the die
			// boundary next iteration (Section 4.2 coverage).
			tx += ps.BW / 2
			ty += ps.BH / 2
		}
		if err := p.CheckLegal(); err != nil {
			t.Fatalf("%s: illegal after tracked passes: %v", arch, err)
		}
	}
}

// TestObjTrackerMatchesRandomMoves fuzzes ApplyMoves with arbitrary
// batched relocations and orientation flips (legality is irrelevant to the
// objective identity) and checks exact agreement after every batch.
func TestObjTrackerMatchesRandomMoves(t *testing.T) {
	for _, arch := range []tech.Arch{tech.ClosedM1, tech.OpenM1} {
		p := genPlaced(t, arch, 200, 17, 0.7)
		prm := DefaultParams(p.Tech, arch)
		tr := NewObjTracker(p, prm)
		rng := rand.New(rand.NewSource(99))
		for batch := 0; batch < 20; batch++ {
			n := 1 + rng.Intn(8)
			moves := make([]Move, 0, n)
			for k := 0; k < n; k++ {
				i := rng.Intn(len(p.Design.Insts))
				wi := p.Design.Insts[i].Master.WidthSites
				moves = append(moves, Move{
					Inst: i,
					Site: rng.Intn(p.NumSites - wi + 1),
					Row:  rng.Intn(p.NumRows),
					Flip: rng.Intn(2) == 0,
				})
			}
			tr.ApplyMoves(moves)
			requireObjEqual(t, arch.String()+"/random", tr)
		}
	}
}

// TestObjTrackerFullRun checks the tracker that VM1Opt carries internally:
// the Result objectives it reports must match fresh rescans of the final
// placement.
func TestObjTrackerFullRun(t *testing.T) {
	p := genPlaced(t, tech.ClosedM1, 300, 23, 0.75)
	prm := DefaultParams(p.Tech, tech.ClosedM1)
	prm.MaxNodes = 40
	prm.TimeLimit = 100 * time.Millisecond
	prm.MaxOuterIters = 2
	res := VM1Opt(p, prm, Sequence{{BW: 2000, BH: 2000, LX: 3, LY: 1}})
	want := CalculateObj(p, prm)
	if res.Final != want {
		t.Fatalf("VM1Opt final objective diverged from rescan:\n got %+v\nwant %+v",
			res.Final, want)
	}
}
