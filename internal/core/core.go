// Package core implements the paper's contribution: vertical M1
// routing-aware detailed placement by MILP (DAC'17, Debacker et al.).
//
// The optimizer perturbs a legal placement inside small windows, minimizing
// a weighted combination of HPWL and the (negated) number of inter-row pin
// alignments (ClosedM1) or pin overlaps (OpenM1) that enable direct
// vertical M1 routing. Each window is an exact MILP over single-cell-
// placement (SCP) candidate variables (Section 3 of the paper); windows
// with disjoint x/y projections are solved in parallel (Section 4,
// Figures 3-4); and a metaheuristic outer loop sweeps a sequence of window
// size / perturbation-range parameter sets until the objective converges
// (Algorithm 1).
package core

import (
	"runtime"
	"time"

	"vm1place/internal/cells"
	"vm1place/internal/geom"
	"vm1place/internal/layout"
	"vm1place/internal/netlist"
	"vm1place/internal/objective"
	"vm1place/internal/tech"
)

// Params configures the optimizer.
type Params struct {
	// Arch selects the cell architecture. When Objective is nil it also
	// selects the MILP formulation via objective.ForArch (ClosedM1
	// alignment or OpenM1 overlap); Conventional designs have nothing to
	// optimize.
	Arch tech.Arch
	// Objective, when non-nil, overrides the geometry objective: the
	// per-pair reward terms, per-net α weights and MILP rows the window
	// subproblems emit (internal/objective). nil keeps the paper
	// formulation selected by Arch. Resolve names with objective.Lookup.
	Objective objective.GeomObjective
	// Alpha weighs one alignment/overlap against HPWL DBU (the paper's α).
	Alpha float64
	// NetAlpha, when non-nil, holds per-net multipliers on Alpha (indexed
	// like Design.Nets) consumed by per-net-weighted objectives such as
	// "slackalpha" (typically sta.CriticalityBetas over sta.NetSlacks).
	// Uniform objectives ignore it. Entries <= 0 or beyond the slice
	// bounds mean 1.
	NetAlpha []float64
	// MarginDBU is the "netsep" objective's separation margin; <= 0
	// selects that objective's default (4·δ).
	MarginDBU int64
	// Beta weighs net HPWL (the paper's βn, uniform; the paper uses 1).
	Beta float64
	// NetBeta, when non-nil, holds per-net multipliers on Beta (indexed
	// like Design.Nets). This implements the paper's future-work item of
	// folding timing criticality into the objective: critical nets get
	// βn > 1 so the optimizer resists stretching them. Nets beyond the
	// slice bounds or with non-positive entries use 1.
	NetBeta []float64
	// PinDensityWeight, when positive, adds a per-candidate penalty
	// proportional to the signal-pin count already present in the
	// candidate's site columns (computed from the window snapshot). This
	// is the paper's future-work pin-density criterion: it steers cells
	// away from pin-crowded columns that throttle pin access.
	PinDensityWeight float64
	// Epsilon weighs total overlap length for OpenM1 (the paper's ε).
	Epsilon float64
	// GammaRows is the maximum dM1 span in rows (the paper's γ, OpenM1
	// Constraint (12)).
	GammaRows int
	// AlignGammaRows is the alignment window for pair eligibility in the
	// MILP and objective. The paper's ClosedM1 Constraint (4) uses one row
	// height (adjacent rows) — alignments farther apart are rarely
	// routable because intervening cells' M1 pins block the track — while
	// OpenM1 uses γ. DefaultParams sets 1 and γ respectively.
	AlignGammaRows int
	// DeltaDBU is the minimum OpenM1 overlap length (the paper's δ).
	DeltaDBU int64
	// Theta is the relative objective-improvement threshold that ends the
	// inner loop of Algorithm 1 (the paper uses 1%).
	Theta float64
	// MaxNodes and TimeLimit bound each window MILP (the CPLEX budget
	// equivalent).
	MaxNodes  int
	TimeLimit time.Duration
	// Workers is the parallel window solver count. DefaultParams sets it
	// to the machine's available parallelism (the paper's experiments use
	// 8 threads on an 8-core host — the same policy, not a magic count).
	Workers int
	// SolverWorkers is the speculative branch-and-bound worker count
	// inside each window MILP (milp.Params.Workers): at >= 2 node
	// relaxations are solved in parallel with canonically-ordered commits,
	// so any such count yields identical placements. <= 1 keeps the
	// sequential warm-started solver. Orthogonal to Workers, which
	// parallelizes across windows; the default of 0 leaves all parallelism
	// at the window level.
	SolverWorkers int
	// Shards splits the window grid into that many contiguous column
	// stripes (internal/shard) that run concurrently with a read-only
	// halo of boundary straddlers, merging moves at each window-family
	// barrier in family window order — the same single batch per family
	// as the unsharded path, so any shard count yields bit-identical
	// placements (the sharded inner loop releases window storage at the
	// barrier, keeping peak memory sublinear in the window count; see
	// DESIGN.md §4f). Stripes are balanced by proxy-predicted load when
	// guided selection is active, by window population otherwise. <= 1
	// keeps the pipelined single-shard engine.
	Shards int
	// MaxMILPCells is the largest window (movable cells) solved exactly;
	// larger windows use the greedy coordinate-descent fallback (0: 100).
	MaxMILPCells int
	// MaxOuterIters caps Algorithm 1 inner iterations per parameter set
	// (0: until convergence). ExptA-1 uses 1.
	MaxOuterIters int
	// Guided enables proxy-guided window selection and budgeting (requires
	// Proxy): before each DistOpt pass every window and diagonal family is
	// scored, families run hottest-first, near-empty families (scoring
	// below GuidedColdFrac of the hottest) are skipped outright, and each
	// window's MILP TimeLimit is scaled by its own score — cold windows
	// drop toward GuidedShrink x the uniform budget, hot windows rise
	// toward GuidedBoostCap x. The schedule is a pure function of the
	// placement — (score, familyID) tie-break, single-threaded scoring —
	// so guided runs stay bit-deterministic across Workers settings.
	Guided bool
	// Proxy is the QoR estimator behind guided selection, typically
	// *proxy.Estimator. It is attached to the run's ObjTracker so every
	// committed move batch keeps its congestion model current. nil
	// disables guided selection even when Guided is set.
	Proxy WindowScorer
	// GuidedColdFrac is the family skip threshold as a fraction of the
	// hottest family's score (0: 0.01). Families at or above the threshold
	// run. The default is deliberately tight — it drops the near-empty
	// boundary-sliver families a shifted grid produces, not merely
	// uncongested ones: window objective gains are only weakly predictable
	// from congestion, so skipping real windows trades QoR away.
	GuidedColdFrac float64
	// GuidedShrink is the budget floor multiplier for the coldest windows
	// (0: 0.25). A cold window still solves, but its MILP wall budget is
	// GuidedShrink x the uniform TimeLimit — hard-but-cold windows stop
	// chasing tail improvements the router cannot reward. Untimed runs
	// (TimeLimit <= 0) are unaffected.
	GuidedShrink float64
	// GuidedBoostCap caps the per-window TimeLimit multiplier for the
	// hottest windows (0: 1.5).
	GuidedBoostCap float64
}

// guidedColdFrac returns the effective cold-skip threshold fraction.
func (prm Params) guidedColdFrac() float64 {
	if prm.GuidedColdFrac > 0 {
		return prm.GuidedColdFrac
	}
	return 0.01
}

// guidedShrink returns the effective cold-window budget floor.
func (prm Params) guidedShrink() float64 {
	if prm.GuidedShrink > 0 {
		return prm.GuidedShrink
	}
	return 0.25
}

// guidedBoostCap returns the effective budget-boost cap.
func (prm Params) guidedBoostCap() float64 {
	if prm.GuidedBoostCap >= 1 {
		return prm.GuidedBoostCap
	}
	return 1.5
}

// guided reports whether guided family selection is active.
func (prm Params) guided() bool { return prm.Guided && prm.Proxy != nil }

// shardsOf returns the effective spatial shard count (>= 1).
func shardsOf(prm Params) int {
	if prm.Shards <= 1 {
		return 1
	}
	return prm.Shards
}

// poolWorkers sizes the run's solver pool: Workers workspaces for the
// single-shard engine; when sharding, every stripe gets an equal share of
// Workers but at least one workspace, so a Workers=1 sharded run still
// makes progress on every stripe concurrently.
func poolWorkers(prm Params) int {
	k := shardsOf(prm)
	if k <= 1 {
		return workersOf(prm)
	}
	per := workersOf(prm) / k
	if per < 1 {
		per = 1
	}
	return k * per
}

// DefaultParams returns paper-faithful defaults for an architecture.
func DefaultParams(t *tech.Tech, arch tech.Arch) Params {
	alpha := 1200.0
	alignGamma := 1
	if arch == tech.OpenM1 {
		alpha = 1000.0
		alignGamma = t.Gamma
	}
	return Params{
		Arch:           arch,
		Alpha:          alpha,
		Beta:           1.0,
		Epsilon:        0.02,
		GammaRows:      t.Gamma,
		AlignGammaRows: alignGamma,
		DeltaDBU:       t.Delta,
		Theta:          0.01,
		MaxNodes:       200,
		// 400ms per window MILP: with warm-started dual re-solves the
		// branch-and-bound explores more nodes in 400ms than the seed
		// solver did in 800ms, and the deadline now interrupts long root
		// relaxations too, so hard windows pin their family at exactly
		// this budget. Measured quality over 3 full passes is within 0.2%
		// of the 800ms setting at roughly half the wall time.
		TimeLimit:    400 * time.Millisecond,
		Workers:      runtime.GOMAXPROCS(0),
		MaxMILPCells: 100,
	}
}

// ParamSet is one entry of the metaheuristic sequence U: window size (DBU)
// and perturbation range (sites/rows). The paper writes these as
// (bw=bh in µm, lx, ly); the experiment harness converts µm to DBU.
type ParamSet struct {
	BW, BH int64 // window width/height in DBU
	LX     int   // max |Δx| in sites
	LY     int   // max |Δy| in rows
}

// Sequence is the queue U of Algorithm 1.
type Sequence []ParamSet

// Objective is the paper's optimization objective evaluated on a placement:
// Σ βn·HPWL(n) − α·#alignments (− ε·Σ overlap surplus for OpenM1).
type Objective struct {
	HPWL int64
	// Alignments counts pin pairs eligible for direct vertical M1 routing
	// (aligned for ClosedM1, overlapping >= δ for OpenM1, within γ rows).
	Alignments int
	// OverlapSum is Σ max(0, overlap − δ) over counted pairs (OpenM1).
	OverlapSum int64
	// Value is the scalarized objective.
	Value float64
}

// pinRef caches the geometry of one net terminal used in pair tests.
type pinRef struct {
	inst   int
	alignX int64         // absolute ClosedM1 track x
	ext    geom.Interval // absolute OpenM1 x extent
	row    int
	y      int64 // absolute pin y center
}

// terminalRef builds the cached geometry for an instance pin.
func terminalRef(p *layout.Placement, c netlist.Conn) pinRef {
	inst := &p.Design.Insts[c.Inst]
	pin := &inst.Master.Pins[c.Pin]
	x := p.InstX(c.Inst)
	flip := p.Flip[c.Inst]
	ext := cells.XExtent(inst.Master, p.Tech, pin, flip)
	return pinRef{
		inst:   c.Inst,
		alignX: x + cells.AlignX(inst.Master, p.Tech, pin, flip),
		ext:    geom.Interval{Lo: x + ext.Lo, Hi: x + ext.Hi},
		row:    p.Row[c.Inst],
		y:      p.InstY(c.Inst) + cells.PinY(inst.Master, p.Tech, pin),
	}
}

// appendNetTerminals appends the signal-pin terminals of a net to buf and
// returns it (ports are not M1-accessible pins and never participate in
// pairs). Passing a reused buffer avoids the per-net allocation that
// dominated CalculateObj's constant factor.
func appendNetTerminals(buf []pinRef, p *layout.Placement, ni int) []pinRef {
	p.Design.Nets[ni].ForEachConn(func(c netlist.Conn) {
		buf = append(buf, terminalRef(p, c))
	})
	return buf
}

// netTerminals is appendNetTerminals with a fresh buffer.
func netTerminals(p *layout.Placement, ni int) []pinRef {
	return appendNetTerminals(make([]pinRef, 0, p.Design.Nets[ni].NumConns()), p, ni)
}

// pinGeom converts a cached terminal to the objective package's view of
// its x/y geometry.
func pinGeom(r pinRef) objective.PinGeom {
	return objective.PinGeom{
		Row:     r.row,
		AlignX:  r.alignX,
		ExtLo:   r.ext.Lo,
		ExtHi:   r.ext.Hi,
		CenterX: (r.ext.Lo + r.ext.Hi) / 2,
	}
}

// pairStats counts the dM1-eligible terminal pairs of one net and their
// overlap surplus (terms on the same instance never pair).
func pairStats(prm Params, terms []pinRef) (align int, over int64) {
	o := prm.obj()
	w := prm.weights()
	gamma := prm.alignGamma()
	for i := 0; i < len(terms); i++ {
		for j := i + 1; j < len(terms); j++ {
			if terms[i].inst == terms[j].inst {
				continue
			}
			if ok, ov := pairEnablesDM1(o, w, gamma, terms[i], terms[j]); ok {
				align++
				over += ov
			}
		}
	}
	return align, over
}

// pairEnablesDM1 reports whether two terminals enable a direct vertical M1
// route (or, generally, realize the objective's pair predicate) under the
// current placement, plus the overlap surplus. The row-window gate is
// shared by every objective; the x-geometry test is the objective's.
func pairEnablesDM1(o objective.GeomObjective, w objective.Weights, gamma int, a, b pinRef) (bool, int64) {
	dr := a.row - b.row
	if dr < 0 {
		dr = -dr
	}
	if dr > gamma {
		return false, 0
	}
	return o.PairEval(w, pinGeom(a), pinGeom(b))
}

// betaOf returns the effective βn for a net.
func (prm Params) betaOf(ni int) float64 {
	b := prm.Beta
	if ni < len(prm.NetBeta) && prm.NetBeta[ni] > 0 {
		b *= prm.NetBeta[ni]
	}
	return b
}

// alignGamma returns the pair-eligibility row window.
func (prm Params) alignGamma() int {
	if prm.AlignGammaRows > 0 {
		return prm.AlignGammaRows
	}
	return prm.obj().AlignGammaDefault(prm.GammaRows)
}

// obj resolves the effective geometry objective: the explicit Objective
// when set, else the paper formulation for the architecture.
func (prm Params) obj() objective.GeomObjective {
	if prm.Objective != nil {
		return prm.Objective
	}
	return objective.ForArch(prm.Arch)
}

// weights packs the objective-facing scalar knobs.
func (prm Params) weights() objective.Weights {
	return objective.Weights{
		Alpha:     prm.Alpha,
		Epsilon:   prm.Epsilon,
		DeltaDBU:  prm.DeltaDBU,
		MarginDBU: prm.MarginDBU,
		NetAlpha:  prm.NetAlpha,
	}
}

// CalculateObj evaluates the global objective of a placement (Algorithm 2's
// CalculateObj).
func CalculateObj(p *layout.Placement, prm Params) Objective {
	var obj Objective
	o := prm.obj()
	w := prm.weights()
	obj.HPWL = p.TotalHPWL()
	var weighted, reward float64
	var buf []pinRef
	for ni := range p.Design.Nets {
		if p.Design.Nets[ni].IsClock {
			continue
		}
		weighted += prm.betaOf(ni) * float64(p.NetHPWL(ni))
		buf = appendNetTerminals(buf[:0], p, ni)
		align, over := pairStats(prm, buf)
		obj.Alignments += align
		obj.OverlapSum += over
		reward += o.PairAlpha(w, ni) * float64(align)
	}
	obj.Value = o.Value(w, weighted, obj.Alignments, obj.OverlapSum, reward)
	return obj
}
