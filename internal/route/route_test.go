package route

import (
	"testing"

	"vm1place/internal/cells"
	"vm1place/internal/layout"
	"vm1place/internal/netlist"
	"vm1place/internal/place"
	"vm1place/internal/tech"
)

// manual builds tiny hand-wired designs for targeted routing scenarios.
type manual struct {
	d *netlist.Design
}

func newManual(lib *cells.Library) *manual {
	return &manual{d: &netlist.Design{Name: "manual", Lib: lib}}
}

func (m *manual) addInst(master string) int {
	ms := m.d.Lib.MustMaster(master)
	inst := netlist.Instance{
		Name:    "u" + string(rune('0'+len(m.d.Insts))),
		Master:  ms,
		PinNets: make([]int, len(ms.Pins)),
	}
	for i := range inst.PinNets {
		inst.PinNets[i] = -1
	}
	m.d.Insts = append(m.d.Insts, inst)
	return len(m.d.Insts) - 1
}

func (m *manual) pinIdx(inst int, pin string) int {
	ms := m.d.Insts[inst].Master
	for i := range ms.Pins {
		if ms.Pins[i].Name == pin {
			return i
		}
	}
	panic("no pin " + pin)
}

// connect wires driver (inst, pinName) to sinks; returns net index.
func (m *manual) connect(drvInst int, drvPin string, sinks ...[2]interface{}) int {
	ni := len(m.d.Nets)
	dp := m.pinIdx(drvInst, drvPin)
	net := netlist.Net{
		Name:   "n" + string(rune('0'+ni)),
		Driver: netlist.Conn{Inst: drvInst, Pin: dp},
	}
	m.d.Insts[drvInst].PinNets[dp] = ni
	for _, s := range sinks {
		si := s[0].(int)
		sp := m.pinIdx(si, s[1].(string))
		net.Sinks = append(net.Sinks, netlist.Conn{Inst: si, Pin: sp})
		m.d.Insts[si].PinNets[sp] = ni
	}
	m.d.Nets = append(m.d.Nets, net)
	return ni
}

// tieOff connects all unconnected input pins of every instance to a fresh
// dummy driver net each (keeps Validate happy without affecting routing
// scenarios, since single-sink nets driven by their own dedicated inverter
// would change the layout; instead we use port-driven nets).
func (m *manual) tieOff() {
	for ii := range m.d.Insts {
		inst := &m.d.Insts[ii]
		for pi := range inst.PinNets {
			p := &inst.Master.Pins[pi]
			if !p.IsSignal() || inst.PinNets[pi] != -1 {
				continue
			}
			ni := len(m.d.Nets)
			if p.Dir == cells.Input {
				m.d.Nets = append(m.d.Nets, netlist.Net{
					Name:   "tie" + string(rune('0'+ni)),
					Driver: netlist.Conn{Inst: -1},
					Sinks:  []netlist.Conn{{Inst: ii, Pin: pi}},
				})
				m.d.Ports = append(m.d.Ports, netlist.Port{
					Name: "tp" + string(rune('0'+ni)), Net: ni, Input: true,
					Side: netlist.West, Pos: 0.5,
				})
			} else {
				m.d.Nets = append(m.d.Nets, netlist.Net{
					Name:   "obs" + string(rune('0'+ni)),
					Driver: netlist.Conn{Inst: ii, Pin: pi},
				})
				m.d.Ports = append(m.d.Ports, netlist.Port{
					Name: "op" + string(rune('0'+ni)), Net: ni, Input: false,
					Side: netlist.East, Pos: 0.5,
				})
			}
			inst.PinNets[pi] = ni
		}
	}
	if err := m.d.Validate(); err != nil {
		panic(err)
	}
}

// mkClosed returns a tiny ClosedM1 placement with two INVs wired
// ZN(u0) -> A(u1), plus the placement handle for manual location control.
func mkClosedPair(t *testing.T) (*layout.Placement, *Router, int) {
	t.Helper()
	tc := tech.Default()
	lib := cells.MustNewLibrary(tc, tech.ClosedM1)
	m := newManual(lib)
	u0 := m.addInst("INV_X1")
	u1 := m.addInst("INV_X1")
	ni := m.connect(u0, "ZN", [2]interface{}{u1, "A"})
	m.tieOff()
	p := layout.MustNewFloorplan(tc, m.d, 0.05)
	p.SpreadEven()
	r := New(p, DefaultConfig(tc, tech.ClosedM1))
	_ = u0
	_ = u1
	return p, r, ni
}

func TestClosedM1AlignedPairGetsDM1(t *testing.T) {
	p, r, _ := mkClosedPair(t)
	// INV_X1: A on track 0, ZN on track 1 (unflipped).
	// u0 at (site 0, row 0): ZN at site 1. u1 at (site 1, row 1): A at
	// site 1. Aligned -> direct vertical M1 route.
	p.SetLoc(0, 0, 0, false)
	p.SetLoc(1, 1, 1, false)
	m := r.RouteAll()
	if m.DM1 != 1 {
		t.Errorf("DM1 = %d, want 1", m.DM1)
	}
	if m.LayerWL[tech.M1] < p.Tech.RowHeight {
		t.Errorf("M1 WL = %d, want >= %d", m.LayerWL[tech.M1], p.Tech.RowHeight)
	}
	if m.FailedConns != 0 {
		t.Errorf("FailedConns = %d", m.FailedConns)
	}
}

func TestClosedM1MisalignedPairNoDM1(t *testing.T) {
	p, r, _ := mkClosedPair(t)
	// u1 at site 4: A at site 4, misaligned with u0's ZN at site 1.
	p.SetLoc(0, 0, 0, false)
	p.SetLoc(1, 4, 1, false)
	m := r.RouteAll()
	if m.DM1 != 0 {
		t.Errorf("DM1 = %d, want 0", m.DM1)
	}
	// The connection must still complete, using upper layers.
	if m.FailedConns != 0 {
		t.Errorf("FailedConns = %d", m.FailedConns)
	}
	if m.Via12 == 0 {
		t.Error("misaligned route should use vias to M2")
	}
}

func TestClosedM1GammaLimit(t *testing.T) {
	p, r, _ := mkClosedPair(t)
	// Aligned but 5 rows apart: beyond gamma=3, so even if routed on M1
	// it must not count as dM1.
	p.SetLoc(0, 0, 0, false)
	p.SetLoc(1, 1, 5, false)
	m := r.RouteAll()
	if m.DM1 != 0 {
		t.Errorf("DM1 = %d, want 0 (span 5 > gamma 3)", m.DM1)
	}
}

func TestClosedM1FlipEnablesAlignment(t *testing.T) {
	p, r, _ := mkClosedPair(t)
	// u1 flipped: A moves from track 0 to track 1 within the cell.
	// u0 at site 0 (ZN at site 1); u1 at site 0 flipped -> A at site 1.
	p.SetLoc(0, 0, 0, false)
	p.SetLoc(1, 0, 1, true)
	m := r.RouteAll()
	if m.DM1 != 1 {
		t.Errorf("DM1 = %d, want 1 with flipped sink", m.DM1)
	}
}

func TestClosedM1BlockedTrackPreventsDM1(t *testing.T) {
	tc := tech.Default()
	lib := cells.MustNewLibrary(tc, tech.ClosedM1)
	m := newManual(lib)
	u0 := m.addInst("INV_X1")
	u1 := m.addInst("INV_X1")
	u2 := m.addInst("INV_X1") // blocker
	u3 := m.addInst("INV_X1") // sink of blocker's net, far away
	m.connect(u0, "ZN", [2]interface{}{u1, "A"})
	m.connect(u2, "ZN", [2]interface{}{u3, "A"})
	m.tieOff()
	p := layout.MustNewFloorplan(tc, m.d, 0.1)
	p.SpreadEven()
	// u0 row0 site0 (ZN at site 1), u1 row2 site1 (A at site 1): span 2,
	// would be dM1 via track 1 through row 1...
	p.SetLoc(u0, 0, 0, false)
	p.SetLoc(u1, 1, 2, false)
	// ...but u2 at row1 site0 puts its ZN pin on (site 1, row 1).
	p.SetLoc(u2, 0, 1, false)
	p.SetLoc(u3, 5, 4, false)
	r := New(p, DefaultConfig(tc, tech.ClosedM1))
	mm := r.RouteAll()
	// Net 0 must not get a dM1 (track blocked); net 1 is misaligned.
	if mm.DM1 != 0 {
		t.Errorf("DM1 = %d, want 0 (track blocked by foreign pin)", mm.DM1)
	}
	if mm.FailedConns != 0 {
		t.Errorf("FailedConns = %d", mm.FailedConns)
	}
	// Control: move the blocker away and the dM1 appears.
	p.SetLoc(u2, 6, 1, false)
	mm = r.RouteAll()
	if mm.DM1 != 1 {
		t.Errorf("control DM1 = %d, want 1 after moving blocker", mm.DM1)
	}
}

func TestOpenM1OverlapGetsDM1(t *testing.T) {
	tc := tech.Default()
	lib := cells.MustNewLibrary(tc, tech.OpenM1)
	m := newManual(lib)
	u0 := m.addInst("INV_X1")
	u1 := m.addInst("INV_X1")
	m.connect(u0, "ZN", [2]interface{}{u1, "A"})
	m.tieOff()
	p := layout.MustNewFloorplan(tc, m.d, 0.1)
	p.SpreadEven()
	// OpenM1 INV_X1 (width 2 sites = 200 dbu): A spans [10,150] locally,
	// ZN spans [10,190]. Placing both at site 0 in adjacent rows makes the
	// x-extents overlap heavily -> dM1.
	p.SetLoc(u0, 0, 0, false)
	p.SetLoc(u1, 0, 1, false)
	r := New(p, DefaultConfig(tc, tech.OpenM1))
	mm := r.RouteAll()
	if mm.DM1 != 1 {
		t.Errorf("DM1 = %d, want 1 for overlapping OpenM1 pins", mm.DM1)
	}
	if mm.Via01 == 0 {
		t.Error("OpenM1 routing must report via01 usage")
	}
}

func TestOpenM1DisjointNoDM1(t *testing.T) {
	tc := tech.Default()
	lib := cells.MustNewLibrary(tc, tech.OpenM1)
	m := newManual(lib)
	u0 := m.addInst("INV_X1")
	u1 := m.addInst("INV_X1")
	m.connect(u0, "ZN", [2]interface{}{u1, "A"})
	m.tieOff()
	p := layout.MustNewFloorplan(tc, m.d, 0.1)
	p.SpreadEven()
	// Far apart horizontally: no overlap -> no dM1.
	p.SetLoc(u0, 0, 0, false)
	p.SetLoc(u1, 8, 1, false)
	r := New(p, DefaultConfig(tc, tech.OpenM1))
	mm := r.RouteAll()
	if mm.DM1 != 0 {
		t.Errorf("DM1 = %d, want 0 for disjoint OpenM1 pins", mm.DM1)
	}
	if mm.FailedConns != 0 {
		t.Errorf("FailedConns = %d", mm.FailedConns)
	}
}

func TestConventionalNoM1Routing(t *testing.T) {
	tc := tech.Default()
	lib := cells.MustNewLibrary(tc, tech.Conventional)
	d := netlist.MustGenerate(lib, netlist.DefaultGenConfig("conv", 300, 31))
	p := layout.MustNewFloorplan(tc, d, 0.7)
	if err := place.Global(p, place.Options{}); err != nil {
		t.Fatal(err)
	}
	r := New(p, DefaultConfig(tc, tech.Conventional))
	m := r.RouteAll()
	if m.LayerWL[tech.M1] != 0 {
		t.Errorf("conventional arch used M1: WL %d", m.LayerWL[tech.M1])
	}
	if m.DM1 != 0 {
		t.Errorf("conventional arch reported %d dM1", m.DM1)
	}
	if m.RWL == 0 {
		t.Error("no routing happened")
	}
}

func TestFullDesignRoutes(t *testing.T) {
	for _, arch := range []tech.Arch{tech.ClosedM1, tech.OpenM1} {
		tc := tech.Default()
		lib := cells.MustNewLibrary(tc, arch)
		d := netlist.MustGenerate(lib, netlist.DefaultGenConfig("full", 600, 32))
		p := layout.MustNewFloorplan(tc, d, 0.7)
		if err := place.Global(p, place.Options{}); err != nil {
			t.Fatal(err)
		}
		r := New(p, DefaultConfig(tc, arch))
		m := r.RouteAll()
		if m.FailedConns > 2 {
			t.Errorf("%s: FailedConns = %d", arch, m.FailedConns)
		}
		if m.RWL <= 0 {
			t.Errorf("%s: RWL = %d", arch, m.RWL)
		}
		var sum int64
		for l := tech.M1; l <= tech.M4; l++ {
			sum += m.LayerWL[l]
		}
		if sum != m.RWL {
			t.Errorf("%s: layer WL sum %d != RWL %d", arch, sum, m.RWL)
		}
		if m.DM1 < 1 {
			t.Errorf("%s: expected some natural dM1, got %d", arch, m.DM1)
		}
		if m.Via12 == 0 {
			t.Errorf("%s: no via12 counted", arch)
		}
	}
}

func TestRouteDeterministic(t *testing.T) {
	tc := tech.Default()
	lib := cells.MustNewLibrary(tc, tech.ClosedM1)
	d := netlist.MustGenerate(lib, netlist.DefaultGenConfig("det", 400, 33))
	p := layout.MustNewFloorplan(tc, d, 0.7)
	if err := place.Global(p, place.Options{}); err != nil {
		t.Fatal(err)
	}
	r1 := New(p, DefaultConfig(tc, tech.ClosedM1))
	m1 := r1.RouteAll()
	r2 := New(p, DefaultConfig(tc, tech.ClosedM1))
	m2 := r2.RouteAll()
	if m1 != m2 {
		t.Errorf("routing not deterministic: %+v vs %+v", m1, m2)
	}
}

func TestRouteAllIdempotentReset(t *testing.T) {
	p, r, _ := mkClosedPair(t)
	p.SetLoc(0, 0, 0, false)
	p.SetLoc(1, 1, 1, false)
	m1 := r.RouteAll()
	m2 := r.RouteAll()
	if m1 != m2 {
		t.Errorf("RouteAll not idempotent: %+v vs %+v", m1, m2)
	}
}

func TestReroutesAfterPlacementChange(t *testing.T) {
	p, r, _ := mkClosedPair(t)
	p.SetLoc(0, 0, 0, false)
	p.SetLoc(1, 4, 1, false) // misaligned
	before := r.RouteAll()
	if before.DM1 != 0 {
		t.Fatalf("setup: DM1 = %d", before.DM1)
	}
	p.SetLoc(1, 1, 1, false) // align
	after := r.RouteAll()
	if after.DM1 != 1 {
		t.Errorf("after alignment DM1 = %d, want 1", after.DM1)
	}
	if after.Via12 >= before.Via12 {
		t.Errorf("aligned via12 %d not fewer than misaligned %d", after.Via12, before.Via12)
	}
}

func TestDM1AwareVsPlainRouter(t *testing.T) {
	// Ablation: the dM1-aware cost (cheap M1) must pull more routing onto
	// M1 than the plain cost on the same placement.
	tc := tech.Default()
	lib := cells.MustNewLibrary(tc, tech.ClosedM1)
	d := netlist.MustGenerate(lib, netlist.DefaultGenConfig("abl", 500, 34))
	p := layout.MustNewFloorplan(tc, d, 0.7)
	if err := place.Global(p, place.Options{}); err != nil {
		t.Fatal(err)
	}
	aware := DefaultConfig(tc, tech.ClosedM1)
	mAware := New(p, aware).RouteAll()
	plain := aware
	plain.M1CostFactor = 1.0
	mPlain := New(p, plain).RouteAll()
	if mAware.LayerWL[tech.M1] < mPlain.LayerWL[tech.M1] {
		t.Errorf("aware router used less M1 (%d) than plain (%d)",
			mAware.LayerWL[tech.M1], mPlain.LayerWL[tech.M1])
	}
	if mAware.FailedConns != 0 || mPlain.FailedConns != 0 {
		t.Errorf("failed connections: aware %d plain %d", mAware.FailedConns, mPlain.FailedConns)
	}
}
