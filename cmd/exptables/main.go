// Command exptables regenerates every evaluation table and figure of the
// DAC'17 paper on the synthetic substrate (see DESIGN.md for the
// experiment index).
//
// Usage:
//
//	exptables -all -scale 0.1            # full suite at 10% instance counts
//	exptables -table2 -scale 1.0         # Table 2 at paper-scale designs
//	exptables -fig6 -arch openm1
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"vm1place/internal/expt"
	"vm1place/internal/tech"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "exptables:", err)
		os.Exit(1)
	}
}

func run() error {
	all := flag.Bool("all", false, "run everything")
	fig5 := flag.Bool("fig5", false, "ExptA-1: window/perturbation scalability")
	fig6 := flag.Bool("fig6", false, "ExptA-2: alpha sensitivity")
	fig7 := flag.Bool("fig7", false, "ExptA-3: optimization sequences")
	fig8 := flag.Bool("fig8", false, "congestion/DRV study")
	table2 := flag.Bool("table2", false, "ExptB: full-design results")
	ablate := flag.Bool("ablate", false, "sequential-vs-joint flip ablation")
	guided := flag.Bool("guided", false, "uniform-vs-guided window budgeting sweep")
	objSweep := flag.Bool("objsweep", false,
		"pluggable-objective workloads: netsep margins, slackalpha weights, track-count variants")
	scaleSweep := flag.Bool("scalesweep", false,
		"design-scale sweep: wall, peak heap and routed QoR vs instance and shard count")
	archStr := flag.String("arch", "closedm1", "architecture for -fig6")
	scale := flag.Float64("scale", 0.1, "design scale factor (1.0 = paper instance counts)")
	workers := flag.Int("workers", 8, "parallel window solvers")
	sweepDesign := flag.String("sweep-design", "jpeg", "paper design the -scalesweep grows")
	sweepScales := flag.String("sweep-scales", "0.1,0.5,1.0,2.0",
		"comma-separated scale factors for -scalesweep (duplicates after the 200-inst floor are dropped)")
	sweepShards := flag.String("sweep-shards", "1,2,4", "comma-separated shard counts for -scalesweep")
	flag.Parse()

	cfg := expt.SuiteConfig{Scale: *scale, Workers: *workers}
	any := false
	start := time.Now()

	if *all || *fig5 {
		any = true
		fmt.Println("== ExptA-1 (Figure 5) ==")
		pts, err := expt.RunFig5(cfg, nil, nil)
		if err != nil {
			return err
		}
		expt.WriteFig5(os.Stdout, pts)
		fmt.Println()
	}
	if *all || *fig6 {
		any = true
		arch := tech.ClosedM1
		if *archStr == "openm1" {
			arch = tech.OpenM1
		}
		fmt.Println("== ExptA-2 (Figure 6) ==")
		pts, err := expt.RunFig6(cfg, arch, nil)
		if err != nil {
			return err
		}
		expt.WriteFig6(os.Stdout, arch, pts)
		fmt.Println()
	}
	if *all || *fig7 {
		any = true
		fmt.Println("== ExptA-3 (Figure 7) ==")
		pts, err := expt.RunFig7(cfg, nil)
		if err != nil {
			return err
		}
		expt.WriteFig7(os.Stdout, pts)
		fmt.Println()
	}
	if *all || *table2 {
		any = true
		fmt.Println("== ExptB (Table 2) ==")
		for _, arch := range []tech.Arch{tech.ClosedM1, tech.OpenM1} {
			rows, err := expt.RunTable2(cfg, arch)
			if err != nil {
				return err
			}
			expt.WriteTable2(os.Stdout, arch, rows)
		}
		fmt.Println()
	}
	if *all || *fig8 {
		any = true
		fmt.Println("== Congestion study (Figure 8) ==")
		pts, err := expt.RunFig8(cfg, nil)
		if err != nil {
			return err
		}
		expt.WriteFig8(os.Stdout, pts)
		fmt.Println()
	}
	if *all || *ablate {
		any = true
		fmt.Println("== Ablation: sequential vs joint move+flip ==")
		r, err := expt.RunAblationJointFlip(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("%s: sequential RWL %.1f um / dM1 %d / %.1fs ; joint RWL %.1f um / dM1 %d / %.1fs\n",
			r.Name,
			float64(r.BaseRWL)/1000, r.BaseDM1, r.BaseSec,
			float64(r.VarRWL)/1000, r.VarDM1, r.VarSec)
		fmt.Println()
	}

	if *all || *guided {
		any = true
		fmt.Println("== Guided window selection (congestion proxy) ==")
		pts, err := expt.RunGuidedSweep(cfg, nil)
		if err != nil {
			return err
		}
		expt.WriteGuidedSweep(os.Stdout, pts)
		fmt.Println()
	}

	if *all || *objSweep {
		any = true
		fmt.Println("== Objective sweep (pluggable workloads) ==")
		pts, err := expt.RunObjSweep(cfg)
		if err != nil {
			return err
		}
		expt.WriteObjSweep(os.Stdout, pts)
		fmt.Println()
	}

	// Deliberately outside -all: sweep points at scale >= 1 run for hours,
	// so the scale sweep only runs when asked for by name.
	if *scaleSweep {
		any = true
		fmt.Println("== Scale sweep (sharded optimizer) ==")
		scales, err := parseFloats(*sweepScales)
		if err != nil {
			return fmt.Errorf("-sweep-scales: %w", err)
		}
		shards, err := parseInts(*sweepShards)
		if err != nil {
			return fmt.Errorf("-sweep-shards: %w", err)
		}
		pts, err := expt.RunScaleSweep(cfg, *sweepDesign, scales, shards)
		if err != nil {
			return err
		}
		expt.WriteScaleSweep(os.Stdout, pts)
		fmt.Println()
	}

	if !any {
		flag.Usage()
		os.Exit(2)
	}
	fmt.Printf("total %s (scale %.2f)\n", time.Since(start).Round(time.Second), *scale)
	return nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", f, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", f, err)
		}
		out = append(out, v)
	}
	return out, nil
}
