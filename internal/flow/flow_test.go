package flow

import (
	"context"
	"errors"
	"testing"
	"time"
)

type event struct {
	kind  string // "start" or "done"
	stage string
	err   error
}

type recorder struct{ events []event }

func (r *recorder) StageStart(name string) { r.events = append(r.events, event{"start", name, nil}) }
func (r *recorder) StageDone(name string, d time.Duration, err error) {
	r.events = append(r.events, event{"done", name, err})
}

func TestPipelineRunsStagesInOrder(t *testing.T) {
	var order []string
	mk := func(name string) Stage {
		return Func(name, func(ctx context.Context, st *State) error {
			order = append(order, name)
			st.Put(name, name+"-snapshot")
			return nil
		})
	}
	rec := &recorder{}
	pl := New(mk("a"), mk("b"), mk("c")).Observe(rec)
	st := &State{}
	if err := pl.Run(context.Background(), st); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Errorf("stage order = %v", order)
	}
	if len(st.Timings) != 3 {
		t.Fatalf("timings = %v", st.Timings)
	}
	for i, name := range []string{"a", "b", "c"} {
		if st.Timings[i].Stage != name {
			t.Errorf("timing %d is %q, want %q", i, st.Timings[i].Stage, name)
		}
		if st.Value(name) != name+"-snapshot" {
			t.Errorf("snapshot for %q = %v", name, st.Value(name))
		}
	}
	if got := pl.Stages(); len(got) != 3 || got[0] != "a" {
		t.Errorf("Stages() = %v", got)
	}
	// Observer saw start/done per stage, in order.
	if len(rec.events) != 6 {
		t.Fatalf("observer events = %v", rec.events)
	}
	if rec.events[0].kind != "start" || rec.events[0].stage != "a" ||
		rec.events[5].kind != "done" || rec.events[5].stage != "c" {
		t.Errorf("observer events out of order: %v", rec.events)
	}
}

func TestPipelineStopsAtFailingStage(t *testing.T) {
	sentinel := errors.New("boom")
	ran := map[string]bool{}
	mk := func(name string, err error) Stage {
		return Func(name, func(ctx context.Context, st *State) error {
			ran[name] = true
			return err
		})
	}
	rec := &recorder{}
	pl := New(mk("ok", nil), mk("bad", sentinel), mk("after", nil)).Observe(rec)
	st := &State{}
	err := pl.Run(context.Background(), st)
	if err == nil {
		t.Fatal("expected error")
	}
	if !errors.Is(err, sentinel) {
		t.Errorf("errors.Is(err, sentinel) = false for %v", err)
	}
	var se *StageError
	if !errors.As(err, &se) || se.Stage != "bad" {
		t.Errorf("errors.As StageError = %v, stage %q", err, se.Stage)
	}
	if ran["after"] {
		t.Error("stage after the failure ran")
	}
	// Both executed stages have timings; the failing one reported its error
	// to the observer.
	if len(st.Timings) != 2 {
		t.Errorf("timings = %v", st.Timings)
	}
	last := rec.events[len(rec.events)-1]
	if last.kind != "done" || last.stage != "bad" || !errors.Is(last.err, sentinel) {
		t.Errorf("last observer event = %+v", last)
	}
}

func TestPipelineCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	pl := New(Func("never", func(ctx context.Context, st *State) error {
		ran = true
		return nil
	}))
	err := pl.Run(ctx, &State{})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false for %v", err)
	}
	var se *StageError
	if !errors.As(err, &se) || se.Stage != "never" {
		t.Errorf("stage error = %v", err)
	}
	if ran {
		t.Error("stage ran under canceled context")
	}
}

func TestPipelineCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	pl := New(
		Func("first", func(ctx context.Context, st *State) error {
			cancel() // cancellation arrives while a stage is running
			return nil
		}),
		Func("second", func(ctx context.Context, st *State) error {
			t.Error("second stage ran after cancellation")
			return nil
		}),
	)
	st := &State{}
	err := pl.Run(ctx, st)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("want context.Canceled, got %v", err)
	}
	var se *StageError
	if !errors.As(err, &se) || se.Stage != "second" {
		t.Errorf("cancellation should be charged to the next stage, got %v", err)
	}
	if len(st.Timings) != 1 || st.Timings[0].Stage != "first" {
		t.Errorf("timings = %v", st.Timings)
	}
}

func TestStageDurationSums(t *testing.T) {
	st := &State{Timings: []Timing{
		{Stage: "x", Duration: time.Second},
		{Stage: "y", Duration: time.Millisecond},
		{Stage: "x", Duration: time.Second},
	}}
	if d := st.StageDuration("x"); d != 2*time.Second {
		t.Errorf("StageDuration(x) = %v", d)
	}
	if d := st.StageDuration("missing"); d != 0 {
		t.Errorf("StageDuration(missing) = %v", d)
	}
}
