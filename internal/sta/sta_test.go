package sta

import (
	"testing"

	"vm1place/internal/cells"
	"vm1place/internal/layout"
	"vm1place/internal/netlist"
	"vm1place/internal/place"
	"vm1place/internal/tech"
)

func analyzedDesign(t *testing.T, n int, seed int64) (*layout.Placement, Report) {
	t.Helper()
	tc := tech.Default()
	lib := cells.MustNewLibrary(tc, tech.ClosedM1)
	d := netlist.MustGenerate(lib, netlist.DefaultGenConfig("sta", n, seed))
	p := layout.MustNewFloorplan(tc, d, 0.75)
	if err := place.Global(p, place.Options{}); err != nil {
		t.Fatal(err)
	}
	return p, Analyze(p, DefaultConfig(), nil)
}

func TestAnalyzeBasics(t *testing.T) {
	_, rep := analyzedDesign(t, 800, 41)
	if rep.CritDelay <= 0 {
		t.Errorf("CritDelay = %f, want > 0", rep.CritDelay)
	}
	if rep.WNS > 0 {
		t.Errorf("WNS = %f, must be <= 0", rep.WNS)
	}
	if rep.TotalPowerMW <= 0 {
		t.Errorf("TotalPowerMW = %f", rep.TotalPowerMW)
	}
	if rep.SwitchingPowerMW <= 0 || rep.LeakagePowerMW <= 0 {
		t.Errorf("power breakdown: %+v", rep)
	}
	if diff := rep.TotalPowerMW - rep.SwitchingPowerMW - rep.LeakagePowerMW; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("power breakdown does not add up: %+v", rep)
	}
}

func TestWNSZeroWhenMet(t *testing.T) {
	tc := tech.Default()
	lib := cells.MustNewLibrary(tc, tech.ClosedM1)
	d := netlist.MustGenerate(lib, netlist.DefaultGenConfig("wns", 300, 42))
	p := layout.MustNewFloorplan(tc, d, 0.75)
	if err := place.Global(p, place.Options{}); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.ClockPeriodNs = 1000 // absurdly relaxed
	rep := Analyze(p, cfg, nil)
	if rep.WNS != 0 {
		t.Errorf("WNS = %f, want 0 with relaxed clock", rep.WNS)
	}
	cfg.ClockPeriodNs = 0.0001 // impossible
	rep = Analyze(p, cfg, nil)
	if rep.WNS >= 0 {
		t.Errorf("WNS = %f, want negative with impossible clock", rep.WNS)
	}
}

func TestLongerWiresSlowerAndHotter(t *testing.T) {
	p, base := analyzedDesign(t, 500, 43)
	inflate := func(ni int) int64 { return 10 * p.NetHPWL(ni) }
	worse := Analyze(p, DefaultConfig(), inflate)
	if worse.CritDelay <= base.CritDelay {
		t.Errorf("inflated wires did not slow the design: %f vs %f",
			worse.CritDelay, base.CritDelay)
	}
	if worse.TotalPowerMW <= base.TotalPowerMW {
		t.Errorf("inflated wires did not raise power: %f vs %f",
			worse.TotalPowerMW, base.TotalPowerMW)
	}
	if worse.LeakagePowerMW != base.LeakagePowerMW {
		t.Error("leakage must not depend on wires")
	}
}

func TestAnalyzeDeterministic(t *testing.T) {
	_, a := analyzedDesign(t, 400, 44)
	_, b := analyzedDesign(t, 400, 44)
	if a != b {
		t.Errorf("reports differ: %+v vs %+v", a, b)
	}
}

func TestPowerScalesWithSize(t *testing.T) {
	_, small := analyzedDesign(t, 300, 45)
	_, large := analyzedDesign(t, 1200, 45)
	if large.TotalPowerMW <= 2*small.TotalPowerMW {
		t.Errorf("power did not scale with size: %f vs %f",
			large.TotalPowerMW, small.TotalPowerMW)
	}
}
