package core

import (
	"context"
	"sync"
	"time"

	"vm1place/internal/geom"
	"vm1place/internal/layout"
	"vm1place/internal/lp"
)

// passGrid is the window decomposition of one DistOpt call: the window
// rectangles, the grid dimensions, and per-window instance buckets. The
// perturbation and flip passes of one Algorithm 1 iteration use the same
// offset (tx, ty), and a movable cell only ever relocates within the one
// window that fully contains it, so the grid stays exact across the pass
// pair and is computed once per iteration instead of once per pass.
type passGrid struct {
	rects    []geom.Rect
	nwx, nwy int
	buckets  [][]int
}

func makeGrid(p *layout.Placement, ps ParamSet, tx, ty int64) passGrid {
	rects, nwx, nwy := partition(p, ps, tx, ty)
	return passGrid{
		rects:   rects,
		nwx:     nwx,
		nwy:     nwy,
		buckets: bucketInsts(p, ps, tx, ty, nwx, nwy),
	}
}

// newArenaPool builds one LP scratch arena per worker. Arenas are handed
// out through the channel so a worker owns its arena exclusively for the
// duration of one window solve; across families and passes the same arena
// keeps serving windows, which preserves its warm-start state and avoids
// re-allocating the dense basis inverse for every MILP.
func newArenaPool(workers int) chan *lp.Arena {
	pool := make(chan *lp.Arena, workers)
	for i := 0; i < workers; i++ {
		pool <- lp.NewArena()
	}
	return pool
}

func workersOf(prm Params) int {
	if prm.Workers <= 0 {
		return 1
	}
	return prm.Workers
}

// DistOpt is Algorithm 2: partition the layout into bw x bh windows at
// offset (tx, ty), then optimize diagonal families of windows (disjoint x
// and y projections, Figure 3) in parallel. allowMove/allowFlip select the
// pass mode of Algorithm 1 (perturb with f=0, or flip-only with f=1).
//
// This entry point builds a fresh objective tracker and grid for a single
// standalone pass; VM1Opt drives distPass directly so the tracker, grid
// and LP arenas persist across passes.
func DistOpt(p *layout.Placement, prm Params, ps ParamSet, tx, ty int64,
	allowMove, allowFlip bool) Objective {
	t := NewObjTracker(p, prm)
	// ctx-ok: context-free compatibility entry point; cancellable callers use distPass via VM1OptCtx.
	obj, _ := distPass(context.Background(), t, ps, makeGrid(p, ps, tx, ty),
		newArenaPool(workersOf(prm)), allowMove, allowFlip)
	return obj
}

// distPass runs one DistOpt pass through an ObjTracker. Windows are built
// against the live placement — every build in a family completes (and only
// reads) before any of the family's moves are applied, and families with
// disjoint projections never conflict, so no placement snapshot is needed.
// Accepted relocations are funneled through t.ApplyMoves, which updates
// only the nets incident to moved cells instead of rescanning the design.
//
// Cancellation is checked between window families — the pass's commit
// boundaries — so an interrupted pass returns with the placement legal and
// the tracker consistent, together with the ctx error. A context deadline
// additionally clamps the per-window MILP wall budget (familyParams), so
// solves launched near the deadline cannot overrun it: the milp solver
// arms lp.Arena.SetDeadline with exactly this budget.
func distPass(ctx context.Context, t *ObjTracker, ps ParamSet, g passGrid,
	arenas chan *lp.Arena, allowMove, allowFlip bool) (Objective, error) {
	p, prm := t.p, t.prm

	// Diagonal scheduling: family f holds windows with (wi - wj) ≡ f
	// (mod D); within a family, window x indices and y indices are all
	// distinct, so projections are disjoint.
	d := g.nwx
	if g.nwy > d {
		d = g.nwy
	}
	var moves []Move
	for f := 0; f < d; f++ {
		var family []int
		for wj := 0; wj < g.nwy; wj++ {
			for wi := 0; wi < g.nwx; wi++ {
				if ((wi-wj)%d+d)%d == f {
					family = append(family, wj*g.nwx+wi)
				}
			}
		}
		if len(family) == 0 {
			continue
		}
		if err := ctx.Err(); err != nil {
			return t.Objective(), err
		}
		fprm := familyParams(ctx, prm)

		type result struct {
			w      *window
			assign []int
		}
		results := make([]result, len(family))
		var wg sync.WaitGroup
		for k, widx := range family {
			wg.Add(1)
			arena := <-arenas
			go func(k, widx int, arena *lp.Arena) {
				defer wg.Done()
				defer func() { arenas <- arena }()
				w := buildWindow(p, fprm, g.rects[widx], ps, g.buckets[widx], allowMove, allowFlip)
				w.scratch = arena
				results[k] = result{w: w, assign: w.solve()}
			}(k, widx, arena)
		}
		wg.Wait()

		moves = moves[:0]
		for _, res := range results {
			if res.assign == nil {
				continue
			}
			for ci, inst := range res.w.movable {
				cd := res.w.cand[ci][res.assign[ci]]
				if cd.site == p.SiteX[inst] && cd.row == p.Row[inst] && cd.flip == p.Flip[inst] {
					continue // cell kept its placement; nothing to refresh
				}
				moves = append(moves, Move{Inst: inst, Site: cd.site, Row: cd.row, Flip: cd.flip})
			}
		}
		if len(moves) > 0 {
			t.ApplyMoves(moves)
		}
	}
	return t.Objective(), nil
}

// familyParams clamps the per-window MILP budget of one family to the
// remaining time before the context deadline. Without a deadline the
// params pass through untouched, keeping the uncanceled path identical to
// the pre-context engine.
func familyParams(ctx context.Context, prm Params) Params {
	dl, ok := ctx.Deadline()
	if !ok {
		return prm
	}
	rem := time.Until(dl) // clock-ok: converts the caller's ctx deadline into a milp TimeLimit; budgets, not results
	if rem < time.Millisecond {
		// The family launches anyway (the caller's ctx.Err() gate passed);
		// a floor keeps the milp deadline armed rather than treating a
		// non-positive TimeLimit as "no budget".
		rem = time.Millisecond
	}
	if prm.TimeLimit <= 0 || rem < prm.TimeLimit {
		prm.TimeLimit = rem
	}
	return prm
}

// partition tiles the die with bw x bh windows offset by (tx, ty),
// returning the window rectangles in row-major order plus grid dimensions.
func partition(p *layout.Placement, ps ParamSet, tx, ty int64) ([]geom.Rect, int, int) {
	bw, bh := ps.BW, ps.BH
	if bw <= 0 {
		bw = p.DieWidth()
	}
	if bh <= 0 {
		bh = p.DieHeight()
	}
	x0 := mod64(tx, bw) - bw
	y0 := mod64(ty, bh) - bh
	nwx := int((p.DieWidth()-x0)/bw) + 1
	nwy := int((p.DieHeight()-y0)/bh) + 1
	rects := make([]geom.Rect, 0, nwx*nwy)
	for wj := 0; wj < nwy; wj++ {
		for wi := 0; wi < nwx; wi++ {
			rects = append(rects, geom.Rect{
				XLo: x0 + int64(wi)*bw,
				YLo: y0 + int64(wj)*bh,
				XHi: x0 + int64(wi+1)*bw,
				YHi: y0 + int64(wj+1)*bh,
			})
		}
	}
	return rects, nwx, nwy
}

// bucketInsts assigns every instance to each window its rectangle
// intersects.
func bucketInsts(p *layout.Placement, ps ParamSet, tx, ty int64, nwx, nwy int) [][]int {
	bw, bh := ps.BW, ps.BH
	if bw <= 0 {
		bw = p.DieWidth()
	}
	if bh <= 0 {
		bh = p.DieHeight()
	}
	x0 := mod64(tx, bw) - bw
	y0 := mod64(ty, bh) - bh
	buckets := make([][]int, nwx*nwy)
	for i := range p.Design.Insts {
		r := p.InstRect(i)
		wi0 := int((r.XLo - x0) / bw)
		wi1 := int((r.XHi - 1 - x0) / bw)
		wj0 := int((r.YLo - y0) / bh)
		wj1 := int((r.YHi - 1 - y0) / bh)
		for wj := clampInt(wj0, 0, nwy-1); wj <= clampInt(wj1, 0, nwy-1); wj++ {
			for wi := clampInt(wi0, 0, nwx-1); wi <= clampInt(wi1, 0, nwx-1); wi++ {
				buckets[wj*nwx+wi] = append(buckets[wj*nwx+wi], i)
			}
		}
	}
	return buckets
}

func mod64(a, m int64) int64 {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
