package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrderAnalyzer flags `range` statements over maps whose bodies have
// order-dependent effects inside the deterministic packages — the exact
// bug class PR 5 fixed by hand in the wmilp occupancy rows, where map
// iteration order leaked into MILP row order and broke bit-reproducible
// single-worker runs.
//
// An effect is order-dependent when the loop body
//
//   - appends to a slice declared outside the loop (element order follows
//     map order),
//   - calls an ordered sink — a method or function whose name starts with
//     Add/Append/Push/Write/Print/Fprint (LP/MILP row builders, buffers,
//     writers),
//   - sends on a channel, or
//   - accumulates into an outer floating-point variable with a compound
//     assignment (float addition is not associative, so even a
//     commutative-looking sum depends on order).
//
// Loops that only read, write map entries keyed by the loop variable, or
// fill position-indexed slots are order-independent and pass. Legitimate
// sites — e.g. collecting keys that are sorted immediately afterwards —
// carry an `// order-ok: <reason>` tag.
var MapOrderAnalyzer = &Analyzer{
	Name: "maporder",
	Doc:  "flags map iteration with order-dependent effects in deterministic packages",
	Tag:  "order-ok",
	Run:  runMapOrder,
}

// deterministicPkgPrefixes are the packages whose outputs must be
// bit-identical run to run (the paper's Table 2 / Fig 8 kernels). Paths
// are matched by prefix, so subpackages inherit the contract.
var deterministicPkgPrefixes = []string{
	"vm1place/internal/core",
	"vm1place/internal/milp",
	"vm1place/internal/lp",
	"vm1place/internal/route",
	"vm1place/internal/place",
	"vm1place/internal/wmilp",
	// The congestion proxy feeds guided family selection, whose plan must
	// be a pure function of the placement (see internal/core/guided.go).
	"vm1place/internal/proxy",
	// The shard partition decides which stripe solves each window; the
	// sharded optimizer's bit-identity across shard counts requires the
	// partition itself to be a pure function of its inputs.
	"vm1place/internal/shard",
	// Geometry objectives emit the MILP rows whose ordering steers simplex
	// pivoting; any map-ordered iteration here breaks the golden flows.
	"vm1place/internal/objective",
}

func isDeterministicPkg(path string) bool {
	for _, p := range deterministicPkgPrefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// orderedSinkPrefixes match callee names whose call order is observable:
// row/term builders, growable buffers, and stream writers.
var orderedSinkPrefixes = []string{"Add", "Append", "Push", "Write", "Print", "Fprint"}

func runMapOrder(pass *Pass) error {
	if !isDeterministicPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if reason := orderDependentEffect(pass, rng); reason != "" {
				pass.Reportf(rng.Pos(), "range over map has order-dependent effect (%s); iterate sorted keys or tag // order-ok: with the reason", reason)
			}
			return true
		})
	}
	return nil
}

// orderDependentEffect scans the range body and names the first
// order-dependent effect found, or returns "".
func orderDependentEffect(pass *Pass, rng *ast.RangeStmt) string {
	var reason string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch st := n.(type) {
		case *ast.SendStmt:
			reason = "channel send"
			return false
		case *ast.AssignStmt:
			if r := assignEffect(pass, rng, st); r != "" {
				reason = r
				return false
			}
		case *ast.CallExpr:
			if name, ok := orderedSinkCall(pass, st); ok {
				reason = "call to ordered sink " + name
				return false
			}
		}
		return true
	})
	return reason
}

// assignEffect classifies an assignment inside the loop body: an append
// into an outer slice, or a compound float accumulation into an outer
// variable.
func assignEffect(pass *Pass, rng *ast.RangeStmt, st *ast.AssignStmt) string {
	// s = append(s, ...) with s declared outside the loop.
	if st.Tok == token.ASSIGN || st.Tok == token.DEFINE {
		for i, rhs := range st.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBuiltinAppend(pass, call) || i >= len(st.Lhs) {
				continue
			}
			if obj := lhsObject(pass, st.Lhs[i]); obj != nil && declaredOutside(obj, rng) {
				return "append to slice " + obj.Name() + " declared outside the loop"
			}
		}
		return ""
	}
	// x += ... (or -=, *=, /=) on an outer float accumulator.
	switch st.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		obj := lhsObject(pass, st.Lhs[0])
		if obj == nil || !declaredOutside(obj, rng) {
			return ""
		}
		t := pass.TypesInfo.TypeOf(st.Lhs[0])
		if t == nil {
			return ""
		}
		if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
			return "floating-point accumulation into " + obj.Name()
		}
	}
	return ""
}

// lhsObject resolves the variable behind an assignment target: the
// identifier itself, or the root of a selector/index chain (writing
// through s.field or s[i] still orders the container's contents when the
// container grows per iteration; for plain element writes the effect
// check below stays conservative by only matching appends and compound
// float ops).
func lhsObject(pass *Pass, e ast.Expr) types.Object {
	id := rootIdent(e)
	if id == nil {
		return nil
	}
	obj := pass.TypesInfo.ObjectOf(id)
	if _, ok := obj.(*types.Var); !ok {
		return nil
	}
	return obj
}

// declaredOutside reports whether obj's declaration lies outside the
// range statement's span (including its key/value variables).
func declaredOutside(obj types.Object, rng *ast.RangeStmt) bool {
	return obj.Pos() < rng.Pos() || obj.Pos() >= rng.End()
}

func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// orderedSinkCall reports whether call is a method or package function
// whose name carries an ordered-sink prefix.
func orderedSinkCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	var name string
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	case *ast.Ident:
		name = fun.Name
		if _, isBuiltin := pass.TypesInfo.Uses[fun].(*types.Builtin); isBuiltin {
			return "", false
		}
	default:
		return "", false
	}
	for _, p := range orderedSinkPrefixes {
		if strings.HasPrefix(name, p) {
			return name, true
		}
	}
	return "", false
}
