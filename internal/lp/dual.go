package lp

import (
	"math"
	"slices"
	"time"
)

// Dual-simplex warm starts.
//
// A branch-and-bound driver re-solves one model hundreds of times where
// consecutive solves differ only in variable bounds. Bound changes leave a
// basis dual feasible (reduced costs depend on the objective and the basis,
// not on the bounds), so the optimal basis of any previous solve is a valid
// dual-simplex start for the next one: typically only the handful of basic
// variables whose bounds tightened violate primality, and each is repaired
// by one dual pivot. The basis factorization (and its eta file) survives in
// the arena between solves, so a warm re-solve costs a few sparse
// FTRAN/BTRANs plus those pivots — the difference between window MILPs
// hitting their time budget and finishing it.

// maxWarmSolves bounds consecutive warm solves before a forced cold
// refresh. The factorized kernel refactorizes on its own fill/instability
// triggers, so drift no longer accumulates the way dense eta updates did;
// the cap remains as a coarse backstop against pathological bases that the
// triggers miss.
const maxWarmSolves = 256

// warmTol is the dual-feasibility and primal-violation tolerance of the
// warm path; looser than costTol because the inherited basis carries drift.
const warmTol = 1e-6

// warmSolve attempts a dual-simplex solve from the basis the arena kept
// from the previous optimal solve. It returns nil when warm starting is not
// applicable or fails (dual infeasibility after an objective change,
// iteration cap, numerical trouble); the caller then falls back to the cold
// primal path, which rebuilds every piece of state warmSolve touched.
func (s *simplex) warmSolve() *Solution {
	a := s.arena
	if !a.warm || a.warmSolves >= maxWarmSolves {
		return nil
	}
	rows := s.nRows
	s.state = a.state
	s.xN = a.xN
	s.basis = a.basis
	s.inBasisRow = a.inBasisRow
	s.xB = a.xB

	// Trim the eta file before starting if it has outgrown its triggers;
	// a basis the factorization rejects is not worth warm starting.
	if s.lu.needsRefactor() {
		if !s.lu.factorize(s.cols, s.basis[:rows]) {
			return nil
		}
	}

	// Re-park nonbasic variables on their (possibly changed) bounds. Free
	// variables parked off-bound keep their value.
	for j := 0; j < s.nTotal; j++ {
		switch {
		case s.state[j] == basic:
		case s.state[j] == atUpper:
			if math.IsInf(s.hi[j], 1) {
				return nil
			}
			s.xN[j] = s.hi[j]
		case !math.IsInf(s.lo[j], -1):
			s.xN[j] = s.lo[j]
		}
	}

	// Reduced costs d_j = c_j − y·A_j with y = Bᵀ⁻¹·c_B (one sparse
	// BTRAN). Dual infeasibilities are repaired by bound flips below;
	// computing d before xB lets the flips feed into the basic-value
	// computation.
	y := a.y
	for i := 0; i < rows; i++ {
		y[i] = s.objP2[s.basis[i]]
	}
	s.lu.btranDense(y[:rows])
	d := a.d
	for j := 0; j < s.nTotal; j++ {
		if s.state[j] == basic {
			d[j] = 0
			continue
		}
		v := s.objP2[j]
		for _, e := range s.cols[j] {
			v -= y[e.row] * e.val
		}
		d[j] = v
		if s.lo[j] == s.hi[j] && !math.IsInf(s.lo[j], 0) {
			continue // fixed variable: any reduced cost is dual feasible
		}
		// Repair dual infeasibilities by bound flips: a nonbasic variable
		// sitting at the wrong bound for its reduced-cost sign simply moves
		// to the other bound (both stay nonbasic, the basis is untouched).
		// These arise because primal pricing tolerances are column-norm
		// scaled, so an “optimal” start can carry reduced costs slightly
		// past warmTol on huge-coefficient columns.
		switch {
		case s.state[j] == atUpper:
			if v > warmTol {
				if math.IsInf(s.lo[j], -1) {
					return nil
				}
				s.state[j] = atLower
				s.xN[j] = s.lo[j]
			}
		case math.IsInf(s.lo[j], -1):
			if math.Abs(v) > warmTol { // free variable needs d ≈ 0
				return nil
			}
		default:
			if v < -warmTol {
				if math.IsInf(s.hi[j], 1) {
					return nil
				}
				s.state[j] = atUpper
				s.xN[j] = s.hi[j]
			}
		}
	}

	// xB = B⁻¹·(b − Σ_{j nonbasic} A_j·xN_j), one sparse FTRAN.
	s.recomputeXB()

	a.ensureRowMatrix() // CSR rows for dualIterate's pivot-row scatter

	sol := s.dualIterate(d, rows+200)
	if sol != nil {
		a.warmSolves++
	}
	return sol
}

// dualIterate runs bounded-variable dual simplex from the current (dual
// feasible) basis until primal feasibility, using the bound-flip ratio
// test: within one iteration, candidates are taken in increasing dual
// ratio; each that cannot absorb the leaving row's whole violation flips
// to its opposite bound (one sparse FTRAN, no basis change), and the first
// that can performs the single actual pivot. One iteration therefore fully
// repairs one violated row, so the pivot count tracks the number of bound
// changes since the basis was optimal — a handful for branch-and-bound
// children.
//
// It returns a nil Solution when the caller should fall back to a cold
// solve (iteration cap or numerical failure: the basis is too far from the
// new bounds to be worth repairing), and an Infeasible Solution when the
// dual is unbounded — the standard certificate that the new bounds admit
// no feasible point. In both cases the basis remains dual feasible for
// future warm starts.
func (s *simplex) dualIterate(d []float64, maxIters int) *Solution {
	rows := s.nRows
	f := s.lu
	alpha := s.arena.alpha
	rho := s.arena.rho
	w := s.arena.w
	type cand struct {
		j     int
		ratio float64
	}
	var cands []cand

	// applyCol moves nonbasic variable j by t: xB -= t·(B⁻¹·A_j), leaving
	// the spike and its nonzero list in w/wInd for a subsequent pivot.
	applyCol := func(j int, t float64) {
		s.arena.wInd = f.ftranSpike(s.cols[j], w, s.arena.wInd)
		if t != 0 {
			for _, wi := range s.arena.wInd {
				s.xB[wi] -= t * w[wi]
			}
		}
	}

	for iters := 0; ; iters++ {
		// Keep the eta file inside its fill triggers; refactorization
		// failure sends the caller to the cold path.
		if f.needsRefactor() {
			if !s.refactorize() {
				return nil
			}
		}

		// Leaving row: the most violated basic variable.
		r, viol := -1, warmTol
		toUpper := false
		for i := 0; i < rows; i++ {
			bj := s.basis[i]
			if v := s.lo[bj] - s.xB[i]; v > viol {
				r, viol, toUpper = i, v, false
			}
			if v := s.xB[i] - s.hi[bj]; v > viol {
				r, viol, toUpper = i, v, true
			}
		}
		if r == -1 {
			// Primal feasible and dual feasible throughout: optimal.
			x := s.extractX()
			obj := 0.0
			for j := 0; j < s.nStruct; j++ {
				obj += s.objP2[j] * x[j]
			}
			s.arena.redCost = growSlice(s.arena.redCost, s.nStruct)
			rc := s.arena.redCost[:s.nStruct]
			copy(rc, d[:s.nStruct])
			return &Solution{Status: Optimal, Obj: obj, X: x, Iters: iters,
				RedCost: rc}
		}
		if iters >= maxIters {
			return nil
		}
		if s.arena.hasDL && iters&31 == 31 && time.Now().After(s.arena.deadline) {
			return nil // the primal fallback aborts on the same deadline
		}

		out := s.basis[r]
		target := s.lo[out]
		if toUpper {
			target = s.hi[out]
		}
		delta := s.xB[r] - target // >0 leaving to upper, <0 to lower

		// Pivot row α_j = ρ·A_j with ρ = Bᵀ⁻¹·e_r (one sparse BTRAN of a
		// unit vector). ρ is usually hyper-sparse (a few nonzero rows for a
		// localized basis change), so α is scattered row-by-row from the
		// arena's CSR matrix instead of gathered over every column: only the
		// columns of ρ's nonzero rows are touched, and alphaInd records them
		// so the ratio walk and the dual update below skip the rest.
		f.btranUnit(r, rho[:rows])
		n := s.nStruct
		aInd := s.arena.alphaInd[:0]
		seen := s.arena.alphaSeen
		rowPtr, rowCol, rowVal := s.arena.rowPtr, s.arena.rowCol, s.arena.rowVal
		for i := 0; i < rows; i++ {
			ri := rho[i]
			if ri == 0 {
				continue
			}
			// Slack and artificial columns of row i are the unit vector e_i:
			// they appear in no other row, so no dedup needed.
			sj, aj := int32(n+i), int32(n+rows+i)
			alpha[sj] = ri
			alpha[aj] = ri
			aInd = append(aInd, sj, aj)
			for e := rowPtr[i]; e < rowPtr[i+1]; e++ {
				j := rowCol[e]
				if !seen[j] {
					seen[j] = true
					alpha[j] = 0
					aInd = append(aInd, j)
				}
				alpha[j] += ri * rowVal[e]
			}
		}
		for _, j := range aInd {
			seen[j] = false
		}
		s.arena.alphaInd = aInd

		// Collect the candidates that can move in the direction that shrinks
		// row r's violation, with their dual ratios |d_j/α_rj| (the θ at
		// which reduced cost j would turn infeasible under the update
		// d'_j = d_j − θ·α_rj).
		cands = cands[:0]
		for _, j32 := range aInd {
			j := int(j32)
			if s.state[j] == basic {
				continue
			}
			av := alpha[j]
			if math.Abs(av) < pivotTol {
				continue
			}
			if s.lo[j] == s.hi[j] && !math.IsInf(s.lo[j], 0) {
				continue // fixed variable cannot move
			}
			free := math.IsInf(s.lo[j], -1) && s.state[j] != atUpper
			canInc := s.state[j] == atLower || free
			canDec := s.state[j] == atUpper || free
			if delta > 0 {
				if !((canInc && av > 0) || (canDec && av < 0)) {
					continue
				}
			} else {
				if !((canInc && av < 0) || (canDec && av > 0)) {
					continue
				}
			}
			cands = append(cands, cand{j: j, ratio: math.Abs(d[j]) / math.Abs(av)})
		}
		// Ties broken by column index so the walk order is canonical (it no
		// longer depends on the scatter order above). slices.SortFunc avoids
		// sort.Slice's reflection-based swapper, which showed up at ~10% of a
		// DistOpt pass.
		slices.SortFunc(cands, func(a, b cand) int {
			switch {
			case a.ratio < b.ratio:
				return -1
			case a.ratio > b.ratio:
				return 1
			}
			return a.j - b.j
		})

		// Walk candidates in ratio order, flipping each one whose range
		// cannot absorb the remaining violation; the first that can absorb
		// it becomes the pivot.
		rem := delta
		enter := -1
		var tPivot float64
		for _, c := range cands {
			j := c.j
			av := alpha[j]
			dir := 1.0 // movement sign: need sign(av·dir) == sign(rem)
			if (rem > 0) != (av > 0) {
				dir = -1
			}
			tNeed := rem / (av * dir) // ≥ 0 by construction
			rng := s.hi[j] - s.lo[j]  // +Inf for free variables
			// The warmTol slack absorbs RHS-perturbation and drift epsilons:
			// a candidate whose range covers the step up to tolerance pivots
			// (entering ends at most warmTol past its bound, within the warm
			// path's own violation tolerance) rather than flipping and
			// leaving an epsilon remainder that would read as infeasible.
			if tNeed <= rng+warmTol {
				enter = j
				tPivot = dir * tNeed
				break
			}
			// Full flip to the opposite bound: no basis change, one FTRAN.
			applyCol(j, dir*rng)
			clearSpike(w, s.arena.wInd)
			if dir > 0 {
				s.state[j] = atUpper
				s.xN[j] = s.hi[j]
			} else {
				s.state[j] = atLower
				s.xN[j] = s.lo[j]
			}
			rem -= av * dir * rng
		}
		if enter == -1 {
			// Dual unbounded ⇒ primal infeasible: even with every eligible
			// column flipped to its far bound, row r cannot reach its bound.
			// This is the standard dual-simplex infeasibility certificate;
			// the basis stays dual feasible (flips and pivots preserved it),
			// so later warm starts remain valid. Infeasible children are the
			// common case under group branching, which makes certifying them
			// in a few pivots — instead of a cold two-phase proof — a large
			// share of the warm-start win.
			return &Solution{Status: Infeasible, Iters: iters}
		}

		// Pivot: entering moves by tPivot, absorbing the rest of the
		// violation; the leaving variable exits to the violated bound. The
		// spike left in w/wInd by applyCol becomes the eta update.
		applyCol(enter, tPivot)
		wInd := s.arena.wInd
		if !f.appendEta(w, wInd, r, f.nEtas() == 0) {
			// Unstable update: refactorize (which also rebuilds xB from the
			// nonbasic values, discarding the step just applied) and retry
			// the repair of the same row with a drift-free factorization.
			clearSpike(w, wInd)
			if !s.refactorize() {
				return nil
			}
			continue
		}
		enterVal := s.xN[enter] + tPivot
		s.inBasisRow[out] = -1
		if toUpper {
			s.state[out] = atUpper
		} else {
			s.state[out] = atLower
		}
		s.xN[out] = target
		s.basis[r] = enter
		s.inBasisRow[enter] = r
		s.state[enter] = basic
		s.xB[r] = enterVal
		clearSpike(w, wInd)
		f.stats.Pivots++

		// Dual update: θ = d_enter/α_r,enter; d'_j = d_j − θ·α_rj for the
		// still-nonbasic columns, d'_out = −θ (α_r,out = 1), d'_enter = 0.
		theta := d[enter] / alpha[enter]
		if theta != 0 {
			// Only columns with a nonzero pivot-row entry move; alphaInd
			// lists exactly those.
			for _, j32 := range aInd {
				j := int(j32)
				if s.state[j] != basic && alpha[j] != 0 {
					d[j] -= theta * alpha[j]
				}
			}
		}
		d[out] = -theta
		d[enter] = 0
	}
}
