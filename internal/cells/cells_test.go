package cells

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"vm1place/internal/geom"
	"vm1place/internal/tech"
)

func TestLibrariesValidate(t *testing.T) {
	tc := tech.Default()
	for _, arch := range []tech.Arch{tech.Conventional, tech.ClosedM1, tech.OpenM1} {
		lib := MustNewLibrary(tc, arch)
		if err := lib.Validate(); err != nil {
			t.Errorf("%s library invalid: %v", arch, err)
		}
		if len(lib.Masters) != len(specs) {
			t.Errorf("%s library has %d masters, want %d", arch, len(lib.Masters), len(specs))
		}
	}
}

func TestMasterLookup(t *testing.T) {
	lib := MustNewLibrary(tech.Default(), tech.ClosedM1)
	if lib.Master("INV_X1") == nil {
		t.Fatal("INV_X1 missing")
	}
	if lib.Master("NOPE") != nil {
		t.Fatal("unexpected master")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustMaster should panic on unknown name")
		}
	}()
	lib.MustMaster("NOPE")
}

func TestPinClassification(t *testing.T) {
	lib := MustNewLibrary(tech.Default(), tech.ClosedM1)
	nand := lib.MustMaster("NAND2_X1")
	if got := len(nand.SignalPins()); got != 3 {
		t.Errorf("NAND2 signal pins = %d, want 3", got)
	}
	if got := len(nand.InputPins()); got != 2 {
		t.Errorf("NAND2 input pins = %d, want 2", got)
	}
	out := nand.OutputPin()
	if out == nil || out.Name != "ZN" {
		t.Errorf("NAND2 output pin = %v", out)
	}
	if nand.Pin("VDD").IsSignal() {
		t.Error("VDD must not be a signal pin")
	}
	if nand.Pin("A1") == nil || nand.Pin("nope") != nil {
		t.Error("Pin lookup broken")
	}
}

func TestClosedM1PinsOnTrackGrid(t *testing.T) {
	tc := tech.Default()
	lib := MustNewLibrary(tc, tech.ClosedM1)
	for _, m := range lib.Masters {
		for _, p := range m.SignalPins() {
			for _, flipped := range []bool{false, true} {
				cx := AlignX(m, tc, p, flipped)
				if (cx-tc.SiteWidth/2)%tc.SiteWidth != 0 {
					t.Errorf("%s.%s flipped=%v center %d off track grid",
						m.Name, p.Name, flipped, cx)
				}
				if cx < 0 || cx > m.WidthDBU(tc) {
					t.Errorf("%s.%s flipped=%v center %d outside cell",
						m.Name, p.Name, flipped, cx)
				}
			}
		}
	}
}

func TestClosedM1PinTracksDistinct(t *testing.T) {
	tc := tech.Default()
	lib := MustNewLibrary(tc, tech.ClosedM1)
	for _, m := range lib.Masters {
		seen := map[int64]string{}
		for _, p := range m.SignalPins() {
			cx := AlignX(m, tc, p, false)
			if prev, dup := seen[cx]; dup {
				t.Errorf("%s: pins %s and %s share track x=%d", m.Name, prev, p.Name, cx)
			}
			seen[cx] = p.Name
		}
	}
}

func TestOpenM1PinExtents(t *testing.T) {
	tc := tech.Default()
	lib := MustNewLibrary(tc, tech.OpenM1)
	for _, m := range lib.Masters {
		for _, p := range m.SignalPins() {
			ext := XExtent(m, tc, p, false)
			if ext.Len() < tc.Delta {
				t.Errorf("%s.%s extent %v shorter than delta %d", m.Name, p.Name, ext, tc.Delta)
			}
			if p.AccessShape().Layer != tech.M0 {
				t.Errorf("%s.%s access layer = %s, want M0", m.Name, p.Name, p.AccessShape().Layer)
			}
		}
	}
}

func TestFlipRect(t *testing.T) {
	r := geom.Rect{XLo: 10, YLo: 5, XHi: 30, YHi: 20}
	f := FlipRect(r, 100)
	if f != (geom.Rect{XLo: 70, YLo: 5, XHi: 90, YHi: 20}) {
		t.Errorf("FlipRect = %v", f)
	}
	// Double flip is identity.
	if FlipRect(f, 100) != r {
		t.Error("double flip not identity")
	}
}

// Property: flipping preserves pin shape width and keeps it inside the
// cell; AlignX of the flip mirrors about the cell center.
func TestFlipInvariantsQuick(t *testing.T) {
	tc := tech.Default()
	lib := MustNewLibrary(tc, tech.ClosedM1)
	f := func(mi uint8, pi uint8) bool {
		m := lib.Masters[int(mi)%len(lib.Masters)]
		sp := m.SignalPins()
		p := sp[int(pi)%len(sp)]
		w := m.WidthDBU(tc)
		a := AlignX(m, tc, p, false)
		b := AlignX(m, tc, p, true)
		if a+b != w {
			return false
		}
		e0 := XExtent(m, tc, p, false)
		e1 := XExtent(m, tc, p, true)
		return e0.Len() == e1.Len() && e1.Lo >= 0 && e1.Hi <= w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAbsShape(t *testing.T) {
	tc := tech.Default()
	lib := MustNewLibrary(tc, tech.ClosedM1)
	inv := lib.MustMaster("INV_X1")
	a := inv.Pin("A")
	s := AbsShape(inv, tc, a, 1000, 500, false)
	local := LocalShape(inv, tc, a, false)
	if s.Rect != local.Rect.Shift(1000, 500) {
		t.Errorf("AbsShape = %v", s.Rect)
	}
	if s.Layer != tech.M1 {
		t.Errorf("AbsShape layer = %s", s.Layer)
	}
}

func TestPinYWithinRow(t *testing.T) {
	tc := tech.Default()
	for _, arch := range []tech.Arch{tech.ClosedM1, tech.OpenM1} {
		lib := MustNewLibrary(tc, arch)
		for _, m := range lib.Masters {
			for _, p := range m.SignalPins() {
				y := PinY(m, tc, p)
				if y < 0 || y > tc.RowHeight {
					t.Errorf("%s/%s.%s PinY %d outside row", arch, m.Name, p.Name, y)
				}
			}
		}
	}
}

func TestTimingModelSane(t *testing.T) {
	lib := MustNewLibrary(tech.Default(), tech.ClosedM1)
	for _, m := range lib.Masters {
		if m.Intrinsic <= 0 || m.DriveRes <= 0 || m.InputCap <= 0 || m.LeakageUW <= 0 {
			t.Errorf("%s has non-positive timing/power parameters", m.Name)
		}
	}
	if !lib.MustMaster("DFF_X1").IsFF {
		t.Error("DFF_X1 must be sequential")
	}
	if lib.MustMaster("INV_X1").IsFF {
		t.Error("INV_X1 must not be sequential")
	}
}

func TestConventionalArchPins(t *testing.T) {
	tc := tech.Default()
	lib := MustNewLibrary(tc, tech.Conventional)
	inv := lib.MustMaster("INV_X1")
	for _, p := range inv.SignalPins() {
		if p.AccessShape().Layer != tech.M1 {
			t.Errorf("conventional pin %s on %s, want M1", p.Name, p.AccessShape().Layer)
		}
	}
}

func TestPinDirString(t *testing.T) {
	if Input.String() != "INPUT" || Output.String() != "OUTPUT" ||
		Power.String() != "POWER" || Ground.String() != "GROUND" {
		t.Error("PinDir strings broken")
	}
	if PinDir(9).String() != "PinDir(9)" {
		t.Error("unknown PinDir string broken")
	}
}

func TestMixedHeightLibraryRejected(t *testing.T) {
	tc := tech.Default()
	base := MustNewLibrary(tc, tech.ClosedM1)
	masters := make([]*Master, len(base.Masters))
	copy(masters, base.Masters)
	tall := *base.MustMaster("DFF_X1")
	tall.Name = "DFF_X1_2H"
	tall.HeightRows = 2
	masters = append(masters, &tall)
	lib, err := NewLibraryFromMasters(tc, tech.ClosedM1, masters)
	if err == nil {
		t.Fatal("mixed-height library accepted")
	}
	if lib != nil {
		t.Error("library returned alongside error")
	}
	if !errors.Is(err, ErrInvalidLibrary) {
		t.Errorf("error %v does not wrap ErrInvalidLibrary", err)
	}
	if !strings.Contains(err.Error(), "DFF_X1_2H") {
		t.Errorf("error %v does not name the offending master", err)
	}
}

func TestMasterHeightDefaultsToOneRow(t *testing.T) {
	tc := tech.Default()
	m := Master{Name: "X", WidthSites: 2}
	if got := m.HeightDBU(tc); got != tc.RowHeight {
		t.Errorf("zero HeightRows HeightDBU = %d, want one row (%d)", got, tc.RowHeight)
	}
	m.HeightRows = 3
	if got := m.HeightDBU(tc); got != 3*tc.RowHeight {
		t.Errorf("HeightRows=3 HeightDBU = %d, want %d", got, 3*tc.RowHeight)
	}
}

func TestTrackVariantLibrariesValidate(t *testing.T) {
	for _, tc := range []*tech.Tech{tech.Default6Track(), tech.Default9Track()} {
		if err := tc.Validate(); err != nil {
			t.Fatalf("track-variant tech invalid: %v", err)
		}
		for _, arch := range []tech.Arch{tech.ClosedM1, tech.OpenM1} {
			lib, err := NewLibrary(tc, arch)
			if err != nil {
				t.Errorf("RowHeight=%d %s library: %v", tc.RowHeight, arch, err)
				continue
			}
			// All pin metal must stay inside the shorter/taller row.
			for _, m := range lib.Masters {
				for _, p := range m.Pins {
					if !p.IsSignal() {
						continue
					}
					for _, s := range p.Shapes {
						if s.Rect.YLo < 0 || s.Rect.YHi > tc.RowHeight {
							t.Errorf("RowHeight=%d %s %s/%s pin metal y [%d,%d] outside row",
								tc.RowHeight, arch, m.Name, p.Name, s.Rect.YLo, s.Rect.YHi)
						}
					}
				}
			}
		}
	}
}
