// Package shard owns the spatial partition of the DistOpt window grid:
// contiguous column stripes of windows, balanced by predicted
// optimization load, that the optimizer runs concurrently with a
// boundary-halo exchange at window-family barriers.
//
// The partition is a pure function of its inputs — grid dimensions, shard
// count and per-window loads — with no clocks, randomness or map
// iteration, so a sharded run's schedule is exactly as reproducible as
// the single-shard optimizer's. The package is a leaf: it knows nothing
// about placements or estimators. Callers (internal/core) pass
// per-window load predictions — the congestion proxy's window scores
// when guided selection is active, instance populations otherwise — so
// stripes are balanced by predicted work, not raw die area.
//
// Non-interference across shard boundaries follows from the same
// argument as the diagonal window families (DESIGN.md §4f): windows are
// disjoint rectangles, a movable cell lives in exactly one window, and
// cells straddling window (hence stripe) boundaries are immovable for
// the whole pass. A shard therefore only ever relocates cells that no
// other shard can touch; everything else it reads — terminals of nets
// reaching outside the stripe, straddlers blocking boundary sites — is
// its read-only halo, stable between family barriers because moves
// commit only at barriers.
package shard

// Partition is a split of an nwx x nwy window grid into contiguous
// window-column stripes. Stripe s owns window columns
// [cuts[s], cuts[s+1]); every window column belongs to exactly one
// stripe and stripes are never empty, so the effective shard count K()
// may be lower than requested on narrow grids.
type Partition struct {
	nwx, nwy int
	cuts     []int     // len K+1; cuts[0] = 0, cuts[K] = nwx, strictly increasing
	loads    []float64 // per-stripe predicted load (diagnostic)
}

// Plan partitions an nwx x nwy window grid into at most k contiguous
// column stripes, minimizing the maximum per-stripe load. winLoad, when
// non-nil, holds one predicted-load entry per window in row-major order
// (window id w = wj*nwx + wi); nil weighs every window equally.
// Negative loads are treated as zero.
//
// The minimax split is found by bisecting the stripe capacity between
// the heaviest single column and the total load, then carving greedily
// left to right — deterministic for identical inputs, O(nwx log 1/eps)
// time, no allocation beyond the result.
func Plan(nwx, nwy, k int, winLoad []float64) Partition {
	if nwx < 1 {
		nwx = 1
	}
	if nwy < 1 {
		nwy = 1
	}
	if k < 1 {
		k = 1
	}
	if k > nwx {
		k = nwx
	}

	// Column loads: fold the window loads of each grid column. A missing
	// or short winLoad weighs windows equally, so an empty proxy still
	// yields a balanced split. Every column gets a tiny floor so carving
	// never produces an empty stripe out of a dead region.
	col := make([]float64, nwx)
	for wi := range col {
		for wj := 0; wj < nwy; wj++ {
			w := wj*nwx + wi
			l := 1.0
			if winLoad != nil {
				l = 0
				if w < len(winLoad) && winLoad[w] > 0 {
					l = winLoad[w]
				}
			}
			col[wi] += l
		}
	}

	maxCol, total := 0.0, 0.0
	for _, c := range col {
		if c > maxCol {
			maxCol = c
		}
		total += c
	}

	// Bisect the stripe capacity: the smallest C >= max(col) such that a
	// greedy left-to-right carve fits in at most k stripes. Pure float
	// bisection on deterministic inputs keeps the plan reproducible.
	lo, hi := maxCol, total
	for it := 0; it < 64 && hi-lo > 1e-9*(1+total); it++ {
		mid := lo + (hi-lo)/2
		if stripesNeeded(col, mid) <= k {
			hi = mid
		} else {
			lo = mid
		}
	}
	return carve(nwx, nwy, k, col, hi)
}

// stripesNeeded counts the stripes a greedy left-to-right carve uses at
// capacity c (each stripe takes columns until adding the next would
// exceed c; a column heavier than c still gets a stripe of its own).
func stripesNeeded(col []float64, c float64) int {
	n, acc := 1, 0.0
	for i, l := range col {
		if i > 0 && acc+l > c {
			n++
			acc = 0
		}
		acc += l
	}
	return n
}

// carve materializes the greedy split at capacity c, guaranteeing
// exactly min(k, nwx) stripes: when the remaining columns barely cover
// the remaining stripes, every leftover column becomes its own stripe so
// no stripe ends up empty.
func carve(nwx, nwy, k int, col []float64, c float64) Partition {
	p := Partition{
		nwx:   nwx,
		nwy:   nwy,
		cuts:  make([]int, 1, k+1),
		loads: make([]float64, 0, k),
	}
	acc := 0.0
	for i, l := range col {
		// len(p.cuts) counts stripes already begun (the initial stripe
		// plus one per cut), so a cut is legal only while it is < k, and
		// is forced once the columns left barely cover the stripes left.
		forceCut := nwx-i <= k-len(p.cuts)
		if i > 0 && (forceCut || acc+l > c) && len(p.cuts) < k {
			p.cuts = append(p.cuts, i)
			p.loads = append(p.loads, acc)
			acc = 0
		}
		acc += l
	}
	p.cuts = append(p.cuts, nwx)
	p.loads = append(p.loads, acc)
	return p
}

// K is the effective stripe count (≤ the requested shard count).
func (p Partition) K() int { return len(p.cuts) - 1 }

// NumWindows is the total window count of the partitioned grid.
func (p Partition) NumWindows() int { return p.nwx * p.nwy }

// OwnerCol returns the stripe owning window column wi. Columns are
// clamped into the grid, so callers may pass raw indices.
func (p Partition) OwnerCol(wi int) int {
	if wi < 0 {
		wi = 0
	}
	if wi >= p.nwx {
		wi = p.nwx - 1
	}
	// Stripe counts are small (machine core counts), so a linear scan
	// beats binary search and stays branch-predictable.
	for s := 1; s < len(p.cuts); s++ {
		if wi < p.cuts[s] {
			return s - 1
		}
	}
	return len(p.cuts) - 2
}

// OwnerOf returns the stripe owning window id w (row-major:
// w = wj*nwx + wi).
func (p Partition) OwnerOf(w int) int { return p.OwnerCol(w % p.nwx) }

// Stripe returns the half-open window-column range [lo, hi) of stripe s.
func (p Partition) Stripe(s int) (lo, hi int) { return p.cuts[s], p.cuts[s+1] }

// Windows returns how many windows stripe s owns.
func (p Partition) Windows(s int) int {
	lo, hi := p.Stripe(s)
	return (hi - lo) * p.nwy
}

// Loads returns the per-stripe predicted load the carve settled on. The
// slice is owned by the Partition; callers must not mutate it.
func (p Partition) Loads() []float64 { return p.loads }

// MaxLoad returns the heaviest stripe's predicted load.
func (p Partition) MaxLoad() float64 {
	m := 0.0
	for _, l := range p.loads {
		if l > m {
			m = l
		}
	}
	return m
}
