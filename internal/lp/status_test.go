package lp

import "testing"

// TestStatusNamesExhaustive pins the status table: every Status below the
// numStatus sentinel must have a distinct, nonempty name. Adding a status
// without extending statusNames leaves a "" hole that fails here (the
// array's fixed size already fails compilation for out-of-range keys).
func TestStatusNamesExhaustive(t *testing.T) {
	seen := make(map[string]Status, numStatus)
	for s := Status(0); s < numStatus; s++ {
		name := s.String()
		if name == "" {
			t.Errorf("Status(%d) has no name in statusNames", int(s))
			continue
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("Status(%d) and Status(%d) share the name %q", int(prev), int(s), name)
		}
		seen[name] = s
	}
}

// TestStatusNamesOutOfRange checks the fallback formatting, including the
// internal numerical-failure sentinel (which must never leak a real name).
func TestStatusNamesOutOfRange(t *testing.T) {
	for _, s := range []Status{numStatus, Status(99), Status(-7), statusNumFail} {
		if got := s.String(); got == "" || seenInTable(got) {
			t.Errorf("Status(%d).String() = %q; want an out-of-range marker", int(s), got)
		}
	}
}

func seenInTable(name string) bool {
	for _, n := range statusNames {
		if n == name {
			return true
		}
	}
	return false
}
