package route

import (
	"testing"

	"vm1place/internal/cells"
	"vm1place/internal/layout"
	"vm1place/internal/netlist"
	"vm1place/internal/place"
	"vm1place/internal/tech"
)

// genPlaced builds a generated, globally placed design for parallel tests.
func genPlaced(t *testing.T, arch tech.Arch, name string, n int, seed int64, util float64) *layout.Placement {
	t.Helper()
	tc := tech.Default()
	lib := cells.MustNewLibrary(tc, arch)
	d := netlist.MustGenerate(lib, netlist.DefaultGenConfig(name, n, seed))
	p := layout.MustNewFloorplan(tc, d, util)
	if err := place.Global(p, place.Options{}); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestWorkerCountInvariance is the determinism regression for the parallel
// engine: RouteAll must return bit-identical Metrics for every Workers
// value and across repeated runs, on both M1 architectures.
func TestWorkerCountInvariance(t *testing.T) {
	for _, arch := range []tech.Arch{tech.ClosedM1, tech.OpenM1} {
		p := genPlaced(t, arch, "winv", 500, 41, 0.75)
		cfg := DefaultConfig(p.Tech, arch)
		cfg.Workers = 1
		ref := New(p, cfg).RouteAll()
		if ref.RWL <= 0 {
			t.Fatalf("%s: reference run routed nothing", arch)
		}
		for _, w := range []int{2, 4, 8} {
			cfg.Workers = w
			got := New(p, cfg).RouteAll()
			if got != ref {
				t.Errorf("%s: Workers=%d diverged:\n got %+v\nwant %+v", arch, w, got, ref)
			}
		}
		// Repeated runs on the same router must also agree (scratch reuse).
		cfg.Workers = 8
		r := New(p, cfg)
		first := r.RouteAll()
		second := r.RouteAll()
		if first != ref || second != ref {
			t.Errorf("%s: repeated runs diverged: %+v / %+v vs %+v", arch, first, second, ref)
		}
	}
}

// TestParallelRipupUnderRace exercises batched routing plus the
// negotiated-congestion rip-up passes with a real worker pool. It is sized
// to stay cheap under -race (the `make race` gate covers this package) and
// doubles as an equality check against the sequential engine on a design
// congested enough to overflow.
func TestParallelRipupUnderRace(t *testing.T) {
	p := genPlaced(t, tech.ClosedM1, "race", 400, 42, 0.85)
	cfg := DefaultConfig(p.Tech, tech.ClosedM1)
	// Starve M2/M3 so the first pass overflows and rip-up actually runs.
	cfg.Caps[tech.M2] = 1
	cfg.Caps[tech.M3] = 1

	cfg.Workers = 1
	seq := New(p, cfg).RouteAll()
	if seq.Overflow == 0 {
		t.Fatal("setup: design not congested, rip-up never exercised")
	}

	cfg.Workers = 4
	par := New(p, cfg).RouteAll()
	if par != seq {
		t.Errorf("parallel rip-up diverged:\n got %+v\nwant %+v", par, seq)
	}
}
