// Package netlist provides the gate-level design model of vm1place —
// instances, nets and ports — plus a seeded synthetic generator that
// stands in for the paper's synthesized OpenCores/Cortex-M0 testcases.
//
// A Design is pure connectivity; placement lives in internal/layout and
// geometry in internal/cells. Nets reference instance pins by (instance
// index, pin index into the master's Pins slice), which keeps the model
// compact and allocation-friendly at the 10^4–10^5 instance scale of the
// paper's testcases.
package netlist

import (
	"fmt"

	"vm1place/internal/cells"
)

// Conn identifies one instance pin: instance index within Design.Insts and
// pin index within the instance master's Pins.
type Conn struct {
	Inst int
	Pin  int
}

// Side is a die edge for port placement.
type Side int

const (
	West Side = iota
	East
	North
	South
)

// Port is a primary input or output. Pos is a fraction in [0,1] along its
// side; the layout package turns it into DBU coordinates once the die is
// sized.
type Port struct {
	Name  string
	Net   int
	Input bool // true: primary input (drives the net)
	Side  Side
	Pos   float64
}

// Net is a signal net. Driver is the connection that sources the net
// (negative Inst when the net is driven by a primary input port). Sinks are
// the load connections. IsClock marks the clock net, which is excluded from
// the dM1 optimization and from signal routing (a CTS would own it in a
// production flow).
type Net struct {
	Name    string
	Driver  Conn
	Sinks   []Conn
	IsClock bool
}

// NumConns returns the number of instance-pin connections on the net
// (driver included when it is an instance pin).
func (n *Net) NumConns() int {
	c := len(n.Sinks)
	if n.Driver.Inst >= 0 {
		c++
	}
	return c
}

// ForEachConn calls f for the driver (if an instance pin) and every sink.
func (n *Net) ForEachConn(f func(Conn)) {
	if n.Driver.Inst >= 0 {
		f(n.Driver)
	}
	for _, s := range n.Sinks {
		f(s)
	}
}

// Instance is one placed-or-placeable cell.
type Instance struct {
	Name   string
	Master *cells.Master
	// PinNets[k] is the net index connected to master pin k, or -1.
	PinNets []int
}

// Design is a gate-level netlist bound to one library.
type Design struct {
	Name  string
	Lib   *cells.Library
	Insts []Instance
	Nets  []Net
	Ports []Port
}

// MasterOf returns the master of instance i.
func (d *Design) MasterOf(i int) *cells.Master { return d.Insts[i].Master }

// PinOf returns the cells.Pin for a connection.
func (d *Design) PinOf(c Conn) *cells.Pin {
	return &d.Insts[c.Inst].Master.Pins[c.Pin]
}

// SignalNets returns the indices of non-clock nets with at least two
// connections — the nets the optimizer and router operate on.
func (d *Design) SignalNets() []int {
	var out []int
	for i := range d.Nets {
		n := &d.Nets[i]
		if n.IsClock {
			continue
		}
		if n.NumConns()+boolToInt(n.Driver.Inst < 0) >= 2 {
			out = append(out, i)
		}
	}
	return out
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Stats summarizes a design.
type Stats struct {
	NumInsts   int
	NumNets    int
	NumPorts   int
	NumFFs     int
	TotalSites int64
	AvgFanout  float64
	MaxFanout  int
}

// Stats computes summary statistics.
func (d *Design) Stats() Stats {
	var s Stats
	s.NumInsts = len(d.Insts)
	s.NumNets = len(d.Nets)
	s.NumPorts = len(d.Ports)
	for i := range d.Insts {
		if d.Insts[i].Master.IsFF {
			s.NumFFs++
		}
		s.TotalSites += int64(d.Insts[i].Master.WidthSites)
	}
	totalSinks := 0
	drivenNets := 0
	for i := range d.Nets {
		n := &d.Nets[i]
		if n.IsClock {
			continue
		}
		drivenNets++
		totalSinks += len(n.Sinks)
		if len(n.Sinks) > s.MaxFanout {
			s.MaxFanout = len(n.Sinks)
		}
	}
	if drivenNets > 0 {
		s.AvgFanout = float64(totalSinks) / float64(drivenNets)
	}
	return s
}

// Validate checks referential integrity: every connection resolves, every
// input pin is connected exactly once, every net has exactly one driver,
// and PinNets is consistent with Nets.
func (d *Design) Validate() error {
	for ni := range d.Nets {
		n := &d.Nets[ni]
		check := func(c Conn, wantDir cells.PinDir) error {
			if c.Inst < 0 || c.Inst >= len(d.Insts) {
				return fmt.Errorf("net %s: bad instance index %d", n.Name, c.Inst)
			}
			m := d.Insts[c.Inst].Master
			if c.Pin < 0 || c.Pin >= len(m.Pins) {
				return fmt.Errorf("net %s: bad pin index %d on %s", n.Name, c.Pin, m.Name)
			}
			if m.Pins[c.Pin].Dir != wantDir {
				return fmt.Errorf("net %s: pin %s.%s is %s, want %s",
					n.Name, m.Name, m.Pins[c.Pin].Name, m.Pins[c.Pin].Dir, wantDir)
			}
			if got := d.Insts[c.Inst].PinNets[c.Pin]; got != ni {
				return fmt.Errorf("net %s: PinNets[%d] of inst %d is %d, want %d",
					n.Name, c.Pin, c.Inst, got, ni)
			}
			return nil
		}
		if n.Driver.Inst >= 0 {
			if err := check(n.Driver, cells.Output); err != nil {
				return err
			}
		} else {
			// Port-driven: some port must claim this net as input.
			found := false
			for _, p := range d.Ports {
				if p.Net == ni && p.Input {
					found = true
					break
				}
			}
			if !found && !n.IsClock {
				return fmt.Errorf("net %s has no driver", n.Name)
			}
		}
		for _, s := range n.Sinks {
			if err := check(s, cells.Input); err != nil {
				return err
			}
		}
	}
	for ii := range d.Insts {
		inst := &d.Insts[ii]
		if len(inst.PinNets) != len(inst.Master.Pins) {
			return fmt.Errorf("inst %s: PinNets length %d, want %d",
				inst.Name, len(inst.PinNets), len(inst.Master.Pins))
		}
		for pi, ni := range inst.PinNets {
			p := &inst.Master.Pins[pi]
			if !p.IsSignal() {
				if ni != -1 {
					return fmt.Errorf("inst %s: power pin %s bound to net %d", inst.Name, p.Name, ni)
				}
				continue
			}
			if ni == -1 {
				return fmt.Errorf("inst %s: signal pin %s unconnected", inst.Name, p.Name)
			}
			if ni < 0 || ni >= len(d.Nets) {
				return fmt.Errorf("inst %s: pin %s bound to bad net %d", inst.Name, p.Name, ni)
			}
		}
	}
	for _, p := range d.Ports {
		if p.Net < 0 || p.Net >= len(d.Nets) {
			return fmt.Errorf("port %s: bad net %d", p.Name, p.Net)
		}
	}
	return nil
}
