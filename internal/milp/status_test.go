package milp

import "testing"

// TestStatusNamesExhaustive pins the status table: every Status below the
// numStatus sentinel must have a distinct, nonempty name, so a new status
// cannot ship without one (out-of-range keys already fail compilation via
// the array's fixed size).
func TestStatusNamesExhaustive(t *testing.T) {
	seen := make(map[string]Status, numStatus)
	for s := Status(0); s < numStatus; s++ {
		name := s.String()
		if name == "" || name == "unknown" {
			t.Errorf("Status(%d) has no name in statusNames (got %q)", int(s), name)
			continue
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("Status(%d) and Status(%d) share the name %q", int(prev), int(s), name)
		}
		seen[name] = s
	}
}
