package core

import (
	"sort"
	"time"

	"vm1place/internal/geom"
)

// WindowScorer is the QoR-proxy interface guided window selection needs:
// score a die rectangle for optimization priority and track committed
// moves so scores stay current. internal/proxy's Estimator implements
// it; core depends only on this interface so the estimator package stays
// a leaf.
type WindowScorer interface {
	// WindowScore returns the optimization priority of a die-space
	// rectangle (higher = more predicted congestion / alignment
	// opportunity). Must be cheap: it is called once per window per pass.
	WindowScore(r geom.Rect) float64
	// Update re-evaluates the scorer after the given instances moved;
	// the placement already reflects the new locations when called.
	Update(insts []int)
}

// famPlan is the guided schedule of one DistOpt pass: which diagonal
// families to run, in what order, and each window's MILP wall budget.
type famPlan struct {
	order []int // family indices, hottest first; near-empty ones absent
	// wtl is the per-window TimeLimit, indexed by window id (the
	// passGrid rects index). Uniform plans give every window the
	// pass-wide budget.
	wtl []time.Duration
	// score is the proxy's per-window load prediction, indexed like wtl.
	// Guided plans fill it so the spatial shard partition balances
	// stripes by predicted work; uniform plans leave it nil and sharding
	// falls back to window instance populations.
	score []float64
}

// uniformPlan is the identity schedule: every family in diagonal order,
// every window at the pass-wide budget.
func uniformPlan(g passGrid, families [][]int, tl time.Duration) famPlan {
	pl := famPlan{
		order: make([]int, len(families)),
		wtl:   make([]time.Duration, len(g.rects)),
	}
	for i := range families {
		pl.order[i] = i
	}
	for i := range pl.wtl {
		pl.wtl[i] = tl
	}
	return pl
}

// guidedPlan scores every window with the proxy and converts the scores
// into a schedule:
//
//   - Families run hottest-first (sum of window scores), so a run cut
//     short by a deadline has already spent its wall where the proxy
//     predicts routed pain.
//   - Families scoring below GuidedColdFrac of the hottest are skipped
//     outright. The default threshold is tight (1%): window objective
//     gains are only weakly predictable from congestion (cold windows
//     routinely match hot ones — measured in TestProbeFamilyGain's
//     ancestor; see DESIGN.md §4e), so the skip is meant for the
//     near-empty boundary slivers a shifted grid produces, where there
//     is genuinely nothing to solve.
//   - Each kept window's MILP TimeLimit is scaled by its own score:
//     budget = tl x (GuidedShrink + (GuidedBoostCap - GuidedShrink) x
//     score/maxScore). Pass wall is dominated by the hard windows that
//     exhaust their budget, and hard-but-cold windows spend that tail
//     on alignment crumbs the router cannot reward — shrinking them is
//     where the wall reduction comes from; hot windows keep (or gain)
//     budget. Untimed passes (tl <= 0) pass through unlimited.
//
// Determinism: scores are computed single-threaded from the placement in
// window order (float accumulation order fixed), and the family sort
// breaks ties on the family index, so the schedule is a pure function of
// the placement — identical across Workers settings, which is what lets
// the golden flow test and the worker-invariance tests hold under
// -guided.
func guidedPlan(prm Params, sc WindowScorer, g passGrid, families [][]int,
	tl time.Duration) famPlan {
	n := len(families)
	winScore := make([]float64, len(g.rects))
	maxWin := 0.0
	for wi := range g.rects {
		s := sc.WindowScore(g.rects[wi])
		winScore[wi] = s
		if s > maxWin {
			maxWin = s
		}
	}
	scores := make([]float64, n)
	maxS := 0.0
	for fi, fam := range families {
		s := 0.0
		for _, wi := range fam {
			s += winScore[wi]
		}
		scores[fi] = s
		if s > maxS {
			maxS = s
		}
	}

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		fa, fb := order[a], order[b]
		if scores[fa] != scores[fb] {
			return scores[fa] > scores[fb]
		}
		return fa < fb
	})

	pl := famPlan{wtl: make([]time.Duration, len(g.rects)), score: winScore}
	if maxS <= 0 {
		// Nothing predicted anywhere (or a degenerate scorer): fall back
		// to the uniform schedule rather than skipping on noise.
		pl.order = order
		for i := range pl.wtl {
			pl.wtl[i] = tl
		}
		return pl
	}

	cold := prm.guidedColdFrac() * maxS
	for _, fi := range order {
		if scores[fi] >= cold {
			pl.order = append(pl.order, fi)
		}
	}
	if len(pl.order) == 0 { // unreachable (the max always qualifies); belt and braces
		pl.order = append(pl.order, order[0])
	}

	// Per-window budget shaping. Untimed runs keep their unlimited
	// budget — there the only guided lever is skipping empty families.
	shrink := prm.guidedShrink()
	bc := prm.guidedBoostCap()
	for wi := range pl.wtl {
		if tl <= 0 {
			pl.wtl[wi] = tl
			continue
		}
		m := shrink
		if maxWin > 0 {
			m += (bc - shrink) * winScore[wi] / maxWin
		}
		pl.wtl[wi] = time.Duration(float64(tl) * m)
	}
	return pl
}
