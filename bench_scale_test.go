// Scale benchmarks for the sharded optimizer: full flows at growing
// instance counts and shard counts, recording wall time, peak live heap
// and routed QoR. TestEmitBenchScaleJSON regenerates BENCH_scale.json,
// the machine-readable record behind the "10x design scale at sublinear
// memory" claim (`make bench-scale`); TestScaleSweepSmoke in
// internal/expt is the fast CI-sized cousin (`make bench-scale-smoke`).
package vm1place_test

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"vm1place/internal/cells"
	"vm1place/internal/core"
	"vm1place/internal/expt"
	"vm1place/internal/layout"
	"vm1place/internal/netlist"
	"vm1place/internal/place"
	"vm1place/internal/tech"
)

// shardedDistOptAt runs one deterministic DistOpt (Workers=1, node-capped,
// no wall deadline) at the given shard count and returns the placement.
// Used by the invariance pre-gate below.
func shardedDistOptAt(t *testing.T, shards int) *layout.Placement {
	t.Helper()
	tc := tech.Default()
	lib := cells.MustNewLibrary(tc, tech.ClosedM1)
	d := netlist.MustGenerate(lib, netlist.DefaultGenConfig("bench-shard-det", 300, 5))
	p := layout.MustNewFloorplan(tc, d, 0.75)
	if err := place.Global(p, place.Options{}); err != nil {
		t.Fatal(err)
	}
	prm := core.DefaultParams(tc, tech.ClosedM1)
	prm.Workers = 1
	prm.Shards = shards
	prm.MaxNodes = 40
	prm.TimeLimit = 0
	ps := core.ParamSet{BW: expt.UmToDBU(10), BH: expt.UmToDBU(10), LX: 3, LY: 1}
	core.DistOpt(p, prm, ps, 0, 0, true, false)
	return p
}

// TestEmitBenchScaleJSON regenerates BENCH_scale.json: the shard
// bitwise-invariance gate, then a scale x shard full-flow series on the
// jpeg design whose largest point (scale 2.0, 109140 instances) is the
// >= 1e5-instance acceptance run. Each point records build/opt/route
// wall seconds, the peak sampled live heap, and routed QoR. The series
// also computes the sublinearity gate: at the highest shard count, peak
// heap must grow slower than the window count (window count is
// proportional to instance count here — utilization and the 20 um
// window size are fixed across the sweep, so die area scales with the
// instance count). Skipped unless BENCH_JSON is set — the largest
// points run a full flow on a 1e5+-instance design, expect the better
// part of an hour on one core:
//
//	BENCH_JSON=1 go test -run TestEmitBenchScaleJSON -timeout 180m .
func TestEmitBenchScaleJSON(t *testing.T) {
	if os.Getenv("BENCH_JSON") == "" {
		t.Skip("set BENCH_JSON=1 to regenerate BENCH_scale.json")
	}

	// Gate 1: the scale series only means anything if every shard count
	// computes the same answer. One deterministic pass per count on
	// identical placements, bit-compared (mirrors BENCH_core.json's
	// placements_identical gate; TestVM1OptShardsInvariance covers the
	// full VM1Opt loop in the regular test suite).
	base := shardedDistOptAt(t, 1)
	for _, k := range []int{2, 4, 8} {
		pk := shardedDistOptAt(t, k)
		for i := range base.SiteX {
			if pk.SiteX[i] != base.SiteX[i] || pk.Row[i] != base.Row[i] || pk.Flip[i] != base.Flip[i] {
				t.Fatalf("placements diverge between Shards=1 and Shards=%d at inst %d", k, i)
			}
		}
	}

	// Gate 2 + series: full flows. jpeg spans 5457 -> 109140 instances
	// across these scales (the 2.0 point is the >= 1e5 acceptance run);
	// every size runs at every shard count so the per-size QoR agreement
	// and the per-shard wall/heap deltas are both on record.
	design := "jpeg"
	scales := []float64{0.1, 0.5, 2.0}
	shards := []int{1, 2, 4}
	cfg := expt.SuiteConfig{Scale: 1, Workers: 1}
	pts, err := expt.RunScaleSweep(cfg, design, scales, shards)
	if err != nil {
		t.Fatal(err)
	}
	expt.WriteScaleSweep(os.Stdout, pts)

	// Per-size QoR agreement across shard counts. The sweep runs with
	// the default per-window wall deadline, so large windows can
	// truncate at different nodes run to run — agreement is recorded,
	// not asserted (gate 1 above asserts bit-identity in the
	// deterministic node-capped regime).
	type qorKey struct {
		rwl  int64
		dm1  int
		drvs int
	}
	bySize := map[int]qorKey{}
	qorIdentical := true
	for _, p := range pts {
		k := qorKey{p.RWL, p.DM1, p.DRVs}
		if prev, ok := bySize[p.NumInsts]; !ok {
			bySize[p.NumInsts] = k
		} else if prev != k {
			qorIdentical = false
			t.Logf("QoR diverges at n=%d shards=%d: %+v vs %+v", p.NumInsts, p.Shards, k, prev)
		}
	}

	// Sublinearity: at the highest shard count, compare the smallest and
	// largest sizes. Window count scales with instance count (fixed util
	// and window size), so peak-heap growth below the instance-count
	// growth is growth below the window-count growth.
	kMax := shards[len(shards)-1]
	var small, large *expt.ScalePoint
	for i := range pts {
		p := &pts[i]
		if p.Shards != kMax {
			continue
		}
		if small == nil || p.NumInsts < small.NumInsts {
			small = p
		}
		if large == nil || p.NumInsts > large.NumInsts {
			large = p
		}
	}
	if small == nil || large == nil || small == large {
		t.Fatal("scale series too small to compute growth")
	}
	peakGrowth := large.PeakHeapMB / small.PeakHeapMB
	windowGrowth := float64(large.NumInsts) / float64(small.NumInsts)
	t.Logf("peak heap growth %.2fx over %.2fx window growth (shards=%d)",
		peakGrowth, windowGrowth, kMax)

	type pointJSON struct {
		Design     string  `json:"design"`
		NumInsts   int     `json:"num_insts"`
		Shards     int     `json:"shards"`
		BuildSec   float64 `json:"build_sec"`
		OptSec     float64 `json:"opt_sec"`
		RouteSec   float64 `json:"route_sec"`
		PeakHeapMB float64 `json:"peak_heap_mb"`
		RWL        int64   `json:"rwl"`
		DM1        int     `json:"dm1"`
		DRVs       int     `json:"drvs"`
	}
	out := struct {
		Note                string      `json:"note"`
		GOMAXPROCS          int         `json:"gomaxprocs"`
		Workers             int         `json:"workers"`
		PlacementsIdentical bool        `json:"placements_identical"`
		QoRIdentical        bool        `json:"qor_identical"`
		PeakHeapGrowth      float64     `json:"peak_heap_growth"`
		WindowGrowth        float64     `json:"window_growth"`
		SublinearPeakHeap   bool        `json:"sublinear_peak_heap"`
		Points              []pointJSON `json:"points"`
	}{
		Note:                "regenerate with: BENCH_JSON=1 go test -run TestEmitBenchScaleJSON -timeout 180m . (or make bench-scale); window count is proportional to num_insts (fixed util, 20um windows)",
		GOMAXPROCS:          runtime.GOMAXPROCS(0),
		Workers:             cfg.Workers,
		PlacementsIdentical: true,
		QoRIdentical:        qorIdentical,
		PeakHeapGrowth:      peakGrowth,
		WindowGrowth:        windowGrowth,
		SublinearPeakHeap:   peakGrowth < windowGrowth,
	}
	for _, p := range pts {
		out.Points = append(out.Points, pointJSON{
			Design: p.Design, NumInsts: p.NumInsts, Shards: p.Shards,
			BuildSec: p.BuildSec, OptSec: p.OptSec, RouteSec: p.RouteSec,
			PeakHeapMB: p.PeakHeapMB, RWL: p.RWL, DM1: p.DM1, DRVs: p.DRVs,
		})
	}
	if !out.SublinearPeakHeap {
		t.Errorf("peak heap growth %.2fx not below window growth %.2fx", peakGrowth, windowGrowth)
	}
	buf, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_scale.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
