package route

import (
	"vm1place/internal/tech"
)

// CostModel is the router's per-edge capacity model, extracted so that
// lightweight estimators (internal/proxy) can predict congestion from the
// same constants the maze router enforces, without importing the search
// kernel. Capacities are summed by preferred direction: a vertical cut
// through one grid cell is crossed by HCapPerCell horizontal tracks, a
// horizontal cut by VCapPerCell vertical ones.
type CostModel struct {
	// HCapPerCell is the summed horizontal-layer track capacity of one
	// grid cell (M2 + M4 under the default stack).
	HCapPerCell int
	// VCapPerCell is the summed vertical-layer track capacity of one grid
	// cell, excluding M1 (M3 under the default stack).
	VCapPerCell int
	// M1CapPerCell is the M1 vertical capacity of one grid cell, kept
	// separate because M1 availability depends on the architecture: under
	// ClosedM1 foreign pins block the track, under Conventional M1 is not
	// routable at all.
	M1CapPerCell int
	// M1Routable mirrors Config.M1Routable.
	M1Routable bool
}

// CostModel derives the capacity model from a router configuration.
func (cfg Config) CostModel() CostModel {
	var cm CostModel
	for l := tech.M1; l <= tech.M4; l++ {
		switch {
		case l == tech.M1:
			if cfg.M1Routable {
				cm.M1CapPerCell = cfg.Caps[l]
			}
		case l.Direction() == tech.Vertical:
			cm.VCapPerCell += cfg.Caps[l]
		default:
			cm.HCapPerCell += cfg.Caps[l]
		}
	}
	cm.M1Routable = cfg.M1Routable
	return cm
}

// OverflowGrid accumulates the per-tile edge overflow of the last RouteAll
// into out, tiling the routing grid with tileSites x tileRows tiles
// (row-major, ceil(nx/tileSites) x ceil(ny/tileRows) tiles). Every edge's
// overflow max(0, usage-cap) is charged to the tile of its lower/left
// endpoint, summed across layers. out is reused when it has the right
// length; the returned slice is the filled grid. The totals match
// Metrics.Overflow: summing the grid yields the same DRV proxy the router
// reports, just spatially resolved — this is the feedback signal
// internal/proxy calibrates its per-region demand model against.
func (r *Router) OverflowGrid(tileSites, tileRows int, out []int64) []int64 {
	ntx := (r.nx + tileSites - 1) / tileSites
	nty := (r.ny + tileRows - 1) / tileRows
	if len(out) != ntx*nty {
		out = make([]int64, ntx*nty)
	} else {
		for i := range out {
			out[i] = 0
		}
	}
	for l := tech.M1; l <= tech.M4; l++ {
		lcap := int32(r.cfg.Caps[l])
		if l.Direction() == tech.Vertical {
			for y := 0; y < r.ny-1; y++ {
				base := (y / tileRows) * ntx
				for x := 0; x < r.nx; x++ {
					if u := r.usage[l][r.vEdge(x, y)]; u > lcap {
						out[base+x/tileSites] += int64(u - lcap)
					}
				}
			}
		} else {
			for y := 0; y < r.ny; y++ {
				base := (y / tileRows) * ntx
				for x := 0; x < r.nx-1; x++ {
					if u := r.usage[l][r.hEdge(x, y)]; u > lcap {
						out[base+x/tileSites] += int64(u - lcap)
					}
				}
			}
		}
	}
	return out
}
