// Package analysistest runs one analyzer over fixture packages and
// checks its diagnostics against `// want` expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest on the self-contained
// internal/analysis framework.
//
// Fixture layout: srcRoot is a GOPATH-style tree whose packages live
// under srcRoot/vm1place/..., so fixture import paths share the real
// module's prefix and the analyzers' package-path predicates (internal/,
// deterministic kernels, clock allowlist) apply to fixtures exactly as
// they do to the repository.
//
// Expectations: a comment `// want "regexp"` (or a backquoted regexp)
// on a line declares that the analyzer must report a diagnostic on that
// line matching the regexp. Several expectations may share one want
// comment. Lines carrying a suppression tag (// order-ok: ...) and no
// want comment assert the tagged site stays silent — the driver applies
// suppression exactly as vm1lint does.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"vm1place/internal/analysis"
)

// loaders caches one Loader per fixture root: packages are immutable
// once type-checked, and sharing the cache keeps each test from
// re-type-checking the stdlib from source.
var loaders = struct {
	sync.Mutex
	m map[string]*analysis.Loader
}{m: make(map[string]*analysis.Loader)}

func loaderFor(t *testing.T, srcRoot string) *analysis.Loader {
	abs, err := filepath.Abs(filepath.Join(srcRoot, "vm1place"))
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	loaders.Lock()
	defer loaders.Unlock()
	if l, ok := loaders.m[abs]; ok {
		return l
	}
	l := analysis.NewLoader("vm1place", abs)
	loaders.m[abs] = l
	return l
}

// Run loads each fixture package beneath srcRoot, applies the analyzer,
// and reports every mismatch between its findings and the fixtures'
// `// want` expectations as test errors.
func Run(t *testing.T, srcRoot string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	loader := loaderFor(t, srcRoot)
	var pkgs []*analysis.Package
	for _, path := range pkgPaths {
		rel, ok := strings.CutPrefix(path, "vm1place/")
		if !ok {
			t.Fatalf("analysistest: fixture package %q must be under vm1place/", path)
		}
		got, err := loader.Load("./" + rel)
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		pkgs = append(pkgs, got...)
	}

	findings, err := analysis.Run(loader.Fset, pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: %s: %v", a.Name, err)
	}

	wants, err := collectWants(pkgs)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	for _, f := range findings {
		if !wants.match(f) {
			t.Errorf("%s:%d: unexpected finding: %s", f.Pos.Filename, f.Pos.Line, f.Message)
		}
	}
	for _, w := range wants.unmatched() {
		t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.re)
	}
}

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

type wantSet struct{ all []*want }

// wantRE matches a want comment and captures its quoted expectations.
var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// quotedRE captures one backquoted or double-quoted string.
var quotedRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// collectWants scans every fixture source file for want comments.
func collectWants(pkgs []*analysis.Package) (*wantSet, error) {
	ws := &wantSet{}
	seen := make(map[string]bool)
	for _, pkg := range pkgs {
		ents, err := os.ReadDir(pkg.Dir)
		if err != nil {
			return nil, err
		}
		for _, e := range ents {
			name := filepath.Join(pkg.Dir, e.Name())
			if e.IsDir() || !strings.HasSuffix(name, ".go") || seen[name] {
				continue
			}
			seen[name] = true
			data, err := os.ReadFile(name)
			if err != nil {
				return nil, err
			}
			for i, line := range strings.Split(string(data), "\n") {
				m := wantRE.FindStringSubmatch(line)
				if m == nil {
					continue
				}
				for _, q := range quotedRE.FindAllString(m[1], -1) {
					text := q[1 : len(q)-1]
					if q[0] == '"' {
						text = strings.NewReplacer(`\"`, `"`, `\\`, `\`).Replace(text)
					}
					re, err := regexp.Compile(text)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %w", name, i+1, text, err)
					}
					ws.all = append(ws.all, &want{file: name, line: i + 1, re: re})
				}
			}
		}
	}
	return ws, nil
}

// match consumes the first unmatched expectation on the finding's line
// whose regexp matches its message.
func (ws *wantSet) match(f analysis.Finding) bool {
	for _, w := range ws.all {
		if !w.matched && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

func (ws *wantSet) unmatched() []*want {
	var out []*want
	for _, w := range ws.all {
		if !w.matched {
			out = append(out, w)
		}
	}
	return out
}
