// Package expt is the experiment harness of vm1place: it reproduces every
// evaluation table and figure of the DAC'17 paper (Table 2, Figures 5-8)
// on the synthetic substrate, printing the same rows/series the paper
// reports.
//
// Scale note: the harness maps the paper's µm window sizes to DBU with
// UmToDBU (1 paper-µm ≈ 1 placement site horizontally), which keeps window
// MILPs at the tens-of-cells scale our branch-and-bound solves exactly —
// the same windows-much-smaller-than-die regime as the paper. Designs are
// generated at the paper's instance counts by default, with a Scale knob
// for faster CI-size runs.
package expt

import (
	"fmt"
	"io"
	"time"

	"vm1place/internal/cells"
	"vm1place/internal/core"
	"vm1place/internal/layout"
	"vm1place/internal/netlist"
	"vm1place/internal/place"
	"vm1place/internal/route"
	"vm1place/internal/sta"
	"vm1place/internal/tech"
)

// UmToDBU converts a paper window size in µm to DBU: 1 µm ≈ 1 site
// (100 DBU) horizontally and 0.4 rows vertically (see package comment).
func UmToDBU(um float64) int64 { return int64(um * 100) }

// DesignSpec names one benchmark design of the paper (Table 2).
type DesignSpec struct {
	Name     string
	NumInsts int
	Seed     int64
}

// PaperDesigns are the four testcases with the paper's instance counts.
var PaperDesigns = []DesignSpec{
	{Name: "m0", NumInsts: 9922, Seed: 101},
	{Name: "aes", NumInsts: 12345, Seed: 102},
	{Name: "jpeg", NumInsts: 54570, Seed: 103},
	{Name: "vga", NumInsts: 68606, Seed: 104},
}

// ScaledDesigns returns the paper designs scaled by factor (min 200
// instances), for fast benches.
func ScaledDesigns(scale float64) []DesignSpec {
	out := make([]DesignSpec, len(PaperDesigns))
	for i, d := range PaperDesigns {
		n := int(float64(d.NumInsts) * scale)
		if n < 200 {
			n = 200
		}
		out[i] = DesignSpec{Name: d.Name, NumInsts: n, Seed: d.Seed}
	}
	return out
}

// FlowConfig drives one full flow run.
type FlowConfig struct {
	Arch tech.Arch
	Util float64
	// Alpha overrides the default α when > 0 (or exactly when AlphaSet).
	Alpha    float64
	AlphaSet bool
	// Sequence is the metaheuristic queue U (nil: the paper's preferred
	// (20, 4, 1) single-set sequence).
	Sequence core.Sequence
	// MaxOuterIters caps inner iterations per parameter set (ExptA-1
	// uses 1).
	MaxOuterIters int
	// Workers overrides both the parallel window count of the optimizer
	// and the routing worker count (route.Config.Workers). Zero keeps the
	// substrate defaults (GOMAXPROCS). Routed Metrics are identical for
	// every value — see internal/route/parallel.go.
	Workers int
}

// DefaultSequence is the paper's preferred single parameter set
// (bw = bh = 20µm, lx = 4, ly = 1) from ExptA-3.
func DefaultSequence() core.Sequence {
	return core.Sequence{{BW: UmToDBU(20), BH: UmToDBU(20), LX: 4, LY: 1}}
}

// Snapshot is the full metric set of one routed placement (one half of a
// Table 2 row).
type Snapshot struct {
	DM1     int
	M1WL    int64
	Via12   int
	HPWL    int64
	RWL     int64
	WNS     float64
	PowerMW float64
	DRVs    int
}

// FlowResult is one complete before/after run.
type FlowResult struct {
	Design   string
	NumInsts int
	Arch     tech.Arch
	Util     float64
	Alpha    float64

	Init, Final Snapshot
	// OptObj holds the optimizer's own objective trace.
	OptInitial, OptFinal core.Objective
	// OptRuntime is the VM1Opt wall time; RouteRuntime covers both
	// routing passes.
	OptRuntime   time.Duration
	RouteRuntime time.Duration
}

// snapshot routes the placement and gathers all metrics. workers sets the
// router's worker-pool size (0 keeps the default); the metrics do not
// depend on it.
func snapshot(p *layout.Placement, arch tech.Arch, workers int) (Snapshot, time.Duration) {
	start := time.Now()
	rcfg := route.DefaultConfig(p.Tech, arch)
	if workers > 0 {
		rcfg.Workers = workers
	}
	r := route.New(p, rcfg)
	m := r.RouteAll()
	elapsed := time.Since(start)
	rep := sta.Analyze(p, sta.DefaultConfig(), nil)
	return Snapshot{
		DM1:     m.DM1,
		M1WL:    m.LayerWL[tech.M1],
		Via12:   m.Via12,
		HPWL:    p.TotalHPWL(),
		RWL:     m.RWL,
		WNS:     rep.WNS,
		PowerMW: rep.TotalPowerMW,
		DRVs:    m.Overflow,
	}, elapsed
}

// BuildPlaced generates, floorplans, places and legalizes a design.
func BuildPlaced(spec DesignSpec, arch tech.Arch, util float64) *layout.Placement {
	t := tech.Default()
	lib := cells.NewLibrary(t, arch)
	d := netlist.Generate(lib, netlist.DefaultGenConfig(spec.Name, spec.NumInsts, spec.Seed))
	p := layout.NewFloorplan(t, d, util)
	if err := place.Global(p, place.Options{}); err != nil {
		panic(fmt.Sprintf("expt: global placement failed for %s: %v", spec.Name, err))
	}
	return p
}

// RunFlow executes the full flow on one design: place, route (Init
// metrics), VM1Opt, reroute (Final metrics).
func RunFlow(spec DesignSpec, cfg FlowConfig) FlowResult {
	if cfg.Util == 0 {
		cfg.Util = 0.75
	}
	p := BuildPlaced(spec, cfg.Arch, cfg.Util)

	prm := core.DefaultParams(p.Tech, cfg.Arch)
	if cfg.AlphaSet || cfg.Alpha > 0 {
		prm.Alpha = cfg.Alpha
	}
	if cfg.MaxOuterIters > 0 {
		prm.MaxOuterIters = cfg.MaxOuterIters
	}
	if cfg.Workers > 0 {
		prm.Workers = cfg.Workers
	}
	seq := cfg.Sequence
	if seq == nil {
		seq = DefaultSequence()
	}

	res := FlowResult{
		Design:   spec.Name,
		NumInsts: len(p.Design.Insts),
		Arch:     cfg.Arch,
		Util:     cfg.Util,
		Alpha:    prm.Alpha,
	}

	var rt time.Duration
	res.Init, rt = snapshot(p, cfg.Arch, cfg.Workers)
	res.RouteRuntime += rt

	opt := core.VM1Opt(p, prm, seq)
	res.OptInitial = opt.Initial
	res.OptFinal = opt.Final
	res.OptRuntime = opt.Duration

	res.Final, rt = snapshot(p, cfg.Arch, cfg.Workers)
	res.RouteRuntime += rt
	return res
}

// pct formats a percent delta.
func pct(init, final float64) string {
	if init == 0 {
		return "   n/a"
	}
	return fmt.Sprintf("%+6.1f", (final-init)/init*100)
}

// WriteTable2Row prints one Table 2 row.
func WriteTable2Row(w io.Writer, r FlowResult) {
	fmt.Fprintf(w,
		"%-5s %6d %4.0f%% %6.0f | #dM1 %6d -> %6d (%s%%) | M1WL %8.1f -> %8.1f (%s%%) | via12 %6d -> %6d (%s%%) | HPWL %9.1f -> %9.1f (%s%%) | RWL %9.1f -> %9.1f (%s%%) | WNS %6.3f -> %6.3f | P(mW) %7.3f -> %7.3f (%s%%) | opt %5.1fs\n",
		r.Design, r.NumInsts, r.Util*100, r.Alpha,
		r.Init.DM1, r.Final.DM1, pct(float64(r.Init.DM1), float64(r.Final.DM1)),
		um(r.Init.M1WL), um(r.Final.M1WL), pct(float64(r.Init.M1WL), float64(r.Final.M1WL)),
		r.Init.Via12, r.Final.Via12, pct(float64(r.Init.Via12), float64(r.Final.Via12)),
		um(r.Init.HPWL), um(r.Final.HPWL), pct(float64(r.Init.HPWL), float64(r.Final.HPWL)),
		um(r.Init.RWL), um(r.Final.RWL), pct(float64(r.Init.RWL), float64(r.Final.RWL)),
		r.Init.WNS, r.Final.WNS,
		r.Init.PowerMW, r.Final.PowerMW, pct(r.Init.PowerMW, r.Final.PowerMW),
		r.OptRuntime.Seconds(),
	)
}

// um converts DBU to µm-equivalent for display.
func um(dbu int64) float64 { return float64(dbu) / 1000 }

// staDefault, staNetSlacks and staCriticalityBetas thinly wrap internal/sta
// so experiments files stay free of direct sta imports.
func staDefault() sta.Config { return sta.DefaultConfig() }

func staNetSlacks(p *layout.Placement, cfg sta.Config) []float64 {
	return sta.NetSlacks(p, cfg, nil)
}

func staCriticalityBetas(slacks []float64, period, weight float64) []float64 {
	return sta.CriticalityBetas(slacks, period, weight)
}
