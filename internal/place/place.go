// Package place provides the global placement and legalization stages that
// produce the "input placement" of the DAC'17 flow (the paper uses Cadence
// Innovus; we use a force-directed quadratic-style placer with bin-density
// spreading, followed by a Tetris-style legalizer).
//
// Quality target: enough wirelength-driven locality that the router and the
// vertical-M1 optimizer see realistic structure. The placer is
// deterministic for a given design.
package place

import (
	"fmt"
	"math"
	"sort"

	"vm1place/internal/layout"
	"vm1place/internal/netlist"
)

// Options tunes the global placer.
type Options struct {
	// Iterations of centroid/spreading passes (0: 40).
	Iterations int
	// BinSites/BinRows set the density bin size (0: 16 sites x 4 rows).
	BinSites int
	BinRows  int
	// TargetDensity is the per-bin density ceiling the spreader aims for
	// (0: min(0.95, util + 0.10)).
	TargetDensity float64
}

// Global runs global placement followed by legalization, leaving p legal.
func Global(p *layout.Placement, opt Options) error {
	if opt.Iterations == 0 {
		opt.Iterations = 40
	}
	if opt.BinSites == 0 {
		opt.BinSites = 16
	}
	if opt.BinRows == 0 {
		opt.BinRows = 4
	}
	if opt.TargetDensity == 0 {
		opt.TargetDensity = math.Min(0.95, p.Utilization()+0.10)
	}

	n := len(p.Design.Insts)
	x := make([]float64, n) // cell center x, DBU
	y := make([]float64, n) // cell center y, DBU

	// Initial positions: index order snaked across the die, exploiting the
	// generator's index locality.
	dieW := float64(p.DieWidth())
	dieH := float64(p.DieHeight())
	var totalW float64
	for i := 0; i < n; i++ {
		totalW += float64(p.Design.Insts[i].Master.WidthDBU(p.Tech))
	}
	rowsNeeded := math.Ceil(totalW / dieW)
	perRow := totalW / rowsNeeded
	cx, band := 0.0, 0
	for i := 0; i < n; i++ {
		w := float64(p.Design.Insts[i].Master.WidthDBU(p.Tech))
		if cx+w > perRow && band < int(rowsNeeded)-1 {
			cx = 0
			band++
		}
		x[i] = cx + w/2
		y[i] = (float64(band) + 0.5) / rowsNeeded * dieH
		cx += w
	}

	d := p.Design
	for iter := 0; iter < opt.Iterations; iter++ {
		// Net centroids (including fixed ports).
		nNets := len(d.Nets)
		cxs := make([]float64, nNets)
		cys := make([]float64, nNets)
		cnt := make([]float64, nNets)
		for ni := range d.Nets {
			net := &d.Nets[ni]
			if net.IsClock {
				continue
			}
			net.ForEachConn(func(c netlist.Conn) {
				cxs[ni] += x[c.Inst]
				cys[ni] += y[c.Inst]
				cnt[ni]++
			})
		}
		for pi := range d.Ports {
			ni := d.Ports[pi].Net
			if d.Nets[ni].IsClock {
				continue
			}
			cxs[ni] += float64(p.PortXY[pi].X)
			cys[ni] += float64(p.PortXY[pi].Y)
			cnt[ni]++
		}

		// Move every cell toward the average centroid of its nets.
		blend := 0.6
		for i := 0; i < n; i++ {
			var sx, sy, k float64
			for _, ni := range d.Insts[i].PinNets {
				if ni < 0 || d.Nets[ni].IsClock || cnt[ni] == 0 {
					continue
				}
				sx += cxs[ni] / cnt[ni]
				sy += cys[ni] / cnt[ni]
				k++
			}
			if k == 0 {
				continue
			}
			x[i] = (1-blend)*x[i] + blend*sx/k
			y[i] = (1-blend)*y[i] + blend*sy/k
		}

		spread(p, x, y, opt)
	}

	return Legalize(p, x, y)
}

// spread pushes cells out of overfull density bins (one diffusion step).
func spread(p *layout.Placement, x, y []float64, opt Options) {
	t := p.Tech
	binW := float64(opt.BinSites) * float64(t.SiteWidth)
	binH := float64(opt.BinRows) * float64(t.RowHeight)
	nbx := int(math.Ceil(float64(p.DieWidth()) / binW))
	nby := int(math.Ceil(float64(p.DieHeight()) / binH))
	if nbx < 1 {
		nbx = 1
	}
	if nby < 1 {
		nby = 1
	}
	dens := make([]float64, nbx*nby)
	cap := binW * binH
	n := len(x)
	dieW := float64(p.DieWidth())
	dieH := float64(p.DieHeight())

	bx := func(v float64) int {
		b := int(v / binW)
		if b < 0 {
			b = 0
		}
		if b >= nbx {
			b = nbx - 1
		}
		return b
	}
	by := func(v float64) int {
		b := int(v / binH)
		if b < 0 {
			b = 0
		}
		if b >= nby {
			b = nby - 1
		}
		return b
	}

	for i := 0; i < n; i++ {
		area := float64(p.Design.Insts[i].Master.WidthDBU(t)) * float64(t.RowHeight)
		dens[by(y[i])*nbx+bx(x[i])] += area / cap
	}

	get := func(ix, iy int) float64 {
		if ix < 0 || ix >= nbx || iy < 0 || iy >= nby {
			return 1.5 // die edges behave as full bins, pushing inward
		}
		return dens[iy*nbx+ix]
	}

	step := 0.35
	for i := 0; i < n; i++ {
		ix, iy := bx(x[i]), by(y[i])
		if get(ix, iy) <= opt.TargetDensity {
			continue
		}
		gx := get(ix-1, iy) - get(ix+1, iy)
		gy := get(ix, iy-1) - get(ix, iy+1)
		x[i] += step * gx * binW
		y[i] += step * gy * binH
		x[i] = math.Max(0, math.Min(dieW-1, x[i]))
		y[i] = math.Max(0, math.Min(dieH-1, y[i]))
	}
}

// Legalize snaps cells at desired centers (x, y in DBU) to a legal
// row/site placement: greedy capacity-aware row assignment followed by
// Abacus-style clumping within each row (optimal left-edge positions for
// the given in-row order). Orientations are reset to unflipped.
func Legalize(p *layout.Placement, x, y []float64) error {
	t := p.Tech
	n := len(p.Design.Insts)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return x[order[a]] < x[order[b]] })

	load := make([]int, p.NumRows) // occupied sites per row
	rowCells := make([][]int, p.NumRows)
	rowCost := float64(t.RowHeight) / float64(t.SiteWidth)

	for _, i := range order {
		w := p.Design.Insts[i].Master.WidthSites
		wantRow := t.YToRow(int64(y[i]))
		bestRow, bestCost := -1, math.Inf(1)
		for r := 0; r < p.NumRows; r++ {
			if load[r]+w > p.NumSites {
				continue
			}
			// Row distance plus a crowding term; x displacement is mostly
			// recovered by clumping, so it is weighted lightly.
			cost := math.Abs(float64(r-wantRow))*rowCost +
				0.3*math.Max(0, float64(load[r]+w)-float64(p.NumSites)*0.9)
			if cost < bestCost {
				bestCost = cost
				bestRow = r
			}
		}
		if bestRow == -1 {
			return fmt.Errorf("place: cannot legalize instance %s (width %d sites)",
				p.Design.Insts[i].Name, w)
		}
		load[bestRow] += w
		rowCells[bestRow] = append(rowCells[bestRow], i)
	}

	for r := 0; r < p.NumRows; r++ {
		clumpRow(p, r, rowCells[r], x)
	}
	return p.CheckLegal()
}

// clumpRow places the given cells (already in desired-x order) in row r,
// minimizing total |site - desired| via the classic clustering recurrence.
func clumpRow(p *layout.Placement, r int, cs []int, x []float64) {
	if len(cs) == 0 {
		return
	}
	t := p.Tech
	cap := p.NumSites
	type cluster struct {
		cells []int
		width int     // total sites
		sumE  float64 // Σ (desired left site - offset within cluster)
		pos   float64 // left site (continuous)
	}
	clampPos := func(c *cluster) {
		c.pos = c.sumE / float64(len(c.cells))
		if c.pos < 0 {
			c.pos = 0
		}
		if c.pos > float64(cap-c.width) {
			c.pos = float64(cap - c.width)
		}
	}
	var stack []*cluster
	for _, i := range cs {
		w := p.Design.Insts[i].Master.WidthSites
		e := x[i]/float64(t.SiteWidth) - float64(w)/2 // desired left site
		cur := &cluster{cells: []int{i}, width: w, sumE: e}
		clampPos(cur)
		for len(stack) > 0 {
			prev := stack[len(stack)-1]
			if prev.pos+float64(prev.width) <= cur.pos {
				break
			}
			// Merge cur into prev: offsets of cur's cells grow by
			// prev.width, so their (e - offset) terms shrink by it.
			prev.sumE += cur.sumE - float64(len(cur.cells))*float64(prev.width)
			prev.cells = append(prev.cells, cur.cells...)
			prev.width += cur.width
			clampPos(prev)
			cur = prev
			stack = stack[:len(stack)-1]
		}
		stack = append(stack, cur)
	}
	// Emit integer sites: a left-to-right pass resolves rounding overlaps,
	// then a right-to-left pass pulls everything back inside the row
	// (always possible since total width fits the row).
	sites := make([]int, len(stack))
	next := 0
	for ci, c := range stack {
		site := int(math.Round(c.pos))
		if site < next {
			site = next
		}
		sites[ci] = site
		next = site + c.width
	}
	limit := cap
	for ci := len(stack) - 1; ci >= 0; ci-- {
		if sites[ci]+stack[ci].width > limit {
			sites[ci] = limit - stack[ci].width
		}
		limit = sites[ci]
	}
	for ci, c := range stack {
		site := sites[ci]
		for _, i := range c.cells {
			w := p.Design.Insts[i].Master.WidthSites
			p.SetLoc(i, site, r, false)
			site += w
		}
	}
}
