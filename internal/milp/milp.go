// Package milp implements a branch-and-bound mixed-integer linear
// programming solver over the internal/lp simplex. Together they replace
// the CPLEX 12.6.3 solver of the DAC'17 paper's flow.
//
// The solver is tuned for the structure of the paper's window MILPs:
// candidate-selection binaries organized in "exactly one per cell" groups
// (the SCP model of Li & Koh), plus indicator binaries coupled through
// big-G rows. Callers can register the groups to enable balanced
// group-splitting branching, provide an incumbent (the input placement is
// always feasible), and bound the search with node and time budgets —
// mirroring how a CPLEX run would be time-limited per window.
package milp

import (
	"math"
	"time"

	"vm1place/internal/lp"
)

// intTol is the integrality tolerance: values within intTol of an integer
// are considered integral.
const intTol = 1e-6

// Status reports the outcome of a MILP solve.
type Status int

const (
	// Optimal: search completed; the incumbent is proven optimal.
	Optimal Status = iota
	// Feasible: a budget was exhausted; the incumbent is feasible but not
	// proven optimal.
	Feasible
	// Infeasible: search completed without finding any integer solution.
	Infeasible
	// Limit: a budget was exhausted before any integer solution was found.
	Limit

	// numStatus is a sentinel for the names table below: add new statuses
	// above it and name them in statusNames, or the exhaustiveness test
	// fails the build's test run.
	numStatus
)

// statusNames is indexed by Status; the fixed size ties it to numStatus so
// a new status cannot ship without a name.
var statusNames = [numStatus]string{
	Optimal:    "optimal",
	Feasible:   "feasible",
	Infeasible: "infeasible",
	Limit:      "limit",
}

// String implements fmt.Stringer.
func (s Status) String() string {
	if s < 0 || s >= numStatus {
		return "unknown"
	}
	return statusNames[s]
}

// Model is a MILP: an LP plus integrality requirements.
type Model struct {
	LP *lp.Model
	// Ints lists variables that must take integer values.
	Ints []int
	// Groups are disjoint sets of binary variables with an "exactly one"
	// constraint (the caller must also have added the Σ=1 row to LP).
	// They enable group-splitting branching.
	Groups [][]int
}

// NewModel wraps an LP model.
func NewModel(m *lp.Model) *Model { return &Model{LP: m} }

// Reset re-targets the wrapper at an LP model and clears the integrality
// marks, retaining group storage so a pooled wrapper can be rebuilt
// without allocating.
func (m *Model) Reset(lpm *lp.Model) {
	m.LP = lpm
	m.Ints = m.Ints[:0]
	m.Groups = m.Groups[:0]
}

// MarkInt requires variable j to be integral.
func (m *Model) MarkInt(j int) { m.Ints = append(m.Ints, j) }

// AddGroup registers an exactly-one binary group for branching and marks
// its members integral. The group is copied; after a Reset, freed group
// slices are reused in place.
func (m *Model) AddGroup(vars []int) {
	var g []int
	if len(m.Groups) < cap(m.Groups) {
		m.Groups = m.Groups[:len(m.Groups)+1]
		g = append(m.Groups[len(m.Groups)-1][:0], vars...)
	} else {
		g = append([]int(nil), vars...)
		m.Groups = append(m.Groups, nil)
	}
	m.Groups[len(m.Groups)-1] = g
	m.Ints = append(m.Ints, g...)
}

// Params bounds the search.
type Params struct {
	// MaxNodes caps branch-and-bound nodes (0: 100000).
	MaxNodes int
	// TimeLimit caps wall time (0: none).
	TimeLimit time.Duration
	// AbsGap prunes nodes whose LP bound is within AbsGap of the
	// incumbent (0: 1e-6).
	AbsGap float64
	// Incumbent, when non-nil, is a feasible integral starting solution
	// with objective IncumbentObj; it seeds pruning.
	Incumbent    []float64
	IncumbentObj float64
	// Rounder, when non-nil, attempts to repair a fractional LP solution
	// into a feasible integral one, returning the repaired vector, its
	// true objective, and ok. Used as a primal heuristic at every node.
	Rounder func(x []float64) ([]float64, float64, bool)
	// Scratch, when non-nil, is the LP workspace reused across every node
	// relaxation of this solve (and across solves sharing the arena, e.g.
	// one DistOpt worker's window sequence). nil allocates a private one,
	// so arena reuse within a solve is always on.
	Scratch *lp.Arena
	// Workers >= 2 explores the tree with that many speculative LP solvers
	// under canonical-order commits (parallel.go); the result is identical
	// for any such count. <= 1 runs the sequential solver.
	Workers int
}

// Result is the outcome of a Solve.
type Result struct {
	Status Status
	// Obj and X describe the incumbent (valid unless Status is Infeasible
	// or Limit).
	Obj   float64
	X     []float64
	Nodes int
	// BestBound is the proven lower bound on the optimum.
	BestBound float64
}

type solver struct {
	m        *Model
	p        Params
	deadline time.Time
	hasDL    bool

	inGroup []int // var -> group index or -1

	bestX   []float64
	bestObj float64
	hasBest bool

	nodes     int
	maxNodes  int
	bestBound float64
	aborted   bool

	scratch *lp.Arena

	// Free lists for per-node scratch. Every branch node used to copy the
	// parent's lo/hi (up to four fresh slices per node) plus a sort buffer
	// and a membership map; pooling them makes node overhead allocation-free
	// after the first few levels. Ownership rule: whoever takes a slice
	// from the pool returns it after its last use (children only read the
	// slices passed to them).
	boundPool [][]float64
	intPool   [][]int
}

// getBounds returns a pooled copy of src.
func (s *solver) getBounds(src []float64) []float64 {
	n := len(s.boundPool)
	if n == 0 {
		return append([]float64(nil), src...)
	}
	b := s.boundPool[n-1]
	s.boundPool = s.boundPool[:n-1]
	if cap(b) < len(src) {
		return append(b[:0], src...)
	}
	b = b[:len(src)]
	copy(b, src)
	return b
}

// putBounds returns slices taken with getBounds to the pool (nils are
// ignored, so conditionally-taken copies release unconditionally).
func (s *solver) putBounds(bs ...[]float64) {
	for _, b := range bs {
		if b != nil {
			s.boundPool = append(s.boundPool, b)
		}
	}
}

// getInts returns a pooled empty int slice with at least the given capacity.
func (s *solver) getInts(capHint int) []int {
	n := len(s.intPool)
	if n == 0 {
		return make([]int, 0, capHint)
	}
	b := s.intPool[n-1]
	s.intPool = s.intPool[:n-1]
	return b[:0]
}

func (s *solver) putInts(b []int) { s.intPool = append(s.intPool, b) }

// Solve runs branch and bound.
func Solve(m *Model, p Params) Result {
	s := &solver{m: m, p: p}
	s.maxNodes = p.MaxNodes
	if s.maxNodes == 0 {
		s.maxNodes = 100000
	}
	if p.AbsGap == 0 {
		p.AbsGap = 1e-6
	}
	s.p = p
	if p.TimeLimit > 0 {
		s.deadline = time.Now().Add(p.TimeLimit)
		s.hasDL = true
	}
	s.inGroup = make([]int, m.LP.NumVars())
	for j := range s.inGroup {
		s.inGroup[j] = -1
	}
	for gi, g := range m.Groups {
		for _, j := range g {
			s.inGroup[j] = gi
		}
	}
	if p.Incumbent != nil {
		s.bestX = append([]float64(nil), p.Incumbent...)
		s.bestObj = p.IncumbentObj
		s.hasBest = true
	}
	s.bestBound = math.Inf(-1)
	s.scratch = p.Scratch
	if s.scratch == nil {
		s.scratch = lp.NewArena()
	}
	if p.Workers > 1 {
		// Parallel mode arms the deadline on every worker arena itself.
		return solveParallel(m, p, s)
	}
	if s.hasDL {
		// Interrupt long individual relaxation solves too (a big window's
		// root LP can exceed the whole time budget), not just the
		// between-node checks in branch.
		s.scratch.SetDeadline(s.deadline)
		defer s.scratch.SetDeadline(time.Time{})
	}

	lo, hi := m.LP.Bounds()
	rootBound := s.branch(lo, hi, p.Incumbent, true)
	if !s.aborted {
		s.bestBound = rootBound
	}

	switch {
	case s.hasBest && !s.aborted:
		return Result{Status: Optimal, Obj: s.bestObj, X: s.bestX, Nodes: s.nodes, BestBound: s.bestBound}
	case s.hasBest:
		return Result{Status: Feasible, Obj: s.bestObj, X: s.bestX, Nodes: s.nodes, BestBound: s.bestBound}
	case !s.aborted:
		return Result{Status: Infeasible, Nodes: s.nodes, BestBound: s.bestBound}
	default:
		return Result{Status: Limit, Nodes: s.nodes, BestBound: s.bestBound}
	}
}

// branch explores the subproblem with the given bounds and returns its
// proven lower bound (+Inf when pruned infeasible). hint warm-starts the
// node relaxation: the root uses the caller's incumbent, children their
// parent's LP optimum, which is near-feasible for the child's slightly
// tightened bounds and keeps both simplex phases short deep in the tree.
// root marks the root node for bound bookkeeping.
func (s *solver) branch(lo, hi, hint []float64, root bool) float64 {
	if s.aborted {
		return math.Inf(-1)
	}
	if s.nodes >= s.maxNodes || (s.hasDL && time.Now().After(s.deadline)) {
		s.aborted = true
		return math.Inf(-1)
	}
	s.nodes++

	sol := s.m.LP.SolveWithScratch(lo, hi, hint, s.scratch)
	switch sol.Status {
	case lp.Infeasible:
		return math.Inf(1)
	case lp.Unbounded:
		// An unbounded relaxation of our bounded formulations signals a
		// modelling bug; treat as unresolvable.
		s.aborted = true
		return math.Inf(-1)
	case lp.IterLimit:
		// Could not resolve the relaxation: conservatively keep the
		// incumbent and stop pursuing this node without claiming a bound.
		s.aborted = true
		return math.Inf(-1)
	}
	if s.hasBest && sol.Obj >= s.bestObj-s.p.AbsGap {
		return sol.Obj // pruned by bound
	}

	// Reduced-cost fixing: a nonbasic integer variable whose reduced cost
	// exceeds the incumbent gap cannot leave its bound in any solution that
	// improves the incumbent by more than AbsGap, so it is fixed there for
	// the whole subtree. With a near-optimal incumbent this collapses most
	// exactly-one groups to a handful of candidates and is the main reason
	// window searches finish instead of timing out.
	if s.hasBest && sol.RedCost != nil {
		gap := s.bestObj - s.p.AbsGap - sol.Obj
		var lo2, hi2 []float64
		for _, j := range s.m.Ints {
			if lo[j] >= hi[j] {
				continue
			}
			d := sol.RedCost[j]
			if d > gap && sol.X[j] <= lo[j]+intTol {
				if hi2 == nil {
					hi2 = s.getBounds(hi)
				}
				hi2[j] = lo[j]
			} else if -d > gap && sol.X[j] >= hi[j]-intTol {
				if lo2 == nil {
					lo2 = s.getBounds(lo)
				}
				lo2[j] = hi[j]
			}
		}
		if lo2 != nil {
			lo = lo2
		}
		if hi2 != nil {
			hi = hi2
		}
		defer s.putBounds(lo2, hi2)
	}

	fracVar := s.mostFractional(sol.X)
	if fracVar == -1 {
		// Integral: new incumbent.
		if !s.hasBest || sol.Obj < s.bestObj {
			s.bestObj = sol.Obj
			s.bestX = append(s.bestX[:0], sol.X...)
			s.hasBest = true
		}
		return sol.Obj
	}

	// Primal heuristic: try to repair the fractional solution.
	if s.p.Rounder != nil {
		if rx, robj, ok := s.p.Rounder(sol.X); ok {
			if !s.hasBest || robj < s.bestObj {
				s.bestObj = robj
				s.bestX = append(s.bestX[:0], rx...)
				s.hasBest = true
			}
		}
	}

	var b1, b2 float64
	if gi := s.inGroup[fracVar]; gi >= 0 {
		b1, b2 = s.branchGroup(lo, hi, gi, sol.X)
	} else {
		b1, b2 = s.branchVar(lo, hi, fracVar, sol.X)
	}
	return math.Min(b1, b2)
}

// mostFractional returns the integer variable farthest from integrality,
// or -1 if all are integral.
func (s *solver) mostFractional(x []float64) int {
	best := -1
	bestDist := intTol
	for _, j := range s.m.Ints {
		v := x[j]
		dist := math.Abs(v - math.Round(v))
		if dist > bestDist {
			bestDist = dist
			best = j
		}
	}
	return best
}

// branchVar performs the classic floor/ceil dichotomy on variable j. x is
// the parent relaxation's solution, reused as the children's warm start.
func (s *solver) branchVar(lo, hi []float64, j int, x []float64) (float64, float64) {
	fl := math.Floor(x[j])

	hi2 := s.getBounds(hi)
	hi2[j] = fl
	var bDown float64 = math.Inf(1)
	if lo[j] <= fl {
		bDown = s.branch(lo, hi2, x, false)
	}
	s.putBounds(hi2)

	lo2 := s.getBounds(lo)
	lo2[j] = fl + 1
	var bUp float64 = math.Inf(1)
	if hi[j] >= fl+1 {
		bUp = s.branch(lo2, hi, x, false)
	}
	s.putBounds(lo2)
	return bDown, bUp
}

// branchGroup splits an exactly-one group into two halves by LP value and
// explores "winner in S" and "winner in complement" children. Fixed-to-zero
// members (hi already 0) stay fixed in both children.
func (s *solver) branchGroup(lo, hi []float64, gi int, x []float64) (float64, float64) {
	// Active members sorted by LP value descending; S = active[:cut] holds
	// at least half the LP mass, which balances the children (groupSplit,
	// shared with the parallel committer so both branch identically).
	active, cut := groupSplit(s, s.m.Groups[gi], hi, x)

	// Child A: winner inside S (zero the complement).
	hiA := s.getBounds(hi)
	for _, j := range active[cut:] {
		hiA[j] = 0
	}
	bA := s.branch(lo, hiA, x, false)

	// Child B: winner outside S (zero S). hiA is dead, so recycle it as the
	// child-B bounds.
	hiB := hiA
	copy(hiB, hi)
	for _, j := range active[:cut] {
		hiB[j] = 0
	}
	bB := s.branch(lo, hiB, x, false)
	s.putBounds(hiB)
	s.putInts(active)
	return bA, bB
}
