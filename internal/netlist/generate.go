package netlist

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"vm1place/internal/cells"
)

// ErrBadGenConfig reports an unusable generator configuration. Generate
// wraps it, so callers can errors.Is against it.
var ErrBadGenConfig = errors.New("netlist: bad generator config")

// GenConfig parameterizes the synthetic netlist generator. The generator
// stands in for Design Compiler + the OpenCores RTL of the paper: it
// produces a combinationally acyclic netlist with Rent-style locality (a
// gate's fanins come from gates with nearby generation indices, which the
// global placer turns into spatial locality) and a realistic fanout
// distribution.
type GenConfig struct {
	Name      string
	NumInsts  int
	Seed      int64
	FFRatio   float64 // fraction of instances that are flip-flops
	PIRatio   float64 // probability an input is fed by a primary input
	Locality  float64 // stddev of fanin index distance, as fraction of N
	MaxFanout int     // resample when a net would exceed this fanout
	NumPorts  int     // primary input pool size (0: derived from N)
	// ChunkInsts sizes the builder's pin-net slabs in instances (0: 64k):
	// every instance's PinNets slice is carved from a shared per-chunk
	// slab instead of allocated individually, so a 1M-instance build
	// makes tens of slab allocations rather than a million small ones.
	// Purely a memory-layout knob — the generator's RNG call sequence
	// never depends on it, so any chunk size yields the identical design
	// for a given seed (TestGenerateChunkInvariance).
	ChunkInsts int
}

// DefaultGenConfig returns sensible defaults for n instances.
func DefaultGenConfig(name string, n int, seed int64) GenConfig {
	return GenConfig{
		Name:      name,
		NumInsts:  n,
		Seed:      seed,
		FFRatio:   0.12,
		PIRatio:   0.04,
		Locality:  0.02,
		MaxFanout: 10,
		NumPorts:  0,
	}
}

// combMix is the combinational master mix (weights sum to 100).
var combMix = []struct {
	name   string
	weight int
}{
	{"INV_X1", 18},
	{"INV_X2", 4},
	{"BUF_X1", 7},
	{"BUF_X2", 3},
	{"NAND2_X1", 16},
	{"NOR2_X1", 10},
	{"AND2_X1", 8},
	{"OR2_X1", 7},
	{"NAND3_X1", 6},
	{"XOR2_X1", 4},
	{"XNOR2_X1", 3},
	{"AOI21_X1", 6},
	{"OAI21_X1", 5},
	{"MUX2_X1", 3},
}

// Generate builds a synthetic design over lib according to cfg. The result
// always validates and is combinationally acyclic (combinational fanins
// come from lower-index combinational gates or from flip-flop outputs). A
// config too small to generate from is reported as an error wrapping
// ErrBadGenConfig.
func Generate(lib *cells.Library, cfg GenConfig) (*Design, error) {
	if cfg.NumInsts < 4 {
		return nil, fmt.Errorf("%w: NumInsts %d, must be >= 4", ErrBadGenConfig, cfg.NumInsts)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := &Design{Name: cfg.Name, Lib: lib}

	nFF := int(math.Round(cfg.FFRatio * float64(cfg.NumInsts)))
	if nFF < 1 {
		nFF = 1
	}
	nPI := cfg.NumPorts
	if nPI <= 0 {
		nPI = cfg.NumInsts / 50
		if nPI < 8 {
			nPI = 8
		}
	}

	// Exact-capacity preallocation: the instance and net counts are known
	// up front (clock + PIs + one output net per instance), so the big
	// slices never re-grow — append doubling on million-element slices of
	// multi-word structs is exactly the transient 2x the chunked builder
	// exists to avoid.
	d.Insts = make([]Instance, 0, cfg.NumInsts)
	d.Nets = make([]Net, 0, 1+nPI+cfg.NumInsts)
	d.Ports = make([]Port, 0, nPI+1)

	// Pin-net slab: PinNets slices are carved out of chunked backing
	// arrays. They are fixed-length for the life of the design (one entry
	// per master pin, never appended), so sharing a backing array is safe.
	chunk := cfg.ChunkInsts
	if chunk <= 0 {
		chunk = 1 << 16
	}
	var pinSlab []int
	carvePins := func(n int) []int {
		if cap(pinSlab)-len(pinSlab) < n {
			sz := 4 * chunk // combMix masters average under 4 pins
			if sz < n {
				sz = n
			}
			pinSlab = make([]int, 0, sz)
		}
		s := pinSlab[len(pinSlab) : len(pinSlab)+n : len(pinSlab)+n]
		pinSlab = pinSlab[:len(pinSlab)+n]
		return s
	}

	// Interleave FFs uniformly through the index order so locality-based
	// fanin selection sees register boundaries everywhere.
	isFF := make([]bool, cfg.NumInsts)
	for k := 0; k < nFF; k++ {
		isFF[k*cfg.NumInsts/nFF] = true
	}

	totalWeight := 0
	for _, cm := range combMix {
		totalWeight += cm.weight
	}
	pickComb := func() *cells.Master {
		r := rng.Intn(totalWeight)
		for _, cm := range combMix {
			if r < cm.weight {
				return lib.MustMaster(cm.name)
			}
			r -= cm.weight
		}
		return lib.MustMaster("INV_X1")
	}

	// Clock net at index 0.
	d.Nets = append(d.Nets, Net{Name: "clk", Driver: Conn{Inst: -1}, IsClock: true})
	clockNet := 0

	// Primary-input nets.
	piNets := make([]int, nPI)
	for i := 0; i < nPI; i++ {
		ni := len(d.Nets)
		d.Nets = append(d.Nets, Net{Name: fmt.Sprintf("pi_%d", i), Driver: Conn{Inst: -1}})
		d.Ports = append(d.Ports, Port{
			Name:  fmt.Sprintf("pi_%d", i),
			Net:   ni,
			Input: true,
			Side:  Side(i % 4),
			Pos:   rng.Float64(),
		})
		piNets[i] = ni
	}
	d.Ports = append(d.Ports, Port{Name: "clk", Net: clockNet, Input: true, Side: West, Pos: 0})

	// Instances and their output nets.
	outNet := make([]int, cfg.NumInsts)
	for i := 0; i < cfg.NumInsts; i++ {
		var m *cells.Master
		if isFF[i] {
			m = lib.MustMaster("DFF_X1")
		} else {
			m = pickComb()
		}
		inst := Instance{
			Name:    fmt.Sprintf("u%d", i),
			Master:  m,
			PinNets: carvePins(len(m.Pins)),
		}
		for k := range inst.PinNets {
			inst.PinNets[k] = -1
		}
		d.Insts = append(d.Insts, inst)

		outPinIdx := pinIndex(m, m.OutputPin())
		ni := len(d.Nets)
		d.Nets = append(d.Nets, Net{
			Name:   fmt.Sprintf("n%d", i),
			Driver: Conn{Inst: i, Pin: outPinIdx},
		})
		d.Insts[i].PinNets[outPinIdx] = ni
		outNet[i] = ni
	}

	sigma := cfg.Locality * float64(cfg.NumInsts)
	if sigma < 2 {
		sigma = 2
	}

	// sampleFanin picks a source net for an input of instance i, keeping
	// the combinational graph acyclic: combinational sources must have a
	// smaller index unless they are FFs.
	sampleFanin := func(i int) int {
		if rng.Float64() < cfg.PIRatio {
			return piNets[rng.Intn(nPI)]
		}
		for try := 0; try < 64; try++ {
			off := int(math.Round(rng.NormFloat64() * sigma))
			j := i + off
			if j < 0 || j >= cfg.NumInsts || j == i {
				continue
			}
			if !isFF[j] && j >= i {
				continue // would create a combinational cycle risk
			}
			ni := outNet[j]
			if len(d.Nets[ni].Sinks) >= cfg.MaxFanout {
				continue
			}
			return ni
		}
		return piNets[rng.Intn(nPI)]
	}

	for i := 0; i < cfg.NumInsts; i++ {
		m := d.Insts[i].Master
		for pi := range m.Pins {
			p := &m.Pins[pi]
			if p.Dir != cells.Input {
				continue
			}
			var ni int
			if m.IsFF && p.Name == "CK" {
				ni = clockNet
			} else {
				ni = sampleFanin(i)
			}
			d.Insts[i].PinNets[pi] = ni
			d.Nets[ni].Sinks = append(d.Nets[ni].Sinks, Conn{Inst: i, Pin: pi})
		}
	}

	// Give floating instance outputs a primary-output port so no net
	// dangles (paralleling synthesis keeping observable outputs).
	po := 0
	for i := 0; i < cfg.NumInsts; i++ {
		ni := outNet[i]
		if len(d.Nets[ni].Sinks) == 0 {
			d.Ports = append(d.Ports, Port{
				Name:  fmt.Sprintf("po_%d", po),
				Net:   ni,
				Input: false,
				Side:  Side(po % 4),
				Pos:   rng.Float64(),
			})
			po++
		}
	}

	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("netlist: generated design invalid: %w", err)
	}
	return d, nil
}

// MustGenerate is Generate panicking on error; for tests and examples with
// known-good configs.
func MustGenerate(lib *cells.Library, cfg GenConfig) *Design {
	d, err := Generate(lib, cfg)
	if err != nil {
		panic(err) // panic-ok: Must* wrapper
	}
	return d
}

func pinIndex(m *cells.Master, p *cells.Pin) int {
	for i := range m.Pins {
		if &m.Pins[i] == p {
			return i
		}
	}
	// Masters always contain their own pins; reaching here means the
	// caller passed a pin from a different master.
	panic("netlist: pin not in master") // panic-ok: invariant
}
