package lp

import "math"

// This file holds a test-only reference solver: the pre-factorization
// bounded-variable primal simplex with an explicit dense nRows×nRows basis
// inverse, kept as an independent oracle for the sparse LU kernel. It shares
// the Model/Solution types and tolerance constants with the live kernel but
// none of its linear algebra: every FTRAN/BTRAN here is a dense matrix-vector
// product against binv, and every pivot is a dense rank-1 eta update. It is
// deliberately slow and allocation-heavy — correctness fixture, not a solver.
type refSimplex struct {
	m *Model

	nStruct int
	nRows   int
	nTotal  int

	cols [][]entry
	obj  []float64
	lo   []float64
	hi   []float64
	rhs  []float64

	state      []varState
	xN         []float64
	basis      []int
	inBasisRow []int
	binv       []float64 // dense nRows x nRows row-major basis inverse
	xB         []float64

	maxIters int
}

// refSolve cold-solves the model with the given bound overrides (nil means
// the model's own bounds) using the dense reference kernel.
func refSolve(m *Model, lo, hi []float64) *Solution {
	if lo == nil {
		lo = m.lo
	}
	if hi == nil {
		hi = m.hi
	}
	return newRefSimplex(m, lo, hi).solve()
}

func newRefSimplex(m *Model, lo, hi []float64) *refSimplex {
	n := m.NumVars()
	rows := m.NumRows()
	s := &refSimplex{
		m:       m,
		nStruct: n,
		nRows:   rows,
		nTotal:  n + 2*rows,
	}
	s.cols = make([][]entry, s.nTotal)
	copy(s.cols, m.cols)
	unit := make([]entry, 2*rows)
	for i := 0; i < rows; i++ {
		unit[i] = entry{row: i, val: 1}
		unit[rows+i] = entry{row: i, val: 1}
		s.cols[n+i] = unit[i : i+1 : i+1]
		s.cols[n+rows+i] = unit[rows+i : rows+i+1 : rows+i+1]
	}
	// Same deterministic RHS perturbation as the live kernel, so the two
	// kernels optimize the identical perturbed problem and objectives agree
	// to roundoff rather than to the perturbation scale.
	s.rhs = append([]float64(nil), m.rhs...)
	perturbRHS(s.rhs)

	s.obj = make([]float64, s.nTotal)
	copy(s.obj, m.obj)
	s.lo = make([]float64, s.nTotal)
	s.hi = make([]float64, s.nTotal)
	copy(s.lo, lo)
	copy(s.hi, hi)
	for i := 0; i < rows; i++ {
		j := n + i
		switch m.sense[i] {
		case LE:
			s.lo[j], s.hi[j] = 0, math.Inf(1)
		case GE:
			s.lo[j], s.hi[j] = math.Inf(-1), 0
		case EQ:
			s.lo[j], s.hi[j] = 0, 0
		}
	}
	for i := 0; i < rows; i++ {
		j := n + rows + i
		s.lo[j], s.hi[j] = 0, 0
	}

	s.maxIters = m.MaxIters
	if s.maxIters == 0 {
		s.maxIters = 200*(rows+n) + 2000
	}
	return s
}

func (s *refSimplex) boundedStart(j int) (float64, varState) {
	switch {
	case !math.IsInf(s.lo[j], -1):
		return s.lo[j], atLower
	case !math.IsInf(s.hi[j], 1):
		return s.hi[j], atUpper
	default:
		return 0, atLower
	}
}

func (s *refSimplex) solve() *Solution {
	n, rows := s.nStruct, s.nRows
	s.state = make([]varState, s.nTotal)
	s.xN = make([]float64, s.nTotal)
	s.basis = make([]int, rows)
	s.inBasisRow = make([]int, s.nTotal)
	for j := range s.inBasisRow {
		s.inBasisRow[j] = -1
	}
	s.binv = make([]float64, rows*rows)
	s.xB = make([]float64, rows)

	for j := 0; j < n+rows; j++ {
		v, st := s.boundedStart(j)
		s.xN[j] = v
		s.state[j] = st
	}
	for j := n + rows; j < s.nTotal; j++ {
		s.xN[j] = 0
		s.state[j] = atLower
	}

	resid := append([]float64(nil), s.rhs...)
	for j := 0; j < n+rows; j++ {
		if s.xN[j] == 0 {
			continue
		}
		for _, e := range s.cols[j] {
			resid[e.row] -= e.val * s.xN[j]
		}
	}

	// Crash basis mirroring the live kernel: feasible rows get their slack
	// basic, violated rows an artificial with unit phase-1 cost.
	phase1Obj := make([]float64, s.nTotal)
	needPhase1 := false
	for i := 0; i < rows; i++ {
		sj := n + i
		aj := n + rows + i
		s.binv[i*rows+i] = 1
		if resid[i] >= s.lo[sj]-feasTol && resid[i] <= s.hi[sj]+feasTol {
			s.basis[i] = sj
			s.inBasisRow[sj] = i
			s.state[sj] = basic
			s.xB[i] = resid[i]
			s.lo[aj], s.hi[aj] = 0, 0
			continue
		}
		s.basis[i] = aj
		s.inBasisRow[aj] = i
		s.state[aj] = basic
		s.xB[i] = resid[i]
		if resid[i] >= 0 {
			s.lo[aj], s.hi[aj] = 0, math.Inf(1)
			phase1Obj[aj] = 1
		} else {
			s.lo[aj], s.hi[aj] = math.Inf(-1), 0
			phase1Obj[aj] = -1
		}
		needPhase1 = true
	}

	totalIters := 0
	if needPhase1 {
		st, it := s.iterate(phase1Obj, true)
		totalIters += it
		if st == IterLimit {
			return &Solution{Status: IterLimit, Iters: totalIters, X: s.extractX()}
		}
		if s.phase1Value(phase1Obj) > 1e-6 {
			return &Solution{Status: Infeasible, Iters: totalIters}
		}
	}

	for i := 0; i < rows; i++ {
		j := n + rows + i
		s.lo[j], s.hi[j] = 0, 0
		if s.state[j] != basic {
			s.xN[j] = 0
		}
	}

	st, it := s.iterate(s.obj, false)
	totalIters += it
	x := s.extractX()
	obj := 0.0
	for j := 0; j < n; j++ {
		obj += s.obj[j] * x[j]
	}
	switch st {
	case Unbounded:
		return &Solution{Status: Unbounded, Iters: totalIters}
	case IterLimit:
		return &Solution{Status: IterLimit, Obj: obj, X: x, Iters: totalIters}
	default:
		return &Solution{Status: Optimal, Obj: obj, X: x, Iters: totalIters}
	}
}

func (s *refSimplex) phase1Value(obj []float64) float64 {
	v := 0.0
	for i, j := range s.basis {
		v += obj[j] * s.xB[i]
	}
	for j := 0; j < s.nTotal; j++ {
		if s.state[j] != basic && obj[j] != 0 {
			v += obj[j] * s.xN[j]
		}
	}
	return math.Abs(v)
}

func (s *refSimplex) extractX() []float64 {
	x := make([]float64, s.nStruct)
	for j := 0; j < s.nStruct; j++ {
		if r := s.inBasisRow[j]; r >= 0 {
			x[j] = s.xB[r]
		} else {
			x[j] = s.xN[j]
		}
	}
	return x
}

func (s *refSimplex) iterate(obj []float64, stopAtZero bool) (Status, int) {
	rows := s.nRows
	y := make([]float64, rows)
	w := make([]float64, rows)
	iters := 0
	degenerate := 0

	colNorm := make([]float64, s.nTotal)
	for j := 0; j < s.nTotal; j++ {
		sum := 1.0
		for _, e := range s.cols[j] {
			sum += e.val * e.val
		}
		colNorm[j] = math.Sqrt(sum)
	}

	for ; iters < s.maxIters; iters++ {
		if stopAtZero {
			v := 0.0
			for i := 0; i < rows; i++ {
				if c := obj[s.basis[i]]; c != 0 {
					v += c * s.xB[i]
				}
			}
			if v < 1e-7 {
				return Optimal, iters
			}
		}
		// y = c_B^T * Binv, recomputed densely every iteration.
		for i := 0; i < rows; i++ {
			y[i] = 0
		}
		for i := 0; i < rows; i++ {
			cb := obj[s.basis[i]]
			if cb == 0 {
				continue
			}
			row := s.binv[i*rows : (i+1)*rows]
			for k := 0; k < rows; k++ {
				y[k] += cb * row[k]
			}
		}

		useBland := degenerate > 2*rows+20
		enter := -1
		var enterDir float64
		best := -costTol
		for j := 0; j < s.nTotal; j++ {
			if s.state[j] == basic {
				continue
			}
			if s.lo[j] == s.hi[j] && !math.IsInf(s.lo[j], 0) {
				continue
			}
			d := obj[j]
			for _, e := range s.cols[j] {
				d -= y[e.row] * e.val
			}
			var dir float64
			switch {
			case s.state[j] == atLower && d < -costTol:
				dir = 1
			case s.state[j] == atUpper && d > costTol:
				dir = -1
			case s.state[j] == atLower && math.IsInf(s.lo[j], -1) && d > costTol:
				dir = -1
			default:
				continue
			}
			score := -math.Abs(d) / colNorm[j]
			if useBland {
				enter = j
				enterDir = dir
				break
			}
			if score < best {
				best = score
				enter = j
				enterDir = dir
			}
		}
		if enter == -1 {
			return Optimal, iters
		}

		// w = Binv * A_enter
		for i := 0; i < rows; i++ {
			w[i] = 0
		}
		for _, e := range s.cols[enter] {
			v := e.val
			for i := 0; i < rows; i++ {
				w[i] += v * s.binv[i*rows+e.row]
			}
		}

		tMax := math.Inf(1)
		leave := -1
		leaveToUpper := false
		if !math.IsInf(s.lo[enter], -1) && !math.IsInf(s.hi[enter], 1) {
			tMax = s.hi[enter] - s.lo[enter]
		}
		for i := 0; i < rows; i++ {
			if math.Abs(w[i]) < pivotTol {
				continue
			}
			delta := -enterDir * w[i]
			var lim float64
			var toUpper bool
			if delta < 0 {
				if math.IsInf(s.lo[s.basis[i]], -1) {
					continue
				}
				lim = (s.xB[i] - s.lo[s.basis[i]]) / -delta
				toUpper = false
			} else {
				if math.IsInf(s.hi[s.basis[i]], 1) {
					continue
				}
				lim = (s.hi[s.basis[i]] - s.xB[i]) / delta
				toUpper = true
			}
			if lim < 0 {
				lim = 0
			}
			if lim < tMax {
				tMax = lim
				leave = i
				leaveToUpper = toUpper
			}
		}

		if math.IsInf(tMax, 1) {
			return Unbounded, iters
		}
		if tMax < feasTol {
			degenerate++
		} else {
			degenerate = 0
		}

		enterVal := s.xN[enter] + enterDir*tMax
		for i := 0; i < rows; i++ {
			s.xB[i] -= enterDir * tMax * w[i]
		}

		if leave == -1 {
			s.xN[enter] = enterVal
			if enterDir > 0 {
				s.state[enter] = atUpper
			} else {
				s.state[enter] = atLower
			}
			continue
		}

		out := s.basis[leave]
		s.inBasisRow[out] = -1
		if leaveToUpper {
			s.state[out] = atUpper
			s.xN[out] = s.hi[out]
		} else {
			s.state[out] = atLower
			s.xN[out] = s.lo[out]
		}
		s.basis[leave] = enter
		s.inBasisRow[enter] = leave
		s.state[enter] = basic
		s.xB[leave] = enterVal

		// Dense eta update of Binv.
		piv := w[leave]
		prow := s.binv[leave*rows : (leave+1)*rows]
		inv := 1 / piv
		for k := 0; k < rows; k++ {
			prow[k] *= inv
		}
		for i := 0; i < rows; i++ {
			if i == leave {
				continue
			}
			f := w[i]
			if f == 0 {
				continue
			}
			row := s.binv[i*rows : (i+1)*rows]
			for k := 0; k < rows; k++ {
				row[k] -= f * prow[k]
			}
		}
	}
	return IterLimit, iters
}
