package geom

import (
	"testing"
	"testing/quick"
)

func TestPointOps(t *testing.T) {
	p := Point{3, 4}
	q := Point{-1, 2}
	if got := p.Add(q); got != (Point{2, 6}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{4, 2}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.ManhattanDist(q); got != 6 {
		t.Errorf("ManhattanDist = %d, want 6", got)
	}
	if p.String() != "(3,4)" {
		t.Errorf("String = %q", p.String())
	}
}

func TestScalarHelpers(t *testing.T) {
	if Abs(-5) != 5 || Abs(5) != 5 || Abs(0) != 0 {
		t.Error("Abs broken")
	}
	if Min(2, 3) != 2 || Min(3, 2) != 2 {
		t.Error("Min broken")
	}
	if Max(2, 3) != 3 || Max(3, 2) != 3 {
		t.Error("Max broken")
	}
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Error("Clamp broken")
	}
}

func TestIntervalBasics(t *testing.T) {
	iv := Interval{2, 7}
	if iv.Empty() || iv.Len() != 5 {
		t.Fatalf("bad interval basics: %+v", iv)
	}
	if !iv.Contains(2) || iv.Contains(7) || !iv.Contains(6) {
		t.Error("Contains half-open semantics broken")
	}
	empty := Interval{5, 5}
	if !empty.Empty() || empty.Len() != 0 {
		t.Error("empty interval misreported")
	}
	inv := Interval{7, 2}
	if !inv.Empty() || inv.Len() != 0 {
		t.Error("inverted interval should be empty with zero length")
	}
}

func TestIntervalOverlap(t *testing.T) {
	cases := []struct {
		a, b Interval
		want int64
	}{
		{Interval{0, 10}, Interval{5, 15}, 5},
		{Interval{0, 10}, Interval{10, 20}, 0},
		{Interval{0, 10}, Interval{12, 20}, 0},
		{Interval{0, 10}, Interval{2, 4}, 2},
		{Interval{3, 3}, Interval{0, 10}, 0},
	}
	for _, c := range cases {
		if got := c.a.OverlapLen(c.b); got != c.want {
			t.Errorf("OverlapLen(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := c.b.OverlapLen(c.a); got != c.want {
			t.Errorf("OverlapLen not symmetric for %v,%v", c.a, c.b)
		}
		if (c.want > 0) != c.a.Overlaps(c.b) {
			t.Errorf("Overlaps(%v,%v) inconsistent with OverlapLen", c.a, c.b)
		}
	}
}

func TestIntervalUnionShift(t *testing.T) {
	a := Interval{0, 4}
	b := Interval{10, 12}
	u := a.Union(b)
	if u != (Interval{0, 12}) {
		t.Errorf("Union = %v", u)
	}
	if a.Union(Interval{5, 5}) != a {
		t.Error("Union with empty should be identity")
	}
	if (Interval{5, 5}).Union(a) != a {
		t.Error("Union of empty with a should be a")
	}
	if a.Shift(3) != (Interval{3, 7}) {
		t.Error("Shift broken")
	}
}

func TestRectBasics(t *testing.T) {
	r := Rect{0, 0, 10, 5}
	if r.Empty() || r.W() != 10 || r.H() != 5 || r.Area() != 50 || r.HalfPerim() != 15 {
		t.Fatalf("bad rect basics: %+v", r)
	}
	if !r.Contains(Point{0, 0}) || r.Contains(Point{10, 0}) || r.Contains(Point{0, 5}) {
		t.Error("Contains half-open semantics broken")
	}
	if r.Center() != (Point{5, 2}) {
		t.Errorf("Center = %v", r.Center())
	}
	if (Rect{3, 3, 3, 9}).Empty() != true {
		t.Error("zero-width rect should be empty")
	}
}

func TestRectFromPoints(t *testing.T) {
	r := RectFromPoints(Point{5, 1}, Point{2, 8})
	if r != (Rect{2, 1, 5, 8}) {
		t.Errorf("RectFromPoints = %v", r)
	}
}

func TestRectIntersectUnion(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	b := Rect{5, 5, 15, 15}
	got := a.Intersect(b)
	if got != (Rect{5, 5, 10, 10}) {
		t.Errorf("Intersect = %v", got)
	}
	if !a.Overlaps(b) {
		t.Error("Overlaps should be true")
	}
	c := Rect{10, 0, 20, 10}
	if a.Overlaps(c) {
		t.Error("touching rects do not overlap (half-open)")
	}
	if u := a.Union(b); u != (Rect{0, 0, 15, 15}) {
		t.Errorf("Union = %v", u)
	}
	if u := a.Union(Rect{}); u != a {
		t.Error("Union with empty should be identity")
	}
	if u := (Rect{}).Union(a); u != a {
		t.Error("Union of empty with a should be a")
	}
}

func TestRectContainsRect(t *testing.T) {
	outer := Rect{0, 0, 10, 10}
	if !outer.ContainsRect(Rect{2, 2, 8, 8}) {
		t.Error("inner rect should be contained")
	}
	if outer.ContainsRect(Rect{2, 2, 11, 8}) {
		t.Error("overhanging rect should not be contained")
	}
	if !outer.ContainsRect(Rect{}) {
		t.Error("empty rect is vacuously contained")
	}
}

func TestRectShiftSpans(t *testing.T) {
	r := Rect{1, 2, 3, 4}
	if r.Shift(10, 20) != (Rect{11, 22, 13, 24}) {
		t.Error("Shift broken")
	}
	if r.XSpan() != (Interval{1, 3}) || r.YSpan() != (Interval{2, 4}) {
		t.Error("spans broken")
	}
}

func TestBBox(t *testing.T) {
	var b BBox
	if b.Valid() || b.HalfPerim() != 0 {
		t.Error("zero BBox should be invalid with zero HPWL")
	}
	b.Add(Point{3, 4})
	if !b.Valid() || b.HalfPerim() != 0 {
		t.Error("single-point box should have zero HPWL")
	}
	b.Add(Point{-1, 10})
	if b.HalfPerim() != 4+6 {
		t.Errorf("HalfPerim = %d, want 10", b.HalfPerim())
	}
	r := b.Rect()
	if r != (Rect{-1, 4, 3, 10}) {
		t.Errorf("Rect = %v", r)
	}
}

// Property: OverlapLen is symmetric, bounded by either length, and agrees
// with a brute-force count over a small domain.
func TestIntervalOverlapQuick(t *testing.T) {
	f := func(a, b, c, d int8) bool {
		iv1 := Interval{int64(Min(int64(a), int64(b))), int64(Max(int64(a), int64(b)))}
		iv2 := Interval{int64(Min(int64(c), int64(d))), int64(Max(int64(c), int64(d)))}
		got := iv1.OverlapLen(iv2)
		if got != iv2.OverlapLen(iv1) {
			return false
		}
		if got > iv1.Len() || got > iv2.Len() {
			return false
		}
		// brute force over integer points
		var n int64
		for x := int64(-128); x < 128; x++ {
			if iv1.Contains(x) && iv2.Contains(x) {
				n++
			}
		}
		return n == got
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Manhattan distance is a metric (symmetry, identity, triangle
// inequality) on a bounded domain.
func TestManhattanMetricQuick(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int16) bool {
		a := Point{int64(ax), int64(ay)}
		b := Point{int64(bx), int64(by)}
		c := Point{int64(cx), int64(cy)}
		if a.ManhattanDist(b) != b.ManhattanDist(a) {
			return false
		}
		if a.ManhattanDist(a) != 0 {
			return false
		}
		return a.ManhattanDist(c) <= a.ManhattanDist(b)+b.ManhattanDist(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Rect intersection is commutative and contained in both inputs.
func TestRectIntersectQuick(t *testing.T) {
	f := func(a1, a2, a3, a4, b1, b2, b3, b4 int8) bool {
		a := RectFromPoints(Point{int64(a1), int64(a2)}, Point{int64(a3), int64(a4)})
		b := RectFromPoints(Point{int64(b1), int64(b2)}, Point{int64(b3), int64(b4)})
		i1 := a.Intersect(b)
		i2 := b.Intersect(a)
		if !i1.Empty() || !i2.Empty() {
			if i1 != i2 {
				return false
			}
			if !a.ContainsRect(i1) || !b.ContainsRect(i1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: BBox half-perimeter equals max-minus-min reduction computed
// independently.
func TestBBoxQuick(t *testing.T) {
	f := func(xs, ys []int16) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		if n == 0 {
			return true
		}
		var b BBox
		xlo, xhi := int64(xs[0]), int64(xs[0])
		ylo, yhi := int64(ys[0]), int64(ys[0])
		for i := 0; i < n; i++ {
			x, y := int64(xs[i]), int64(ys[i])
			b.Add(Point{x, y})
			xlo, xhi = Min(xlo, x), Max(xhi, x)
			ylo, yhi = Min(ylo, y), Max(yhi, y)
		}
		return b.HalfPerim() == (xhi-xlo)+(yhi-ylo)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
