// Package route implements the multi-layer grid router that stands in for
// the commercial (Innovus) router of the DAC'17 paper. It is the component
// whose *response to vertical pin alignment* produces the paper's headline
// metrics: direct vertical M1 routes (dM1), routed wirelength (RWL), via12
// counts and congestion-driven DRVs.
//
// The routing fabric is a 3-D grid: one node per (layer, site-column, row)
// with preferred-direction edges (M1/M3 vertical, M2/M4 horizontal) and
// vias between adjacent layers. Nets are routed pin-by-pin onto their
// growing route tree with A* search; a short negotiated-congestion loop
// rips up and reroutes nets through overflowed edges. Key
// architecture-specific behaviours:
//
//   - ClosedM1: pins are M1 nodes; foreign M1 pins block M1 traversal, so
//     inter-row M1 routing exists only where tracks are clear and pins
//     align — exactly the regime the paper's optimizer targets.
//   - OpenM1: pins are M0 shapes reached from any M1 node above their
//     x-extent for a via01 cost; M1 is otherwise open.
//   - Conventional: M1 carries rails/pins only; routing starts at M2.
//
// A connection routed as a single vertical M1 segment between two pin
// nodes spanning at most γ rows is counted as a direct vertical M1 route.
package route

import (
	"vm1place/internal/layout"
	"vm1place/internal/netlist"
	"vm1place/internal/tech"
)

// Config tunes the router.
type Config struct {
	// Caps is the per-layer routing capacity of one grid edge (tracks).
	Caps [tech.NumLayers]int
	// ViaCost is the cost of one layer change, in DBU-equivalent units.
	ViaCost int64
	// M1CostFactor scales M1 edge cost; < 1 makes the router prefer
	// direct vertical M1 where geometry permits (the dM1-aware mode).
	M1CostFactor float64
	// Gamma is the maximum dM1 span in rows (from tech).
	Gamma int
	// RipupIters is the number of congestion-negotiation passes after the
	// initial routing pass.
	RipupIters int
	// CongWeight scales the per-overflow cost penalty; it is further
	// multiplied by the pass number during rip-up.
	CongWeight float64
	// SearchMargin pads each connection's search bounding box, in grid
	// cells.
	SearchMargin int
	// M1Routable disables M1 inter-cell routing (Conventional libraries).
	M1Routable bool
	// Arch selects pin-access behaviour.
	Arch tech.Arch
}

// DefaultConfig returns the router configuration for an architecture.
func DefaultConfig(t *tech.Tech, arch tech.Arch) Config {
	cfg := Config{
		ViaCost:      t.ViaCost,
		M1CostFactor: 0.3,
		Gamma:        t.Gamma,
		RipupIters:   2,
		CongWeight:   4.0,
		SearchMargin: 12,
		M1Routable:   arch != tech.Conventional,
		Arch:         arch,
	}
	cfg.Caps[tech.M1] = 1
	cfg.Caps[tech.M2] = 3
	cfg.Caps[tech.M3] = 2
	cfg.Caps[tech.M4] = 3
	return cfg
}

// Metrics summarizes one routing of the design.
type Metrics struct {
	// RWL is total routed wirelength in DBU (all layers).
	RWL int64
	// LayerWL is per-layer wirelength in DBU.
	LayerWL [tech.NumLayers]int64
	// Via01/Via12/Via23/Via34 count vias by layer pair.
	Via01, Via12, Via23, Via34 int
	// DM1 is the number of direct vertical M1 routes (single M1 segment
	// pin-to-pin connections spanning <= Gamma rows).
	DM1 int
	// M1Segs is the number of distinct M1 route segments.
	M1Segs int
	// Overflow is the total edge overflow (Σ max(0, usage-cap)), the DRV
	// proxy.
	Overflow int
	// FailedConns counts connections the router could not complete.
	FailedConns int
}

// Router routes one placement. It retains per-net routes so callers can
// inspect them; RouteAll may be called repeatedly (e.g., after placement
// changes) and starts from a clean slate each time.
type Router struct {
	cfg Config
	p   *layout.Placement
	t   *tech.Tech

	nx, ny int // grid: site columns x rows

	// Edge usage per layer. Vertical layers use index y*nx+x for the edge
	// (x,y)-(x,y+1); horizontal layers use y*(nx-1)+x for (x,y)-(x+1,y).
	usage [tech.NumLayers][]int32

	// blockedM1[x*ny+y] = net index + 1 of the ClosedM1 pin occupying the
	// M1 track node, or 0.
	blockedM1 []int32

	// A* scratch, generation-stamped.
	gen      int32
	visGen   []int32
	gCost    []float64
	cameFrom []int32

	// routes holds the current route of each net.
	routes map[int]*netRoute

	metrics Metrics
}

// New creates a router over the placement.
func New(p *layout.Placement, cfg Config) *Router {
	r := &Router{
		cfg: cfg,
		p:   p,
		t:   p.Tech,
		nx:  p.NumSites,
		ny:  p.NumRows,
	}
	n := r.nx * r.ny
	for l := tech.M1; l <= tech.M4; l++ {
		r.usage[l] = make([]int32, n)
	}
	size := int(tech.NumLayers) * n
	r.visGen = make([]int32, size)
	r.gCost = make([]float64, size)
	r.cameFrom = make([]int32, size)
	r.blockedM1 = make([]int32, n)
	r.routes = make(map[int]*netRoute)
	return r
}

// node encoding: idx = (layer*ny + y)*nx + x.
func (r *Router) nodeID(l tech.Layer, x, y int) int32 {
	return int32((int(l)*r.ny+y)*r.nx + x)
}

func (r *Router) nodeOf(id int32) (l tech.Layer, x, y int) {
	x = int(id) % r.nx
	rest := int(id) / r.nx
	y = rest % r.ny
	l = tech.Layer(rest / r.ny)
	return l, x, y
}

// vEdge returns the usage index of the vertical edge (x,y)-(x,y+1).
func (r *Router) vEdge(x, y int) int { return y*r.nx + x }

// hEdge returns the usage index of the horizontal edge (x,y)-(x+1,y).
func (r *Router) hEdge(x, y int) int { return y*(r.nx-1) + x }

// accessPoint is one grid node from which a pin can be reached.
type accessPoint struct {
	node    int32
	viaCost int64 // cost of dropping from the node into the pin (e.g. V01)
}

// pinAccess returns the access points of a connection's pin.
func (r *Router) pinAccess(c netlist.Conn) []accessPoint {
	shape := r.p.PinShape(c)
	row := r.p.Row[c.Inst]
	clampX := func(x int) int {
		if x < 0 {
			return 0
		}
		if x >= r.nx {
			return r.nx - 1
		}
		return x
	}
	switch r.cfg.Arch {
	case tech.ClosedM1:
		cx := (shape.Rect.XLo + shape.Rect.XHi) / 2
		x := clampX(r.t.XToSite(cx))
		return []accessPoint{{node: r.nodeID(tech.M1, x, row), viaCost: 0}}
	case tech.OpenM1:
		lo := clampX(r.t.XToSite(shape.Rect.XLo))
		hi := clampX(r.t.XToSite(shape.Rect.XHi - 1))
		pts := make([]accessPoint, 0, hi-lo+1)
		for x := lo; x <= hi; x++ {
			pts = append(pts, accessPoint{node: r.nodeID(tech.M1, x, row), viaCost: r.cfg.ViaCost})
		}
		return pts
	default: // Conventional: access from M2 above the pin center.
		cx := (shape.Rect.XLo + shape.Rect.XHi) / 2
		x := clampX(r.t.XToSite(cx))
		return []accessPoint{{node: r.nodeID(tech.M2, x, row), viaCost: r.cfg.ViaCost}}
	}
}

// portAccess returns the access point for a port.
func (r *Router) portAccess(pi int) accessPoint {
	pt := r.p.PortXY[pi]
	x := r.t.XToSite(pt.X)
	y := r.t.YToRow(pt.Y)
	if x < 0 {
		x = 0
	}
	if x >= r.nx {
		x = r.nx - 1
	}
	if y < 0 {
		y = 0
	}
	if y >= r.ny {
		y = r.ny - 1
	}
	return accessPoint{node: r.nodeID(tech.M2, x, y), viaCost: 0}
}

// buildBlockage records ClosedM1 pin blockages (foreign pins block M1).
func (r *Router) buildBlockage() {
	for i := range r.blockedM1 {
		r.blockedM1[i] = 0
	}
	if r.cfg.Arch != tech.ClosedM1 {
		return
	}
	d := r.p.Design
	for ii := range d.Insts {
		m := d.Insts[ii].Master
		row := r.p.Row[ii]
		for pi := range m.Pins {
			p := &m.Pins[pi]
			if !p.IsSignal() {
				continue
			}
			ni := d.Insts[ii].PinNets[pi]
			shape := r.p.PinShape(netlist.Conn{Inst: ii, Pin: pi})
			cx := (shape.Rect.XLo + shape.Rect.XHi) / 2
			x := r.t.XToSite(cx)
			if x < 0 || x >= r.nx {
				continue
			}
			r.blockedM1[r.blockIdx(x, row)] = int32(ni + 1)
		}
	}
}

func (r *Router) blockIdx(x, y int) int { return y*r.nx + x }

// Metrics returns the metrics of the last RouteAll.
func (r *Router) Metrics() Metrics { return r.metrics }
