package core

import (
	"testing"
	"time"

	"vm1place/internal/geom"
	"vm1place/internal/proxy"
	"vm1place/internal/tech"
)

// fakeScorer is a deterministic WindowScorer whose score is a pure
// function of window geometry, letting plan construction be tested
// without the proxy package.
type fakeScorer struct {
	score func(r geom.Rect) float64
}

func (f *fakeScorer) WindowScore(r geom.Rect) float64 { return f.score(r) }
func (f *fakeScorer) Update([]int)                    {}

// diagFamilies mirrors the family enumeration in distPass: diagonal
// families with (wi - wj) congruent mod max(nwx, nwy).
func diagFamilies(g passGrid) [][]int {
	d := g.nwx
	if g.nwy > d {
		d = g.nwy
	}
	var families [][]int
	for f := 0; f < d; f++ {
		var fam []int
		for wj := 0; wj < g.nwy; wj++ {
			for wi := 0; wi < g.nwx; wi++ {
				if ((wi-wj)%d+d)%d == f {
					fam = append(fam, wj*g.nwx+wi)
				}
			}
		}
		if len(fam) > 0 {
			families = append(families, fam)
		}
	}
	return families
}

func planFixture(t *testing.T) (passGrid, [][]int, Params) {
	t.Helper()
	p := genPlaced(t, tech.ClosedM1, 300, 37, 0.75)
	prm := DefaultParams(p.Tech, tech.ClosedM1)
	g := makeGrid(p, ParamSet{BW: 2000, BH: 2000, LX: 3, LY: 1}, 0, 0)
	families := diagFamilies(g)
	if len(families) < 2 {
		t.Fatalf("need >=2 families to test ordering, got %d", len(families))
	}
	return g, families, prm
}

// TestGuidedPlanOrdering checks the plan construction rules: hottest
// family first, flat scores keep diagonal order via the index tie-break,
// all-zero scores fall back to the uniform plan, and per-family budgets
// stay within [uniform, boost-cap x uniform].
func TestGuidedPlanOrdering(t *testing.T) {
	g, families, prm := planFixture(t)
	prm.Guided = true

	// Score by leftmost window x: families covering lower x rank hotter.
	sc := &fakeScorer{score: func(r geom.Rect) float64 {
		return 1e9 - float64(r.XLo)
	}}
	prm.Proxy = sc
	tl := 80 * time.Millisecond
	plan := guidedPlan(prm, sc, g, families, tl)

	if len(plan.order) == 0 || len(plan.order) > len(families) {
		t.Fatalf("plan order has %d entries for %d families", len(plan.order), len(families))
	}
	seen := map[int]bool{}
	for _, fi := range plan.order {
		if fi < 0 || fi >= len(families) || seen[fi] {
			t.Fatalf("plan order invalid or duplicated: %v", plan.order)
		}
		seen[fi] = true
	}
	// Per-window budgets stay within [shrink, boost-cap] x the uniform
	// slice, and a window scoring at the maximum gets exactly the cap.
	shrink := prm.guidedShrink()
	bc := prm.guidedBoostCap()
	lo := time.Duration(float64(tl)*shrink) - time.Microsecond
	hi := time.Duration(float64(tl)*bc) + time.Microsecond
	for wi, wtl := range plan.wtl {
		if wtl < lo || wtl > hi {
			t.Fatalf("window %d budget %v outside [%v x %v, %v x %v]", wi, wtl, shrink, tl, bc, tl)
		}
	}

	// Untimed passes must stay untimed: skipping is the only lever.
	up := guidedPlan(prm, sc, g, families, 0)
	for wi, wtl := range up.wtl {
		if wtl != 0 {
			t.Fatalf("untimed run gained a budget: window %d got %v", wi, wtl)
		}
	}

	// A scorer that marks everything equally hot must keep every family
	// and order them by index (tie-break).
	flat := &fakeScorer{score: func(geom.Rect) float64 { return 1 }}
	prm.Proxy = flat
	fp := guidedPlan(prm, flat, g, families, tl)
	if len(fp.order) != len(families) {
		t.Fatalf("flat scores dropped families: kept %d of %d", len(fp.order), len(families))
	}
	for i, fi := range fp.order {
		if fi != i {
			t.Fatalf("flat scores must keep index order, got %v", fp.order)
		}
	}

	// All-zero scores fall back to the uniform plan.
	zero := &fakeScorer{score: func(geom.Rect) float64 { return 0 }}
	prm.Proxy = zero
	zp := guidedPlan(prm, zero, g, families, tl)
	if len(zp.order) != len(families) {
		t.Fatalf("zero scores must keep all families, kept %d", len(zp.order))
	}
	for wi, wtl := range zp.wtl {
		if wtl != tl {
			t.Fatalf("zero scores must keep uniform budgets, window %d got %v", wi, wtl)
		}
	}
}

// TestGuidedPlanSkipsCold checks the cold cutoff: families scoring below
// GuidedColdFrac of the maximum are excluded from the plan, and the
// hottest family always survives.
func TestGuidedPlanSkipsCold(t *testing.T) {
	g, families, prm := planFixture(t)
	prm.Guided = true
	prm.GuidedColdFrac = 0.5

	// One window hot, the rest stone cold: only the family containing it
	// can clear a 50% cutoff.
	hot := g.rects[families[0][0]]
	sc := &fakeScorer{score: func(r geom.Rect) float64 {
		if r == hot {
			return 100
		}
		return 0.01
	}}
	prm.Proxy = sc
	plan := guidedPlan(prm, sc, g, families, time.Second)
	if len(plan.order) >= len(families) {
		t.Fatalf("cold cutoff 0.5 kept all %d families", len(families))
	}
	kept := map[int]bool{}
	for _, fi := range plan.order {
		kept[fi] = true
	}
	if !kept[0] {
		t.Fatalf("hottest family was skipped: order %v", plan.order)
	}
}

// TestGuidedWorkersInvariance is the determinism claim from the issue:
// guided selection must produce bit-identical placements for every
// Workers count, because the plan is a pure function of the placement.
// Untimed so per-family budgets cannot truncate work nondeterministically.
func TestGuidedWorkersInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several full optimizer passes")
	}
	type snap struct {
		site []int
		row  []int
		flip []bool
		res  Result
	}
	run := func(workers int) snap {
		// Sized to stay affordable under -race (the full core suite must
		// fit the make-race budget): two worker counts, a 200-cell design
		// and a small node cap still exercise every guided code path.
		p := genPlaced(t, tech.ClosedM1, 200, 29, 0.75)
		prm := DefaultParams(p.Tech, tech.ClosedM1)
		prm.Workers = workers
		prm.MaxNodes = 25
		prm.TimeLimit = 0
		prm.MaxOuterIters = 1
		prm.Guided = true
		prm.Proxy = proxy.New(p, proxy.DefaultConfig(p.Tech, tech.ClosedM1))
		res := VM1Opt(p, prm, Sequence{{BW: 2000, BH: 2000, LX: 3, LY: 1}})
		return snap{
			site: append([]int(nil), p.SiteX...),
			row:  append([]int(nil), p.Row...),
			flip: append([]bool(nil), p.Flip...),
			res:  res,
		}
	}
	base := run(1)
	for _, w := range []int{4} {
		got := run(w)
		if got.res.Final != base.res.Final {
			t.Fatalf("Workers=%d guided final objective diverged:\n got %+v\nwant %+v",
				w, got.res.Final, base.res.Final)
		}
		for i := range base.site {
			if got.site[i] != base.site[i] || got.row[i] != base.row[i] ||
				got.flip[i] != base.flip[i] {
				t.Fatalf("Workers=%d guided placement diverged at inst %d", w, i)
			}
		}
	}
}

// TestGuidedTrackerFeedsEstimator checks the incremental loop: the
// tracker forwards every ApplyMoves batch to the attached estimator, so
// after a full guided run the estimator state must still match a fresh
// rebuild over the final placement.
func TestGuidedTrackerFeedsEstimator(t *testing.T) {
	p := genPlaced(t, tech.ClosedM1, 200, 41, 0.75)
	prm := DefaultParams(p.Tech, tech.ClosedM1)
	est := proxy.New(p, proxy.DefaultConfig(p.Tech, tech.ClosedM1))
	prm.Guided = true
	prm.Proxy = est
	prm.MaxNodes = 25
	prm.TimeLimit = 0
	prm.MaxOuterIters = 1
	VM1Opt(p, prm, Sequence{{BW: 2000, BH: 2000, LX: 3, LY: 1}})
	if err := est.Check(); err != nil {
		t.Fatalf("estimator diverged from placement after guided pass: %v", err)
	}
}
