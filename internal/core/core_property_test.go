package core

import (
	"math/rand"
	"testing"

	"vm1place/internal/cells"
	"vm1place/internal/layout"
	"vm1place/internal/tech"
)

// TestWindowObjectiveMatchesGlobalDelta: for a single whole-die window,
// the window objective delta between two assignments equals the global
// CalculateObj delta (no fixed-terminal approximation error is possible).
func TestWindowObjectiveMatchesGlobalDelta(t *testing.T) {
	p := genPlaced(t, tech.ClosedM1, 120, 61, 0.6)
	prm := DefaultParams(p.Tech, tech.ClosedM1)
	ps := ParamSet{BW: p.DieWidth(), BH: p.DieHeight(), LX: 2, LY: 1}
	all := make([]int, len(p.Design.Insts))
	for i := range all {
		all[i] = i
	}
	w := buildWindow(p, prm, p.DieRect(), ps, all, true, false)
	if len(w.movable) != len(p.Design.Insts) {
		t.Fatalf("whole-die window must hold every cell (%d vs %d)",
			len(w.movable), len(p.Design.Insts))
	}

	globalOf := func(assign []int) float64 {
		q := p.Clone()
		for ci, inst := range w.movable {
			cd := w.cand[ci][assign[ci]]
			q.SetLoc(inst, cd.site, cd.row, cd.flip)
		}
		return CalculateObj(q, prm).Value
	}

	rng := rand.New(rand.NewSource(7))
	base := append([]int(nil), w.curCand...)
	for trial := 0; trial < 20; trial++ {
		alt := append([]int(nil), base...)
		// Random feasible single-cell change.
		ci := rng.Intn(len(w.movable))
		alt[ci] = rng.Intn(len(w.cand[ci]))
		if !w.feasibleAssign(alt) {
			continue
		}
		dWin := w.objective(alt) - w.objective(base)
		dGlobal := globalOf(alt) - globalOf(base)
		if diff := dWin - dGlobal; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("trial %d: window delta %f != global delta %f", trial, dWin, dGlobal)
		}
	}
}

// TestRepairAlwaysFeasible: the rounder's repair produces occupancy-free
// assignments from arbitrary fractional starting points.
func TestRepairAlwaysFeasible(t *testing.T) {
	p := genPlaced(t, tech.ClosedM1, 300, 62, 0.8)
	prm := DefaultParams(p.Tech, tech.ClosedM1)
	ps := ParamSet{BW: 2000, BH: 2000, LX: 3, LY: 1}
	rects, nwx, nwy := partition(p, ps, 0, 0)
	buckets := bucketInsts(p, ps, 0, 0, nwx, nwy)
	rng := rand.New(rand.NewSource(8))
	for wi, rect := range rects {
		w := buildWindow(p, prm, rect, ps, buckets[wi], true, false)
		if len(w.movable) == 0 {
			continue
		}
		m, _, lambda, _ := w.buildModel()
		for trial := 0; trial < 5; trial++ {
			// Random fractional x and a random (possibly conflicting)
			// assignment decoded from it.
			x := make([]float64, m.NumVars())
			assign := make([]int, len(w.movable))
			for ci := range w.movable {
				assign[ci] = rng.Intn(len(w.cand[ci]))
				for k := range w.cand[ci] {
					x[lambda[ci][k]] = rng.Float64()
				}
			}
			if w.repair(assign, x, lambda) {
				if !w.feasibleAssign(assign) {
					t.Fatalf("window %d: repair returned infeasible assignment", wi)
				}
			}
		}
	}
}

// TestJointModePreservesLegality: the joint move+flip ablation variant
// keeps placements legal and does not worsen the objective.
func TestJointModePreservesLegality(t *testing.T) {
	p := genPlaced(t, tech.ClosedM1, 400, 63, 0.75)
	prm := DefaultParams(p.Tech, tech.ClosedM1)
	prm.MaxNodes = 60
	prm.MaxOuterIters = 1
	res := VM1OptJoint(p, prm, Sequence{{BW: 2000, BH: 2000, LX: 2, LY: 1}})
	if err := p.CheckLegal(); err != nil {
		t.Fatalf("illegal after joint VM1Opt: %v", err)
	}
	if res.Final.Value > res.Initial.Value {
		t.Errorf("joint mode worsened objective: %f -> %f",
			res.Initial.Value, res.Final.Value)
	}
}

// TestOpenM1OverlapSumNonNegative: the overlap surplus accounting never
// goes negative under optimization.
func TestOpenM1OverlapSumNonNegative(t *testing.T) {
	p := genPlaced(t, tech.OpenM1, 300, 64, 0.75)
	prm := DefaultParams(p.Tech, tech.OpenM1)
	prm.MaxNodes = 40
	prm.MaxOuterIters = 1
	res := VM1Opt(p, prm, Sequence{{BW: 2000, BH: 2000, LX: 2, LY: 1}})
	if res.Initial.OverlapSum < 0 || res.Final.OverlapSum < 0 {
		t.Errorf("negative overlap sum: %+v", res)
	}
	for _, h := range res.History {
		if h.OverlapSum < 0 {
			t.Errorf("negative overlap sum in history: %+v", h)
		}
	}
}

// TestParamsAlignGamma: the architecture-dependent defaulting of the
// alignment window (paper Constraint 4 vs 12).
func TestParamsAlignGamma(t *testing.T) {
	tc := tech.Default()
	closed := DefaultParams(tc, tech.ClosedM1)
	open := DefaultParams(tc, tech.OpenM1)
	if closed.alignGamma() != 1 {
		t.Errorf("ClosedM1 align window = %d, want 1", closed.alignGamma())
	}
	if open.alignGamma() != tc.Gamma {
		t.Errorf("OpenM1 align window = %d, want %d", open.alignGamma(), tc.Gamma)
	}
	var zero Params
	zero.Arch = tech.OpenM1
	zero.GammaRows = 2
	if zero.alignGamma() != 2 {
		t.Errorf("zero-value OpenM1 align window = %d, want 2", zero.alignGamma())
	}
}

// TestPinDensityCandidateCosts: with a positive weight, candidates that
// land in pin-crowded columns cost more than candidates in empty columns,
// and staying put is not penalized by the cell's own pins.
func TestPinDensityCandidateCosts(t *testing.T) {
	tc := tech.Default()
	lib := cells.MustNewLibrary(tc, tech.ClosedM1)
	m := newManual(lib)
	u0 := m.addInst("INV_X1") // the cell under test
	u1 := m.addInst("INV_X1") // crowd
	u2 := m.addInst("INV_X1") // crowd
	m.connect(u0, "ZN", [2]interface{}{u1, "A"})
	m.connect(u1, "ZN", [2]interface{}{u2, "A"})
	m.tieOff()
	p := layout.MustNewFloorplan(tc, m.d, 0.05)
	p.SpreadEven()
	// u0 alone at the left of row 0; u1/u2 stacked near site 6.
	p.SetLoc(u0, 0, 0, false)
	p.SetLoc(u1, 6, 1, false)
	p.SetLoc(u2, 6, 2, false)

	prm := DefaultParams(tc, tech.ClosedM1)
	prm.PinDensityWeight = 10
	ps := ParamSet{BW: p.DieWidth(), BH: p.DieHeight(), LX: 6, LY: 0}
	w := buildWindow(p, prm, p.DieRect(), ps, []int{u0, u1, u2}, true, false)

	ci := w.cellOf(u0)
	if ci < 0 {
		t.Fatal("u0 not movable")
	}
	var costAt0, costAt6 float64
	found0, found6 := false, false
	for k, cd := range w.cand[ci] {
		if cd.row != 0 {
			continue
		}
		switch cd.site {
		case 0:
			costAt0, found0 = w.candCost[ci][k], true
		case 6:
			costAt6, found6 = w.candCost[ci][k], true
		}
	}
	if !found0 || !found6 {
		t.Fatal("expected candidates at sites 0 and 6")
	}
	if costAt0 != 0 {
		t.Errorf("staying in an empty region costs %f, want 0 (own pins excluded)", costAt0)
	}
	if costAt6 <= costAt0 {
		t.Errorf("crowded column cost %f not above empty column cost %f", costAt6, costAt0)
	}
}

// TestPinDensityZeroWeightIsNeutral: zero weight must leave candCost at
// zero and not perturb the default objective.
func TestPinDensityZeroWeightIsNeutral(t *testing.T) {
	p := genPlaced(t, tech.ClosedM1, 150, 66, 0.6)
	prm := DefaultParams(p.Tech, tech.ClosedM1)
	ps := ParamSet{BW: 2000, BH: 2000, LX: 2, LY: 1}
	all := make([]int, len(p.Design.Insts))
	for i := range all {
		all[i] = i
	}
	w := buildWindow(p, prm, p.DieRect(), ps, all, true, false)
	for ci := range w.candCost {
		for _, c := range w.candCost[ci] {
			if c != 0 {
				t.Fatal("nonzero candidate cost with zero weight")
			}
		}
	}
}
