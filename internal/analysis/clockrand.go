package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ClockRandAnalyzer confines wall-clock reads and global randomness to
// the packages that legitimately own them, so no new nondeterminism
// leaks into the kernels whose outputs the paper's tables depend on.
//
// Allowed without tags:
//
//   - lp and milp (simplex/branch-and-bound deadlines),
//   - flow and expt (stage and flow wall timings),
//   - everything outside internal/ (cmd/ binaries, examples).
//
// Everywhere else under internal/, time.Now/Since/Until/After/Tick and
// the timer constructors are flagged, as is any use of math/rand's
// global source (rand.Intn, rand.Shuffle, ...). Seeded generators via
// rand.New(rand.NewSource(seed)) are always fine — that is the
// reproducible idiom netlist generation already uses. Legitimate
// stragglers (e.g. core's Result.Duration stamp, which reports wall time
// but never feeds a decision) carry `// clock-ok: <reason>`.
//
// internal/proxy sits deliberately in the deny set: its window scores
// decide which families guided DistOpt runs, so any clock or global-rand
// read there would break the plan's pure-function-of-placement guarantee
// (see internal/core/guided.go).
var ClockRandAnalyzer = &Analyzer{
	Name: "clockrand",
	Doc:  "confines wall-clock and global math/rand usage to deadline/timing packages",
	Tag:  "clock-ok",
	Run:  runClockRand,
}

// clockAllowedPrefixes are the internal packages that own deadlines and
// timings. internal/shard — like internal/proxy above — is deliberately
// NOT listed: the stripe partition must be a pure function of the grid
// and loads, so any clock/rand read there is a determinism bug.
var clockAllowedPrefixes = []string{
	"vm1place/internal/lp",
	"vm1place/internal/milp",
	"vm1place/internal/flow",
	"vm1place/internal/expt",
}

func clockAllowed(path string) bool {
	if !isInternalPkg(path) {
		return true
	}
	for _, p := range clockAllowedPrefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// wallClockFuncs are the time package functions that read the wall clock
// or start wall-clock timers.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"Tick": true, "NewTicker": true, "NewTimer": true, "AfterFunc": true,
}

// randCtorFuncs are the math/rand constructors that build explicit,
// seedable generators — the deterministic idiom, always allowed.
var randCtorFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

func runClockRand(pass *Pass) error {
	if clockAllowed(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			// Only package-level selections (time.Now), not method calls
			// on values (rng.Intn is the deterministic idiom).
			if _, isPkg := pass.TypesInfo.Uses[rootIdent(sel.X)].(*types.PkgName); !isPkg {
				return true
			}
			switch obj.Pkg().Path() {
			case "time":
				if wallClockFuncs[obj.Name()] {
					pass.Reportf(sel.Pos(), "time.%s in deterministic package: wall clock must not influence results; move to a deadline-owning layer or tag // clock-ok:", obj.Name())
				}
			case "math/rand", "math/rand/v2":
				if !randCtorFuncs[obj.Name()] {
					pass.Reportf(sel.Pos(), "global math/rand source (rand.%s) in deterministic package: use a seeded rand.New(rand.NewSource(seed))", obj.Name())
				}
			}
			return true
		})
	}
	return nil
}
