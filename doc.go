// Package vm1place is a from-scratch Go reproduction of "Vertical M1
// Routing-Aware Detailed Placement for Congestion and Wirelength Reduction
// in Sub-10nm Nodes" (Debacker, Han, Kahng, Lee, Raghavan, Wang — DAC
// 2017).
//
// The repository contains the paper's MILP-based detailed placement
// optimizer (internal/core) together with every substrate the published
// flow depends on, reimplemented in pure Go: a bounded-variable simplex LP
// solver and branch-and-bound MILP engine (internal/lp, internal/milp,
// replacing CPLEX), synthetic ClosedM1/OpenM1 7.5-track cell libraries
// (internal/cells), a netlist generator (internal/netlist), a placement
// database and legalizer (internal/layout, internal/place), a multi-layer
// dM1-aware grid router with congestion modelling (internal/route), static
// timing and power analysis (internal/sta), LEF/DEF I/O (internal/lefdef)
// and an experiment harness regenerating every table and figure of the
// paper's evaluation (internal/expt).
//
// See README.md for a tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
package vm1place
