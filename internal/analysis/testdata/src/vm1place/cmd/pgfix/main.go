// Command pgfix is the panicguard negative fixture: os.Exit and panic at
// the cmd/ edge are the sanctioned pattern and must not be flagged.
package main

import "os"

func main() {
	if len(os.Args) > 1 {
		panic("cmd panics are not the guard's business")
	}
	os.Exit(1)
}
