package proxy

import (
	"slices"

	"vm1place/internal/geom"
)

// Calibration clamps: a region's multiplier stays within
// [1/alphaClamp, alphaClamp] of neutral so one noisy route pass cannot
// blind the estimator to (or fixate it on) a region.
const alphaClamp = 4.0

// tileOver returns tile t's predicted overflow in demandScale units:
// horizontal demand past horizontal capacity plus vertical demand —
// including the pin-access load — past vertical capacity.
func (e *Estimator) tileOver(t int) int64 {
	over := int64(0)
	if d := e.hDem[t] - e.hCap[t]; d > 0 {
		over += d
	}
	pinLoad := int64(e.pins[t]) * demandScale * e.cfg.PinCostMilli / 1000
	if d := e.vDem[t] + pinLoad - e.vCap[t]; d > 0 {
		over += d
	}
	return over
}

// regionOf maps a tile to its calibration region.
func (e *Estimator) regionOf(t int) int {
	tx, ty := t%e.ntx, t/e.ntx
	rx := tx * calRegions / e.ntx
	if rx >= calRegions {
		rx = calRegions - 1
	}
	ry := ty * calRegions / e.nty
	if ry >= calRegions {
		ry = calRegions - 1
	}
	return ry*calRegions + rx
}

// Overflow returns the total predicted overflow in tracks (the proxy's
// analogue of route.Metrics.Overflow), calibration applied.
func (e *Estimator) Overflow() float64 {
	sum := 0.0
	for t := range e.hDem {
		if o := e.tileOver(t); o > 0 {
			sum += e.alpha[e.regionOf(t)] * float64(o)
		}
	}
	return sum / demandScale
}

// TopFracOverflow returns the mean predicted overflow (tracks/tile) of
// the top cfg.TopFrac fraction of tiles — the hotspot-weighted
// congestion score used to compare placements: total overflow can hide a
// few severe hotspots behind many mild ones, the top-decile mean cannot.
func (e *Estimator) TopFracOverflow() float64 {
	n := len(e.hDem)
	for t := 0; t < n; t++ {
		e.scratch[t] = e.tileOver(t)
	}
	slices.Sort(e.scratch)
	k := int(float64(n) * e.cfg.TopFrac)
	if k < 1 {
		k = 1
	}
	sum := 0.0
	for i := n - k; i < n; i++ {
		sum += float64(e.scratch[i])
	}
	return sum / float64(k) / demandScale
}

// TileOverflow returns tile t's raw predicted overflow in tracks,
// without calibration. Exposed for correlation tests and diagnostics.
func (e *Estimator) TileOverflow(t int) float64 {
	return float64(e.tileOver(t)) / demandScale
}

// tileRange clips a die-space rectangle (DBU) to the estimator grid and
// returns the inclusive tile index bounds.
func (e *Estimator) tileRange(r geom.Rect) (tx0, tx1, ty0, ty1 int) {
	p := e.p
	ts := int64(e.cfg.TileSites) * p.Tech.SiteWidth
	tr := int64(e.cfg.TileRows) * p.Tech.RowHeight
	tx0 = int(r.XLo / ts)
	tx1 = int((r.XHi - 1) / ts)
	ty0 = int(r.YLo / tr)
	ty1 = int((r.YHi - 1) / tr)
	if tx0 < 0 {
		tx0 = 0
	}
	if ty0 < 0 {
		ty0 = 0
	}
	if tx1 >= e.ntx {
		tx1 = e.ntx - 1
	}
	if ty1 >= e.nty {
		ty1 = e.nty - 1
	}
	return
}

// WindowScore scores a die-space rectangle (DBU) for optimization
// priority: the calibrated predicted overflow of the tiles it touches
// plus PinWeight times their signal-pin count (the alignment-opportunity
// term). Higher means the window family is a better place to spend MILP
// budget. Allocation-free; cost is proportional to the tile count of the
// window, not to nets or cells.
func (e *Estimator) WindowScore(r geom.Rect) float64 {
	tx0, tx1, ty0, ty1 := e.tileRange(r)
	score := 0.0
	for ty := ty0; ty <= ty1; ty++ {
		base := ty * e.ntx
		for tx := tx0; tx <= tx1; tx++ {
			t := base + tx
			score += e.alpha[e.regionOf(t)]*float64(e.tileOver(t))/demandScale +
				e.cfg.PinWeight*float64(e.pins[t])
		}
	}
	return score
}

// WindowPins returns the signal-pin count inside a die-space rectangle —
// the raw alignment-opportunity signal of WindowScore, uncalibrated and
// unweighted. Allocation-free.
func (e *Estimator) WindowPins(r geom.Rect) float64 {
	tx0, tx1, ty0, ty1 := e.tileRange(r)
	sum := 0.0
	for ty := ty0; ty <= ty1; ty++ {
		base := ty * e.ntx
		for tx := tx0; tx <= tx1; tx++ {
			sum += float64(e.pins[base+tx])
		}
	}
	return sum
}

// WindowDemand returns the total predicted routing demand (horizontal +
// vertical, in tracks) inside a die-space rectangle — demand, not
// overflow: tiles below capacity still contribute. Allocation-free.
func (e *Estimator) WindowDemand(r geom.Rect) float64 {
	tx0, tx1, ty0, ty1 := e.tileRange(r)
	var sum int64
	for ty := ty0; ty <= ty1; ty++ {
		base := ty * e.ntx
		for tx := tx0; tx <= tx1; tx++ {
			t := base + tx
			sum += e.hDem[t] + e.vDem[t]
		}
	}
	return float64(sum) / demandScale
}

// Calibrate blends routed per-tile overflow (route.Router.OverflowGrid
// on the same tile dimensions) into the per-region multipliers: regions
// the router congests more than predicted gain weight, regions it
// congests less lose it. blend in (0,1] is the EWMA step (1 = jump to
// the measured ratio). Multipliers are clamped to [1/alphaClamp,
// alphaClamp]; a region with routed overflow but zero prediction is
// pushed to the clamp ceiling so guided selection still visits it.
func (e *Estimator) Calibrate(actual []int64, blend float64) {
	if len(actual) != len(e.hDem) || blend <= 0 {
		return
	}
	if blend > 1 {
		blend = 1
	}
	var pred, act [calRegions * calRegions]float64
	for t := range e.hDem {
		r := e.regionOf(t)
		pred[r] += float64(e.tileOver(t)) / demandScale
		act[r] += float64(actual[t])
	}
	for r := range e.alpha {
		var ratio float64
		switch {
		case pred[r] > 0:
			ratio = act[r] / pred[r]
		case act[r] > 0:
			ratio = alphaClamp
		default:
			continue // nothing predicted, nothing routed: leave alone
		}
		if ratio > alphaClamp {
			ratio = alphaClamp
		}
		if ratio < 1/alphaClamp {
			ratio = 1 / alphaClamp
		}
		a := e.alpha[r]*(1-blend) + ratio*blend
		if a > alphaClamp {
			a = alphaClamp
		}
		if a < 1/alphaClamp {
			a = 1 / alphaClamp
		}
		e.alpha[r] = a
	}
}

// ResetCalibration returns every region multiplier to neutral.
func (e *Estimator) ResetCalibration() {
	for i := range e.alpha {
		e.alpha[i] = 1
	}
}

// Alpha returns region r's calibration multiplier (diagnostics).
func (e *Estimator) Alpha(r int) float64 { return e.alpha[r] }
