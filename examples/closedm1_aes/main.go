// ClosedM1 aes flow: an ExptB-1-style run with the full metric report.
//
// Reproduces one Table 2 row (aes, ClosedM1, util 75%, α=1200) at a
// configurable scale, showing every column the paper reports: #dM1, M1
// wirelength, #via12, HPWL, routed wirelength, WNS, power and optimizer
// runtime.
//
//	go run ./examples/closedm1_aes           # 10% scale (~1.2k cells)
//	go run ./examples/closedm1_aes -scale 1  # paper-scale 12345 cells
package main

import (
	"flag"
	"fmt"
	"os"

	"vm1place/internal/expt"
	"vm1place/internal/tech"
)

func main() {
	scale := flag.Float64("scale", 0.1, "fraction of the paper's 12345 instances")
	alpha := flag.Float64("alpha", 1200, "alignment weight α")
	workers := flag.Int("workers", 8, "parallel window solvers")
	flag.Parse()

	spec := expt.ScaledDesigns(*scale)[1] // aes
	fmt.Printf("running aes/ClosedM1 with %d instances, alpha=%.0f ...\n",
		spec.NumInsts, *alpha)

	r, err := expt.RunFlow(spec, expt.FlowConfig{
		Arch:     tech.ClosedM1,
		Alpha:    *alpha,
		AlphaSet: true,
		Workers:  *workers,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "closedm1_aes:", err)
		os.Exit(1)
	}

	expt.WriteTable2Row(os.Stdout, r)
	fmt.Printf("\noptimizer detail: alignments %d -> %d, objective %.0f -> %.0f\n",
		r.OptInitial.Alignments, r.OptFinal.Alignments,
		r.OptInitial.Value, r.OptFinal.Value)
	fmt.Printf("route+analysis time: %s\n", r.RouteRuntime.Round(1e8))

	// The paper's headline claims for ClosedM1 (Section 5.2): dM1 up
	// several-fold, RWL and via12 down, no timing degradation.
	if r.Final.DM1 > r.Init.DM1 && r.Final.RWL < r.Init.RWL {
		fmt.Println("✓ reproduces the paper's direction: more dM1, less routed wirelength")
	} else {
		fmt.Println("✗ unexpected: check parameters")
	}
}
