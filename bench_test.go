// Benchmarks regenerating the paper's evaluation artifacts (one per table
// and figure — see DESIGN.md §4) plus microbenchmarks for the heavy
// substrates. Figure/table benches run at a small design scale so the
// default `go test -bench=.` completes in minutes; use cmd/exptables for
// full-size runs.
package vm1place_test

import (
	"encoding/json"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"vm1place/internal/cells"
	"vm1place/internal/core"
	"vm1place/internal/expt"
	"vm1place/internal/layout"
	"vm1place/internal/lp"
	"vm1place/internal/milp"
	"vm1place/internal/netlist"
	"vm1place/internal/objective"
	"vm1place/internal/place"
	"vm1place/internal/proxy"
	"vm1place/internal/route"
	"vm1place/internal/sta"
	"vm1place/internal/tech"
)

// benchScale keeps each figure bench to roughly a minute.
const benchScale = 0.02

func benchCfg(b *testing.B) expt.SuiteConfig {
	b.Helper()
	return expt.SuiteConfig{Scale: benchScale, Workers: 8}
}

// BenchmarkFig5WindowSweep regenerates ExptA-1 / Figure 5 (window size
// scalability; perturbation fixed at the paper's preferred lx=4, ly=1).
func BenchmarkFig5WindowSweep(b *testing.B) {
	cfg := benchCfg(b)
	for i := 0; i < b.N; i++ {
		pts, err := expt.RunFig5(cfg, []float64{10, 20, 40}, [][2]int{{4, 1}})
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != 3 {
			b.Fatal("wrong point count")
		}
	}
}

// BenchmarkFig6AlphaSweep regenerates ExptA-2 / Figure 6 (α sensitivity).
func BenchmarkFig6AlphaSweep(b *testing.B) {
	cfg := benchCfg(b)
	for i := 0; i < b.N; i++ {
		pts, err := expt.RunFig6(cfg, tech.ClosedM1, []float64{0, 1200, 6000})
		if err != nil {
			b.Fatal(err)
		}
		if pts[2].DM1 < pts[0].DM1 {
			b.Fatalf("alpha sweep shape broken: %+v", pts)
		}
	}
}

// BenchmarkFig7Sequences regenerates ExptA-3 / Figure 7 (U sequences).
func BenchmarkFig7Sequences(b *testing.B) {
	cfg := benchCfg(b)
	seqs := []expt.SequenceSpec{expt.PaperSequences[0], expt.PaperSequences[3]}
	for i := 0; i < b.N; i++ {
		pts, err := expt.RunFig7(cfg, seqs)
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != 2 {
			b.Fatal("wrong point count")
		}
	}
}

// BenchmarkTable2ClosedM1 regenerates the ClosedM1 half of Table 2.
func BenchmarkTable2ClosedM1(b *testing.B) {
	cfg := benchCfg(b)
	for i := 0; i < b.N; i++ {
		rows, err := expt.RunTable2(cfg, tech.ClosedM1)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatal("wrong row count")
		}
	}
}

// BenchmarkTable2OpenM1 regenerates the OpenM1 half of Table 2.
func BenchmarkTable2OpenM1(b *testing.B) {
	cfg := benchCfg(b)
	for i := 0; i < b.N; i++ {
		rows, err := expt.RunTable2(cfg, tech.OpenM1)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatal("wrong row count")
		}
	}
}

// BenchmarkFig8DRVSweep regenerates the Figure 8 congestion study.
func BenchmarkFig8DRVSweep(b *testing.B) {
	cfg := benchCfg(b)
	for i := 0; i < b.N; i++ {
		pts, err := expt.RunFig8(cfg, []float64{0.75, 0.84})
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != 2 {
			b.Fatal("wrong point count")
		}
	}
}

// BenchmarkAblationJointFlip compares sequential perturb-then-flip against
// joint optimization (the §4.2 design choice).
func BenchmarkAblationJointFlip(b *testing.B) {
	cfg := benchCfg(b)
	for i := 0; i < b.N; i++ {
		if _, err := expt.RunAblationJointFlip(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate microbenchmarks -------------------------------------------

func placedDesign(b *testing.B, arch tech.Arch, n int) *layout.Placement {
	b.Helper()
	t := tech.Default()
	lib := cells.MustNewLibrary(t, arch)
	d := netlist.MustGenerate(lib, netlist.DefaultGenConfig("bench", n, 5))
	p := layout.MustNewFloorplan(t, d, 0.75)
	if err := place.Global(p, place.Options{}); err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkGlobalPlace measures the global placer + legalizer.
func BenchmarkGlobalPlace(b *testing.B) {
	t := tech.Default()
	lib := cells.MustNewLibrary(t, tech.ClosedM1)
	d := netlist.MustGenerate(lib, netlist.DefaultGenConfig("bench", 2000, 5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := layout.MustNewFloorplan(t, d, 0.75)
		if err := place.Global(p, place.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRouteClosedM1 measures a full routing pass at the default
// worker count (kept under its seed name so runs stay comparable across
// the repo's history).
func BenchmarkRouteClosedM1(b *testing.B) {
	benchRouteAll(b, 0)
}

// BenchmarkRouteAllSeq is the sequential routing baseline (Workers=1).
func BenchmarkRouteAllSeq(b *testing.B) { benchRouteAll(b, 1) }

// BenchmarkRouteAllPar routes with Workers=GOMAXPROCS. Metrics are
// bit-identical to the sequential run by construction (see
// internal/route/parallel.go); only wall time may differ.
func BenchmarkRouteAllPar(b *testing.B) { benchRouteAll(b, runtime.GOMAXPROCS(0)) }

func benchRouteAll(b *testing.B, workers int) {
	p := placedDesign(b, tech.ClosedM1, 2000)
	cfg := route.DefaultConfig(p.Tech, tech.ClosedM1)
	if workers > 0 {
		cfg.Workers = workers
	}
	r := route.New(p, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := r.RouteAll()
		if m.RWL == 0 {
			b.Fatal("no routing")
		}
	}
}

// BenchmarkSTA measures a timing/power analysis pass.
func BenchmarkSTA(b *testing.B) {
	p := placedDesign(b, tech.ClosedM1, 5000)
	cfg := sta.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := sta.Analyze(p, cfg, nil)
		if rep.TotalPowerMW <= 0 {
			b.Fatal("bad report")
		}
	}
}

// reportLPStats attaches the simplex-kernel counters (factor.go) accumulated
// since start to the benchmark as per-op custom metrics, so kernel regressions
// show up as pivot/refactorization/fill growth even when wall time is noisy.
func reportLPStats(b *testing.B, start lp.Stats) {
	b.Helper()
	end := lp.GlobalStats()
	n := float64(b.N)
	b.ReportMetric(float64(end.Solves-start.Solves)/n, "lp-solves/op")
	b.ReportMetric(float64(end.Pivots-start.Pivots)/n, "pivots/op")
	b.ReportMetric(float64(end.Refactors-start.Refactors)/n, "refactors/op")
	b.ReportMetric(float64(end.FillNnz-start.FillNnz)/n, "fill-nnz/op")
}

// BenchmarkDistOptPass measures one parallel window-optimization pass at
// the default in-window solver (SolverWorkers=0; kept under its seed name
// so runs stay comparable across the repo's history).
func BenchmarkDistOptPass(b *testing.B) { benchDistOptPass(b, 0, false) }

// BenchmarkDistOptPassSolver2 / Solver4 run the same pass with the
// speculative parallel branch-and-bound inside each window MILP. Placements
// are bit-identical for every count >= 2 (canonical-order commits, see
// internal/milp/parallel.go); wall time per family is deadline-bound
// (Params.TimeLimit), so on a single-core host these mostly show the
// per-node overhead of cold relaxation solves rather than a speedup.
func BenchmarkDistOptPassSolver2(b *testing.B) { benchDistOptPass(b, 2, false) }
func BenchmarkDistOptPassSolver4(b *testing.B) { benchDistOptPass(b, 4, false) }

// BenchmarkDistOptPassGuided runs the same pass with proxy-guided
// scheduling: windows are scored with the congestion estimator before the
// pass, families run hottest-first, near-empty ones are skipped, and each
// window's MILP budget is scaled by its score (see
// internal/core/guided.go). The wall delta against BenchmarkDistOptPass is
// the guided saving recorded in BENCH_core.json.
func BenchmarkDistOptPassGuided(b *testing.B) { benchDistOptPass(b, 0, true) }

func benchDistOptPass(b *testing.B, solverWorkers int, guided bool) {
	p := placedDesign(b, tech.ClosedM1, 800)
	prm := core.DefaultParams(p.Tech, tech.ClosedM1)
	prm.Workers = 8
	prm.SolverWorkers = solverWorkers
	if guided {
		prm.Guided = true
		prm.Proxy = proxy.New(p, proxy.DefaultConfig(p.Tech, tech.ClosedM1))
	}
	ps := core.ParamSet{BW: expt.UmToDBU(20), BH: expt.UmToDBU(20), LX: 4, LY: 1}
	b.ResetTimer()
	stats := lp.GlobalStats()
	for i := 0; i < b.N; i++ {
		core.DistOpt(p, prm, ps, 0, 0, true, false)
	}
	reportLPStats(b, stats)
}

// BenchmarkProxyEval measures the guided-selection hot path: one
// incremental estimator update over a 16-move batch (the tracker's
// per-family feed) followed by scoring every window of a 20 um grid —
// i.e. the full proxy cost of one window family. The steady state must
// stay allocation-free (TestSteadyStateZeroAlloc pins allocs == 0; this
// records the wall cost).
func BenchmarkProxyEval(b *testing.B) {
	p := placedDesign(b, tech.ClosedM1, 800)
	est := proxy.New(p, proxy.DefaultConfig(p.Tech, tech.ClosedM1))
	rng := rand.New(rand.NewSource(7))
	insts := make([]int, 16)
	bw := expt.UmToDBU(20)
	die := p.DieRect()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := range insts {
			inst := rng.Intn(len(p.Design.Insts))
			wi := p.Design.Insts[inst].Master.WidthSites
			p.SetLoc(inst, rng.Intn(p.NumSites-wi+1), rng.Intn(p.NumRows), rng.Intn(2) == 0)
			insts[k] = inst
		}
		est.Update(insts)
		var s float64
		for y := die.YLo; y < die.YHi; y += bw {
			for x := die.XLo; x < die.XHi; x += bw {
				r := die
				r.XLo, r.YLo = x, y
				if r.XHi = x + bw; r.XHi > die.XHi {
					r.XHi = die.XHi
				}
				if r.YHi = y + bw; r.YHi > die.YHi {
					r.YHi = die.YHi
				}
				s += est.WindowScore(r)
			}
		}
		if s < 0 {
			b.Fatal("negative score")
		}
	}
}

// BenchmarkCalculateObjIncremental measures ObjTracker.ApplyMoves — the
// incremental objective update DistOpt performs after every window family —
// on batches of 16 random relocations (a typical family's accepted-move
// count). Contrast with BenchmarkCalculateObjFull, the oracle rescan the
// tracker replaces.
func BenchmarkCalculateObjIncremental(b *testing.B) {
	p := placedDesign(b, tech.ClosedM1, 800)
	prm := core.DefaultParams(p.Tech, tech.ClosedM1)
	tr := core.NewObjTracker(p, prm)
	rng := rand.New(rand.NewSource(7))
	moves := make([]core.Move, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := range moves {
			inst := rng.Intn(len(p.Design.Insts))
			wi := p.Design.Insts[inst].Master.WidthSites
			moves[k] = core.Move{
				Inst: inst,
				Site: rng.Intn(p.NumSites - wi + 1),
				Row:  rng.Intn(p.NumRows),
				Flip: rng.Intn(2) == 0,
			}
		}
		obj := tr.ApplyMoves(moves)
		if obj.HPWL <= 0 {
			b.Fatal("bad objective")
		}
	}
}

// BenchmarkCalculateObjFull measures the full-design objective rescan.
func BenchmarkCalculateObjFull(b *testing.B) {
	p := placedDesign(b, tech.ClosedM1, 800)
	prm := core.DefaultParams(p.Tech, tech.ClosedM1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obj := core.CalculateObj(p, prm)
		if obj.HPWL <= 0 {
			b.Fatal("bad objective")
		}
	}
}

// benchObjectiveEval measures the full-design objective rescan for one
// registered geometry objective — the per-objective cost of the pluggable
// PairEval/PairAlpha hooks on the rescan hot path.
func benchObjectiveEval(b *testing.B, name string) {
	b.Helper()
	o, err := objective.Lookup(name)
	if err != nil {
		b.Fatal(err)
	}
	p := placedDesign(b, o.Arch(), 800)
	prm := core.DefaultParams(p.Tech, o.Arch())
	prm.Objective = o
	netAlpha := make([]float64, len(p.Design.Nets))
	for ni := range netAlpha {
		netAlpha[ni] = 1 + float64(ni%5)/4 // exercise the per-net α path
	}
	prm.NetAlpha = netAlpha
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obj := core.CalculateObj(p, prm)
		if obj.HPWL <= 0 {
			b.Fatal("bad objective")
		}
	}
}

// BenchmarkObjectiveEval runs the rescan bench once per registered
// objective; new objectives join the series the moment they register.
func BenchmarkObjectiveEval(b *testing.B) {
	for _, name := range objective.Names() {
		b.Run(name, func(b *testing.B) { benchObjectiveEval(b, name) })
	}
}

// BenchmarkLPSolve measures the simplex on a random dense-ish LP.
func BenchmarkLPSolve(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	m := lp.NewModel()
	const nv, nr = 200, 120
	vars := make([]int, nv)
	for i := range vars {
		vars[i] = m.AddVar(0, 10, rng.Float64()*2-1, "v")
	}
	for r := 0; r < nr; r++ {
		terms := make([]lp.Term, 0, 6)
		for k := 0; k < 6; k++ {
			terms = append(terms, lp.Term{Var: vars[rng.Intn(nv)], Coef: float64(rng.Intn(9) - 4)})
		}
		m.AddRow(lp.LE, float64(rng.Intn(50)+10), terms...)
	}
	b.ResetTimer()
	stats := lp.GlobalStats()
	for i := 0; i < b.N; i++ {
		sol := m.Solve()
		if sol.Status != lp.Optimal {
			b.Fatalf("status %s", sol.Status)
		}
	}
	reportLPStats(b, stats)
}

// coreSeedBaselineNs is BenchmarkDistOptPass on the seed optimizer (commit
// 5741a52, per-window placement clones and allocation-heavy model builds;
// the 8.55 s/op measurement recorded in EXPERIMENTS.md "Performance"), the
// reference speedup_vs_seed is measured against.
const coreSeedBaselineNs = 8550000000

// TestEmitBenchCoreJSON regenerates BENCH_core.json, the machine-readable
// record of the core-substrate microbenchmarks that the performance
// acceptance gates compare against — including the per-solver-worker
// DistOptPass series and a determinism check that SolverWorkers counts >= 2
// produce identical placements. Skipped unless BENCH_JSON is set (it runs
// the real benchmarks, minutes of wall time):
//
//	BENCH_JSON=1 go test -run TestEmitBenchCoreJSON -timeout 30m .
func TestEmitBenchCoreJSON(t *testing.T) {
	if os.Getenv("BENCH_JSON") == "" {
		t.Skip("set BENCH_JSON=1 to regenerate BENCH_core.json")
	}
	type entry struct {
		NsPerOp     int64 `json:"ns_per_op"`
		AllocsPerOp int64 `json:"allocs_per_op"`
		BytesPerOp  int64 `json:"bytes_per_op"`
		N           int   `json:"n"`
		// Workers / SolverWorkers record the window-level and in-window
		// parallelism of the run (0 = substrate default).
		Workers       int `json:"workers,omitempty"`
		SolverWorkers int `json:"solver_workers,omitempty"`
		// Extra carries the custom per-op metrics a benchmark reported —
		// for the LP-backed benches the simplex-kernel counters
		// (pivots/op, refactors/op, fill-nnz/op, lp-solves/op).
		Extra map[string]float64 `json:"extra,omitempty"`
	}

	// The per-worker series is only meaningful if the solver counts agree
	// exactly: run one untimed pass per count on identical placements and
	// require bit-identical results (mirrors BENCH_route.json's
	// metrics_identical gate).
	distOptAt := func(solverWorkers int) *layout.Placement {
		tc := tech.Default()
		lib := cells.MustNewLibrary(tc, tech.ClosedM1)
		d := netlist.MustGenerate(lib, netlist.DefaultGenConfig("bench-det", 300, 5))
		p := layout.MustNewFloorplan(tc, d, 0.75)
		if err := place.Global(p, place.Options{}); err != nil {
			t.Fatal(err)
		}
		prm := core.DefaultParams(tc, tech.ClosedM1)
		prm.Workers = 4
		prm.SolverWorkers = solverWorkers
		prm.MaxNodes = 40
		prm.TimeLimit = 0
		ps := core.ParamSet{BW: expt.UmToDBU(10), BH: expt.UmToDBU(10), LX: 3, LY: 1}
		core.DistOpt(p, prm, ps, 0, 0, true, false)
		return p
	}
	p2, p8 := distOptAt(2), distOptAt(8)
	for i := range p2.SiteX {
		if p2.SiteX[i] != p8.SiteX[i] || p2.Row[i] != p8.Row[i] || p2.Flip[i] != p8.Flip[i] {
			t.Fatalf("placements diverge between solver-worker counts at inst %d", i)
		}
	}

	// Guided-vs-uniform QoR gate: the wall saving recorded by the
	// DistOptPassGuided series only counts if guided scheduling does not
	// cost routed quality. Run one pass each way in the same timed regime
	// as the benchmark series (default 400 ms window budget — the regime
	// where guided budget shaping actually bites) and route both, summed
	// over three netlist seeds: timed runs are wall-clock
	// nondeterministic and a single design's routed metrics swing more
	// run-to-run than guided-vs-uniform moves them (EXPERIMENTS.md §
	// "Guided window scheduling" uses the same seed set).
	guidedQoR := func(guided bool, seed int64) route.Metrics {
		tc := tech.Default()
		lib := cells.MustNewLibrary(tc, tech.ClosedM1)
		d := netlist.MustGenerate(lib, netlist.DefaultGenConfig("bench-qor", 800, seed))
		p := layout.MustNewFloorplan(tc, d, 0.75)
		if err := place.Global(p, place.Options{}); err != nil {
			t.Fatal(err)
		}
		prm := core.DefaultParams(tc, tech.ClosedM1)
		prm.Workers = 4
		if guided {
			prm.Guided = true
			prm.Proxy = proxy.New(p, proxy.DefaultConfig(tc, tech.ClosedM1))
		}
		ps := core.ParamSet{BW: expt.UmToDBU(20), BH: expt.UmToDBU(20), LX: 4, LY: 1}
		core.DistOpt(p, prm, ps, 0, 0, true, false)
		return route.New(p, route.DefaultConfig(tc, tech.ClosedM1)).RouteAll()
	}
	var mUniform, mGuided route.Metrics
	for _, seed := range []int64{5, 11, 23} {
		mu, mg := guidedQoR(false, seed), guidedQoR(true, seed)
		mUniform.RWL += mu.RWL
		mUniform.Overflow += mu.Overflow
		mUniform.DM1 += mu.DM1
		mGuided.RWL += mg.RWL
		mGuided.Overflow += mg.Overflow
		mGuided.DM1 += mg.DM1
	}

	benches := []struct {
		name          string
		fn            func(*testing.B)
		workers       int
		solverWorkers int
	}{
		{"DistOptPass", BenchmarkDistOptPass, 8, 0},
		{"DistOptPassGuided", BenchmarkDistOptPassGuided, 8, 0},
		{"DistOptPassSolver2", BenchmarkDistOptPassSolver2, 8, 2},
		{"DistOptPassSolver4", BenchmarkDistOptPassSolver4, 8, 4},
		{"ProxyEval", BenchmarkProxyEval, 0, 0},
		{"LPSolve", BenchmarkLPSolve, 0, 0},
		{"CalculateObjIncremental", BenchmarkCalculateObjIncremental, 0, 0},
		{"CalculateObjFull", BenchmarkCalculateObjFull, 0, 0},
	}
	// Per-objective rescan series (make bench-objective runs the same
	// benchmarks standalone); Names() is sorted, so the series order is
	// stable run to run.
	for _, name := range objective.Names() {
		benches = append(benches, struct {
			name          string
			fn            func(*testing.B)
			workers       int
			solverWorkers int
		}{"ObjectiveEval/" + name, func(b *testing.B) { benchObjectiveEval(b, name) }, 0, 0})
	}
	type qor struct {
		RWL      int64 `json:"rwl"`
		Overflow int   `json:"overflow"`
		DM1      int   `json:"dm1"`
	}
	out := struct {
		Note                string           `json:"note"`
		SeedCommit          string           `json:"seed_commit"`
		SeedNsPerOp         int64            `json:"seed_ns_per_op"`
		GOMAXPROCS          int              `json:"gomaxprocs"`
		PlacementsIdentical bool             `json:"placements_identical"`
		SpeedupVsSeed       float64          `json:"speedup_vs_seed"`
		GuidedWallRatio     float64          `json:"guided_wall_ratio"`
		UniformQoR          qor              `json:"uniform_qor"`
		GuidedQoR           qor              `json:"guided_qor"`
		Results             map[string]entry `json:"results"`
	}{
		Note:                "regenerate with: BENCH_JSON=1 go test -run TestEmitBenchCoreJSON -timeout 30m . (or make bench-core)",
		SeedCommit:          "5741a52",
		SeedNsPerOp:         coreSeedBaselineNs,
		GOMAXPROCS:          runtime.GOMAXPROCS(0),
		PlacementsIdentical: true,
		Results:             map[string]entry{},
	}
	for _, bm := range benches {
		r := testing.Benchmark(bm.fn)
		out.Results[bm.name] = entry{
			NsPerOp:       r.NsPerOp(),
			AllocsPerOp:   r.AllocsPerOp(),
			BytesPerOp:    r.AllocedBytesPerOp(),
			N:             r.N,
			Workers:       bm.workers,
			SolverWorkers: bm.solverWorkers,
			Extra:         r.Extra,
		}
		t.Logf("%s: %s", bm.name, r)
	}
	out.SpeedupVsSeed = float64(coreSeedBaselineNs) /
		float64(out.Results["DistOptPass"].NsPerOp)
	out.GuidedWallRatio = float64(out.Results["DistOptPassGuided"].NsPerOp) /
		float64(out.Results["DistOptPass"].NsPerOp)
	out.UniformQoR = qor{RWL: mUniform.RWL, Overflow: mUniform.Overflow, DM1: mUniform.DM1}
	out.GuidedQoR = qor{RWL: mGuided.RWL, Overflow: mGuided.Overflow, DM1: mGuided.DM1}
	t.Logf("guided wall ratio %.3f; uniform QoR %+v; guided QoR %+v",
		out.GuidedWallRatio, out.UniformQoR, out.GuidedQoR)
	buf, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_core.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// routeSeedBaselineNs is BenchmarkRouteClosedM1 on the seed router
// (commit 5741a52, sequential engine with map-based A* state), the
// reference the ≥2× routing-speedup gate is measured against.
const routeSeedBaselineNs = 3116376386

// TestEmitBenchRouteJSON regenerates BENCH_route.json: the sequential /
// parallel RouteAll pair, the speedup over the seed router, and a check
// that both worker counts produced identical Metrics. Skipped unless
// BENCH_JSON is set:
//
//	BENCH_JSON=1 go test -run TestEmitBenchRouteJSON -timeout 30m .
func TestEmitBenchRouteJSON(t *testing.T) {
	if os.Getenv("BENCH_JSON") == "" {
		t.Skip("set BENCH_JSON=1 to regenerate BENCH_route.json")
	}
	type entry struct {
		NsPerOp     int64 `json:"ns_per_op"`
		AllocsPerOp int64 `json:"allocs_per_op"`
		BytesPerOp  int64 `json:"bytes_per_op"`
		N           int   `json:"n"`
		Workers     int   `json:"workers"`
	}

	// The speedup claim is only meaningful if the engines agree exactly:
	// every worker count in the series must produce bit-identical Metrics.
	tc := tech.Default()
	lib := cells.MustNewLibrary(tc, tech.ClosedM1)
	d := netlist.MustGenerate(lib, netlist.DefaultGenConfig("bench", 2000, 5))
	p := layout.MustNewFloorplan(tc, d, 0.75)
	if err := place.Global(p, place.Options{}); err != nil {
		t.Fatal(err)
	}
	workerSeries := []int{1, 2, 4, 8}
	var mSeq route.Metrics
	for i, w := range workerSeries {
		cfg := route.DefaultConfig(tc, tech.ClosedM1)
		cfg.Workers = w
		m := route.New(p, cfg).RouteAll()
		if i == 0 {
			mSeq = m
		} else if m != mSeq {
			t.Fatalf("Metrics diverge at Workers=%d:\nseq %+v\ngot %+v", w, mSeq, m)
		}
	}

	out := struct {
		Note             string           `json:"note"`
		SeedCommit       string           `json:"seed_commit"`
		SeedNsPerOp      int64            `json:"seed_ns_per_op"`
		GOMAXPROCS       int              `json:"gomaxprocs"`
		MetricsIdentical bool             `json:"metrics_identical"`
		SpeedupVsSeed    float64          `json:"speedup_vs_seed"`
		Results          map[string]entry `json:"results"`
	}{
		Note:             "regenerate with: BENCH_JSON=1 go test -run TestEmitBenchRouteJSON -timeout 30m . (or make bench-route)",
		SeedCommit:       "5741a52",
		SeedNsPerOp:      routeSeedBaselineNs,
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		MetricsIdentical: true,
		Results:          map[string]entry{},
	}
	names := map[int]string{1: "RouteAllSeq", 2: "RouteAllW2", 4: "RouteAllW4", 8: "RouteAllW8"}
	for _, w := range workerSeries {
		w := w
		r := testing.Benchmark(func(b *testing.B) { benchRouteAll(b, w) })
		out.Results[names[w]] = entry{
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			N:           r.N,
			Workers:     w,
		}
		t.Logf("%s: %s", names[w], r)
	}
	// Headline speedup: best worker count in the series vs the seed router.
	best := out.Results[names[1]].NsPerOp
	for _, w := range workerSeries[1:] {
		if ns := out.Results[names[w]].NsPerOp; ns < best {
			best = ns
		}
	}
	out.SpeedupVsSeed = float64(routeSeedBaselineNs) / float64(best)
	t.Logf("best parallel: %.2fx vs seed", out.SpeedupVsSeed)
	buf, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_route.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkMILPKnapsack measures branch and bound on a 25-item knapsack.
func BenchmarkMILPKnapsack(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	m := lp.NewModel()
	mm := milp.NewModel(m)
	var terms []lp.Term
	for i := 0; i < 25; i++ {
		v := m.AddVar(0, 1, -float64(1+rng.Intn(40)), "x")
		terms = append(terms, lp.Term{Var: v, Coef: float64(1 + rng.Intn(12))})
		mm.MarkInt(v)
	}
	m.AddRow(lp.LE, 60, terms...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := milp.Solve(mm, milp.Params{})
		if res.Status != milp.Optimal {
			b.Fatalf("status %s", res.Status)
		}
	}
}
