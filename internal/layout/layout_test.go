package layout

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"vm1place/internal/cells"
	"vm1place/internal/geom"
	"vm1place/internal/netlist"
	"vm1place/internal/tech"
)

func smallDesign(t *testing.T, arch tech.Arch, n int, seed int64) (*tech.Tech, *netlist.Design) {
	t.Helper()
	tc := tech.Default()
	lib := cells.MustNewLibrary(tc, arch)
	return tc, netlist.MustGenerate(lib, netlist.DefaultGenConfig("t", n, seed))
}

func TestFloorplanUtilization(t *testing.T) {
	tc, d := smallDesign(t, tech.ClosedM1, 1000, 1)
	for _, util := range []float64{0.5, 0.75, 0.9} {
		p := MustNewFloorplan(tc, d, util)
		got := p.Utilization()
		if got > util+1e-9 {
			t.Errorf("util %f: placement util %f exceeds target", util, got)
		}
		if got < util*0.8 {
			t.Errorf("util %f: placement util %f too loose", util, got)
		}
		// Near-square die.
		w, h := float64(p.DieWidth()), float64(p.DieHeight())
		if ar := w / h; ar < 0.7 || ar > 1.5 {
			t.Errorf("util %f: aspect ratio %f not near-square", util, ar)
		}
	}
}

func TestFloorplanRejectsBadUtil(t *testing.T) {
	tc, d := smallDesign(t, tech.ClosedM1, 100, 1)
	for _, u := range []float64{0, -0.5, 1.5} {
		p, err := NewFloorplan(tc, d, u)
		if !errors.Is(err, ErrBadUtilization) {
			t.Errorf("util %f: want ErrBadUtilization, got %v", u, err)
		}
		if p != nil {
			t.Errorf("util %f: got non-nil placement alongside error", u)
		}
	}
}

func TestSpreadEvenLegal(t *testing.T) {
	tc, d := smallDesign(t, tech.ClosedM1, 1200, 2)
	p := MustNewFloorplan(tc, d, 0.75)
	p.SpreadEven()
	if err := p.CheckLegal(); err != nil {
		t.Fatalf("SpreadEven illegal: %v", err)
	}
}

func TestCheckLegalDetectsOverlap(t *testing.T) {
	tc, d := smallDesign(t, tech.ClosedM1, 100, 3)
	p := MustNewFloorplan(tc, d, 0.75)
	p.SpreadEven()
	// Force two instances onto the same sites.
	p.SetLoc(1, p.SiteX[0], p.Row[0], false)
	if p.CheckLegal() == nil {
		t.Fatal("overlap not detected")
	}
}

func TestCheckLegalDetectsOutOfDie(t *testing.T) {
	tc, d := smallDesign(t, tech.ClosedM1, 100, 3)
	p := MustNewFloorplan(tc, d, 0.75)
	p.SpreadEven()
	p.SetLoc(0, p.NumSites-1, 0, false) // width >= 2 overflows
	if p.CheckLegal() == nil {
		t.Fatal("out-of-die not detected")
	}
	p.SpreadEven()
	p.SetLoc(0, 0, -1, false)
	if p.CheckLegal() == nil {
		t.Fatal("negative row not detected")
	}
}

func TestInstRect(t *testing.T) {
	tc, d := smallDesign(t, tech.ClosedM1, 100, 4)
	p := MustNewFloorplan(tc, d, 0.75)
	p.SetLoc(0, 3, 2, false)
	r := p.InstRect(0)
	w := d.Insts[0].Master.WidthDBU(tc)
	want := geom.Rect{XLo: 300, YLo: 500, XHi: 300 + w, YHi: 750}
	if r != want {
		t.Errorf("InstRect = %v, want %v", r, want)
	}
}

func TestPinPosTracksFlip(t *testing.T) {
	tc, d := smallDesign(t, tech.ClosedM1, 100, 5)
	p := MustNewFloorplan(tc, d, 0.75)
	p.SpreadEven()
	// Find a connection whose pin is off-center so flipping moves it.
	var c netlist.Conn
	found := false
	for ni := range d.Nets {
		d.Nets[ni].ForEachConn(func(cc netlist.Conn) {
			if found {
				return
			}
			inst := &d.Insts[cc.Inst]
			pin := &inst.Master.Pins[cc.Pin]
			ax := cells.AlignX(inst.Master, tc, pin, false)
			if 2*ax != inst.Master.WidthDBU(tc) {
				c = cc
				found = true
			}
		})
		if found {
			break
		}
	}
	if !found {
		t.Skip("no off-center pin found")
	}
	before := p.PinPos(c)
	p.Flip[c.Inst] = true
	after := p.PinPos(c)
	if before.X == after.X {
		t.Error("flip did not move off-center pin")
	}
	if before.Y != after.Y {
		t.Error("flip changed pin y")
	}
}

func TestHPWLManual(t *testing.T) {
	tc, d := smallDesign(t, tech.ClosedM1, 100, 6)
	p := MustNewFloorplan(tc, d, 0.75)
	p.SpreadEven()
	// HPWL of every net must equal a brute-force bbox over endpoints.
	for ni := range d.Nets {
		if d.Nets[ni].IsClock {
			continue
		}
		var xs, ys []int64
		d.Nets[ni].ForEachConn(func(c netlist.Conn) {
			pt := p.PinPos(c)
			xs = append(xs, pt.X)
			ys = append(ys, pt.Y)
		})
		for pi := range d.Ports {
			if d.Ports[pi].Net == ni {
				xs = append(xs, p.PortXY[pi].X)
				ys = append(ys, p.PortXY[pi].Y)
			}
		}
		if len(xs) == 0 {
			continue
		}
		want := (maxOf(xs) - minOf(xs)) + (maxOf(ys) - minOf(ys))
		if got := p.NetHPWL(ni); got != want {
			t.Fatalf("net %d HPWL = %d, want %d", ni, got, want)
		}
	}
}

func maxOf(v []int64) int64 {
	m := v[0]
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

func minOf(v []int64) int64 {
	m := v[0]
	for _, x := range v {
		if x < m {
			m = x
		}
	}
	return m
}

func TestTotalHPWLAdditive(t *testing.T) {
	tc, d := smallDesign(t, tech.ClosedM1, 300, 7)
	p := MustNewFloorplan(tc, d, 0.75)
	p.SpreadEven()
	var sum int64
	for ni := range d.Nets {
		if !d.Nets[ni].IsClock {
			sum += p.NetHPWL(ni)
		}
	}
	if got := p.TotalHPWL(); got != sum {
		t.Errorf("TotalHPWL = %d, want %d", got, sum)
	}
	if sum <= 0 {
		t.Error("TotalHPWL should be positive for a spread placement")
	}
}

func TestCloneIndependence(t *testing.T) {
	tc, d := smallDesign(t, tech.ClosedM1, 200, 8)
	p := MustNewFloorplan(tc, d, 0.75)
	p.SpreadEven()
	q := p.Clone()
	q.SetLoc(0, p.SiteX[0]+1, p.Row[0], !p.Flip[0])
	if p.SiteX[0] == q.SiteX[0] || p.Flip[0] == q.Flip[0] {
		t.Error("Clone shares mutable state")
	}
	q.CopyFrom(p)
	if q.SiteX[0] != p.SiteX[0] || q.Flip[0] != p.Flip[0] {
		t.Error("CopyFrom did not restore state")
	}
}

func TestOccupancyPlaceRemove(t *testing.T) {
	tc, d := smallDesign(t, tech.ClosedM1, 50, 9)
	p := MustNewFloorplan(tc, d, 0.5)
	p.SpreadEven()
	occ := NewOccupancy(p)
	if err := occ.Place(0); err != nil {
		t.Fatal(err)
	}
	if occ.At(p.Row[0], p.SiteX[0]) != 0 {
		t.Error("At should report instance 0")
	}
	if err := occ.Place(0); err == nil {
		t.Error("double placement not rejected")
	}
	occ.Remove(0)
	if occ.At(p.Row[0], p.SiteX[0]) != -1 {
		t.Error("Remove did not clear sites")
	}
	if err := occ.Place(0); err != nil {
		t.Errorf("re-place after remove failed: %v", err)
	}
}

func TestOccupancyFreeRun(t *testing.T) {
	tc, d := smallDesign(t, tech.ClosedM1, 50, 10)
	p := MustNewFloorplan(tc, d, 0.5)
	p.SpreadEven()
	occ := NewOccupancy(p)
	w0 := d.Insts[0].Master.WidthSites
	if !occ.FreeRun(0, 0, w0, -1) {
		t.Error("empty grid should be free")
	}
	if err := occ.Place(0); err != nil {
		t.Fatal(err)
	}
	if occ.FreeRun(p.Row[0], p.SiteX[0], w0, -1) {
		t.Error("occupied run reported free")
	}
	if !occ.FreeRun(p.Row[0], p.SiteX[0], w0, 0) {
		t.Error("run occupied only by ignored instance should be free")
	}
	if occ.FreeRun(-1, 0, 1, -1) || occ.FreeRun(0, -1, 1, -1) ||
		occ.FreeRun(0, p.NumSites, 1, -1) {
		t.Error("out-of-die runs must not be free")
	}
}

func TestPortsOnBoundary(t *testing.T) {
	tc, d := smallDesign(t, tech.OpenM1, 400, 11)
	p := MustNewFloorplan(tc, d, 0.75)
	w, h := p.DieWidth(), p.DieHeight()
	for i, pt := range p.PortXY {
		onEdge := pt.X == 0 || pt.X == w || pt.Y == 0 || pt.Y == h
		if !onEdge {
			t.Errorf("port %s at %v not on die boundary", d.Ports[i].Name, pt)
		}
		if pt.X < 0 || pt.X > w || pt.Y < 0 || pt.Y > h {
			t.Errorf("port %s at %v outside die", d.Ports[i].Name, pt)
		}
	}
}

// Property: moving a single instance changes only the HPWL of nets attached
// to it (locality of the HPWL model).
func TestHPWLLocalityQuick(t *testing.T) {
	tc, d := smallDesign(t, tech.ClosedM1, 150, 12)
	p := MustNewFloorplan(tc, d, 0.6)
	p.SpreadEven()
	touched := func(inst int) map[int]bool {
		m := map[int]bool{}
		for _, ni := range d.Insts[inst].PinNets {
			if ni >= 0 {
				m[ni] = true
			}
		}
		return m
	}
	before := make([]int64, len(d.Nets))
	for ni := range d.Nets {
		before[ni] = p.NetHPWL(ni)
	}
	f := func(instRaw uint16, dx int8, flip bool) bool {
		inst := int(instRaw) % len(d.Insts)
		q := p.Clone()
		ns := geom.Clamp(int64(q.SiteX[inst])+int64(dx), 0, int64(q.NumSites-q.Design.Insts[inst].Master.WidthSites))
		q.SetLoc(inst, int(ns), q.Row[inst], flip)
		tm := touched(inst)
		for ni := range d.Nets {
			if tm[ni] {
				continue
			}
			if q.NetHPWL(ni) != before[ni] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestFloorplanScalesWithN(t *testing.T) {
	tc, d1 := smallDesign(t, tech.ClosedM1, 200, 13)
	_, d2 := smallDesign(t, tech.ClosedM1, 800, 13)
	p1 := MustNewFloorplan(tc, d1, 0.75)
	p2 := MustNewFloorplan(tc, d2, 0.75)
	a1 := float64(p1.DieWidth()) * float64(p1.DieHeight())
	a2 := float64(p2.DieWidth()) * float64(p2.DieHeight())
	if ratio := a2 / a1; math.Abs(ratio-4) > 1.5 {
		t.Errorf("die area ratio %f, want ~4 for 4x instances", ratio)
	}
}
