package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// PanicGuardAnalyzer is the AST-level replacement for the old grep-based
// Makefile panic-guard: library code under internal/ must return errors,
// not crash the process.
//
//   - panic is allowed only inside Must* wrappers or at sites tagged
//     `// panic-ok: <reason>` (unreachable-invariant checks);
//   - log.Fatal and friends are never allowed under internal/ (they hide
//     an os.Exit behind a logger);
//   - os.Exit belongs exclusively to the cmd/ edges — under internal/ it
//     is flagged even though a tag could technically silence it, because
//     no such tag should survive review.
var PanicGuardAnalyzer = &Analyzer{
	Name: "panicguard",
	Doc:  "restricts panic/os.Exit/log.Fatal in library code to tagged invariant checks and Must* wrappers",
	Tag:  "panic-ok",
	Run:  runPanicGuard,
}

func isInternalPkg(path string) bool {
	return strings.HasPrefix(path, "vm1place/internal/")
}

func runPanicGuard(pass *Pass) error {
	if !isInternalPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if fd, ok := n.(*ast.FuncDecl); ok {
				if fd.Body != nil {
					ast.Inspect(fd.Body, func(m ast.Node) bool {
						checkPanicSite(pass, m, fd)
						return true
					})
				}
				return false
			}
			checkPanicSite(pass, n, nil)
			return true
		})
	}
	return nil
}

// checkPanicSite flags a panic/os.Exit/log.Fatal call site. enclosing is
// the function declaration the call lives in, or nil at file scope
// (package-level var initializers).
func checkPanicSite(pass *Pass, n ast.Node, enclosing *ast.FuncDecl) {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return
	}
	switch {
	case isBuiltinPanic(pass, call):
		if enclosing != nil && strings.HasPrefix(enclosing.Name.Name, "Must") {
			return // panic is the documented contract of a Must* wrapper
		}
		pass.Reportf(call.Pos(), "panic in library code: return an error, move into a Must* wrapper, or tag // panic-ok: with the invariant")
	case isPkgFunc(pass.TypesInfo, call, "os", "Exit"):
		pass.Reportf(call.Pos(), "os.Exit in library code: only cmd/ binaries may exit the process")
	case isLogFatal(pass, call):
		pass.Reportf(call.Pos(), "log.Fatal in library code: it exits the process; return an error instead")
	}
}

func isBuiltinPanic(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

func isLogFatal(pass *Pass, call *ast.CallExpr) bool {
	return isPkgFunc(pass.TypesInfo, call, "log", "Fatal") ||
		isPkgFunc(pass.TypesInfo, call, "log", "Fatalf") ||
		isPkgFunc(pass.TypesInfo, call, "log", "Fatalln")
}
