package route

import (
	"sort"

	"vm1place/internal/geom"
	"vm1place/internal/netlist"
	"vm1place/internal/tech"
)

// pqItem is one A* frontier entry.
type pqItem struct {
	node int32
	f    float64
}

// pq is a binary min-heap of pqItems.
type pq []pqItem

func (q *pq) push(it pqItem) {
	*q = append(*q, it)
	i := len(*q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*q)[parent].f <= (*q)[i].f {
			break
		}
		(*q)[parent], (*q)[i] = (*q)[i], (*q)[parent]
		i = parent
	}
}

func (q *pq) pop() pqItem {
	top := (*q)[0]
	last := len(*q) - 1
	(*q)[0] = (*q)[last]
	*q = (*q)[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(*q) && (*q)[l].f < (*q)[small].f {
			small = l
		}
		if r < len(*q) && (*q)[r].f < (*q)[small].f {
			small = r
		}
		if small == i {
			break
		}
		(*q)[i], (*q)[small] = (*q)[small], (*q)[i]
		i = small
	}
	return top
}

// netRoute holds the routed state of one net.
type netRoute struct {
	paths [][]int32
	dm1   []bool
	// endpoints that participated (for via counting).
	pinConns int
}

// region is an inclusive grid-rectangle search bound.
type region struct {
	xlo, ylo, xhi, yhi int
}

func (r *Router) clampRegion(rg region) region {
	if rg.xlo < 0 {
		rg.xlo = 0
	}
	if rg.ylo < 0 {
		rg.ylo = 0
	}
	if rg.xhi >= r.nx {
		rg.xhi = r.nx - 1
	}
	if rg.yhi >= r.ny {
		rg.yhi = r.ny - 1
	}
	return rg
}

// edgeCostV returns the cost of traversing the vertical edge (x,y)-(x,y+1)
// on layer l with congestion weight cw.
func (r *Router) edgeCostV(l tech.Layer, x, y int, cw float64) float64 {
	base := float64(r.t.RowHeight)
	if l == tech.M1 {
		base *= r.cfg.M1CostFactor
	}
	u := r.usage[l][r.vEdge(x, y)]
	over := int(u) + 1 - r.cfg.Caps[l]
	if over > 0 {
		base += float64(r.t.RowHeight) * cw * float64(over)
	}
	return base
}

// edgeCostH returns the cost of the horizontal edge (x,y)-(x+1,y) on l.
func (r *Router) edgeCostH(l tech.Layer, x, y int, cw float64) float64 {
	base := float64(r.t.SiteWidth)
	u := r.usage[l][r.hEdge(x, y)]
	over := int(u) + 1 - r.cfg.Caps[l]
	if over > 0 {
		base += float64(r.t.SiteWidth) * cw * float64(over)
	}
	return base
}

// m1Enterable reports whether net ni may occupy the M1 node at (x,y).
func (r *Router) m1Enterable(ni, x, y int) bool {
	if !r.cfg.M1Routable {
		return false
	}
	b := r.blockedM1[r.blockIdx(x, y)]
	return b == 0 || b == int32(ni+1)
}

// astar searches from the source access points to any node in targets,
// bounded by rg. Returns the path (source node first) or nil.
func (r *Router) astar(ni int, sources []accessPoint, targets map[int32]struct{},
	tb region, rg region, cw float64) []int32 {
	r.gen++
	gen := r.gen
	var open pq

	// Slightly inflated distance-to-target-box heuristic. Inflation (and
	// pricing vertical moves at the full row pitch even though M1 may be
	// cheaper) trades strict optimality for a near-beeline search — the
	// standard maze-router compromise; congestion and via costs still
	// shape the path through g.
	sw := float64(r.t.SiteWidth)
	rh := float64(r.t.RowHeight)
	h := func(id int32) float64 {
		_, x, y := r.nodeOf(id)
		var dx, dy int
		if x < tb.xlo {
			dx = tb.xlo - x
		} else if x > tb.xhi {
			dx = x - tb.xhi
		}
		if y < tb.ylo {
			dy = tb.ylo - y
		} else if y > tb.yhi {
			dy = y - tb.yhi
		}
		return (float64(dx)*sw + float64(dy)*rh) * 1.05
	}

	visit := func(id int32, g float64, from int32) {
		if r.visGen[id] == gen && r.gCost[id] <= g {
			return
		}
		r.visGen[id] = gen
		r.gCost[id] = g
		r.cameFrom[id] = from
		open.push(pqItem{node: id, f: g + h(id)})
	}

	for _, src := range sources {
		l, x, y := r.nodeOf(src.node)
		if l == tech.M1 && !r.m1Enterable(ni, x, y) {
			continue
		}
		visit(src.node, float64(src.viaCost), -1)
	}

	for len(open) > 0 {
		cur := open.pop()
		id := cur.node
		if r.visGen[id] != gen {
			continue
		}
		g := r.gCost[id]
		if cur.f > g+h(id)+1e-9 {
			continue // stale entry
		}
		if _, ok := targets[id]; ok {
			// Reconstruct.
			var path []int32
			for n := id; n != -1; n = r.cameFrom[n] {
				path = append(path, n)
			}
			// Reverse to source-first order.
			for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
				path[i], path[j] = path[j], path[i]
			}
			return path
		}

		l, x, y := r.nodeOf(id)
		// Preferred-direction edges.
		if l.Direction() == tech.Vertical {
			if y+1 <= rg.yhi && (l != tech.M1 || r.m1Enterable(ni, x, y+1)) {
				visit(r.nodeID(l, x, y+1), g+r.edgeCostV(l, x, y, cw), id)
			}
			if y-1 >= rg.ylo && (l != tech.M1 || r.m1Enterable(ni, x, y-1)) {
				visit(r.nodeID(l, x, y-1), g+r.edgeCostV(l, x, y-1, cw), id)
			}
		} else {
			if x+1 <= rg.xhi {
				visit(r.nodeID(l, x+1, y), g+r.edgeCostH(l, x, y, cw), id)
			}
			if x-1 >= rg.xlo {
				visit(r.nodeID(l, x-1, y), g+r.edgeCostH(l, x-1, y, cw), id)
			}
		}
		// Vias (the graph never descends below M1).
		if l > tech.M1 {
			down := l - 1
			if down != tech.M1 || r.m1Enterable(ni, x, y) {
				visit(r.nodeID(down, x, y), g+float64(r.cfg.ViaCost), id)
			}
		}
		if l < tech.M4 {
			visit(r.nodeID(l+1, x, y), g+float64(r.cfg.ViaCost), id)
		}
	}
	return nil
}

// endpoint is one net terminal: either an instance pin or a port.
type endpoint struct {
	access []accessPoint
	pos    geom.Point // for ordering and bboxes
	isPin  bool
}

// endpoints collects the terminals of net ni (driver first when present).
func (r *Router) endpoints(ni int) []endpoint {
	d := r.p.Design
	n := &d.Nets[ni]
	var eps []endpoint
	n.ForEachConn(func(c netlist.Conn) {
		eps = append(eps, endpoint{
			access: r.pinAccess(c),
			pos:    r.p.PinPos(c),
			isPin:  true,
		})
	})
	for pi := range d.Ports {
		if d.Ports[pi].Net == ni {
			eps = append(eps, endpoint{
				access: []accessPoint{r.portAccess(pi)},
				pos:    r.p.PortXY[pi],
			})
		}
	}
	return eps
}

// routeNet routes net ni, updating usage and returning its route. cw is
// the congestion weight for this pass.
func (r *Router) routeNet(ni int, cw float64) *netRoute {
	eps := r.endpoints(ni)
	nr := &netRoute{pinConns: 0}
	for _, ep := range eps {
		if ep.isPin {
			nr.pinConns++
		}
	}
	if len(eps) < 2 {
		return nr
	}

	// Grow a route tree starting at the first endpoint (the driver when
	// the net has one), connecting remaining endpoints nearest-first.
	tree := make(map[int32]struct{})
	pinNodes := make(map[int32]struct{})
	var treeGrid region
	first := eps[0]
	for _, ap := range first.access {
		tree[ap.node] = struct{}{}
		if first.isPin {
			pinNodes[ap.node] = struct{}{}
		}
	}
	treeGrid = r.apRegion(first.access)

	rest := append([]endpoint(nil), eps[1:]...)
	sort.Slice(rest, func(a, b int) bool {
		return rest[a].pos.ManhattanDist(first.pos) < rest[b].pos.ManhattanDist(first.pos)
	})

	for _, ep := range rest {
		epRegion := r.apRegion(ep.access)
		search := r.clampRegion(region{
			xlo: min(treeGrid.xlo, epRegion.xlo) - r.cfg.SearchMargin,
			ylo: min(treeGrid.ylo, epRegion.ylo) - r.cfg.SearchMargin,
			xhi: max(treeGrid.xhi, epRegion.xhi) + r.cfg.SearchMargin,
			yhi: max(treeGrid.yhi, epRegion.yhi) + r.cfg.SearchMargin,
		})
		path := r.astar(ni, ep.access, tree, treeGrid, search, cw)
		if path == nil {
			// Retry with a much larger window before giving up.
			search = r.clampRegion(region{
				xlo: search.xlo - 6*r.cfg.SearchMargin, ylo: search.ylo - 6*r.cfg.SearchMargin,
				xhi: search.xhi + 6*r.cfg.SearchMargin, yhi: search.yhi + 6*r.cfg.SearchMargin,
			})
			path = r.astar(ni, ep.access, tree, treeGrid, search, cw)
		}
		if path == nil {
			r.metrics.FailedConns++
			continue
		}
		dm1 := r.classifyDM1(path, pinNodes, ep.isPin)
		r.addUsage(path, +1)
		for _, id := range path {
			tree[id] = struct{}{}
		}
		if ep.isPin {
			for _, ap := range ep.access {
				pinNodes[ap.node] = struct{}{}
			}
		}
		treeGrid = r.growRegion(treeGrid, path)
		nr.paths = append(nr.paths, path)
		nr.dm1 = append(nr.dm1, dm1)
	}
	return nr
}

// classifyDM1 reports whether a connection path is a direct vertical M1
// route: entirely on one M1 track, spanning at most Gamma rows, landing on
// a pin node of the tree, with the moving end also a pin.
func (r *Router) classifyDM1(path []int32, pinNodes map[int32]struct{}, fromPin bool) bool {
	if !fromPin || len(path) == 0 {
		return false
	}
	last := path[len(path)-1]
	if _, ok := pinNodes[last]; !ok {
		return false
	}
	_, x0, y0 := r.nodeOf(path[0])
	for _, id := range path {
		l, x, _ := r.nodeOf(id)
		if l != tech.M1 || x != x0 {
			return false
		}
	}
	_, _, yEnd := r.nodeOf(last)
	span := yEnd - y0
	if span < 0 {
		span = -span
	}
	return span <= r.cfg.Gamma
}

// apRegion returns the grid bbox of a set of access points.
func (r *Router) apRegion(aps []accessPoint) region {
	rg := region{xlo: r.nx, ylo: r.ny, xhi: -1, yhi: -1}
	for _, ap := range aps {
		_, x, y := r.nodeOf(ap.node)
		if x < rg.xlo {
			rg.xlo = x
		}
		if x > rg.xhi {
			rg.xhi = x
		}
		if y < rg.ylo {
			rg.ylo = y
		}
		if y > rg.yhi {
			rg.yhi = y
		}
	}
	return rg
}

func (r *Router) growRegion(rg region, path []int32) region {
	for _, id := range path {
		_, x, y := r.nodeOf(id)
		if x < rg.xlo {
			rg.xlo = x
		}
		if x > rg.xhi {
			rg.xhi = x
		}
		if y < rg.ylo {
			rg.ylo = y
		}
		if y > rg.yhi {
			rg.yhi = y
		}
	}
	return rg
}

// addUsage applies (or removes, delta = -1) a path's edge usage.
func (r *Router) addUsage(path []int32, delta int32) {
	for i := 1; i < len(path); i++ {
		la, xa, ya := r.nodeOf(path[i-1])
		lb, xb, yb := r.nodeOf(path[i])
		if la != lb {
			continue // via
		}
		switch {
		case xa == xb && yb == ya+1:
			r.usage[la][r.vEdge(xa, ya)] += delta
		case xa == xb && yb == ya-1:
			r.usage[la][r.vEdge(xa, yb)] += delta
		case ya == yb && xb == xa+1:
			r.usage[la][r.hEdge(xa, ya)] += delta
		case ya == yb && xb == xa-1:
			r.usage[la][r.hEdge(xb, ya)] += delta
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
