package route

import (
	"context"
	"errors"
	"testing"
	"time"

	"vm1place/internal/tech"
)

// assertUsageMatchesRoutes rips every committed route and checks that the
// usage arrays return to zero: usage is exactly the sum of the committed
// routes, i.e. no partially-committed net leaked edge usage.
func assertUsageMatchesRoutes(t *testing.T, r *Router) {
	t.Helper()
	for ni := range r.routes {
		r.ripNet(ni)
	}
	for l := tech.M1; l <= tech.M4; l++ {
		for i, u := range r.usage[l] {
			if u != 0 {
				t.Fatalf("usage[%v][%d] = %d after ripping all routes", l, i, u)
			}
		}
	}
}

// TestRouteAllCtxCanceledBeforeStart: a context canceled up front must end
// the run before the first batch commits — no routes, zero usage — with an
// errors.Is-able cancellation error.
func TestRouteAllCtxCanceledBeforeStart(t *testing.T) {
	p := genPlaced(t, tech.ClosedM1, "ctx-pre", 300, 21, 0.7)
	r := New(p, DefaultConfig(p.Tech, tech.ClosedM1))

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m, err := r.RouteAllCtx(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if len(r.routes) != 0 {
		t.Errorf("canceled run committed %d routes", len(r.routes))
	}
	if m.RWL != 0 {
		t.Errorf("canceled run reported wirelength: %+v", m)
	}
	assertUsageMatchesRoutes(t, r)
}

// TestRouteAllCtxCancelMidRun cancels while batches are routing. The run
// must stop at a batch boundary: every committed net is fully routed and
// accounted in the usage arrays, the partial Metrics cover exactly the
// committed subset, and the router remains reusable for a full rerun.
func TestRouteAllCtxCancelMidRun(t *testing.T) {
	p := genPlaced(t, tech.ClosedM1, "ctx-mid", 1500, 23, 0.7)
	cfg := DefaultConfig(p.Tech, tech.ClosedM1)
	r := New(p, cfg)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	m, err := r.RouteAllCtx(ctx)
	if err == nil {
		// Routing beat the cancellation; nothing partial to verify.
		t.Skip("routing finished before cancellation landed")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}

	// The partial metrics must be exact over the committed subset: a
	// recompute from the stored routes yields the same numbers.
	before := m
	r.computeMetrics()
	if r.metrics.RWL != before.RWL || r.metrics.M1Segs != before.M1Segs ||
		r.metrics.Via12 != before.Via12 || r.metrics.Overflow != before.Overflow {
		t.Errorf("partial metrics not reproducible: %+v vs %+v", before, r.metrics)
	}

	// The interrupted router is not poisoned: a full uncanceled rerun
	// matches a fresh router bit for bit.
	got := r.RouteAll()
	want := New(p, cfg).RouteAll()
	if got != want {
		t.Errorf("rerun after cancel diverged: %+v vs %+v", got, want)
	}
}

// TestRouteAllCtxCancelUsageConsistent verifies the committed-batch
// invariant directly: after a mid-run cancel, ripping every committed
// route drains the usage arrays to zero.
func TestRouteAllCtxCancelUsageConsistent(t *testing.T) {
	p := genPlaced(t, tech.ClosedM1, "ctx-usage", 1500, 25, 0.7)
	r := New(p, DefaultConfig(p.Tech, tech.ClosedM1))

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	if _, err := r.RouteAllCtx(ctx); err == nil {
		t.Skip("routing finished before cancellation landed")
	}
	assertUsageMatchesRoutes(t, r)
}

// TestRouteAllCtxBackgroundMatchesRouteAll: the ctx path with a background
// context is byte-for-byte the legacy path.
func TestRouteAllCtxBackgroundMatchesRouteAll(t *testing.T) {
	p := genPlaced(t, tech.ClosedM1, "ctx-bg", 400, 27, 0.7)
	cfg := DefaultConfig(p.Tech, tech.ClosedM1)

	want := New(p, cfg).RouteAll()
	got, err := New(p, cfg).RouteAllCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("ctx run diverged: %+v vs %+v", got, want)
	}
}
