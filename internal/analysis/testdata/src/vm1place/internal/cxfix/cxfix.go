// Package cxfix is a ctxflow fixture under internal/: severing an
// incoming context with a fresh Background/TODO, ignoring a ctx
// parameter, and minting contexts in library code are flagged; proper
// threading and tagged compat wrappers pass.
package cxfix

import "context"

func work(ctx context.Context) error { return ctx.Err() }

func noCtx(n int) int { return n + 1 }

// good threads its context: clean.
func good(ctx context.Context) error {
	if err := work(ctx); err != nil {
		return err
	}
	noCtx(1)
	return nil
}

// derived passes a child context: clean.
func derived(ctx context.Context) error {
	sub, cancel := context.WithCancel(ctx)
	defer cancel()
	return work(sub)
}

// severs receives ctx but hands the callee a fresh one: flagged.
func severs(ctx context.Context) error {
	return work(context.TODO()) // want `passes a fresh context`
}

// ignores never touches its ctx while calling a context-accepting
// callee: flagged at the declaration.
func ignores(ctx context.Context) error { // want `context parameter ctx is never used`
	return work(nil)
}

// mints builds its own context in library code: flagged.
func mints() error {
	ctx := context.Background() // want `context\.Background/TODO in internal/`
	return work(ctx)
}

// compat is a sanctioned context-free wrapper: suppressed.
func compat() error {
	return work(context.Background()) // ctx-ok: context-free compat wrapper
}
