// Package mofix is a maporder fixture inside a deterministic package
// path (vm1place/internal/core/...), so every order-dependent map range
// below must be flagged unless tagged.
package mofix

type model struct{ rows int }

func (m *model) AddRow(k, v int) { m.rows++ }

// keys appends in map order: flagged.
func keys(m map[int]string) []int {
	out := make([]int, 0, len(m))
	for k := range m { // want `order-dependent effect \(append to slice out`
		out = append(out, k)
	}
	return out
}

// keysTagged is the legitimate collect-then-sort idiom: suppressed.
func keysTagged(m map[int]string) []int {
	out := make([]int, 0, len(m))
	for k := range m { // order-ok: caller sorts before use
		out = append(out, k)
	}
	return out
}

// rows feeds an ordered sink in map order: flagged.
func rows(md *model, m map[int]int) {
	for k, v := range m { // want `ordered sink AddRow`
		md.AddRow(k, v)
	}
}

// sum accumulates floats in map order (non-associative): flagged.
func sum(m map[int]float64) float64 {
	var s float64
	for _, v := range m { // want `floating-point accumulation into s`
		s += v
	}
	return s
}

// count has no ordered effect: clean.
func count(m map[int]string) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// invert writes map entries keyed by the loop variable: order-independent,
// clean.
func invert(m map[int]string) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// innerAppend grows a slice born inside the loop body: the per-iteration
// result does not depend on iteration order, clean.
func innerAppend(m map[int][]int, f func([]int)) {
	for k, vs := range m {
		local := make([]int, 0, len(vs))
		local = append(local, k)
		f(local)
	}
}
