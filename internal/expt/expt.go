// Package expt is the experiment harness of vm1place: it reproduces every
// evaluation table and figure of the DAC'17 paper (Table 2, Figures 5-8)
// on the synthetic substrate, printing the same rows/series the paper
// reports.
//
// Scale note: the harness maps the paper's µm window sizes to DBU with
// UmToDBU (1 paper-µm ≈ 1 placement site horizontally), which keeps window
// MILPs at the tens-of-cells scale our branch-and-bound solves exactly —
// the same windows-much-smaller-than-die regime as the paper. Designs are
// generated at the paper's instance counts by default, with a Scale knob
// for faster CI-size runs.
//
// Every flow run is a flow.Pipeline of four stages — build, init-route,
// optimize, final-route — threaded by one context.Context, so a deadline
// or cancellation propagates into the optimizer's window families and the
// router's batch commits. RunFlow and friends are thin stage compositions
// over that engine.
package expt

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"vm1place/internal/cells"
	"vm1place/internal/core"
	"vm1place/internal/flow"
	"vm1place/internal/layout"
	"vm1place/internal/netlist"
	"vm1place/internal/objective"
	"vm1place/internal/place"
	"vm1place/internal/proxy"
	"vm1place/internal/route"
	"vm1place/internal/sta"
	"vm1place/internal/tech"
)

// ErrUnknownDesign reports a design name outside the paper's testcases.
// SuiteConfig.design wraps it, so callers can errors.Is against it.
var ErrUnknownDesign = errors.New("expt: unknown design")

// UmToDBU converts a paper window size in µm to DBU: 1 µm ≈ 1 site
// (100 DBU) horizontally and 0.4 rows vertically (see package comment).
func UmToDBU(um float64) int64 { return int64(um * 100) }

// DesignSpec names one benchmark design of the paper (Table 2).
type DesignSpec struct {
	Name     string
	NumInsts int
	Seed     int64
}

// PaperDesigns are the four testcases with the paper's instance counts.
var PaperDesigns = []DesignSpec{
	{Name: "m0", NumInsts: 9922, Seed: 101},
	{Name: "aes", NumInsts: 12345, Seed: 102},
	{Name: "jpeg", NumInsts: 54570, Seed: 103},
	{Name: "vga", NumInsts: 68606, Seed: 104},
}

// MinScaledInsts is the instance floor ScaledDesigns clamps to: below
// it, synthetic designs degenerate (utilization targets become
// unreachable and window grids collapse to a handful of cells), so no
// scaled point is generated smaller. The floor makes tiny scales
// saturate: m0 (9922 insts) hits it below scale ≈ 0.0202, so a sweep
// sampling scales under MinScaledInsts/NumInsts returns the *same*
// design point again — identical name, instance count and seed — not a
// smaller one. Sweep drivers should dedupe on NumInsts (see
// ScaleSweepPoints) rather than assume every scale is distinct.
const MinScaledInsts = 200

// ScaledDesigns returns the paper designs scaled by factor, clamped to
// MinScaledInsts, for fast benches. Scales at or below
// MinScaledInsts/NumInsts all yield the identical floored spec — see
// MinScaledInsts for why callers sweeping small scales must dedupe.
func ScaledDesigns(scale float64) []DesignSpec {
	out := make([]DesignSpec, len(PaperDesigns))
	for i, d := range PaperDesigns {
		n := int(float64(d.NumInsts) * scale)
		if n < MinScaledInsts {
			n = MinScaledInsts
		}
		out[i] = DesignSpec{Name: d.Name, NumInsts: n, Seed: d.Seed}
	}
	return out
}

// FlowConfig drives one full flow run.
type FlowConfig struct {
	Arch tech.Arch
	// Objective selects a registered geometry objective by name
	// (internal/objective: "closedm1", "openm1", "netsep", "slackalpha",
	// ...). Empty keeps the paper formulation implied by Arch. When set,
	// Arch is derived from the objective's cell architecture, so callers
	// need not keep the two consistent.
	Objective string
	// SlackAlphaWeight, when > 0, derives per-net α multipliers from STA
	// slack (sta.CriticalityBetas over sta.NetSlacks, computed on the
	// placed design before optimization) and passes them to the optimizer
	// as core.Params.NetAlpha. Per-net-weighted objectives ("slackalpha")
	// consume them; uniform objectives ignore them.
	SlackAlphaWeight float64
	// MarginDBU passes through to core.Params.MarginDBU: the "netsep"
	// objective's separation margin (<= 0 keeps that objective's 4·δ
	// default).
	MarginDBU int64
	// Tech overrides the technology (nil: tech.Default()). The track-count
	// sweep runs the tech.Default6Track/Default9Track variants through it.
	Tech *tech.Tech
	Util float64
	// Alpha overrides the default α when > 0 (or exactly when AlphaSet).
	Alpha    float64
	AlphaSet bool
	// Sequence is the metaheuristic queue U (nil: the paper's preferred
	// (20, 4, 1) single-set sequence).
	Sequence core.Sequence
	// MaxOuterIters caps inner iterations per parameter set (ExptA-1
	// uses 1).
	MaxOuterIters int
	// Workers overrides both the parallel window count of the optimizer
	// and the routing worker count (route.Config.Workers). Zero keeps the
	// substrate defaults (GOMAXPROCS). Routed Metrics are identical for
	// every value — see internal/route/parallel.go.
	Workers int
	// SolverWorkers sets the speculative branch-and-bound worker count
	// inside each window MILP (core.Params.SolverWorkers). Zero keeps the
	// sequential solver; any count >= 2 yields identical placements.
	SolverWorkers int
	// Shards splits the optimizer's window grid into that many spatial
	// column stripes running concurrently with a boundary-straddler halo
	// (core.Params.Shards). Any shard count yields bit-identical
	// placements; the sharded loop releases window storage per window, so
	// large designs peak sublinear in the window count. Zero/one keeps
	// the pipelined single-shard engine.
	Shards int
	// TimeLimit overrides the optimizer's per-window MILP wall budget:
	// positive sets it, negative disables it entirely (node-capped only —
	// with Workers=1 the whole flow is then bit-for-bit deterministic),
	// zero keeps the substrate default.
	TimeLimit time.Duration
	// Guided turns on proxy-guided window scheduling: the flow builds a
	// proxy.Estimator over the placement, calibrates it against the
	// init-route pass's per-tile overflow, and the optimizer then runs
	// families hottest-first, skips near-empty ones, and scales each
	// window's MILP budget by its predicted congestion
	// (core.Params.Guided). Deterministic for any Workers setting.
	Guided bool
	// GuidedColdFrac/GuidedShrink/GuidedBoostCap pass through to
	// core.Params (0 keeps the defaults there: skip families below 1% of
	// the hottest, scale per-window budgets within [0.25x, 1.5x] by
	// score).
	GuidedColdFrac float64
	GuidedShrink   float64
	GuidedBoostCap float64
}

// DefaultSequence is the paper's preferred single parameter set
// (bw = bh = 20µm, lx = 4, ly = 1) from ExptA-3.
func DefaultSequence() core.Sequence {
	return core.Sequence{{BW: UmToDBU(20), BH: UmToDBU(20), LX: 4, LY: 1}}
}

// params expands the config into optimizer parameters.
func (cfg FlowConfig) params(t *tech.Tech) core.Params {
	prm := core.DefaultParams(t, cfg.Arch)
	if cfg.AlphaSet || cfg.Alpha > 0 {
		prm.Alpha = cfg.Alpha
	}
	if cfg.MaxOuterIters > 0 {
		prm.MaxOuterIters = cfg.MaxOuterIters
	}
	if cfg.Workers > 0 {
		prm.Workers = cfg.Workers
	}
	if cfg.SolverWorkers > 0 {
		prm.SolverWorkers = cfg.SolverWorkers
	}
	if cfg.Shards > 1 {
		prm.Shards = cfg.Shards
	}
	switch {
	case cfg.TimeLimit > 0:
		prm.TimeLimit = cfg.TimeLimit
	case cfg.TimeLimit < 0:
		prm.TimeLimit = 0
	}
	return prm
}

// Snapshot is the full metric set of one routed placement (one half of a
// Table 2 row).
type Snapshot struct {
	DM1     int
	M1WL    int64
	Via12   int
	HPWL    int64
	RWL     int64
	WNS     float64
	PowerMW float64
	DRVs    int
}

// FlowResult is one complete before/after run.
type FlowResult struct {
	Design   string
	NumInsts int
	Arch     tech.Arch
	Util     float64
	Alpha    float64

	Init, Final Snapshot
	// OptObj holds the optimizer's own objective trace.
	OptInitial, OptFinal core.Objective
	// OptRuntime is the VM1Opt wall time; RouteRuntime covers both
	// routing passes.
	OptRuntime   time.Duration
	RouteRuntime time.Duration
}

// snapshot routes the placement and gathers all metrics. workers sets the
// router's worker-pool size (0 keeps the default); the metrics do not
// depend on it. An interrupted routing run returns the elapsed time and
// the ctx error; the snapshot is discarded.
//
// When cal is non-nil, the router's per-tile overflow grid is fed back
// into the QoR estimator (proxy.Estimator.Calibrate) before returning:
// regions the real router congests more than the proxy predicted gain
// weight in guided window selection, closing the route→proxy→optimizer
// loop.
func snapshot(ctx context.Context, p *layout.Placement, arch tech.Arch, workers int, cal *proxy.Estimator) (Snapshot, time.Duration, error) {
	start := time.Now()
	rcfg := route.DefaultConfig(p.Tech, arch)
	if workers > 0 {
		rcfg.Workers = workers
	}
	r := route.New(p, rcfg)
	m, err := r.RouteAllCtx(ctx)
	elapsed := time.Since(start)
	if err != nil {
		return Snapshot{}, elapsed, err
	}
	if cal != nil {
		ts, tr := cal.TileSize()
		cal.Calibrate(r.OverflowGrid(ts, tr, nil), 1)
	}
	rep := sta.Analyze(p, sta.DefaultConfig(), nil)
	return Snapshot{
		DM1:     m.DM1,
		M1WL:    m.LayerWL[tech.M1],
		Via12:   m.Via12,
		HPWL:    p.TotalHPWL(),
		RWL:     m.RWL,
		WNS:     rep.WNS,
		PowerMW: rep.TotalPowerMW,
		DRVs:    m.Overflow,
	}, elapsed, nil
}

// BuildPlaced generates, floorplans, places and legalizes a design on the
// default technology.
func BuildPlaced(spec DesignSpec, arch tech.Arch, util float64) (*layout.Placement, error) {
	return BuildPlacedWith(spec, tech.Default(), arch, util)
}

// BuildPlacedWith is BuildPlaced on an explicit technology (track-count
// variants).
func BuildPlacedWith(spec DesignSpec, t *tech.Tech, arch tech.Arch, util float64) (*layout.Placement, error) {
	lib, err := cells.NewLibrary(t, arch)
	if err != nil {
		return nil, fmt.Errorf("expt: build %s: %w", spec.Name, err)
	}
	d, err := netlist.Generate(lib, netlist.DefaultGenConfig(spec.Name, spec.NumInsts, spec.Seed))
	if err != nil {
		return nil, fmt.Errorf("expt: build %s: %w", spec.Name, err)
	}
	p, err := layout.NewFloorplan(t, d, util)
	if err != nil {
		return nil, fmt.Errorf("expt: build %s: %w", spec.Name, err)
	}
	if err := place.Global(p, place.Options{}); err != nil {
		return nil, fmt.Errorf("expt: global placement failed for %s: %w", spec.Name, err)
	}
	return p, nil
}

// optimizer is the VM1Opt entry a flow variant plugs into the pipeline
// (sequential perturb-then-flip, or the joint ablation).
type optimizer func(ctx context.Context, p *layout.Placement, prm core.Params, u core.Sequence) (core.Result, error)

// runFlow composes the four-stage pipeline behind every flow variant:
//
//	build       — generate, floorplan, globally place; derive params
//	init-route  — route and snapshot the pre-optimization metrics
//	optimize    — VM1Opt (variant-selected) on the live placement
//	final-route — reroute and snapshot the post-optimization metrics
//
// The returned FlowResult holds whatever stages completed; on cancellation
// or failure the error wraps both the failing stage (*flow.StageError) and
// the underlying cause.
func runFlow(ctx context.Context, spec DesignSpec, cfg FlowConfig, opt optimizer, timingWeight float64, timingAware bool) (FlowResult, error) {
	if cfg.Util == 0 {
		cfg.Util = 0.75
	}
	seq := cfg.Sequence
	if seq == nil {
		seq = DefaultSequence()
	}
	// Resolve the objective before any stage closure captures cfg: a named
	// objective fixes the cell architecture every stage (library synthesis,
	// routing capacity model, proxy config) must agree on.
	var obj objective.GeomObjective
	if cfg.Objective != "" {
		o, err := objective.Lookup(cfg.Objective)
		if err != nil {
			return FlowResult{}, fmt.Errorf("expt: flow %s: %w", spec.Name, err)
		}
		obj = o
		cfg.Arch = o.Arch()
	}
	bt := cfg.Tech
	if bt == nil {
		bt = tech.Default()
	}

	res := FlowResult{Design: spec.Name, Arch: cfg.Arch, Util: cfg.Util}
	var prm core.Params
	var est *proxy.Estimator

	pl := flow.New(
		flow.Func("build", func(ctx context.Context, st *flow.State) error {
			p, err := BuildPlacedWith(spec, bt, cfg.Arch, cfg.Util)
			if err != nil {
				return err
			}
			st.Placement = p
			res.NumInsts = len(p.Design.Insts)
			prm = cfg.params(p.Tech)
			prm.Objective = obj
			prm.MarginDBU = cfg.MarginDBU
			if cfg.SlackAlphaWeight > 0 {
				staCfg := staDefault()
				prm.NetAlpha = staCriticalityBetas(
					staNetSlacks(p, staCfg), staCfg.ClockPeriodNs, cfg.SlackAlphaWeight)
			}
			if timingAware {
				staCfg := staDefault()
				prm.NetBeta = staCriticalityBetas(
					staNetSlacks(p, staCfg), staCfg.ClockPeriodNs, timingWeight)
			}
			if cfg.Guided {
				// Guided selection: one estimator spans the flow — built
				// here, calibrated by init-route's overflow, consulted by
				// the optimizer before every pass, and kept current by the
				// tracker after every committed move batch.
				pcfg := proxy.DefaultConfig(p.Tech, cfg.Arch)
				if obj != nil {
					pcfg = proxy.DefaultConfigForObjective(p.Tech, obj)
				}
				est = proxy.New(p, pcfg)
				prm.Guided = true
				prm.Proxy = est
				prm.GuidedColdFrac = cfg.GuidedColdFrac
				prm.GuidedShrink = cfg.GuidedShrink
				prm.GuidedBoostCap = cfg.GuidedBoostCap
			}
			res.Alpha = prm.Alpha
			return nil
		}),
		flow.Func("init-route", func(ctx context.Context, st *flow.State) error {
			snap, rt, err := snapshot(ctx, st.Placement, cfg.Arch, cfg.Workers, est)
			res.RouteRuntime += rt
			if err != nil {
				return err
			}
			res.Init = snap
			st.Put("init", snap)
			return nil
		}),
		flow.Func("optimize", func(ctx context.Context, st *flow.State) error {
			r, err := opt(ctx, st.Placement, prm, seq)
			res.OptInitial = r.Initial
			res.OptFinal = r.Final
			res.OptRuntime = r.Duration
			st.Put("optimize", r)
			return err
		}),
		flow.Func("final-route", func(ctx context.Context, st *flow.State) error {
			snap, rt, err := snapshot(ctx, st.Placement, cfg.Arch, cfg.Workers, nil)
			res.RouteRuntime += rt
			if err != nil {
				return err
			}
			res.Final = snap
			st.Put("final", snap)
			return nil
		}),
	)
	err := pl.Run(ctx, &flow.State{})
	return res, err
}

// RunFlow executes the full flow on one design: place, route (Init
// metrics), VM1Opt, reroute (Final metrics).
func RunFlow(spec DesignSpec, cfg FlowConfig) (FlowResult, error) {
	return RunFlowCtx(context.Background(), spec, cfg) // ctx-ok: context-free compat wrapper
}

// RunFlowCtx is RunFlow under a context: cancellation and deadlines reach
// every stage (the optimizer stops between window families, the router
// between batches). The partial FlowResult covers the completed stages.
func RunFlowCtx(ctx context.Context, spec DesignSpec, cfg FlowConfig) (FlowResult, error) {
	return runFlow(ctx, spec, cfg, core.VM1OptCtx, 0, false)
}

// pct formats a percent delta.
func pct(init, final float64) string {
	if init == 0 {
		return "   n/a"
	}
	return fmt.Sprintf("%+6.1f", (final-init)/init*100)
}

// WriteTable2Row prints one Table 2 row.
func WriteTable2Row(w io.Writer, r FlowResult) {
	fmt.Fprintf(w,
		"%-5s %6d %4.0f%% %6.0f | #dM1 %6d -> %6d (%s%%) | M1WL %8.1f -> %8.1f (%s%%) | via12 %6d -> %6d (%s%%) | HPWL %9.1f -> %9.1f (%s%%) | RWL %9.1f -> %9.1f (%s%%) | WNS %6.3f -> %6.3f | P(mW) %7.3f -> %7.3f (%s%%) | opt %5.1fs\n",
		r.Design, r.NumInsts, r.Util*100, r.Alpha,
		r.Init.DM1, r.Final.DM1, pct(float64(r.Init.DM1), float64(r.Final.DM1)),
		um(r.Init.M1WL), um(r.Final.M1WL), pct(float64(r.Init.M1WL), float64(r.Final.M1WL)),
		r.Init.Via12, r.Final.Via12, pct(float64(r.Init.Via12), float64(r.Final.Via12)),
		um(r.Init.HPWL), um(r.Final.HPWL), pct(float64(r.Init.HPWL), float64(r.Final.HPWL)),
		um(r.Init.RWL), um(r.Final.RWL), pct(float64(r.Init.RWL), float64(r.Final.RWL)),
		r.Init.WNS, r.Final.WNS,
		r.Init.PowerMW, r.Final.PowerMW, pct(r.Init.PowerMW, r.Final.PowerMW),
		r.OptRuntime.Seconds(),
	)
}

// um converts DBU to µm-equivalent for display.
func um(dbu int64) float64 { return float64(dbu) / 1000 }

// staDefault, staNetSlacks and staCriticalityBetas thinly wrap internal/sta
// so experiments files stay free of direct sta imports.
func staDefault() sta.Config { return sta.DefaultConfig() }

func staNetSlacks(p *layout.Placement, cfg sta.Config) []float64 {
	return sta.NetSlacks(p, cfg, nil)
}

func staCriticalityBetas(slacks []float64, period, weight float64) []float64 {
	return sta.CriticalityBetas(slacks, period, weight)
}
