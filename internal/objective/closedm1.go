package objective

import (
	"vm1place/internal/lp"
	"vm1place/internal/tech"
)

// closedM1 is the paper's ClosedM1 formulation: a pair is realized when
// the two pins' vertical M1 tracks coincide exactly (Constraint (4)),
// within one row by default. The MILP rows are ported verbatim from the
// pre-refactor wmilp assembly — emission order and big-G arithmetic are
// bit-identical, which the golden-flow tests pin.
type closedM1 struct{}

var closedM1Obj GeomObjective = closedM1{}

func init() { Register(closedM1Obj) }

func (closedM1) Name() string    { return "closedm1" }
func (closedM1) Arch() tech.Arch { return tech.ClosedM1 }

// AlignGammaDefault is 1: alignments farther than adjacent rows are
// rarely routable because intervening cells' M1 pins block the track.
func (closedM1) AlignGammaDefault(gammaRows int) int { return 1 }

func (closedM1) PairAlpha(w Weights, ni int) float64 { return w.Alpha }

func (closedM1) PairEval(w Weights, a, b PinGeom) (bool, int64) {
	return a.AlignX == b.AlignX, 0
}

// PairFeasible: the achievable alignX sets must intersect as ranges.
func (closedM1) PairFeasible(w Weights, a, b PinView) bool {
	loA, hiA := minMax64(a.AlignX)
	loB, hiB := minMax64(b.AlignX)
	return loA <= hiB && loB <= hiA
}

// EmitPair emits Constraint (4): d=1 forces equal x and |Δy| <= γH. Each
// big-G constant is the smallest valid bound computed from the pair's
// candidate geometry, which keeps the LP relaxation tight.
func (closedM1) EmitPair(e Emit, w Weights, d int, p, q PinView, tb []lp.Term) []lp.Term {
	m := e.M
	loP, hiP := minMax64(p.AlignX)
	loQ, hiQ := minMax64(q.AlignX)
	gx := float64(max64(hiP-loQ, hiQ-loP)) + 1
	loPy, hiPy := minMax64(p.CenterY)
	loQy, hiQy := minMax64(q.CenterY)
	gy := float64(max64(hiPy-loQy, hiQy-loPy)) + 1
	var cp, cq float64
	tb = tb[:0]
	tb, cp = AppendPin(tb, p, p.AlignX, 1)
	tb, cq = AppendPin(tb, q, q.AlignX, -1)
	n := len(tb)
	tb = append(tb, lp.Term{Var: d, Coef: gx})
	m.AddRow(lp.LE, gx-cp+cq, tb...)
	tb = tb[:n]
	tb = append(tb, lp.Term{Var: d, Coef: -gx})
	m.AddRow(lp.GE, -gx-cp+cq, tb...)
	var cpy, cqy float64
	tb = tb[:0]
	tb, cpy = AppendPin(tb, p, p.CenterY, 1)
	tb, cqy = AppendPin(tb, q, q.CenterY, -1)
	n = len(tb)
	tb = append(tb, lp.Term{Var: d, Coef: gy})
	m.AddRow(lp.LE, gy+e.GammaH-cpy+cqy, tb...)
	tb = tb[:n]
	tb = append(tb, lp.Term{Var: d, Coef: -gy})
	m.AddRow(lp.GE, -gy-e.GammaH-cpy+cqy, tb...)
	return tb
}

func (closedM1) Value(w Weights, weighted float64, align int, over int64, reward float64) float64 {
	return uniformValue(w, weighted, align, over)
}
