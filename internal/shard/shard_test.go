package shard

import (
	"math/rand"
	"testing"
)

// checkInvariants asserts the structural contract every Plan result must
// satisfy: monotone cuts covering [0, nwx], no empty stripe, effective K
// within the request, and OwnerCol/OwnerOf consistent with Stripe.
func checkInvariants(t *testing.T, p Partition, nwx, nwy, k int) {
	t.Helper()
	if p.K() < 1 || p.K() > k || p.K() > nwx {
		t.Fatalf("K=%d out of range (nwx=%d k=%d)", p.K(), nwx, k)
	}
	if p.cuts[0] != 0 || p.cuts[p.K()] != nwx {
		t.Fatalf("cuts %v do not cover [0,%d)", p.cuts, nwx)
	}
	for s := 0; s < p.K(); s++ {
		lo, hi := p.Stripe(s)
		if hi <= lo {
			t.Fatalf("empty stripe %d: [%d,%d)", s, lo, hi)
		}
		if p.Windows(s) != (hi-lo)*nwy {
			t.Fatalf("Windows(%d)=%d want %d", s, p.Windows(s), (hi-lo)*nwy)
		}
		for wi := lo; wi < hi; wi++ {
			if got := p.OwnerCol(wi); got != s {
				t.Fatalf("OwnerCol(%d)=%d want %d", wi, got, s)
			}
		}
	}
	for w := 0; w < nwx*nwy; w++ {
		if got, want := p.OwnerOf(w), p.OwnerCol(w%nwx); got != want {
			t.Fatalf("OwnerOf(%d)=%d want %d", w, got, want)
		}
	}
	if len(p.Loads()) != p.K() {
		t.Fatalf("len(Loads)=%d want K=%d", len(p.Loads()), p.K())
	}
}

func TestPlanUniform(t *testing.T) {
	for _, tc := range []struct{ nwx, nwy, k int }{
		{1, 1, 1}, {1, 1, 8}, {2, 3, 2}, {8, 8, 4}, {16, 5, 8},
		{17, 3, 4}, {100, 1, 8}, {7, 7, 7}, {3, 9, 8},
	} {
		p := Plan(tc.nwx, tc.nwy, tc.k, nil)
		checkInvariants(t, p, tc.nwx, tc.nwy, tc.k)
		wantK := tc.k
		if tc.nwx < wantK {
			wantK = tc.nwx
		}
		if p.K() != wantK {
			t.Errorf("nwx=%d k=%d: K=%d want %d", tc.nwx, tc.k, p.K(), wantK)
		}
		// Uniform loads: max stripe within 2x of the ideal share (the
		// greedy minimax carve is a 2-approximation at worst; on these
		// shapes it is much tighter, but 2x is the contract we rely on).
		ideal := float64(tc.nwx*tc.nwy) / float64(wantK)
		if m := p.MaxLoad(); m > 2*ideal+float64(tc.nwy) {
			t.Errorf("nwx=%d nwy=%d k=%d: MaxLoad=%.1f ideal=%.1f", tc.nwx, tc.nwy, tc.k, m, ideal)
		}
	}
}

func TestPlanWeighted(t *testing.T) {
	// One hot column (index 5) carrying half the total load: it must end
	// up isolated enough that no stripe exceeds hot-column + neighbors.
	nwx, nwy, k := 12, 4, 4
	load := make([]float64, nwx*nwy)
	for w := range load {
		load[w] = 1
		if w%nwx == 5 {
			load[w] = float64(nwx) // column 5 is nwx times hotter
		}
	}
	p := Plan(nwx, nwy, k, load)
	checkInvariants(t, p, nwx, nwy, k)
	hot := p.OwnerCol(5)
	lo, hi := p.Stripe(hot)
	if hi-lo > nwx/2 {
		t.Errorf("hot column not isolated: stripe [%d,%d)", lo, hi)
	}
	// Total load must be conserved across stripes.
	tot := 0.0
	for _, l := range p.Loads() {
		tot += l
	}
	want := float64(nwy) * float64(nwx-1+nwx)
	if diff := tot - want; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("load not conserved: got %.3f want %.3f", tot, want)
	}
}

func TestPlanDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		nwx, nwy := 1+rng.Intn(40), 1+rng.Intn(10)
		k := 1 + rng.Intn(10)
		load := make([]float64, nwx*nwy)
		for w := range load {
			load[w] = rng.Float64() * 10
			if rng.Intn(10) == 0 {
				load[w] = -load[w] // negatives must be tolerated
			}
		}
		a := Plan(nwx, nwy, k, load)
		b := Plan(nwx, nwy, k, append([]float64(nil), load...))
		checkInvariants(t, a, nwx, nwy, k)
		if a.K() != b.K() {
			t.Fatalf("trial %d: K %d vs %d", trial, a.K(), b.K())
		}
		for s := range a.cuts {
			if a.cuts[s] != b.cuts[s] {
				t.Fatalf("trial %d: cuts %v vs %v", trial, a.cuts, b.cuts)
			}
		}
	}
}

func TestPlanDegenerate(t *testing.T) {
	// Zero/absent loads, k > nwx, k < 1, short winLoad slices: all must
	// produce a valid partition rather than panic or emit empty stripes.
	for _, tc := range []struct {
		nwx, nwy, k int
		load        []float64
	}{
		{5, 2, 8, make([]float64, 10)}, // all-zero loads
		{4, 4, 0, nil},                 // k clamped up
		{-3, -1, 2, nil},               // degenerate grid clamped to 1x1
		{6, 2, 3, []float64{1, 2}},     // short load slice
	} {
		nwx, nwy := tc.nwx, tc.nwy
		if nwx < 1 {
			nwx = 1
		}
		if nwy < 1 {
			nwy = 1
		}
		k := tc.k
		if k < 1 {
			k = 1
		}
		p := Plan(tc.nwx, tc.nwy, tc.k, tc.load)
		checkInvariants(t, p, nwx, nwy, k)
	}
}

func TestHalo(t *testing.T) {
	p := Plan(12, 3, 4, nil)
	if p.K() != 4 {
		t.Fatalf("K=%d want 4", p.K())
	}
	b := p.Boundaries()
	if len(b) != 3 {
		t.Fatalf("Boundaries=%v want 3 cuts", b)
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("boundaries not increasing: %v", b)
		}
	}
	h := p.HaloCounts()
	// End stripes touch one boundary, interior stripes two.
	if h[0] != 1*3 || h[3] != 1*3 {
		t.Errorf("end halos %v want 3", h)
	}
	if h[1] != 2*3 || h[2] != 2*3 {
		t.Errorf("interior halos %v want 6", h)
	}
	if f := p.HaloFrac(); f <= 0 || f >= 1 {
		t.Errorf("HaloFrac=%v want in (0,1)", f)
	}
	// Single stripe: no boundaries, zero halo.
	one := Plan(12, 3, 1, nil)
	if len(one.Boundaries()) != 0 || one.HaloFrac() != 0 {
		t.Errorf("single-stripe halo: boundaries=%v frac=%v", one.Boundaries(), one.HaloFrac())
	}
}
