package objective

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"vm1place/internal/lp"
	"vm1place/internal/tech"
)

// ErrUnknownObjective reports a Lookup of a name no objective registered.
// Lookup wraps it, so callers can errors.Is against it.
var ErrUnknownObjective = errors.New("objective: unknown objective")

// registry maps names to implementations. names mirrors the keys sorted,
// maintained at Register time so listings never iterate the map.
var (
	registry = map[string]GeomObjective{}
	names    []string
)

// Register adds an objective under its Name. Registration happens in
// package init blocks; a duplicate name is a programming error.
func Register(o GeomObjective) {
	name := o.Name()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("objective: duplicate registration of %q", name)) // panic-ok: init-time registration invariant
	}
	registry[name] = o
	i := sort.SearchStrings(names, name)
	names = append(names, "")
	copy(names[i+1:], names[i:])
	names[i] = name
}

// Lookup resolves a registered objective by name. Unknown names return an
// error wrapping ErrUnknownObjective that lists the registered names.
func Lookup(name string) (GeomObjective, error) {
	if o, ok := registry[name]; ok {
		return o, nil
	}
	return nil, fmt.Errorf("%w: %q (registered: %s)",
		ErrUnknownObjective, name, strings.Join(names, "|"))
}

// Names returns the registered objective names in sorted order.
func Names() []string {
	return append([]string(nil), names...)
}

// ForArch returns the paper objective matching a cell architecture — the
// default when no objective is named explicitly. Architectures with
// nothing to optimize (Conventional) get the inert "none" objective,
// preserving the pre-refactor behavior of the Arch switches' default
// cases: no pairs, Value = Σβn·wn.
func ForArch(arch tech.Arch) GeomObjective {
	switch arch {
	case tech.ClosedM1:
		return closedM1Obj
	case tech.OpenM1:
		return openM1Obj
	default:
		return noneObj
	}
}

// none is the inert objective: no pair is ever feasible or realized.
type none struct{}

var noneObj GeomObjective = none{}

func (none) Name() string                                   { return "none" }
func (none) Arch() tech.Arch                                { return tech.Conventional }
func (none) AlignGammaDefault(gammaRows int) int            { return 1 }
func (none) PairAlpha(w Weights, ni int) float64            { return w.Alpha }
func (none) PairEval(w Weights, a, b PinGeom) (bool, int64) { return false, 0 }
func (none) PairFeasible(w Weights, a, b PinView) bool      { return false }
func (none) EmitPair(e Emit, w Weights, d int, p, q PinView, tb []lp.Term) []lp.Term {
	return tb
}
func (none) Value(w Weights, weighted float64, align int, over int64, reward float64) float64 {
	return uniformValue(w, weighted, align, over)
}
