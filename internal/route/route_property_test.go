package route

import (
	"testing"

	"vm1place/internal/cells"
	"vm1place/internal/layout"
	"vm1place/internal/netlist"
	"vm1place/internal/place"
	"vm1place/internal/tech"
)

// TestUsageRoundTrip: adding and removing a path's usage restores zero.
func TestUsageRoundTrip(t *testing.T) {
	tc := tech.Default()
	lib := cells.MustNewLibrary(tc, tech.ClosedM1)
	d := netlist.MustGenerate(lib, netlist.DefaultGenConfig("u", 300, 81))
	p := layout.MustNewFloorplan(tc, d, 0.7)
	if err := place.Global(p, place.Options{}); err != nil {
		t.Fatal(err)
	}
	r := New(p, DefaultConfig(tc, tech.ClosedM1))
	r.RouteAll()
	// Rip every net; all usage must return to zero.
	for ni := range d.Nets {
		r.ripNet(ni)
	}
	for l := tech.M1; l <= tech.M4; l++ {
		for i, u := range r.usage[l] {
			if u != 0 {
				t.Fatalf("layer %s edge %d usage %d after full rip-up", l, i, u)
			}
		}
	}
}

// TestPathsAreConnected: every stored path is a chain of grid-adjacent
// nodes (same-layer steps of one cell, or vias).
func TestPathsAreConnected(t *testing.T) {
	tc := tech.Default()
	lib := cells.MustNewLibrary(tc, tech.OpenM1)
	d := netlist.MustGenerate(lib, netlist.DefaultGenConfig("c", 300, 82))
	p := layout.MustNewFloorplan(tc, d, 0.7)
	if err := place.Global(p, place.Options{}); err != nil {
		t.Fatal(err)
	}
	r := New(p, DefaultConfig(tc, tech.OpenM1))
	r.RouteAll()
	for ni, nr := range r.routes {
		for _, path := range nr.paths {
			for i := 1; i < len(path); i++ {
				la, xa, ya := r.nodeOf(path[i-1])
				lb, xb, yb := r.nodeOf(path[i])
				dl := int(la) - int(lb)
				if dl < 0 {
					dl = -dl
				}
				dx := xa - xb
				if dx < 0 {
					dx = -dx
				}
				dy := ya - yb
				if dy < 0 {
					dy = -dy
				}
				if dl+dx+dy != 1 {
					t.Fatalf("net %d: non-adjacent step (%s,%d,%d)->(%s,%d,%d)",
						ni, la, xa, ya, lb, xb, yb)
				}
				if dl == 1 && (dx != 0 || dy != 0) {
					t.Fatalf("net %d: diagonal via", ni)
				}
				if dl == 0 {
					if la.Direction() == tech.Vertical && dx != 0 {
						t.Fatalf("net %d: horizontal move on vertical layer %s", ni, la)
					}
					if la.Direction() == tech.Horizontal && dy != 0 {
						t.Fatalf("net %d: vertical move on horizontal layer %s", ni, la)
					}
				}
			}
		}
	}
}

// TestDM1PathsRespectGamma: every counted dM1 spans at most Gamma rows and
// stays on one M1 track.
func TestDM1PathsRespectGamma(t *testing.T) {
	tc := tech.Default()
	lib := cells.MustNewLibrary(tc, tech.ClosedM1)
	d := netlist.MustGenerate(lib, netlist.DefaultGenConfig("g", 400, 83))
	p := layout.MustNewFloorplan(tc, d, 0.7)
	if err := place.Global(p, place.Options{}); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(tc, tech.ClosedM1)
	r := New(p, cfg)
	r.RouteAll()
	for ni, nr := range r.routes {
		for pi, path := range nr.paths {
			if !nr.dm1[pi] {
				continue
			}
			_, x0, yMin := r.nodeOf(path[0])
			yMax := yMin
			for _, id := range path {
				l, x, y := r.nodeOf(id)
				if l != tech.M1 {
					t.Fatalf("net %d: dM1 path leaves M1", ni)
				}
				if x != x0 {
					t.Fatalf("net %d: dM1 path changes track", ni)
				}
				if y < yMin {
					yMin = y
				}
				if y > yMax {
					yMax = y
				}
			}
			if yMax-yMin > cfg.Gamma {
				t.Fatalf("net %d: dM1 spans %d rows > gamma %d", ni, yMax-yMin, cfg.Gamma)
			}
		}
	}
}

// TestBlockedM1NeverTraversedByForeignNets: no routed path occupies an M1
// node blocked by another net's pin.
func TestBlockedM1NeverTraversedByForeignNets(t *testing.T) {
	tc := tech.Default()
	lib := cells.MustNewLibrary(tc, tech.ClosedM1)
	d := netlist.MustGenerate(lib, netlist.DefaultGenConfig("b", 400, 84))
	p := layout.MustNewFloorplan(tc, d, 0.7)
	if err := place.Global(p, place.Options{}); err != nil {
		t.Fatal(err)
	}
	r := New(p, DefaultConfig(tc, tech.ClosedM1))
	r.RouteAll()
	for ni, nr := range r.routes {
		for _, path := range nr.paths {
			for _, id := range path {
				l, x, y := r.nodeOf(id)
				if l != tech.M1 {
					continue
				}
				b := r.blockedM1[r.blockIdx(x, y)]
				if b != 0 && b != int32(ni+1) {
					t.Fatalf("net %d traverses M1 node (%d,%d) blocked by net %d",
						ni, x, y, b-1)
				}
			}
		}
	}
}

// TestHigherCapacityLowersOverflow: doubling M2/M3 capacity cannot
// increase the overflow metric.
func TestHigherCapacityLowersOverflow(t *testing.T) {
	tc := tech.Default()
	lib := cells.MustNewLibrary(tc, tech.ClosedM1)
	d := netlist.MustGenerate(lib, netlist.DefaultGenConfig("o", 600, 85))
	p := layout.MustNewFloorplan(tc, d, 0.84)
	if err := place.Global(p, place.Options{}); err != nil {
		t.Fatal(err)
	}
	base := DefaultConfig(tc, tech.ClosedM1)
	mBase := New(p, base).RouteAll()
	roomy := base
	roomy.Caps[tech.M2] *= 2
	roomy.Caps[tech.M3] *= 2
	mRoomy := New(p, roomy).RouteAll()
	if mRoomy.Overflow > mBase.Overflow {
		t.Errorf("more capacity raised overflow: %d -> %d", mBase.Overflow, mRoomy.Overflow)
	}
}
