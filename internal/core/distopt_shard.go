package core

import (
	"context"
	"sync"
	"sync/atomic"

	"vm1place/internal/shard"
)

// distPassSharded is distPass's inner loop for Params.Shards > 1: the
// window grid is split into contiguous column stripes (internal/shard),
// every stripe walks its slice of each diagonal family concurrently, and
// the stripes meet at a barrier per family where their moves merge into
// the one ApplyMoves batch the single-shard engine would have committed.
//
// Determinism/bit-identity with the pipelined path:
//
//   - During a family the placement is read-only (moves commit only at
//     the barrier), window geometry is tile-local, and each window's
//     solve is independent of the worker and arena that runs it (the
//     PR 7 worker-invariance property) — so per-window results cannot
//     depend on the stripe assignment.
//   - Each window's moves land at its family-order position and the
//     barrier concatenates them in that order, which is exactly the
//     order the single-shard loop extracts them in; one ApplyMoves per
//     family then leaves identical tracker and estimator state. The
//     shard "index order" merge is this family-window order: windows of
//     a stripe appear in it exactly as the partition's column ranges
//     interleave the family.
//
// Memory: unlike the pipelined path — which materializes a whole family
// (plus the next family's geometry) at once — each worker materializes
// one window at a time from the freelist slabs and releases it the
// moment its moves are extracted, so live window storage is bounded by
// the worker count, not the grid. That is what makes peak memory
// sublinear in windows on large designs; the price is that the sharded
// path does not prebuild the next family's geometry during solves.
//
// Cancellation matches distPass: checked between families (the commit
// boundaries), so an interrupted pass returns a legal placement and a
// consistent tracker.
func distPassSharded(ctx context.Context, t *ObjTracker, ps ParamSet, g passGrid,
	pool *solverPool, fprm Params, families [][]int, plan famPlan,
	allowMove, allowFlip bool) (Objective, error) {
	p, prm := t.p, t.prm

	// Stripe the grid by predicted load: the proxy's window scores when
	// guided scoring ran, otherwise each window's instance population —
	// both predict solve work far better than raw window area.
	winLoad := plan.score
	if winLoad == nil {
		winLoad = make([]float64, len(g.buckets))
		for w := range g.buckets {
			winLoad[w] = float64(len(g.buckets[w]))
		}
	}
	part := shard.Plan(g.nwx, g.nwy, shardsOf(prm), winLoad)

	perShard := pool.workers / part.K()
	if perShard < 1 {
		perShard = 1
	}

	// Per-stripe worklists, rebuilt per family: work[s] holds the
	// family-order positions of the windows stripe s owns. Building them
	// by a single in-order walk over the family keeps the stripe
	// assignment a pure function of (grid, loads, shard count).
	work := make([][]int, part.K())
	var moves []Move
	for oi := 0; oi < len(plan.order); oi++ {
		if err := ctx.Err(); err != nil {
			return t.Objective(), err
		}
		fam := families[plan.order[oi]]
		for s := range work {
			work[s] = work[s][:0]
		}
		for kpos, wid := range fam {
			s := part.OwnerOf(wid)
			work[s] = append(work[s], kpos)
		}

		// famMoves[kpos] collects window kpos's accepted relocations;
		// slots are written by exactly one worker, read after the
		// barrier.
		famMoves := make([][]Move, len(fam))
		var wg sync.WaitGroup
		for s := 0; s < part.K(); s++ {
			tasks := work[s]
			if len(tasks) == 0 {
				continue
			}
			workers := perShard
			if workers > len(tasks) {
				workers = len(tasks)
			}
			cursor := new(atomic.Int64)
			for wk := 0; wk < workers; wk++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					// Borrow a solve workspace inside the goroutine:
					// with K stripes sharing the pool, takes block until
					// a workspace frees rather than a stripe holding one
					// idle.
					sv := <-pool.solvers
					defer func() { pool.solvers <- sv }()
					for {
						i := int(cursor.Add(1)) - 1
						if i >= len(tasks) {
							return
						}
						kpos := tasks[i]
						wid := fam[kpos]
						q := fprm
						q.TimeLimit = plan.wtl[wid]
						w := pool.getWindow()
						w.buildGeom(p, q, g.rects[wid], ps, g.buckets[wid],
							allowMove, allowFlip)
						w.buildNetsPairs()
						w.sv = sv
						assign := w.solve()
						w.sv = nil
						famMoves[kpos] = appendWindowMoves(famMoves[kpos][:0], p, w, assign)
						pool.putWindow(w)
					}
				}()
			}
		}
		wg.Wait()

		// Family barrier: merge every stripe's moves in family window
		// order — the single-shard extraction order — and commit them as
		// one batch.
		moves = moves[:0]
		for _, wm := range famMoves {
			moves = append(moves, wm...)
		}
		if len(moves) > 0 {
			t.ApplyMoves(moves)
		}
	}
	return t.Objective(), nil
}
