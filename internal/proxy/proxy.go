// Package proxy is a fast, standalone QoR estimator for vm1place — the
// PlacementCost-style API of the optimizer's inner loop. It predicts
// per-tile routing congestion and wirelength from the placement alone,
// with no maze search: net demand is spread probabilistically over the
// tiles of each net's bounding box (a direction-split RUDY model) using
// the same per-edge capacities the real router enforces
// (route.CostModel), plus a per-tile signal-pin load that stands in for
// M1 pin-access pressure. Scores are callable thousands of times per
// second and the estimator updates incrementally as cells move, so the
// optimizer can rank window families by predicted congestion before
// spending MILP budget on them (internal/core's guided selection).
//
// All demand bookkeeping is integer fixed-point (demandScale units per
// routing track) and every cache subtracts exactly what it previously
// added, so an incrementally maintained estimator is bit-identical to a
// freshly built one — the property tests pin this. The steady state
// allocates nothing: every array is sized at construction and reused.
package proxy

import (
	"fmt"

	"vm1place/internal/cells"
	"vm1place/internal/layout"
	"vm1place/internal/netlist"
	"vm1place/internal/objective"
	"vm1place/internal/route"
	"vm1place/internal/tech"
)

// demandScale is the fixed-point scale of demand/capacity bookkeeping:
// one routing track of expected usage across one grid cell is
// demandScale units. Integer units make incremental subtract/add exact.
const demandScale = 4096

// calRegions is the per-axis count of calibration regions: the die is
// split into calRegions x calRegions super-regions, each with its own
// multiplier on predicted congestion, recalibrated from routed overflow.
const calRegions = 4

// Config tunes the estimator.
type Config struct {
	// TileSites/TileRows are the tile dimensions in grid cells (site
	// columns x rows). The default 8x8 matches the router's coloring tile.
	TileSites, TileRows int
	// HCapPerCell/VCapPerCell are the per-grid-cell track capacities by
	// preferred direction, from route.CostModel. VCapPerCell should
	// include M1 only when the architecture can route it.
	HCapPerCell, VCapPerCell int
	// PinCostMilli is the vertical demand charged per signal pin, in
	// milli-tracks: pins consume M1/pin-access resources (and under
	// ClosedM1 block the M1 track of their column), so pin-dense tiles
	// congest before their wire demand alone says so.
	PinCostMilli int64
	// PinWeight weighs the raw per-tile pin count in WindowScore — the
	// alignment-opportunity term: windows rich in signal pins have more
	// pairs the MILP can align, independent of predicted overflow.
	PinWeight float64
	// TopFrac is the tile fraction of TopFracOverflow (default 0.1: the
	// top-10% congested tiles, the circuit-training congestion metric).
	TopFrac float64
}

// DefaultConfig derives estimator parameters from the router's capacity
// model for an architecture.
func DefaultConfig(t *tech.Tech, arch tech.Arch) Config {
	return ConfigFromCostModel(route.DefaultConfig(t, arch).CostModel())
}

// DefaultConfigForObjective derives estimator parameters for a geometry
// objective: the capacity model follows the cell architecture whose pin
// geometry the objective evaluates, so objective-driven flows (expt,
// cmd/vm1opt -objective) get a consistent congestion model without
// re-deriving the architecture themselves.
func DefaultConfigForObjective(t *tech.Tech, o objective.GeomObjective) Config {
	return DefaultConfig(t, o.Arch())
}

// ConfigFromCostModel builds a Config from an explicit route.CostModel.
func ConfigFromCostModel(cm route.CostModel) Config {
	return Config{
		TileSites:    8,
		TileRows:     8,
		HCapPerCell:  cm.HCapPerCell,
		VCapPerCell:  cm.VCapPerCell + cm.M1CapPerCell,
		PinCostMilli: 500,
		PinWeight:    0.02,
		TopFrac:      0.1,
	}
}

// tileBox is a cached net footprint: the net's bounding box in grid
// coordinates (inclusive site/row ranges), from which the net's exact
// integer demand contribution is recomputed for subtraction.
type tileBox struct {
	x0, x1, y0, y1 int32
	has            bool
}

func (b *tileBox) add(s, r int32) {
	if !b.has {
		*b = tileBox{x0: s, x1: s, y0: r, y1: r, has: true}
		return
	}
	if s < b.x0 {
		b.x0 = s
	}
	if s > b.x1 {
		b.x1 = s
	}
	if r < b.y0 {
		b.y0 = r
	}
	if r > b.y1 {
		b.y1 = r
	}
}

// Estimator is the incrementally maintained congestion/wirelength model
// of one placement. It is not safe for concurrent mutation; concurrent
// reads of scores are fine between updates.
type Estimator struct {
	p   *layout.Placement
	cfg Config

	ntx, nty int // tile grid dimensions

	hDem, vDem []int64 // per-tile demand, demandScale fixed-point
	hCap, vCap []int64 // per-tile capacity (edge tiles pro-rated)
	pins       []int32 // per-tile signal-pin count

	alpha [calRegions * calRegions]float64 // calibration multipliers

	// Per-net caches: the exact footprint and wirelength last added,
	// plus the static contribution of the net's ports (ports never
	// move, so their partial box is computed once).
	netBox  []tileBox
	portBox []tileBox
	netWL   []int64
	totalWL int64

	// inst -> distinct non-clock incident nets (CSR-backed, like
	// core.ObjTracker's index).
	instNets [][]int32

	// Flat per-signal-pin cached tile ids, CSR by instance.
	pinStart []int32
	pinTile  []int32

	// Epoch-marked net dedup for one Update batch.
	mark  []int32
	epoch int32

	scratch []int64 // TopFracOverflow selection buffer
}

// New builds an estimator over the placement and fully evaluates it.
func New(p *layout.Placement, cfg Config) *Estimator {
	if cfg.TileSites <= 0 {
		cfg.TileSites = 8
	}
	if cfg.TileRows <= 0 {
		cfg.TileRows = 8
	}
	if cfg.TopFrac <= 0 || cfg.TopFrac > 1 {
		cfg.TopFrac = 0.1
	}
	e := &Estimator{
		p:   p,
		cfg: cfg,
		ntx: (p.NumSites + cfg.TileSites - 1) / cfg.TileSites,
		nty: (p.NumRows + cfg.TileRows - 1) / cfg.TileRows,
	}
	nt := e.ntx * e.nty
	e.hDem = make([]int64, nt)
	e.vDem = make([]int64, nt)
	e.hCap = make([]int64, nt)
	e.vCap = make([]int64, nt)
	e.pins = make([]int32, nt)
	e.scratch = make([]int64, nt)
	for i := range e.alpha {
		e.alpha[i] = 1
	}

	nNets := len(p.Design.Nets)
	e.netBox = make([]tileBox, nNets)
	e.netWL = make([]int64, nNets)
	e.mark = make([]int32, nNets)

	e.buildCaps()
	e.buildPortBoxes()
	e.buildInstNets()
	e.buildPinIndex()
	e.Rebuild()
	return e
}

// TileDims returns the tile grid dimensions (tiles in x, tiles in y).
func (e *Estimator) TileDims() (int, int) { return e.ntx, e.nty }

// TileSize returns the configured tile size in grid cells.
func (e *Estimator) TileSize() (int, int) { return e.cfg.TileSites, e.cfg.TileRows }

// buildCaps fills the per-tile capacities, pro-rating tiles clipped by
// the die boundary.
func (e *Estimator) buildCaps() {
	p, cfg := e.p, e.cfg
	for ty := 0; ty < e.nty; ty++ {
		rows := cfg.TileRows
		if r := p.NumRows - ty*cfg.TileRows; r < rows {
			rows = r
		}
		for tx := 0; tx < e.ntx; tx++ {
			sites := cfg.TileSites
			if s := p.NumSites - tx*cfg.TileSites; s < sites {
				sites = s
			}
			area := int64(sites) * int64(rows)
			t := ty*e.ntx + tx
			e.hCap[t] = area * int64(cfg.HCapPerCell) * demandScale
			e.vCap[t] = area * int64(cfg.VCapPerCell) * demandScale
		}
	}
}

// clampSite/clampRow clamp a grid coordinate to the die.
func (e *Estimator) clampSite(s int) int32 {
	if s < 0 {
		s = 0
	}
	if s >= e.p.NumSites {
		s = e.p.NumSites - 1
	}
	return int32(s)
}

func (e *Estimator) clampRow(r int) int32 {
	if r < 0 {
		r = 0
	}
	if r >= e.p.NumRows {
		r = e.p.NumRows - 1
	}
	return int32(r)
}

// buildPortBoxes precomputes each net's port-only partial box. Ports are
// fixed at the die edge, so this never changes after construction.
func (e *Estimator) buildPortBoxes() {
	p := e.p
	d := p.Design
	e.portBox = make([]tileBox, len(d.Nets))
	for pi := range d.Ports {
		ni := d.Ports[pi].Net
		s := e.clampSite(p.Tech.XToSite(p.PortXY[pi].X))
		r := e.clampRow(p.Tech.YToRow(p.PortXY[pi].Y))
		e.portBox[ni].add(s, r)
	}
}

// buildInstNets builds the inst -> distinct non-clock nets index.
func (e *Estimator) buildInstNets() {
	d := e.p.Design
	nInsts := len(d.Insts)
	counts := make([]int32, nInsts)
	for ni := range d.Nets {
		if d.Nets[ni].IsClock {
			continue
		}
		d.Nets[ni].ForEachConn(func(c netlist.Conn) { counts[c.Inst]++ })
	}
	total := int64(0)
	for _, c := range counts {
		total += int64(c)
	}
	backing := make([]int32, total)
	e.instNets = make([][]int32, nInsts)
	off := int64(0)
	for i, c := range counts {
		e.instNets[i] = backing[off : off : off+int64(c)]
		off += int64(c)
	}
	last := make([]int32, nInsts)
	for i := range last {
		last[i] = -1
	}
	for ni := range d.Nets {
		if d.Nets[ni].IsClock {
			continue
		}
		d.Nets[ni].ForEachConn(func(c netlist.Conn) {
			if last[c.Inst] != int32(ni) {
				last[c.Inst] = int32(ni)
				e.instNets[c.Inst] = append(e.instNets[c.Inst], int32(ni))
			}
		})
	}
}

// buildPinIndex sizes the flat per-signal-pin tile cache (CSR by inst).
func (e *Estimator) buildPinIndex() {
	d := e.p.Design
	nInsts := len(d.Insts)
	e.pinStart = make([]int32, nInsts+1)
	for i := range d.Insts {
		n := int32(0)
		m := d.Insts[i].Master
		for pi := range m.Pins {
			if m.Pins[pi].IsSignal() {
				n++
			}
		}
		e.pinStart[i+1] = e.pinStart[i] + n
	}
	e.pinTile = make([]int32, e.pinStart[nInsts])
	for i := range e.pinTile {
		e.pinTile[i] = -1
	}
}

// Rebuild re-derives every cache from the current placement — the full
// (non-incremental) evaluation. Update keeps the same state current
// move-by-move; the two are bit-identical by construction.
func (e *Estimator) Rebuild() {
	for i := range e.hDem {
		e.hDem[i] = 0
		e.vDem[i] = 0
		e.pins[i] = 0
	}
	e.totalWL = 0
	d := e.p.Design
	for ni := range d.Nets {
		e.netBox[ni] = tileBox{}
		e.netWL[ni] = 0
		if d.Nets[ni].IsClock {
			continue
		}
		e.addNet(ni)
	}
	for k := range e.pinTile {
		e.pinTile[k] = -1
	}
	for i := range d.Insts {
		e.placePins(i)
	}
}

// Update re-evaluates the estimator after the given instances moved (the
// placement must already reflect the new locations — core.ObjTracker
// calls this right after SetLoc). Only the pins of the moved instances
// and the nets incident to them are touched. Repeated instances and
// shared nets are handled once per batch.
func (e *Estimator) Update(insts []int) {
	e.epoch++
	for _, i := range insts {
		e.removePins(i)
	}
	for _, i := range insts {
		e.placePins(i)
		for _, ni := range e.instNets[i] {
			if e.mark[ni] != e.epoch {
				e.mark[ni] = e.epoch
				e.removeNet(int(ni))
				e.addNet(int(ni))
			}
		}
	}
}

// removePins subtracts instance i's cached pin-tile contributions. The
// -1 sentinel makes a repeated remove (duplicate inst in one batch) a
// no-op; placePins below refills every slot it owns.
func (e *Estimator) removePins(i int) {
	for k := e.pinStart[i]; k < e.pinStart[i+1]; k++ {
		if t := e.pinTile[k]; t >= 0 {
			e.pins[t]--
			e.pinTile[k] = -1
		}
	}
}

// placePins records instance i's signal-pin access columns into the
// per-tile pin counts, caching each pin's tile for exact removal. A
// duplicate inst in one Update batch is first re-removed so counts stay
// exact.
func (e *Estimator) placePins(i int) {
	e.removePins(i)
	p := e.p
	m := p.Design.Insts[i].Master
	x := p.InstX(i)
	flip := p.Flip[i]
	row := e.clampRow(p.Row[i])
	trow := row / int32(e.cfg.TileRows) * int32(e.ntx)
	k := e.pinStart[i]
	for pi := range m.Pins {
		pin := &m.Pins[pi]
		if !pin.IsSignal() {
			continue
		}
		sx := e.clampSite(p.Tech.XToSite(x + cells.AlignX(m, p.Tech, pin, flip)))
		t := trow + sx/int32(e.cfg.TileSites)
		e.pins[t]++
		e.pinTile[k] = t
		k++
	}
}

// netGridBox computes a net's bounding box in grid coordinates over its
// instance locations and precomputed port box. Instance granularity
// (cell origin site/row) is deliberate: pin offsets are sub-tile, and
// cell-level boxes make the box — and therefore the demand — a pure
// function of (SiteX, Row), independent of Flip.
func (e *Estimator) netGridBox(ni int) tileBox {
	p := e.p
	b := e.portBox[ni]
	p.Design.Nets[ni].ForEachConn(func(c netlist.Conn) {
		b.add(e.clampSite(p.SiteX[c.Inst]), e.clampRow(p.Row[c.Inst]))
	})
	return b
}

// spreadNet adds (sign=+1) or subtracts (sign=-1) the demand of a net
// box. The per-tile contribution is an exact integer function of the
// box, so a subtract with the cached box undoes the earlier add exactly.
//
// Model: a net spanning w sites x h rows needs ~one horizontal track
// somewhere in its box (expected per-cell horizontal usage 1/h) and ~one
// vertical track (expected per-cell vertical usage 1/w) — the
// direction-split RUDY estimate.
func (e *Estimator) spreadNet(b tileBox, sign int64) {
	w := int64(b.x1-b.x0) + 1
	h := int64(b.y1-b.y0) + 1
	ts, tr := e.cfg.TileSites, e.cfg.TileRows
	tx0, tx1 := int(b.x0)/ts, int(b.x1)/ts
	ty0, ty1 := int(b.y0)/tr, int(b.y1)/tr
	for ty := ty0; ty <= ty1; ty++ {
		ry0, ry1 := ty*tr, ty*tr+tr-1
		if ry0 < int(b.y0) {
			ry0 = int(b.y0)
		}
		if ry1 > int(b.y1) {
			ry1 = int(b.y1)
		}
		oy := int64(ry1 - ry0 + 1)
		base := ty * e.ntx
		for tx := tx0; tx <= tx1; tx++ {
			rx0, rx1 := tx*ts, tx*ts+ts-1
			if rx0 < int(b.x0) {
				rx0 = int(b.x0)
			}
			if rx1 > int(b.x1) {
				rx1 = int(b.x1)
			}
			ox := int64(rx1 - rx0 + 1)
			covered := ox * oy
			t := base + tx
			e.hDem[t] += sign * (covered * demandScale / h)
			e.vDem[t] += sign * (covered * demandScale / w)
		}
	}
}

// addNet computes and applies a net's footprint, caching it.
func (e *Estimator) addNet(ni int) {
	b := e.netGridBox(ni)
	e.netBox[ni] = b
	if !b.has {
		e.netWL[ni] = 0
		return
	}
	wl := int64(b.x1-b.x0)*e.p.Tech.SiteWidth + int64(b.y1-b.y0)*e.p.Tech.RowHeight
	e.netWL[ni] = wl
	e.totalWL += wl
	e.spreadNet(b, +1)
}

// removeNet subtracts a net's cached footprint.
func (e *Estimator) removeNet(ni int) {
	b := e.netBox[ni]
	if !b.has {
		return
	}
	e.totalWL -= e.netWL[ni]
	e.spreadNet(b, -1)
	e.netBox[ni] = tileBox{}
	e.netWL[ni] = 0
}

// WL returns the tracked cell-granular wirelength estimate (DBU): the
// summed half-perimeter of every non-clock net's cell bounding box. It
// moves with the placement exactly like HPWL does, at tile-model cost.
func (e *Estimator) WL() int64 { return e.totalWL }

// Check verifies the incremental caches against a fresh rebuild,
// returning an error describing the first mismatch. Test hook.
func (e *Estimator) Check() error {
	f := New(e.p, e.cfg)
	for i := range e.hDem {
		if e.hDem[i] != f.hDem[i] || e.vDem[i] != f.vDem[i] || e.pins[i] != f.pins[i] {
			return fmt.Errorf("proxy: tile %d diverged: hDem %d/%d vDem %d/%d pins %d/%d",
				i, e.hDem[i], f.hDem[i], e.vDem[i], f.vDem[i], e.pins[i], f.pins[i])
		}
	}
	if e.totalWL != f.totalWL {
		return fmt.Errorf("proxy: WL diverged: %d vs %d", e.totalWL, f.totalWL)
	}
	return nil
}
