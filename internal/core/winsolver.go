package core

import (
	"sync"

	"vm1place/internal/lp"
	"vm1place/internal/milp"
)

// winSolver is one DistOpt worker's reusable solve workspace: the LP scratch
// arena, a pooled model pair rebuilt in place for every window (lp.Model.
// Reset bumps the model generation, so the arena's model-keyed caches are
// correctly invalidated), and every buffer the window MILP assembly,
// decoding, repair and greedy fallback need. One solver is owned by exactly
// one worker goroutine at a time; windows borrow it for the duration of one
// solve via window.sv.
type winSolver struct {
	arena *lp.Arena
	mdl   *lp.Model
	mm    *milp.Model

	// buildModel scratch.
	lambda   [][]int // λ variable ids per cell/candidate (carved from lamSlab)
	lamSlab  []int
	tbuf     []lp.Term // row-assembly buffer (AddRow copies terms)
	occTerms [][]lp.Term
	contrib  []winPin // net-bound contributors per axis

	// solveMILP / repair / greedy scratch.
	incumbent []float64
	vec       []float64
	assign    []int
	order     []int
	occ       []bool
	netsOf    [][]*winNet
	pairsOf   [][]*winPair
	stamp     []int
}

func newWinSolver() *winSolver { return &winSolver{arena: lp.NewArena()} }

// models returns the pooled (lp, milp) model pair, reset for a fresh build.
func (sv *winSolver) models() (*lp.Model, *milp.Model) {
	if sv.mdl == nil {
		sv.mdl = lp.NewModel()
		sv.mm = milp.NewModel(sv.mdl)
		return sv.mdl, sv.mm
	}
	sv.mdl.Reset()
	sv.mm.Reset(sv.mdl)
	return sv.mdl, sv.mm
}

// solver returns the window's solve workspace, lazily creating a private
// one for standalone (non-DistOpt) use.
func (w *window) solver() *winSolver {
	if w.sv == nil {
		w.sv = newWinSolver()
	}
	return w.sv
}

// solverPool hands out per-worker solve workspaces and recycles window
// structs across families and passes, so the steady-state DistOpt inner
// loop allocates per pass, not per window.
type solverPool struct {
	workers int
	solvers chan *winSolver

	mu   sync.Mutex
	free []*window
}

// newSolverPool builds one solve workspace per worker. Workspaces are
// handed out through the channel so a worker owns one exclusively for a
// batch of window solves; across families and passes the same arenas and
// model buffers keep serving windows, which avoids re-allocating the basis
// factorization and constraint matrix storage for every MILP.
func newSolverPool(workers int) *solverPool {
	sp := &solverPool{
		workers: workers,
		solvers: make(chan *winSolver, workers),
	}
	for i := 0; i < workers; i++ {
		sp.solvers <- newWinSolver()
	}
	return sp
}

// getWindow returns a recycled window (to be rebuilt with buildGeom) or a
// fresh one when the freelist is empty.
func (sp *solverPool) getWindow() *window {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if n := len(sp.free); n > 0 {
		w := sp.free[n-1]
		sp.free = sp.free[:n-1]
		return w
	}
	return &window{}
}

// putWindow returns one window to the freelist. The sharded inner loop
// releases each window the moment its moves are extracted — instead of
// holding a whole family like putWindows — so live window storage is
// bounded by in-flight solves, not by the grid.
func (sp *solverPool) putWindow(w *window) {
	if w == nil {
		return
	}
	sp.mu.Lock()
	sp.free = append(sp.free, w)
	sp.mu.Unlock()
}

// putWindows returns solved windows to the freelist once their moves have
// been collected.
func (sp *solverPool) putWindows(ws []*window) {
	if len(ws) == 0 {
		return
	}
	sp.mu.Lock()
	for _, w := range ws {
		if w != nil {
			sp.free = append(sp.free, w)
		}
	}
	sp.mu.Unlock()
}
