package analysis_test

import (
	"testing"

	"vm1place/internal/analysis"
	"vm1place/internal/analysis/analysistest"
)

// Each analyzer is exercised against fixtures holding at least one
// caught violation and one tagged suppression, plus a package where its
// path predicate must keep it silent.

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.MapOrderAnalyzer,
		"vm1place/internal/core/mofix", // deterministic package: findings
		"vm1place/internal/flow/mofix", // outside the deterministic set: silent
	)
}

func TestPanicGuard(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.PanicGuardAnalyzer,
		"vm1place/internal/pgfix", // library code: findings
		"vm1place/cmd/pgfix",      // cmd edge: exits are sanctioned
	)
}

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.CtxFlowAnalyzer,
		"vm1place/internal/cxfix",
	)
}

func TestWrapCheck(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.WrapCheckAnalyzer,
		"vm1place/internal/wcfix",
	)
}

func TestClockRand(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.ClockRandAnalyzer,
		"vm1place/internal/crfix",    // deterministic package: findings
		"vm1place/internal/lp/crfix", // deadline-owning package: silent
	)
}
