package cells

import (
	"errors"
	"fmt"

	"vm1place/internal/geom"
	"vm1place/internal/tech"
)

// ErrInvalidLibrary reports that a synthesized library failed validation.
// NewLibrary wraps it, so callers can errors.Is against it.
var ErrInvalidLibrary = errors.New("cells: synthesized library invalid")

// masterSpec is the architecture-independent description of one cell
// template; pin geometry is synthesized per architecture by NewLibrary.
type masterSpec struct {
	name      string
	width     int // sites
	inputs    []string
	output    string
	intrinsic float64 // ns
	driveRes  float64 // ns per cap unit
	inputCap  float64 // cap units
	leakage   float64 // µW
	isFF      bool
}

// specs is the synthetic triple-Vt-equivalent cell set. Widths and pin
// counts follow typical 7.5-track libraries; delay numbers are plausible
// 7nm-scale values (the experiments only consume their relative order).
var specs = []masterSpec{
	{"INV_X1", 2, []string{"A"}, "ZN", 0.010, 0.0040, 1.0, 0.5, false},
	{"INV_X2", 3, []string{"A"}, "ZN", 0.010, 0.0022, 1.8, 0.9, false},
	{"BUF_X1", 3, []string{"A"}, "Z", 0.022, 0.0040, 1.0, 0.7, false},
	{"BUF_X2", 4, []string{"A"}, "Z", 0.024, 0.0020, 1.6, 1.2, false},
	{"NAND2_X1", 3, []string{"A1", "A2"}, "ZN", 0.014, 0.0048, 1.1, 0.8, false},
	{"NOR2_X1", 3, []string{"A1", "A2"}, "ZN", 0.016, 0.0052, 1.1, 0.8, false},
	{"AND2_X1", 4, []string{"A1", "A2"}, "Z", 0.026, 0.0044, 1.0, 1.0, false},
	{"OR2_X1", 4, []string{"A1", "A2"}, "Z", 0.028, 0.0046, 1.0, 1.0, false},
	{"NAND3_X1", 4, []string{"A1", "A2", "A3"}, "ZN", 0.018, 0.0054, 1.2, 1.1, false},
	{"XOR2_X1", 5, []string{"A", "B"}, "Z", 0.034, 0.0050, 1.4, 1.5, false},
	{"XNOR2_X1", 5, []string{"A", "B"}, "ZN", 0.034, 0.0050, 1.4, 1.5, false},
	{"AOI21_X1", 4, []string{"A", "B1", "B2"}, "ZN", 0.020, 0.0056, 1.2, 1.0, false},
	{"OAI21_X1", 4, []string{"A", "B1", "B2"}, "ZN", 0.021, 0.0056, 1.2, 1.0, false},
	{"MUX2_X1", 6, []string{"I0", "I1", "S"}, "Z", 0.038, 0.0052, 1.3, 1.8, false},
	{"DFF_X1", 8, []string{"D", "CK"}, "Q", 0.060, 0.0045, 1.5, 3.0, true},
}

// NewLibrary synthesizes the full cell set for the given architecture.
// The returned library always validates; a validation failure (possible
// only with out-of-range tech parameters) is reported as an error wrapping
// ErrInvalidLibrary.
func NewLibrary(t *tech.Tech, arch tech.Arch) (*Library, error) {
	lib := &Library{Tech: t, Arch: arch, byName: make(map[string]*Master)}
	for _, sp := range specs {
		m := buildMaster(t, arch, sp)
		lib.Masters = append(lib.Masters, m)
		lib.byName[m.Name] = m
	}
	if err := lib.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrInvalidLibrary, err)
	}
	return lib, nil
}

// MustNewLibrary is NewLibrary panicking on error; for tests and
// generators working with known-good tech parameters.
func MustNewLibrary(t *tech.Tech, arch tech.Arch) *Library {
	lib, err := NewLibrary(t, arch)
	if err != nil {
		panic(err) // panic-ok: Must* wrapper
	}
	return lib
}

func buildMaster(t *tech.Tech, arch tech.Arch, sp masterSpec) *Master {
	m := &Master{
		Name:       sp.name,
		Arch:       arch,
		WidthSites: sp.width,
		Intrinsic:  sp.intrinsic,
		DriveRes:   sp.driveRes,
		InputCap:   sp.inputCap,
		LeakageUW:  sp.leakage,
		IsFF:       sp.isFF,
	}
	w := m.WidthDBU(t)
	switch arch {
	case tech.ClosedM1:
		// 1-D vertical M1 pins on the site-pitch track grid (Fig. 1(b)).
		// Inputs occupy tracks 0..k-1; the output takes the last track.
		for i, name := range sp.inputs {
			m.Pins = append(m.Pins, Pin{Name: name, Dir: Input,
				Shapes: []Shape{closedPinShape(t, i)}})
		}
		m.Pins = append(m.Pins, Pin{Name: sp.output, Dir: Output,
			Shapes: []Shape{closedPinShape(t, sp.width-1)}})
		// Boundary VDD/VSS vertical M1 stubs connected to M2 rails via
		// V12; they do not block inter-row M1 routing (paper §1.1).
		m.Pins = append(m.Pins,
			Pin{Name: "VDD", Dir: Power, Shapes: []Shape{{
				Layer: tech.M1, Rect: geom.Rect{XLo: 0, YLo: t.RowHeight - 40, XHi: 20, YHi: t.RowHeight}}}},
			Pin{Name: "VSS", Dir: Ground, Shapes: []Shape{{
				Layer: tech.M1, Rect: geom.Rect{XLo: w - 20, YLo: 0, XHi: w, YHi: 40}}}},
		)
	case tech.OpenM1:
		// Horizontal M0 pin segments (Fig. 1(c)); M1 above is open.
		for i, name := range sp.inputs {
			m.Pins = append(m.Pins, Pin{Name: name, Dir: Input,
				Shapes: []Shape{openPinShape(t, w, i, false)}})
		}
		m.Pins = append(m.Pins, Pin{Name: sp.output, Dir: Output,
			Shapes: []Shape{openPinShape(t, w, len(sp.inputs), true)}})
		m.Pins = append(m.Pins,
			Pin{Name: "VDD", Dir: Power, Shapes: []Shape{{
				Layer: tech.M0, Rect: geom.Rect{XLo: 0, YLo: t.RowHeight - 20, XHi: w, YHi: t.RowHeight}}}},
			Pin{Name: "VSS", Dir: Ground, Shapes: []Shape{{
				Layer: tech.M0, Rect: geom.Rect{XLo: 0, YLo: 0, XHi: w, YHi: 20}}}},
		)
	default: // Conventional 12-track: horizontal M1 pins, M1 power rails.
		for i, name := range sp.inputs {
			s := openPinShape(t, w, i, false)
			s.Layer = tech.M1
			m.Pins = append(m.Pins, Pin{Name: name, Dir: Input, Shapes: []Shape{s}})
		}
		s := openPinShape(t, w, len(sp.inputs), true)
		s.Layer = tech.M1
		m.Pins = append(m.Pins, Pin{Name: sp.output, Dir: Output, Shapes: []Shape{s}})
		m.Pins = append(m.Pins,
			Pin{Name: "VDD", Dir: Power, Shapes: []Shape{{
				Layer: tech.M1, Rect: geom.Rect{XLo: 0, YLo: t.RowHeight - 30, XHi: w, YHi: t.RowHeight}}}},
			Pin{Name: "VSS", Dir: Ground, Shapes: []Shape{{
				Layer: tech.M1, Rect: geom.Rect{XLo: 0, YLo: 0, XHi: w, YHi: 30}}}},
		)
	}
	return m
}

// closedPinShape returns a vertical M1 pin centered on site track k.
func closedPinShape(t *tech.Tech, k int) Shape {
	cx := int64(k)*t.SiteWidth + t.SiteWidth/2
	return Shape{
		Layer: tech.M1,
		Rect:  geom.Rect{XLo: cx - 10, YLo: 50, XHi: cx + 10, YHi: t.RowHeight - 50},
	}
}

// refRowHeight is the 7.5-track row height the pin track template below is
// drawn for; scalePinY rescales the template to other row heights (6-track,
// 9-track), an identity at the default 250 so existing libraries are
// bit-identical.
const refRowHeight = 250

// scalePinY maps a template y track center onto technology t's row.
func scalePinY(t *tech.Tech, y int64) int64 {
	return y * t.RowHeight / refRowHeight
}

// openPinShape returns a horizontal M0 pin starting near site track k.
// Output pins are longer and sit on a dedicated upper M0 track, modelling
// the larger output metal of real OpenM1 cells. Track y centers are scaled
// from the 7.5-track template to the technology's row height.
func openPinShape(t *tech.Tech, w int64, k int, output bool) Shape {
	if output {
		xhi := w - 10
		xlo := xhi - 180
		if xlo < 10 {
			xlo = 10
		}
		y := scalePinY(t, 200)
		return Shape{Layer: tech.M0, Rect: geom.Rect{XLo: xlo, YLo: y - 10, XHi: xhi, YHi: y + 10}}
	}
	xlo := int64(k)*t.SiteWidth + 10
	xhi := xlo + 140
	if xhi > w-10 {
		xhi = w - 10
	}
	yTracks := []int64{60, 110, 160}
	y := scalePinY(t, yTracks[k%len(yTracks)])
	return Shape{Layer: tech.M0, Rect: geom.Rect{XLo: xlo, YLo: y - 10, XHi: xhi, YHi: y + 10}}
}
