package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"vm1place/internal/layout"
)

// Result summarizes one VM1Opt run.
type Result struct {
	// Initial and Final objectives.
	Initial, Final Objective
	// History holds the objective after every DistOpt pair. A canceled run
	// truncates the history at the last completed pair.
	History []Objective
	// Iters counts DistOpt pairs executed.
	Iters int
	// Duration is wall time of the optimization.
	Duration time.Duration
}

// VM1Opt is Algorithm 1: for each parameter set u in the sequence U,
// alternate a perturbation pass (f=0) and a flip pass (f=1) of DistOpt,
// shifting the window grid between iterations to cover boundary cells,
// until the relative objective improvement drops below θ; then advance to
// the next parameter set.
//
// The placement is optimized in place and stays legal throughout. One
// ObjTracker carries the objective incrementally across every pass, the
// window grid is computed once per perturb+flip pair (both passes share
// the same offset), and each worker keeps one solve workspace (LP arena,
// pooled models, assembly buffers) plus a window freelist for the whole
// run, so the steady-state inner loop allocates per pass, not per window.
func VM1Opt(p *layout.Placement, prm Params, u Sequence) Result {
	res, _ := VM1OptCtx(context.Background(), p, prm, u) // ctx-ok: context-free compat wrapper
	return res
}

// VM1OptCtx is VM1Opt under a context: cancellation is checked between
// window families (the optimizer's commit boundaries), so the placement is
// always legal when it returns, and a context deadline additionally clamps
// the per-window MILP wall budget (threaded down to lp.Arena.SetDeadline)
// so in-flight window solves stop at the deadline too. On cancellation it
// returns the partial Result accumulated so far — Final reflects the
// current placement and History is truncated at the last completed pair —
// together with an error wrapping ctx.Err().
func VM1OptCtx(ctx context.Context, p *layout.Placement, prm Params, u Sequence) (Result, error) {
	return vm1optRun(ctx, p, prm, u, false)
}

// VM1OptJoint is the ablation variant of Algorithm 1 that optimizes
// location and orientation *simultaneously* in each window MILP instead of
// the paper's sequential perturb-then-flip passes. The paper observes the
// sequential scheme is faster at similar quality (§4.2); this variant
// exists to reproduce that comparison.
func VM1OptJoint(p *layout.Placement, prm Params, u Sequence) Result {
	res, _ := VM1OptJointCtx(context.Background(), p, prm, u) // ctx-ok: context-free compat wrapper
	return res
}

// VM1OptJointCtx is VM1OptJoint with VM1OptCtx's cancellation semantics.
func VM1OptJointCtx(ctx context.Context, p *layout.Placement, prm Params, u Sequence) (Result, error) {
	return vm1optRun(ctx, p, prm, u, true)
}

// vm1optRun drives Algorithm 1 in either the sequential perturb-then-flip
// mode or the joint move+flip ablation mode.
func vm1optRun(ctx context.Context, p *layout.Placement, prm Params, u Sequence, joint bool) (Result, error) {
	start := time.Now() // clock-ok: stamps Result.Duration for reporting; never feeds a decision
	t := NewObjTracker(p, prm)
	if prm.guided() {
		// Keep the guided-selection proxy current: every committed move
		// batch flows into its incremental congestion model.
		t.AttachEstimator(prm.Proxy)
	}
	res := Result{Initial: t.Objective()}
	obj := res.Initial
	pool := newSolverPool(poolWorkers(prm))

	var runErr error
loop:
	for _, ps := range u {
		var tx, ty int64
		iters := 0
		for {
			preObj := obj.Value
			g := makeGrid(p, ps, tx, ty)

			if joint {
				obj, runErr = distPass(ctx, t, ps, g, pool, true, true)
			} else {
				// Perturbation pass: move within (lx, ly), keep orientation.
				if _, runErr = distPass(ctx, t, ps, g, pool, true, false); runErr == nil {
					// Flip pass: keep location, optimize orientation.
					obj, runErr = distPass(ctx, t, ps, g, pool, false, true)
				}
			}
			if runErr != nil {
				// Partial pair: the placement is legal (moves commit at
				// family boundaries) but the pair did not finish, so the
				// history is truncated here.
				break loop
			}

			// Shift windows to pick up previously-unoptimizable boundary
			// cells (Section 4.2).
			tx += ps.BW / 2
			ty += ps.BH / 2

			res.History = append(res.History, obj)
			res.Iters++
			iters++

			dObj := (preObj - obj.Value) / math.Max(math.Abs(preObj), 1)
			if dObj < prm.Theta {
				break
			}
			if prm.MaxOuterIters > 0 && iters >= prm.MaxOuterIters {
				break
			}
		}
	}
	res.Final = t.Objective()
	res.Duration = time.Since(start) // clock-ok: wall-time report only
	if runErr != nil {
		return res, fmt.Errorf("core: VM1Opt interrupted: %w", runErr)
	}
	return res, nil
}
