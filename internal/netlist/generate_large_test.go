package netlist

import (
	"runtime"
	"testing"

	"vm1place/internal/cells"
	"vm1place/internal/tech"
)

func genLib(t *testing.T) *cells.Library {
	t.Helper()
	lib, err := cells.NewLibrary(tech.Default(), tech.ClosedM1)
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

// TestGenerateChunkInvariance pins the chunked builder's contract: the
// pin-net slab size is a memory-layout knob only, so one seed yields a
// bit-identical design for every ChunkInsts setting — including
// pathological chunk sizes of one instance.
func TestGenerateChunkInvariance(t *testing.T) {
	lib := genLib(t)
	base := DefaultGenConfig("chunks", 3000, 7)
	ref := MustGenerate(lib, base)
	for _, chunk := range []int{1, 3, 257, 1 << 20} {
		cfg := base
		cfg.ChunkInsts = chunk
		got := MustGenerate(lib, cfg)
		if len(got.Insts) != len(ref.Insts) || len(got.Nets) != len(ref.Nets) ||
			len(got.Ports) != len(ref.Ports) {
			t.Fatalf("ChunkInsts=%d changed design shape", chunk)
		}
		for i := range ref.Insts {
			if got.Insts[i].Name != ref.Insts[i].Name ||
				got.Insts[i].Master != ref.Insts[i].Master {
				t.Fatalf("ChunkInsts=%d inst %d differs", chunk, i)
			}
			for k, ni := range ref.Insts[i].PinNets {
				if got.Insts[i].PinNets[k] != ni {
					t.Fatalf("ChunkInsts=%d inst %d pin %d: net %d want %d",
						chunk, i, k, got.Insts[i].PinNets[k], ni)
				}
			}
		}
		for ni := range ref.Nets {
			if got.Nets[ni].Name != ref.Nets[ni].Name ||
				got.Nets[ni].Driver != ref.Nets[ni].Driver ||
				len(got.Nets[ni].Sinks) != len(ref.Nets[ni].Sinks) {
				t.Fatalf("ChunkInsts=%d net %d differs", chunk, ni)
			}
		}
	}
}

// checkConnected asserts every net is driven (by a gate or a port) and
// every instance input is tied to a net — the "legal/connected"
// property at scale. Validate() covers index sanity and direction
// discipline; this adds the no-dangling-input check.
func checkConnected(t *testing.T, d *Design) {
	t.Helper()
	portNets := make([]bool, len(d.Nets))
	for pi := range d.Ports {
		if d.Ports[pi].Input {
			portNets[d.Ports[pi].Net] = true
		}
	}
	for ni := range d.Nets {
		if d.Nets[ni].Driver.Inst < 0 && !portNets[ni] {
			t.Fatalf("net %s undriven", d.Nets[ni].Name)
		}
	}
	for i := range d.Insts {
		for k, ni := range d.Insts[i].PinNets {
			dir := d.Insts[i].Master.Pins[k].Dir
			if (dir == cells.Input || dir == cells.Output) && ni < 0 {
				t.Fatalf("inst %s pin %d dangling", d.Insts[i].Name, k)
			}
		}
	}
}

// TestGenerateLargeN is the at-scale property test: designs at 1e5 (and
// 1e6 outside -short) instances generate, validate and stay fully
// connected.
func TestGenerateLargeN(t *testing.T) {
	lib := genLib(t)
	sizes := []int{100_000}
	if !testing.Short() {
		sizes = append(sizes, 1_000_000)
	}
	for _, n := range sizes {
		d, err := Generate(lib, DefaultGenConfig("large", n, 11))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(d.Insts) != n {
			t.Fatalf("n=%d: got %d insts", n, len(d.Insts))
		}
		checkConnected(t, d)
	}
}

// genBytes measures cumulative allocation of one Generate call.
func genBytes(t *testing.T, lib *cells.Library, n int) uint64 {
	t.Helper()
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	d := MustGenerate(lib, DefaultGenConfig("alloc", n, 23))
	runtime.ReadMemStats(&m1)
	runtime.KeepAlive(d)
	return m1.TotalAlloc - m0.TotalAlloc
}

// TestGenerateAllocGrowth guards the builder's allocation growth: bytes
// per Generate must scale ~linearly in the instance count (the chunked
// slabs and exact-capacity slices leave no superlinear term — before
// them, append re-growth added a transient ~2x). A 10x instance growth
// is allowed at most 13x the bytes to absorb map/GC noise.
func TestGenerateAllocGrowth(t *testing.T) {
	lib := genLib(t)
	small := genBytes(t, lib, 20_000)
	big := genBytes(t, lib, 200_000)
	if small == 0 {
		t.Fatal("no allocation measured")
	}
	if ratio := float64(big) / float64(small); ratio > 13 {
		t.Errorf("alloc growth superlinear: 20k -> %d B, 200k -> %d B (ratio %.1f, want <= 13)",
			small, big, ratio)
	}
}
