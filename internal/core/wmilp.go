package core

import (
	"math"

	"vm1place/internal/lp"
	"vm1place/internal/milp"
	"vm1place/internal/objective"
)

// objective evaluates the window-local objective of an assignment
// (candidate index per movable cell): Σ β·wn − Σ αn·#pairs − ε·Σ surplus.
// It is exactly the MILP objective restricted to this window's nets and
// (pruned) pairs, so MILP incumbents and greedy moves are comparable.
func (w *window) objective(assign []int) float64 {
	total := 0.0
	for ci, k := range assign {
		total += w.candCost[ci][k]
	}
	for _, wn := range w.nets {
		total += w.prm.betaOf(wn.ni) * float64(w.netWL(wn, assign))
	}
	for _, pr := range w.pairs {
		hit, over := w.pairState(pr, assign)
		if hit {
			total -= pr.alpha
			total -= w.prm.Epsilon * float64(over)
		}
	}
	return total
}

// netWL computes a net's HPWL under an assignment.
func (w *window) netWL(wn *winNet, assign []int) int64 {
	var xlo, xhi, ylo, yhi int64
	init := false
	add := func(x, y int64) {
		if !init {
			xlo, xhi, ylo, yhi = x, x, y, y
			init = true
			return
		}
		if x < xlo {
			xlo = x
		}
		if x > xhi {
			xhi = x
		}
		if y < ylo {
			ylo = y
		}
		if y > yhi {
			yhi = y
		}
	}
	if wn.hasFixed {
		add(wn.fxMin, wn.fyMin)
		add(wn.fxMax, wn.fyMax)
	}
	for _, mp := range wn.movable {
		k := assign[mp.cell]
		add(mp.centerX[k], mp.centerY[k])
	}
	if !init {
		return 0
	}
	return (xhi - xlo) + (yhi - ylo)
}

// pinAt returns the geometry index of a pin under an assignment (0 for
// fixed pins).
func pinAt(p winPin, assign []int) int {
	if p.cell < 0 {
		return 0
	}
	return assign[p.cell]
}

// pairState evaluates a pair under an assignment: the shared |Δrow| gate,
// then the objective's exact x-geometry test.
func (w *window) pairState(pr *winPair, assign []int) (bool, int64) {
	kp := pinAt(pr.p, assign)
	kq := pinAt(pr.q, assign)
	dr := pr.p.rowOf[kp] - pr.q.rowOf[kq]
	if dr < 0 {
		dr = -dr
	}
	if dr > w.prm.alignGamma() {
		return false, 0
	}
	return w.obj.PairEval(w.wts, winGeom(pr.p, kp), winGeom(pr.q, kq))
}

// winGeom is the scalar geometry of a window pin under candidate k.
func winGeom(p winPin, k int) objective.PinGeom {
	return objective.PinGeom{
		Row:     p.rowOf[k],
		AlignX:  p.alignX[k],
		ExtLo:   p.extLo[k],
		ExtHi:   p.extHi[k],
		CenterX: p.centerX[k],
	}
}

// feasibleAssign reports whether an assignment is overlap-free within the
// window (fixed blocks included).
func (w *window) feasibleAssign(assign []int) bool {
	sv := w.solver()
	occ := grown(sv.occ, len(w.blocked))
	sv.occ = occ
	copy(occ, w.blocked)
	for ci, i := range w.movable {
		cd := w.cand[ci][assign[ci]]
		wi := w.p.Design.Insts[i].Master.WidthSites
		for s := cd.site; s < cd.site+wi; s++ {
			idx := w.occIdx(cd.row, s)
			if occ[idx] {
				return false
			}
			occ[idx] = true
		}
	}
	return true
}

// solve optimizes the window and returns an improved assignment, or nil
// when the input placement is retained. Windows beyond the MILP size
// budget fall back to the greedy hill-climbing heuristic.
func (w *window) solve() []int {
	if len(w.movable) == 0 {
		return nil
	}
	nBin := 0
	for _, cs := range w.cand {
		nBin += len(cs)
	}
	limit := w.prm.MaxMILPCells
	if limit <= 0 {
		limit = 100
	}
	if len(w.movable) > limit || nBin > 6000 {
		return w.solveGreedy()
	}
	return w.solveMILP()
}

// buildModel assembles the window MILP (Section 3 of the paper) and
// returns the LP, the MILP wrapper, the λ variable ids per cell and
// candidate, and the constant objective offset K (window HPWL parts that
// no candidate choice can affect and that are therefore kept out of the
// model; modelObj = windowObj − K). The models and every assembly buffer
// come from the window's solve workspace, so a steady-state build
// allocates nothing: AddRow copies its terms, which makes the single
// reused row buffer safe.
func (w *window) buildModel() (*lp.Model, *milp.Model, [][]int, float64) {
	sv := w.solver()
	t := w.p.Tech
	m, mm := sv.models()
	inf := math.Inf(1)
	gammaH := float64(int64(w.prm.alignGamma()) * t.RowHeight)

	// λ variables, one exactly-one group per cell (Constraints 5-8 in SCP
	// form).
	lambda := grown(sv.lambda, len(w.movable))
	sv.lamSlab = sv.lamSlab[:0]
	tb := sv.tbuf[:0]
	for ci, cs := range w.cand {
		start := len(sv.lamSlab)
		tb = tb[:0]
		for k := range cs {
			v := m.AddVar(0, 1, w.candCost[ci][k], "l")
			sv.lamSlab = append(sv.lamSlab, v)
			tb = append(tb, lp.Term{Var: v, Coef: 1})
		}
		lambda[ci] = sv.lamSlab[start:len(sv.lamSlab):len(sv.lamSlab)]
		m.AddRow(lp.EQ, 1, tb...)
		mm.AddGroup(lambda[ci])
	}
	sv.lambda = lambda

	// Site occupancy (Constraint 9): each window site holds at most one
	// candidate footprint. The buckets are dense over window occupancy
	// indices and walked in ascending order — the same row order the
	// previous sorted-key map walk produced — because row order steers
	// simplex pivoting and must not vary run to run.
	occT := resliceAll(sv.occTerms, len(w.blocked))
	for ci, i := range w.movable {
		wi := w.p.Design.Insts[i].Master.WidthSites
		for k, cd := range w.cand[ci] {
			for s := cd.site; s < cd.site+wi; s++ {
				idx := w.occIdx(cd.row, s)
				occT[idx] = append(occT[idx], lp.Term{Var: lambda[ci][k], Coef: 1})
			}
		}
	}
	for _, terms := range occT {
		if len(terms) > 1 {
			m.AddRow(lp.LE, 1, terms...)
		}
	}
	sv.occTerms = occT

	// appendPin appends the λ-terms of a pin coordinate (scaled by sign)
	// to dst and returns the pin's constant (fixed pins contribute no
	// terms; the caller folds the constant into the RHS).
	appendPin := func(dst []lp.Term, p winPin, vals []int64, sign float64) ([]lp.Term, float64) {
		if p.cell < 0 {
			return dst, float64(vals[0])
		}
		for k, v := range vals {
			dst = append(dst, lp.Term{Var: lambda[p.cell][k], Coef: sign * float64(v)})
		}
		return dst, 0
	}

	// Net bound variables and rows (Constraints 2-3; wn folded into the
	// objective coefficients of the four bound variables). Two exact
	// reductions keep the model small:
	//   - a pin whose candidate range lies inside the fixed-terminal box
	//     on an axis can never define the net bound there, so its rows on
	//     that axis are omitted (they would always be slack);
	//   - an axis with no contributing pin has a constant span, which is
	//     accumulated into the offset K instead of the model.
	// Remaining bounds are tightened with the per-pin candidate extremes,
	// which both sharpens the relaxation and lets the crash basis start
	// feasible.
	constK := 0.0
	for _, wn := range w.nets {
		beta := w.prm.betaOf(wn.ni)
		for axi := 0; axi < 2; axi++ {
			var fLo, fHi int64
			if axi == 0 {
				fLo, fHi = wn.fxMin, wn.fxMax
			} else {
				fLo, fHi = wn.fyMin, wn.fyMax
			}
			contrib := sv.contrib[:0]
			lo, hi := -inf, inf
			if wn.hasFixed {
				lo, hi = float64(fHi), float64(fLo)
			}
			for _, mp := range wn.movable {
				cLo, cHi := minMax64(axisVals(mp, axi))
				if wn.hasFixed && cLo >= fLo && cHi <= fHi {
					continue // never defines the bound on this axis
				}
				contrib = append(contrib, mp)
				lo = math.Max(lo, float64(cLo))
				hi = math.Min(hi, float64(cHi))
			}
			if len(contrib) == 0 {
				sv.contrib = contrib
				if wn.hasFixed {
					constK += beta * float64(fHi-fLo)
				}
				continue
			}
			vmax := m.AddVar(lo, inf, beta, "max")
			vmin := m.AddVar(-inf, hi, -beta, "min")
			for _, mp := range contrib {
				tb = tb[:0]
				tb, _ = appendPin(tb, mp, axisVals(mp, axi), -1)
				tb = append(tb, lp.Term{Var: vmax, Coef: 1})
				m.AddRow(lp.GE, 0, tb...)
				tb[len(tb)-1] = lp.Term{Var: vmin, Coef: 1}
				m.AddRow(lp.LE, 0, tb...)
			}
			sv.contrib = contrib[:0]
		}
	}

	// Pair variables and rows, delegated to the objective: the caller adds
	// the binary reward variable (objective coefficient -αn) and the
	// objective emits its linearization rows. Emission order per pair is
	// fixed by the implementation; pair order is the deterministic
	// buildPairs order.
	em := objective.Emit{M: m, MM: mm, GammaH: gammaH}
	for _, pr := range w.pairs {
		d := m.AddVar(0, 1, -pr.alpha, "d")
		mm.MarkInt(d)
		tb = w.obj.EmitPair(em, w.wts, d,
			pinView(pr.p, lambda), pinView(pr.q, lambda), tb)
	}
	sv.tbuf = tb

	return m, mm, lambda, constK
}

// axisVals selects a pin's candidate coordinates for axis 0 (x) or 1 (y).
func axisVals(mp winPin, axi int) []int64 {
	if axi == 0 {
		return mp.centerX
	}
	return mp.centerY
}

// solveMILP builds and solves the paper's window MILP.
func (w *window) solveMILP() []int {
	sv := w.solver()
	m, mm, lambda, constK := w.buildModel()

	// Incumbent: the greedy coordinate-descent solution when it improves
	// on the input placement, else the input placement itself. A near-
	// optimal incumbent tightens branch-and-bound pruning from the first
	// node, and its vertex doubles as the warm-start hint, which shortens
	// the root relaxation's simplex path. The MILP works in model space
	// (window objective minus the constant K), so all values handed to
	// the solver are shifted consistently.
	curObj := w.objective(w.curCand) - constK
	start := w.curCand
	if g := w.solveGreedy(); g != nil {
		if gObj := w.objective(g) - constK; gObj < curObj {
			start, curObj = g, gObj
		}
	}
	incumbent := grown(sv.incumbent, m.NumVars())
	sv.incumbent = incumbent
	clear(incumbent)
	for ci, k := range start {
		incumbent[lambda[ci][k]] = 1
	}

	decodeInto := func(assign []int, x []float64) {
		for ci := range w.movable {
			best, bestV := 0, -1.0
			for k, v := range lambda[ci] {
				if x[v] > bestV {
					bestV = x[v]
					best = k
				}
			}
			assign[ci] = best
		}
	}

	// The rounder's buffers are reused across calls: the branch-and-bound
	// solver copies both the incumbent vector it keeps and any improving
	// rounder result, so handing it the same backing array every time is
	// safe.
	rounder := func(x []float64) ([]float64, float64, bool) {
		assign := grown(sv.assign, len(w.movable))
		sv.assign = assign
		decodeInto(assign, x)
		if !w.repair(assign, x, lambda) {
			return nil, 0, false
		}
		vec := grown(sv.vec, m.NumVars())
		sv.vec = vec
		clear(vec)
		for ci, k := range assign {
			vec[lambda[ci][k]] = 1
		}
		return vec, w.objective(assign) - constK, true
	}

	// fallback is what to return when the MILP cannot beat the incumbent:
	// the greedy improvement if there was one, else nil (keep the input).
	var fallback []int
	if &start[0] != &w.curCand[0] {
		fallback = start
	}

	res := milp.Solve(mm, milp.Params{
		MaxNodes:     w.prm.MaxNodes,
		TimeLimit:    w.prm.TimeLimit,
		Workers:      w.prm.SolverWorkers,
		Incumbent:    incumbent,
		IncumbentObj: curObj,
		Rounder:      rounder,
		Scratch:      sv.arena,
	})
	if res.X == nil || res.Obj >= curObj-1e-6 {
		return fallback
	}
	assign := make([]int, len(w.movable))
	decodeInto(assign, res.X)
	if !w.feasibleAssign(assign) {
		// Should not happen for MILP-feasible solutions; keep the best
		// known assignment rather than corrupt the placement.
		return fallback
	}
	if w.objective(assign)-constK >= curObj-1e-9 {
		return fallback
	}
	return assign
}

// repair greedily fixes occupancy conflicts in a decoded assignment by
// demoting cells to their next-best candidates (by LP value), finally their
// current position. Returns false if no conflict-free completion is found.
func (w *window) repair(assign []int, x []float64, lambda [][]int) bool {
	sv := w.solver()
	occ := grown(sv.occ, len(w.blocked))
	sv.occ = occ
	copy(occ, w.blocked)
	place := func(ci, k int, commit bool) bool {
		cd := w.cand[ci][k]
		wi := w.p.Design.Insts[w.movable[ci]].Master.WidthSites
		for s := cd.site; s < cd.site+wi; s++ {
			if occ[w.occIdx(cd.row, s)] {
				return false
			}
		}
		if commit {
			for s := cd.site; s < cd.site+wi; s++ {
				occ[w.occIdx(cd.row, s)] = true
			}
		}
		return true
	}
	for ci := range w.movable {
		if place(ci, assign[ci], true) {
			continue
		}
		// Demote: candidates by LP value descending.
		order := grown(sv.order, len(w.cand[ci]))
		sv.order = order
		for k := range order {
			order[k] = k
		}
		for i := 0; i < len(order); i++ {
			for j := i + 1; j < len(order); j++ {
				if x[lambda[ci][order[j]]] > x[lambda[ci][order[i]]] {
					order[i], order[j] = order[j], order[i]
				}
			}
		}
		done := false
		for _, k := range order {
			if place(ci, k, true) {
				assign[ci] = k
				done = true
				break
			}
		}
		if !done {
			return false
		}
	}
	return true
}

// solveGreedy is the large-window fallback: coordinate-descent over cells,
// each taking its best feasible candidate under the exact window objective.
// The returned assignment is freshly allocated (it outlives the window's
// pooled storage when used as a move source); all working state comes from
// the solve workspace.
func (w *window) solveGreedy() []int {
	sv := w.solver()
	assign := append([]int(nil), w.curCand...)
	occ := grown(sv.occ, len(w.blocked))
	sv.occ = occ
	copy(occ, w.blocked)
	mark := func(ci int, on bool) {
		cd := w.cand[ci][assign[ci]]
		wi := w.p.Design.Insts[w.movable[ci]].Master.WidthSites
		for s := cd.site; s < cd.site+wi; s++ {
			occ[w.occIdx(cd.row, s)] = on
		}
	}
	free := func(ci, k int) bool {
		cd := w.cand[ci][k]
		wi := w.p.Design.Insts[w.movable[ci]].Master.WidthSites
		for s := cd.site; s < cd.site+wi; s++ {
			if occ[w.occIdx(cd.row, s)] {
				return false
			}
		}
		return true
	}
	for ci := range w.movable {
		mark(ci, true)
	}

	// Per-cell objective slices for fast deltas. Membership dedup uses a
	// stamp array (stamp[cell] == net index + 1) instead of a per-net map.
	netsOf := resliceAll(sv.netsOf, len(w.movable))
	pairsOf := resliceAll(sv.pairsOf, len(w.movable))
	stamp := grown(sv.stamp, len(w.movable))
	clear(stamp)
	for nidx, wn := range w.nets {
		for _, mp := range wn.movable {
			if stamp[mp.cell] != nidx+1 {
				netsOf[mp.cell] = append(netsOf[mp.cell], wn)
				stamp[mp.cell] = nidx + 1
			}
		}
	}
	for _, pr := range w.pairs {
		if pr.p.cell >= 0 {
			pairsOf[pr.p.cell] = append(pairsOf[pr.p.cell], pr)
		}
		if pr.q.cell >= 0 && pr.q.cell != pr.p.cell {
			pairsOf[pr.q.cell] = append(pairsOf[pr.q.cell], pr)
		}
	}
	sv.netsOf, sv.pairsOf, sv.stamp = netsOf, pairsOf, stamp
	localObj := func(ci int) float64 {
		v := w.candCost[ci][assign[ci]]
		for _, wn := range netsOf[ci] {
			v += w.prm.betaOf(wn.ni) * float64(w.netWL(wn, assign))
		}
		for _, pr := range pairsOf[ci] {
			if hit, over := w.pairState(pr, assign); hit {
				v -= pr.alpha + w.prm.Epsilon*float64(over)
			}
		}
		return v
	}

	improvedAny := false
	for pass := 0; pass < 3; pass++ {
		improved := false
		for ci := range w.movable {
			cur := assign[ci]
			mark(ci, false)
			bestK, bestV := cur, localObj(ci)
			for k := range w.cand[ci] {
				if k == cur || !free(ci, k) {
					continue
				}
				assign[ci] = k
				if v := localObj(ci); v < bestV-1e-9 {
					bestK, bestV = k, v
				}
			}
			assign[ci] = bestK
			mark(ci, true)
			if bestK != cur {
				improved = true
				improvedAny = true
			}
		}
		if !improved {
			break
		}
	}
	if !improvedAny {
		return nil
	}
	return assign
}
