package sta

import (
	"math"

	"vm1place/internal/cells"
	"vm1place/internal/layout"
)

// NetSlacks computes the worst timing slack of every net (at its driver
// output) via a required-time backward pass, complementing Analyze's
// forward arrival pass. Slack of the most critical net equals the WNS when
// it is negative. Clock and undriven nets report +Inf.
//
// This powers the paper's future-work extension of weighting βn by timing
// criticality (see core.Params.NetBeta).
func NetSlacks(p *layout.Placement, cfg Config, lengths NetLengths) []float64 {
	d := p.Design
	nl := func(ni int) int64 {
		if lengths != nil {
			return lengths(ni)
		}
		return p.NetHPWL(ni)
	}

	netLoad := make([]float64, len(d.Nets))
	for ni := range d.Nets {
		n := &d.Nets[ni]
		if n.IsClock {
			continue
		}
		load := cfg.WireCapPerDBU * float64(nl(ni))
		for _, s := range n.Sinks {
			load += d.Insts[s.Inst].Master.InputCap
		}
		netLoad[ni] = load
	}

	// Forward arrivals (shared with Analyze).
	arrival := forwardArrivals(d, cfg, nl, netLoad)

	// Backward required times. The generator guarantees reverse instance
	// order is reverse-topological for the combinational graph.
	req := make([]float64, len(d.Nets))
	for ni := range req {
		req[ni] = math.Inf(1)
	}
	lower := func(ni int, v float64) {
		if v < req[ni] {
			req[ni] = v
		}
	}
	// Endpoints: primary outputs and FF D pins capture at the clock edge.
	for _, pt := range d.Ports {
		if !pt.Input {
			lower(pt.Net, cfg.ClockPeriodNs-cfg.WireDelayPerDBU*float64(nl(pt.Net)))
		}
	}
	for i := range d.Insts {
		m := d.Insts[i].Master
		if !m.IsFF {
			continue
		}
		for pi, ni := range d.Insts[i].PinNets {
			if ni < 0 || d.Nets[ni].IsClock {
				continue
			}
			if m.Pins[pi].Dir == cells.Input {
				lower(ni, cfg.ClockPeriodNs-cfg.WireDelayPerDBU*float64(nl(ni)))
			}
		}
	}
	for i := len(d.Insts) - 1; i >= 0; i-- {
		m := d.Insts[i].Master
		if m.IsFF {
			continue
		}
		out := outNetOf(d, i)
		if out < 0 {
			continue
		}
		delay := m.Intrinsic + m.DriveRes*netLoad[out]
		for pi, ni := range d.Insts[i].PinNets {
			if ni < 0 || d.Nets[ni].IsClock {
				continue
			}
			if m.Pins[pi].Dir == cells.Input {
				lower(ni, req[out]-delay-cfg.WireDelayPerDBU*float64(nl(ni)))
			}
		}
	}

	slack := make([]float64, len(d.Nets))
	for ni := range d.Nets {
		if d.Nets[ni].IsClock || math.IsInf(req[ni], 1) {
			slack[ni] = math.Inf(1)
			continue
		}
		slack[ni] = req[ni] - arrival[ni]
	}
	return slack
}

// CriticalityBetas converts per-net slacks into βn multipliers: nets with
// slack at or below zero get 1+weight, nets with slack ≥ period get 1,
// linear in between. Clock/unconstrained nets get 1.
func CriticalityBetas(slacks []float64, periodNs, weight float64) []float64 {
	betas := make([]float64, len(slacks))
	for i, s := range slacks {
		switch {
		case math.IsInf(s, 1):
			betas[i] = 1
		case s <= 0:
			betas[i] = 1 + weight
		case s >= periodNs:
			betas[i] = 1
		default:
			betas[i] = 1 + weight*(1-s/periodNs)
		}
	}
	return betas
}
