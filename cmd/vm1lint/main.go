// Command vm1lint runs vm1place's static-invariant suite (see
// internal/analysis): maporder, panicguard, ctxflow, wrapcheck and
// clockrand over the module's non-test sources.
//
// Usage:
//
//	vm1lint [packages]
//
// where packages are module-relative patterns ("./...", "./internal/lp",
// "./internal/..."); the default is "./...". Findings print as
//
//	file:line:col: message (analyzer)
//
// and the exit status is 0 when clean, 1 when there are findings, and 2
// when loading or type-checking fails. Suppress a finding by tagging the
// line (or the line above) with the owning analyzer's marker —
// // order-ok:, // panic-ok:, // ctx-ok:, // wrap-ok:, // clock-ok: —
// followed by the reason.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"vm1place/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(patterns []string, out, errOut *os.File) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(errOut, "vm1lint: %v\n", err)
		return 2
	}
	root, modulePath, err := analysis.FindModuleRoot(wd)
	if err != nil {
		fmt.Fprintf(errOut, "vm1lint: %v\n", err)
		return 2
	}
	loader := analysis.NewLoader(modulePath, root)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(errOut, "vm1lint: %v\n", err)
		return 2
	}
	findings, err := analysis.Run(loader.Fset, pkgs, analysis.All())
	if err != nil {
		fmt.Fprintf(errOut, "vm1lint: %v\n", err)
		return 2
	}
	for _, f := range findings {
		rel, rerr := filepath.Rel(wd, f.Pos.Filename)
		if rerr != nil || len(rel) > len(f.Pos.Filename) {
			rel = f.Pos.Filename
		}
		fmt.Fprintf(out, "%s:%d:%d: %s (%s)\n", rel, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
	}
	if len(findings) > 0 {
		fmt.Fprintf(errOut, "vm1lint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		return 1
	}
	return 0
}
