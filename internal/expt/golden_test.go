package expt

import (
	"testing"

	"vm1place/internal/core"
	"vm1place/internal/tech"
)

// goldenMetrics strips the wall-clock fields from a FlowResult so runs
// can be compared bit-for-bit.
type goldenMetrics struct {
	Design     string
	NumInsts   int
	Arch       tech.Arch
	Util       float64
	Alpha      float64
	Init       Snapshot
	Final      Snapshot
	OptInit    float64
	OptInitAl  int
	OptFinal   float64
	OptFinalAl int
}

func golden(r FlowResult) goldenMetrics {
	return goldenMetrics{
		Design:     r.Design,
		NumInsts:   r.NumInsts,
		Arch:       r.Arch,
		Util:       r.Util,
		Alpha:      r.Alpha,
		Init:       r.Init,
		Final:      r.Final,
		OptInit:    r.OptInitial.Value,
		OptInitAl:  r.OptInitial.Alignments,
		OptFinal:   r.OptFinal.Value,
		OptFinalAl: r.OptFinal.Alignments,
	}
}

// TestGoldenFlowDeterministic pins the staged-pipeline refactor to the
// monolithic flow it replaced: with a single worker and the wall-clock
// MILP budget disabled (TimeLimit < 0 leaves only the node cap), the
// whole flow is deterministic, so the metrics of repeated runs must be
// bit-identical. Any re-ordering of the stages, an extra routing pass,
// or a lost config field shows up as a diff here.
func TestGoldenFlowDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full deterministic flow is slow")
	}
	spec := ScaledDesigns(0.1)[0] // m0 at paper scale 0.1
	cfg := FlowConfig{
		Arch: tech.ClosedM1,
		// One pass over a single 10um window family keeps the runtime
		// inside the package budget; determinism needs one worker and an
		// untimed (node-capped) MILP, not a particular sequence.
		Sequence:      []core.ParamSet{{BW: UmToDBU(10), BH: UmToDBU(10), LX: 3, LY: 1}},
		MaxOuterIters: 1,
		Workers:       1,
		TimeLimit:     -1,
	}
	r1, err := RunFlow(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunFlow(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g1, g2 := golden(r1), golden(r2)
	if g1 != g2 {
		t.Errorf("flow metrics not bit-identical:\nrun1: %+v\nrun2: %+v", g1, g2)
	}
	if g1.Final.DM1 <= g1.Init.DM1 {
		t.Errorf("golden flow did not improve dM1: %d -> %d", g1.Init.DM1, g1.Final.DM1)
	}

	// Spatial sharding must be invisible in the golden metrics: the
	// sharded inner loop commits the identical move batch per family
	// (merged in family window order at the barrier), so every shard
	// count reproduces the unsharded flow bit for bit.
	for _, k := range []int{2, 4, 8} {
		ck := cfg
		ck.Shards = k
		rk, err := RunFlow(spec, ck)
		if err != nil {
			t.Fatal(err)
		}
		if gk := golden(rk); gk != g1 {
			t.Errorf("Shards=%d flow metrics diverged:\nsharded: %+v\nbase:    %+v", k, gk, g1)
		}
	}
}
