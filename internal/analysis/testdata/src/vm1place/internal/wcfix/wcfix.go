// Package wcfix is a wrapcheck fixture: errors embedded via %v/%s and
// sentinel ==/!= comparisons are flagged; %w wrapping, errors.Is, nil
// checks and tagged identity comparisons pass.
package wcfix

import (
	"errors"
	"fmt"
)

// ErrBad is a package-level sentinel.
var ErrBad = errors.New("wcfix: bad")

// wrapV flattens the chain with %v: flagged.
func wrapV(err error) error {
	return fmt.Errorf("solve failed: %v", err) // want `use %w`
}

// wrapS flattens the chain with %s: flagged.
func wrapS(name string, err error) error {
	return fmt.Errorf("open %q: %s", name, err) // want `use %w`
}

// wrapW keeps the chain: clean.
func wrapW(err error) error {
	return fmt.Errorf("solve failed: %w", err)
}

// wrapBoth wraps a sentinel and a cause: clean (double %w).
func wrapBoth(err error) error {
	return fmt.Errorf("%w: %w", ErrBad, err)
}

// describeType prints the dynamic type, not the chain: clean.
func describeType(err error) string {
	return fmt.Sprintf("%T", err)
}

// cmpEq compares a sentinel with ==: flagged.
func cmpEq(err error) bool {
	return err == ErrBad // want `use errors\.Is`
}

// cmpNeq compares a sentinel with !=: flagged.
func cmpNeq(err error) bool {
	return ErrBad != err // want `use errors\.Is`
}

// cmpIs goes through errors.Is: clean.
func cmpIs(err error) bool {
	return errors.Is(err, ErrBad)
}

// nilChecks are not sentinel comparisons: clean.
func nilChecks(err error) bool {
	return err != nil && ErrBad != nil
}

// cmpTagged asserts identity on a sentinel that is never wrapped:
// suppressed.
func cmpTagged(err error) bool {
	return err == ErrBad // wrap-ok: identity check on a never-wrapped sentinel
}
