// Package sta is a lightweight static timing and power analyzer standing in
// for the commercial signoff reports of the DAC'17 paper (WNS and total
// power columns of Table 2).
//
// Timing model: levelized longest-path analysis over the combinational
// graph between flip-flop/port boundaries. A cell's delay is
// Intrinsic + DriveRes * load, where load is the sum of sink input
// capacitances plus wire capacitance proportional to the net's routed (or
// HPWL-estimated) length. Power model: switching power proportional to
// total capacitance (wire + pin) at a fixed toggle rate, plus per-cell
// leakage.
//
// The paper's WNS/power deltas are small (<= 1%); what matters here is
// that the model responds with the right sign to wirelength changes, so
// the Table 2 columns can be reproduced in shape.
package sta

import (
	"math"

	"vm1place/internal/cells"
	"vm1place/internal/layout"
	"vm1place/internal/netlist"
)

// Config tunes the analysis.
type Config struct {
	// ClockPeriodNs is the timing constraint.
	ClockPeriodNs float64
	// WireCapPerDBU is wire capacitance per DBU of routed length, in the
	// same units as cells' InputCap.
	WireCapPerDBU float64
	// WireDelayPerDBU is an additional wire delay per DBU (lumped RC).
	WireDelayPerDBU float64
	// ToggleRate is the fraction of nets switching per clock (power).
	ToggleRate float64
	// CapToPowerUW converts (cap units x toggles x frequency) to µW.
	CapToPowerUW float64
}

// DefaultConfig returns the configuration used by the experiments.
func DefaultConfig() Config {
	return Config{
		ClockPeriodNs:   2.0,
		WireCapPerDBU:   0.0012,
		WireDelayPerDBU: 0.000020,
		ToggleRate:      0.15,
		CapToPowerUW:    8.0,
	}
}

// Report is the result of an analysis.
type Report struct {
	// WNS is the worst negative slack in ns (0 when all paths meet the
	// clock period; negative when violating).
	WNS float64
	// CritDelay is the longest path delay in ns.
	CritDelay float64
	// TotalPowerMW is switching + leakage power in mW.
	TotalPowerMW float64
	// SwitchingPowerMW and LeakagePowerMW break down TotalPowerMW.
	SwitchingPowerMW float64
	LeakagePowerMW   float64
}

// NetLengths supplies per-net wire lengths in DBU. Pass nil to Analyze to
// fall back to HPWL from the placement.
type NetLengths func(ni int) int64

// Analyze runs timing and power analysis on a placed design. lengths, when
// non-nil, supplies routed net lengths (e.g. from the router); otherwise
// HPWL is used.
func Analyze(p *layout.Placement, cfg Config, lengths NetLengths) Report {
	d := p.Design
	nl := func(ni int) int64 {
		if lengths != nil {
			return lengths(ni)
		}
		return p.NetHPWL(ni)
	}

	// Net loads: sink pin caps + wire cap.
	netLoad := make([]float64, len(d.Nets))
	for ni := range d.Nets {
		n := &d.Nets[ni]
		if n.IsClock {
			continue
		}
		load := cfg.WireCapPerDBU * float64(nl(ni))
		for _, s := range n.Sinks {
			load += d.Insts[s.Inst].Master.InputCap
		}
		netLoad[ni] = load
	}

	arrival := forwardArrivals(d, cfg, nl, netLoad)

	// Timing endpoints: FF D pins and primary outputs.
	critDelay := 0.0
	for i := range d.Insts {
		m := d.Insts[i].Master
		if !m.IsFF {
			continue
		}
		if a := instArrival(d, cfg, nl, arrival, i); a > critDelay {
			critDelay = a
		}
	}
	for _, pt := range d.Ports {
		if pt.Input {
			continue
		}
		a := arrival[pt.Net] + cfg.WireDelayPerDBU*float64(nl(pt.Net))
		if a > critDelay {
			critDelay = a
		}
	}

	wns := cfg.ClockPeriodNs - critDelay
	if wns > 0 {
		wns = 0
	}

	// Power.
	freqGHz := 1.0 / cfg.ClockPeriodNs
	var swUW, leakUW float64
	for ni := range d.Nets {
		if d.Nets[ni].IsClock {
			continue
		}
		swUW += netLoad[ni] * cfg.ToggleRate * freqGHz * cfg.CapToPowerUW
	}
	for i := range d.Insts {
		leakUW += d.Insts[i].Master.LeakageUW
	}

	return Report{
		WNS:              roundNs(wns),
		CritDelay:        roundNs(critDelay),
		SwitchingPowerMW: swUW / 1000,
		LeakagePowerMW:   leakUW / 1000,
		TotalPowerMW:     (swUW + leakUW) / 1000,
	}
}

// instArrival returns the latest arrival among an instance's signal
// inputs, including input wire delay.
func instArrival(d *netlist.Design, cfg Config, nl NetLengths, arrival []float64, i int) float64 {
	worst := 0.0
	for pi, ni := range d.Insts[i].PinNets {
		if ni < 0 {
			continue
		}
		pin := &d.Insts[i].Master.Pins[pi]
		if pin.Dir != cells.Input || d.Nets[ni].IsClock {
			continue
		}
		a := arrival[ni] + cfg.WireDelayPerDBU*float64(nl(ni))
		if a > worst {
			worst = a
		}
	}
	return worst
}

// forwardArrivals computes arrival times at every driven net. FF outputs
// are seeded first (they depend only on clk-to-q), then combinational
// instances are swept in index order — a valid topological order because
// the generator sources combinational fanins from lower-index gates or
// FFs.
func forwardArrivals(d *netlist.Design, cfg Config, nl NetLengths, netLoad []float64) []float64 {
	arrival := make([]float64, len(d.Nets))
	for i := range d.Insts {
		m := d.Insts[i].Master
		if !m.IsFF {
			continue
		}
		if out := outNetOf(d, i); out >= 0 {
			arrival[out] = m.Intrinsic + m.DriveRes*netLoad[out]
		}
	}
	for i := range d.Insts {
		m := d.Insts[i].Master
		if m.IsFF {
			continue
		}
		out := outNetOf(d, i)
		if out < 0 {
			continue
		}
		arrival[out] = instArrival(d, cfg, nl, arrival, i) +
			m.Intrinsic + m.DriveRes*netLoad[out]
	}
	return arrival
}

// outNetOf returns the net driven by instance i, or -1.
func outNetOf(d *netlist.Design, i int) int {
	m := d.Insts[i].Master
	for pi := range m.Pins {
		if m.Pins[pi].Dir == cells.Output {
			return d.Insts[i].PinNets[pi]
		}
	}
	return -1
}

// roundNs rounds to picosecond precision for stable reporting.
func roundNs(v float64) float64 { return math.Round(v*1000) / 1000 }
