// Package tech defines the synthetic sub-10nm technology used by vm1place:
// database units, the placement site grid, the metal layer stack, via costs
// and the direct-vertical-M1 (dM1) parameters γ and δ from the paper.
//
// The technology is a stand-in for the proprietary imec 7nm libraries used
// in the DAC'17 paper. Its structural properties match what the
// optimization consumes: ClosedM1 cells expose 1-D vertical M1 pins on a
// grid whose pitch equals the placement site width, and OpenM1 cells expose
// horizontal M0 pin segments, so vertical M1 can connect pins whose
// x-extents overlap.
package tech

import "fmt"

// Arch selects the standard-cell architecture, which determines both the
// pin geometry of the library and the MILP formulation used by the
// optimizer (alignment for ClosedM1, overlap for OpenM1).
type Arch int

const (
	// Conventional is a 12-track library with horizontal M1 power rails;
	// M1 is unavailable for inter-row routing (baseline only).
	Conventional Arch = iota
	// ClosedM1 is a 7.5-track library with 1-D vertical M1 pins at site
	// pitch; dM1 requires exact x alignment of the two pins.
	ClosedM1
	// OpenM1 is a 7.5-track library with horizontal M0 pins; dM1 requires
	// horizontal overlap of the two pins' x-extents.
	OpenM1
)

// String implements fmt.Stringer.
func (a Arch) String() string {
	switch a {
	case Conventional:
		return "Conventional"
	case ClosedM1:
		return "ClosedM1"
	case OpenM1:
		return "OpenM1"
	default:
		return fmt.Sprintf("Arch(%d)", int(a))
	}
}

// Layer identifies a metal routing layer. M0 is cell-internal (pins only,
// never used by the router for inter-cell wiring).
type Layer int

const (
	M0 Layer = iota
	M1
	M2
	M3
	M4
	NumLayers
)

// String implements fmt.Stringer.
func (l Layer) String() string {
	if l >= M0 && l < NumLayers {
		return fmt.Sprintf("M%d", int(l))
	}
	return fmt.Sprintf("Layer(%d)", int(l))
}

// Dir is a routing direction.
type Dir int

const (
	Horizontal Dir = iota
	Vertical
)

// String implements fmt.Stringer.
func (d Dir) String() string {
	if d == Horizontal {
		return "H"
	}
	return "V"
}

// Direction returns the preferred routing direction of a layer in this
// stack: M0/M2/M4 horizontal, M1/M3 vertical (matching the paper's cell
// architectures, where M1 is the vertical inter-row layer).
func (l Layer) Direction() Dir {
	if int(l)%2 == 1 {
		return Vertical
	}
	return Horizontal
}

// Tech bundles all technology constants. Construct with Default and adjust
// fields before building libraries or grids; a Tech is immutable once it is
// shared.
type Tech struct {
	// DBUPerMicron scales "µm-equivalent" user units to integer DBU. The
	// paper quotes window sizes in µm; we preserve the ratio
	// window ≪ die by mapping 1 µm-equivalent to DBUPerMicron DBU.
	DBUPerMicron int64

	// SiteWidth is the placement site pitch in DBU. The ClosedM1 M1 pin
	// pitch equals SiteWidth (paper §1.1), so pin alignment is equivalent
	// to equality of absolute site-granular pin x coordinates.
	SiteWidth int64

	// RowHeight is the placement row pitch in DBU (7.5-track equivalent).
	RowHeight int64

	// Gamma is the maximum vertical span of a direct vertical M1 route in
	// placement rows (paper uses γ = 3).
	Gamma int

	// Delta is the minimum x-overlap, in DBU, required between two OpenM1
	// pins for a direct vertical M1 route (paper's δ).
	Delta int64

	// ViaCost is the routed-wirelength-equivalent cost of one via, in DBU,
	// used by the router's cost function.
	ViaCost int64

	// M1TrackPitch is the M1 routing track pitch in DBU (equals SiteWidth
	// for ClosedM1-compatible grids).
	M1TrackPitch int64

	// M2TrackPitch is the pitch of horizontal tracks (M2/M4) in DBU.
	M2TrackPitch int64

	// EdgeCapacity is the number of routing tracks per grid-cell edge per
	// layer for the congestion model.
	EdgeCapacity int
}

// Default returns the technology used throughout the reproduction.
//
// SiteWidth 100 DBU, RowHeight 250 DBU, DBUPerMicron 1000: a "20 µm"
// window from the paper maps to 20 u = 20000 DBU ≈ 200 sites x 80 rows in
// real 7nm; we deliberately compress to keep window MILPs exactly solvable
// (see DESIGN.md scale note) by interpreting experiment window sizes in
// "u" with 1 u = 10 sites = 4 rows.
func Default() *Tech {
	return &Tech{
		DBUPerMicron: 1000,
		SiteWidth:    100,
		RowHeight:    250,
		Gamma:        3,
		Delta:        50,
		ViaCost:      200,
		M1TrackPitch: 100,
		M2TrackPitch: 125,
		EdgeCapacity: 4,
	}
}

// Default6Track returns the 6-track variant of Default: the same site
// pitch with RowHeight compressed to 200 DBU (6/7.5 of the default 250).
// Shorter rows pack more cells per unit area but leave fewer M0 tracks per
// cell, so pins crowd and dM1 alignment is worth relatively more — the
// track-count sweep (exptables -objsweep) quantifies that.
func Default6Track() *Tech {
	t := Default()
	t.RowHeight = 200
	return t
}

// Default9Track returns the 9-track variant of Default: RowHeight 300 DBU
// (9/7.5 of the default 250). DBUPerMicron grows to 1200 so the row pitch
// still divides the unit exactly (Validate requires it); the site pitch is
// unchanged, so a µm-equivalent unit spans 12 sites x 4 rows here versus
// the default 10 x 4.
func Default9Track() *Tech {
	t := Default()
	t.DBUPerMicron = 1200
	t.RowHeight = 300
	return t
}

// SitesPerU returns the number of sites per µm-equivalent unit.
func (t *Tech) SitesPerU() int64 { return t.DBUPerMicron / t.SiteWidth }

// RowsPerU returns the number of rows per µm-equivalent unit.
func (t *Tech) RowsPerU() int64 { return t.DBUPerMicron / t.RowHeight }

// UToDBU converts µm-equivalent units to DBU.
func (t *Tech) UToDBU(u float64) int64 { return int64(u * float64(t.DBUPerMicron)) }

// DBUToU converts DBU to µm-equivalent units.
func (t *Tech) DBUToU(dbu int64) float64 { return float64(dbu) / float64(t.DBUPerMicron) }

// SiteX returns the DBU x coordinate of site index sx.
func (t *Tech) SiteX(sx int) int64 { return int64(sx) * t.SiteWidth }

// RowY returns the DBU y coordinate of row index ry.
func (t *Tech) RowY(ry int) int64 { return int64(ry) * t.RowHeight }

// XToSite returns the site index containing DBU coordinate x (floor).
func (t *Tech) XToSite(x int64) int {
	if x < 0 {
		return int((x - t.SiteWidth + 1) / t.SiteWidth)
	}
	return int(x / t.SiteWidth)
}

// YToRow returns the row index containing DBU coordinate y (floor).
func (t *Tech) YToRow(y int64) int {
	if y < 0 {
		return int((y - t.RowHeight + 1) / t.RowHeight)
	}
	return int(y / t.RowHeight)
}

// Validate checks internal consistency of the technology constants.
func (t *Tech) Validate() error {
	if t.DBUPerMicron <= 0 || t.SiteWidth <= 0 || t.RowHeight <= 0 {
		return fmt.Errorf("tech: non-positive pitch (dbu=%d site=%d row=%d)",
			t.DBUPerMicron, t.SiteWidth, t.RowHeight)
	}
	if t.DBUPerMicron%t.SiteWidth != 0 {
		return fmt.Errorf("tech: DBUPerMicron %d not a multiple of SiteWidth %d",
			t.DBUPerMicron, t.SiteWidth)
	}
	if t.DBUPerMicron%t.RowHeight != 0 {
		return fmt.Errorf("tech: DBUPerMicron %d not a multiple of RowHeight %d",
			t.DBUPerMicron, t.RowHeight)
	}
	if t.M1TrackPitch != t.SiteWidth {
		return fmt.Errorf("tech: M1 track pitch %d must equal site width %d for ClosedM1 alignment",
			t.M1TrackPitch, t.SiteWidth)
	}
	if t.Gamma < 1 {
		return fmt.Errorf("tech: gamma %d must be >= 1", t.Gamma)
	}
	if t.Delta < 0 {
		return fmt.Errorf("tech: delta %d must be >= 0", t.Delta)
	}
	if t.EdgeCapacity < 1 {
		return fmt.Errorf("tech: edge capacity %d must be >= 1", t.EdgeCapacity)
	}
	return nil
}
