package milp

import (
	"math"
	"math/rand"
	"testing"

	"vm1place/internal/lp"
)

// TestGroupVsPlainBranching: registering exactly-one groups must not
// change the optimum, only the search strategy.
func TestGroupVsPlainBranching(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 50; trial++ {
		nGroups := 2 + rng.Intn(3)
		size := 2 + rng.Intn(3)
		costs := make([][]float64, nGroups)
		for g := range costs {
			costs[g] = make([]float64, size)
			for k := range costs[g] {
				costs[g][k] = float64(rng.Intn(30))
			}
		}
		// One random coupling row over first candidates.
		build := func(useGroups bool) Result {
			m := lp.NewModel()
			mm := NewModel(m)
			var firsts []lp.Term
			for g := 0; g < nGroups; g++ {
				var vars []int
				var terms []lp.Term
				for k := 0; k < size; k++ {
					v := m.AddVar(0, 1, costs[g][k], "l")
					vars = append(vars, v)
					terms = append(terms, lp.Term{Var: v, Coef: 1})
				}
				m.AddRow(lp.EQ, 1, terms...)
				firsts = append(firsts, lp.Term{Var: vars[0], Coef: 1})
				if useGroups {
					mm.AddGroup(vars)
				} else {
					for _, v := range vars {
						mm.MarkInt(v)
					}
				}
			}
			m.AddRow(lp.LE, float64(nGroups-1), firsts...)
			return Solve(mm, Params{})
		}
		a := build(true)
		b := build(false)
		if a.Status != Optimal || b.Status != Optimal {
			t.Fatalf("trial %d: statuses %s / %s", trial, a.Status, b.Status)
		}
		if math.Abs(a.Obj-b.Obj) > 1e-5 {
			t.Fatalf("trial %d: group obj %f != plain obj %f", trial, a.Obj, b.Obj)
		}
	}
}

// TestIncumbentNeverWorsened: the returned objective is never above the
// provided incumbent objective.
func TestIncumbentNeverWorsened(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(6)
		m := lp.NewModel()
		mm := NewModel(m)
		var terms []lp.Term
		vars := make([]int, n)
		for i := 0; i < n; i++ {
			vars[i] = m.AddVar(0, 1, float64(rng.Intn(21)-10), "x")
			terms = append(terms, lp.Term{Var: vars[i], Coef: float64(1 + rng.Intn(5))})
			mm.MarkInt(vars[i])
		}
		m.AddRow(lp.LE, float64(2*n), terms...) // always satisfiable
		// All-zeros is feasible with objective 0.
		zero := make([]float64, n)
		res := Solve(mm, Params{MaxNodes: 1 + rng.Intn(5), Incumbent: zero, IncumbentObj: 0})
		if res.Status == Infeasible || res.Status == Limit {
			t.Fatalf("trial %d: lost the incumbent (%s)", trial, res.Status)
		}
		if res.Obj > 1e-9 {
			t.Fatalf("trial %d: objective %f worse than incumbent 0", trial, res.Obj)
		}
	}
}

// TestBudgetsMonotone: more nodes never yield a worse incumbent.
func TestBudgetsMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 25; trial++ {
		n := 10 + rng.Intn(8)
		m := lp.NewModel()
		mm := NewModel(m)
		var terms []lp.Term
		for i := 0; i < n; i++ {
			v := m.AddVar(0, 1, -float64(1+rng.Intn(30)), "x")
			terms = append(terms, lp.Term{Var: v, Coef: float64(1 + rng.Intn(8))})
			mm.MarkInt(v)
		}
		m.AddRow(lp.LE, float64(3*n/2), terms...)
		zero := make([]float64, n)
		small := Solve(mm, Params{MaxNodes: 3, Incumbent: zero, IncumbentObj: 0})
		large := Solve(mm, Params{MaxNodes: 500, Incumbent: zero, IncumbentObj: 0})
		if large.Obj > small.Obj+1e-9 {
			t.Fatalf("trial %d: larger budget worse: %f vs %f", trial, large.Obj, small.Obj)
		}
	}
}

// TestBestBoundIsLowerBound: on solved instances, BestBound <= Obj.
func TestBestBoundIsLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	for trial := 0; trial < 40; trial++ {
		n := 5 + rng.Intn(5)
		m := lp.NewModel()
		mm := NewModel(m)
		var terms []lp.Term
		for i := 0; i < n; i++ {
			v := m.AddVar(0, 1, float64(rng.Intn(15)-7), "x")
			terms = append(terms, lp.Term{Var: v, Coef: float64(rng.Intn(5) - 2)})
			mm.MarkInt(v)
		}
		m.AddRow(lp.GE, float64(-n), terms...)
		res := Solve(mm, Params{})
		if res.Status != Optimal {
			continue
		}
		if res.BestBound > res.Obj+1e-6 {
			t.Fatalf("trial %d: bound %f above obj %f", trial, res.BestBound, res.Obj)
		}
	}
}
