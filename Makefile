# Developer targets. The tier-1 gate is `make check`; `make bench-json`
# regenerates BENCH_core.json (minutes of wall time).

GO ?= go

.PHONY: check vet panic-guard test race bench-smoke bench-json bench-core bench-route

check: vet panic-guard test race bench-smoke

vet:
	$(GO) vet ./...

# Library code must return errors, not crash the process: the only panics
# allowed under internal/ are Must* wrappers and unreachable-invariant
# checks, both tagged with a `// panic-ok:` marker, and os.Exit belongs to
# the cmd/ edges. Anything else fails the gate.
panic-guard:
	@bad=$$(grep -rn --include='*.go' --exclude='*_test.go' -E 'panic\(|os\.Exit' internal/ | grep -v 'panic-ok' || true); \
	if [ -n "$$bad" ]; then \
		echo "panic-guard: untagged panic/os.Exit in library code:"; \
		echo "$$bad"; \
		exit 1; \
	fi

test:
	$(GO) build ./... && $(GO) test ./...

# The race gate focuses on the packages with real concurrency (parallel
# window solves sharing an objective tracker and per-worker LP arenas, and
# the batched parallel router sharing live usage arrays).
race:
	$(GO) test -race -timeout 20m ./internal/core/... ./internal/lp/... ./internal/milp/... ./internal/route/...

# One iteration of each substrate microbenchmark — a fast sanity pass that
# the benchmarks still build and run, not a measurement.
bench-smoke:
	$(GO) test -run '^$$' -bench 'DistOptPass|LPSolve|CalculateObj' -benchtime 1x -timeout 20m .

bench-json:
	BENCH_JSON=1 $(GO) test -run TestEmitBenchCoreJSON -timeout 30m -v .

# Regenerates BENCH_core.json (alias of bench-json, named for symmetry with
# bench-route): DistOptPass, LPSolve and the other core microbenchmarks,
# including the simplex-kernel counters (pivots/solve, refactors/solve).
bench-core: bench-json

# Regenerates BENCH_route.json: the sequential/parallel RouteAll pair plus
# the speedup over the seed router, with a Metrics-equality check.
bench-route:
	BENCH_JSON=1 $(GO) test -run TestEmitBenchRouteJSON -timeout 30m -v .
