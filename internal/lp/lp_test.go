package lp

import (
	"math"
	"math/rand"
	"testing"
)

const tol = 1e-5

func TestSimple2D(t *testing.T) {
	// min -x - 2y s.t. x + y <= 4, x <= 3, y <= 2, x,y >= 0.
	// Optimum at (2,2) with obj -6.
	m := NewModel()
	x := m.AddVar(0, 3, -1, "x")
	y := m.AddVar(0, 2, -2, "y")
	m.AddRow(LE, 4, Term{x, 1}, Term{y, 1})
	sol := m.Solve()
	if sol.Status != Optimal {
		t.Fatalf("status = %s", sol.Status)
	}
	if math.Abs(sol.Obj-(-6)) > tol {
		t.Errorf("obj = %f, want -6", sol.Obj)
	}
	if math.Abs(sol.X[x]-2) > tol || math.Abs(sol.X[y]-2) > tol {
		t.Errorf("x = %v, want (2,2)", sol.X)
	}
}

func TestEquality(t *testing.T) {
	// min x + y s.t. x + y = 5, x - y = 1 => x=3, y=2, obj 5.
	m := NewModel()
	x := m.AddVar(0, math.Inf(1), 1, "x")
	y := m.AddVar(0, math.Inf(1), 1, "y")
	m.AddRow(EQ, 5, Term{x, 1}, Term{y, 1})
	m.AddRow(EQ, 1, Term{x, 1}, Term{y, -1})
	sol := m.Solve()
	if sol.Status != Optimal {
		t.Fatalf("status = %s", sol.Status)
	}
	if math.Abs(sol.X[x]-3) > tol || math.Abs(sol.X[y]-2) > tol {
		t.Errorf("x = %v, want (3,2)", sol.X)
	}
}

func TestGE(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 4, x >= 1 => optimum (4,0)? check:
	// obj(4,0)=8; obj(1,3)=11. So (4,0), obj 8.
	m := NewModel()
	x := m.AddVar(1, math.Inf(1), 2, "x")
	y := m.AddVar(0, math.Inf(1), 3, "y")
	m.AddRow(GE, 4, Term{x, 1}, Term{y, 1})
	sol := m.Solve()
	if sol.Status != Optimal {
		t.Fatalf("status = %s", sol.Status)
	}
	if math.Abs(sol.Obj-8) > tol {
		t.Errorf("obj = %f, want 8", sol.Obj)
	}
}

func TestInfeasible(t *testing.T) {
	m := NewModel()
	x := m.AddVar(0, 10, 1, "x")
	m.AddRow(GE, 5, Term{x, 1})
	m.AddRow(LE, 3, Term{x, 1})
	sol := m.Solve()
	if sol.Status != Infeasible {
		t.Fatalf("status = %s, want infeasible", sol.Status)
	}
}

func TestInfeasibleBounds(t *testing.T) {
	m := NewModel()
	x := m.AddVar(0, 2, 1, "x")
	y := m.AddVar(0, 2, 1, "y")
	m.AddRow(GE, 5, Term{x, 1}, Term{y, 1})
	sol := m.Solve()
	if sol.Status != Infeasible {
		t.Fatalf("status = %s, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	m := NewModel()
	x := m.AddVar(0, math.Inf(1), -1, "x")
	y := m.AddVar(0, math.Inf(1), 0, "y")
	m.AddRow(GE, 1, Term{x, 1}, Term{y, 1})
	sol := m.Solve()
	if sol.Status != Unbounded {
		t.Fatalf("status = %s, want unbounded", sol.Status)
	}
}

func TestBoundFlipOnly(t *testing.T) {
	// No constraints: optimum is each var at the bound favoring its cost.
	m := NewModel()
	x := m.AddVar(-1, 5, -1, "x")
	y := m.AddVar(-2, 3, 2, "y")
	sol := m.Solve()
	if sol.Status != Optimal {
		t.Fatalf("status = %s", sol.Status)
	}
	if math.Abs(sol.X[x]-5) > tol || math.Abs(sol.X[y]-(-2)) > tol {
		t.Errorf("x = %v, want (5,-2)", sol.X)
	}
}

func TestNegativeLowerBounds(t *testing.T) {
	// min x + y s.t. x + y >= -3, x,y in [-5, 5]: many optima with
	// obj -3 (constraint binds since unconstrained min is -10 < -3).
	m := NewModel()
	x := m.AddVar(-5, 5, 1, "x")
	y := m.AddVar(-5, 5, 1, "y")
	m.AddRow(GE, -3, Term{x, 1}, Term{y, 1})
	sol := m.Solve()
	if sol.Status != Optimal {
		t.Fatalf("status = %s", sol.Status)
	}
	if math.Abs(sol.Obj-(-3)) > tol {
		t.Errorf("obj = %f, want -3", sol.Obj)
	}
}

func TestFreeVariable(t *testing.T) {
	// min x s.t. x >= -7 with x free: obj -7.
	m := NewModel()
	x := m.AddVar(math.Inf(-1), math.Inf(1), 1, "x")
	m.AddRow(GE, -7, Term{x, 1})
	sol := m.Solve()
	if sol.Status != Optimal {
		t.Fatalf("status = %s", sol.Status)
	}
	if math.Abs(sol.X[x]-(-7)) > tol {
		t.Errorf("x = %f, want -7", sol.X[x])
	}
}

func TestFixedVariable(t *testing.T) {
	m := NewModel()
	x := m.AddVar(3, 3, -10, "x")
	y := m.AddVar(0, 10, 1, "y")
	m.AddRow(GE, 5, Term{x, 1}, Term{y, 1})
	sol := m.Solve()
	if sol.Status != Optimal {
		t.Fatalf("status = %s", sol.Status)
	}
	if math.Abs(sol.X[x]-3) > tol || math.Abs(sol.X[y]-2) > tol {
		t.Errorf("x = %v, want (3,2)", sol.X)
	}
}

func TestDuplicateTermsMerged(t *testing.T) {
	// x + x <= 4 means 2x <= 4.
	m := NewModel()
	x := m.AddVar(0, 10, -1, "x")
	m.AddRow(LE, 4, Term{x, 1}, Term{x, 1})
	sol := m.Solve()
	if sol.Status != Optimal || math.Abs(sol.X[x]-2) > tol {
		t.Fatalf("sol = %+v, want x=2", sol)
	}
}

func TestSolveWithBounds(t *testing.T) {
	m := NewModel()
	x := m.AddVar(0, 10, -1, "x")
	m.AddRow(LE, 8, Term{x, 1})
	sol := m.Solve()
	if math.Abs(sol.X[x]-8) > tol {
		t.Fatalf("base solve x = %f", sol.X[x])
	}
	lo, hi := m.Bounds()
	hi[x] = 5
	sol2 := m.SolveWithBounds(lo, hi)
	if sol2.Status != Optimal || math.Abs(sol2.X[x]-5) > tol {
		t.Fatalf("bounded solve = %+v, want x=5", sol2)
	}
	// Original model unchanged.
	sol3 := m.Solve()
	if math.Abs(sol3.X[x]-8) > tol {
		t.Error("SolveWithBounds mutated the model")
	}
}

func TestDegenerateLP(t *testing.T) {
	// Multiple constraints through one vertex; must still terminate.
	m := NewModel()
	x := m.AddVar(0, math.Inf(1), -1, "x")
	y := m.AddVar(0, math.Inf(1), -1, "y")
	m.AddRow(LE, 2, Term{x, 1}, Term{y, 1})
	m.AddRow(LE, 2, Term{x, 1}, Term{y, 1})
	m.AddRow(LE, 4, Term{x, 2}, Term{y, 2})
	m.AddRow(LE, 1, Term{x, 1})
	m.AddRow(LE, 1, Term{y, 1})
	sol := m.Solve()
	if sol.Status != Optimal {
		t.Fatalf("status = %s", sol.Status)
	}
	if math.Abs(sol.Obj-(-2)) > tol {
		t.Errorf("obj = %f, want -2", sol.Obj)
	}
}

func TestRedundantEqualities(t *testing.T) {
	// x + y = 2 stated twice: redundant but consistent.
	m := NewModel()
	x := m.AddVar(0, 5, 1, "x")
	y := m.AddVar(0, 5, 2, "y")
	m.AddRow(EQ, 2, Term{x, 1}, Term{y, 1})
	m.AddRow(EQ, 2, Term{x, 1}, Term{y, 1})
	sol := m.Solve()
	if sol.Status != Optimal {
		t.Fatalf("status = %s", sol.Status)
	}
	if math.Abs(sol.X[x]-2) > tol || math.Abs(sol.X[y]) > tol {
		t.Errorf("x = %v, want (2,0)", sol.X)
	}
}

func TestBigMStyleIndicator(t *testing.T) {
	// The paper's Constraint (4) pattern: u - v <= G(1-d) with d in [0,1]
	// relaxed. With u fixed 10, v fixed 0, G=100: d <= 0.9.
	// Maximizing d (min -d) should give d = 0.9.
	m := NewModel()
	d := m.AddVar(0, 1, -1, "d")
	u := m.AddVar(10, 10, 0, "u")
	v := m.AddVar(0, 0, 0, "v")
	m.AddRow(LE, 100, Term{u, 1}, Term{v, -1}, Term{d, 100})
	sol := m.Solve()
	if sol.Status != Optimal {
		t.Fatalf("status = %s", sol.Status)
	}
	if math.Abs(sol.X[d]-0.9) > tol {
		t.Errorf("d = %f, want 0.9", sol.X[d])
	}
}

// --- brute-force cross-check ---------------------------------------------

// bruteLP solves min c·x over {x : rows, lo<=x<=hi} for n<=3 by enumerating
// all vertices (intersections of n active constraints drawn from rows and
// bounds) and returns (obj, feasible).
func bruteLP(n int, c []float64, rows [][]float64, senses []Sense, rhs []float64,
	lo, hi []float64) (float64, bool) {
	// Build the full constraint list as (a, b) pairs meaning a·x <= b,
	// flipping GE; EQ contributes both directions.
	type hc struct {
		a []float64
		b float64
	}
	var hcs []hc
	for i, r := range rows {
		switch senses[i] {
		case LE:
			hcs = append(hcs, hc{r, rhs[i]})
		case GE:
			neg := make([]float64, n)
			for k := range r {
				neg[k] = -r[k]
			}
			hcs = append(hcs, hc{neg, -rhs[i]})
		case EQ:
			neg := make([]float64, n)
			for k := range r {
				neg[k] = -r[k]
			}
			hcs = append(hcs, hc{r, rhs[i]}, hc{neg, -rhs[i]})
		}
	}
	for k := 0; k < n; k++ {
		a := make([]float64, n)
		a[k] = 1
		hcs = append(hcs, hc{a, hi[k]})
		a2 := make([]float64, n)
		a2[k] = -1
		hcs = append(hcs, hc{a2, -lo[k]})
	}
	feasible := func(x []float64) bool {
		for _, h := range hcs {
			s := 0.0
			for k := 0; k < n; k++ {
				s += h.a[k] * x[k]
			}
			if s > h.b+1e-7 {
				return false
			}
		}
		return true
	}
	best := math.Inf(1)
	found := false
	// Enumerate all n-subsets of hcs, solve the linear system.
	idx := make([]int, n)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == n {
			A := make([][]float64, n)
			b := make([]float64, n)
			for i := 0; i < n; i++ {
				A[i] = append([]float64(nil), hcs[idx[i]].a...)
				b[i] = hcs[idx[i]].b
			}
			x, ok := solveSquare(A, b)
			if !ok || !feasible(x) {
				return
			}
			obj := 0.0
			for k := 0; k < n; k++ {
				obj += c[k] * x[k]
			}
			if obj < best {
				best = obj
				found = true
			}
			return
		}
		for i := start; i < len(hcs); i++ {
			idx[depth] = i
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
	return best, found
}

// solveSquare solves Ax=b by Gaussian elimination with partial pivoting.
func solveSquare(A [][]float64, b []float64) ([]float64, bool) {
	n := len(b)
	for col := 0; col < n; col++ {
		p := col
		for r := col + 1; r < n; r++ {
			if math.Abs(A[r][col]) > math.Abs(A[p][col]) {
				p = r
			}
		}
		if math.Abs(A[p][col]) < 1e-9 {
			return nil, false
		}
		A[col], A[p] = A[p], A[col]
		b[col], b[p] = b[p], b[col]
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := A[r][col] / A[col][col]
			for k := col; k < n; k++ {
				A[r][k] -= f * A[col][k]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for k := 0; k < n; k++ {
		x[k] = b[k] / A[k][k]
	}
	return x, true
}

// TestRandomVsBruteForce cross-checks the simplex against vertex
// enumeration on hundreds of random small LPs with bounded boxes.
func TestRandomVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	for trial := 0; trial < 400; trial++ {
		n := 2 + rng.Intn(2) // 2 or 3 vars
		nRows := 1 + rng.Intn(4)
		c := make([]float64, n)
		lo := make([]float64, n)
		hi := make([]float64, n)
		for k := 0; k < n; k++ {
			c[k] = float64(rng.Intn(11) - 5)
			lo[k] = float64(rng.Intn(4) - 2)
			hi[k] = lo[k] + float64(1+rng.Intn(6))
		}
		rows := make([][]float64, nRows)
		senses := make([]Sense, nRows)
		rhs := make([]float64, nRows)
		for i := 0; i < nRows; i++ {
			rows[i] = make([]float64, n)
			nz := 0
			for k := 0; k < n; k++ {
				rows[i][k] = float64(rng.Intn(7) - 3)
				if rows[i][k] != 0 {
					nz++
				}
			}
			if nz == 0 {
				rows[i][0] = 1
			}
			senses[i] = Sense(rng.Intn(3))
			rhs[i] = float64(rng.Intn(13) - 6)
		}

		wantObj, wantFeasible := bruteLP(n, c, rows, senses, rhs, lo, hi)

		m := NewModel()
		vars := make([]int, n)
		for k := 0; k < n; k++ {
			vars[k] = m.AddVar(lo[k], hi[k], c[k], "v")
		}
		for i := 0; i < nRows; i++ {
			var terms []Term
			for k := 0; k < n; k++ {
				if rows[i][k] != 0 {
					terms = append(terms, Term{vars[k], rows[i][k]})
				}
			}
			m.AddRow(senses[i], rhs[i], terms...)
		}
		sol := m.Solve()

		if !wantFeasible {
			if sol.Status != Infeasible {
				t.Fatalf("trial %d: brute says infeasible, simplex says %s (obj %f)",
					trial, sol.Status, sol.Obj)
			}
			continue
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: brute obj %f but simplex status %s",
				trial, wantObj, sol.Status)
		}
		if math.Abs(sol.Obj-wantObj) > 1e-4 {
			t.Fatalf("trial %d: simplex obj %f != brute obj %f\nc=%v rows=%v senses=%v rhs=%v lo=%v hi=%v",
				trial, sol.Obj, wantObj, c, rows, senses, rhs, lo, hi)
		}
		// Verify feasibility of the reported point.
		for i := 0; i < nRows; i++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += rows[i][k] * sol.X[vars[k]]
			}
			switch senses[i] {
			case LE:
				if s > rhs[i]+1e-5 {
					t.Fatalf("trial %d: row %d violated: %f > %f", trial, i, s, rhs[i])
				}
			case GE:
				if s < rhs[i]-1e-5 {
					t.Fatalf("trial %d: row %d violated: %f < %f", trial, i, s, rhs[i])
				}
			case EQ:
				if math.Abs(s-rhs[i]) > 1e-5 {
					t.Fatalf("trial %d: row %d violated: %f != %f", trial, i, s, rhs[i])
				}
			}
		}
		for k := 0; k < n; k++ {
			v := sol.X[vars[k]]
			if v < lo[k]-1e-5 || v > hi[k]+1e-5 {
				t.Fatalf("trial %d: var %d = %f outside [%f,%f]", trial, k, v, lo[k], hi[k])
			}
		}
	}
}

func TestStatusSenseStrings(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" ||
		Unbounded.String() != "unbounded" || IterLimit.String() != "iteration-limit" {
		t.Error("status strings broken")
	}
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Error("sense strings broken")
	}
}

func TestAddVarPanicsOnBadBounds(t *testing.T) {
	m := NewModel()
	defer func() {
		if recover() == nil {
			t.Error("expected panic for lo > hi")
		}
	}()
	m.AddVar(3, 1, 0, "bad")
}

func TestAddRowPanicsOnBadVar(t *testing.T) {
	m := NewModel()
	m.AddVar(0, 1, 0, "x")
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unknown var")
		}
	}()
	m.AddRow(LE, 1, Term{5, 1})
}

func TestLargerAssignmentLP(t *testing.T) {
	// 5x5 assignment problem relaxation: LP optimum is integral and equals
	// the min-cost assignment; compare against brute-force permutation.
	rng := rand.New(rand.NewSource(99))
	const n = 5
	cost := [n][n]float64{}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			cost[i][j] = float64(rng.Intn(50))
		}
	}
	m := NewModel()
	var x [n][n]int
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			x[i][j] = m.AddVar(0, 1, cost[i][j], "x")
		}
	}
	for i := 0; i < n; i++ {
		terms := make([]Term, n)
		for j := 0; j < n; j++ {
			terms[j] = Term{x[i][j], 1}
		}
		m.AddRow(EQ, 1, terms...)
	}
	for j := 0; j < n; j++ {
		terms := make([]Term, n)
		for i := 0; i < n; i++ {
			terms[i] = Term{x[i][j], 1}
		}
		m.AddRow(EQ, 1, terms...)
	}
	sol := m.Solve()
	if sol.Status != Optimal {
		t.Fatalf("status = %s", sol.Status)
	}
	// Brute force over permutations.
	perm := []int{0, 1, 2, 3, 4}
	best := math.Inf(1)
	var visit func(k int)
	visit = func(k int) {
		if k == n {
			s := 0.0
			for i := 0; i < n; i++ {
				s += cost[i][perm[i]]
			}
			if s < best {
				best = s
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			visit(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	visit(0)
	if math.Abs(sol.Obj-best) > 1e-5 {
		t.Errorf("assignment LP obj %f != brute %f", sol.Obj, best)
	}
}
