// Package crfix is a clockrand fixture in a deterministic internal
// package: wall-clock reads and global math/rand draws are flagged;
// seeded generators and tagged reporting sites pass.
package crfix

import (
	"math/rand"
	"time"
)

func stamp() time.Time {
	return time.Now() // want `wall clock must not influence results`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `wall clock must not influence results`
}

func remaining(dl time.Time) time.Duration {
	return time.Until(dl) // want `wall clock must not influence results`
}

func roll() int {
	return rand.Intn(6) // want `global math/rand source \(rand\.Intn\)`
}

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global math/rand source \(rand\.Shuffle\)`
}

// seeded uses the reproducible idiom: clean.
func seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(6)
}

// durations that never read the clock are clean.
func budget() time.Duration {
	return 400 * time.Millisecond
}

// tagged stamps a report-only duration: suppressed.
func tagged() time.Time {
	return time.Now() // clock-ok: report-only timestamp
}
