package lp

import "sync/atomic"

// Sparse LU factorization of the simplex basis.
//
// The basis matrix B has one column per basis slot i holding the constraint
// column of basis[i]. Window-MILP bases are overwhelmingly sparse — unit
// slack/artificial columns, exactly-one candidate rows and big-G indicator
// rows contribute a handful of nonzeros each — so the factorization and the
// FTRAN/BTRAN solves built on it (ftran.go) run in O(nnz) instead of the
// O(rows²) per pivot the dense explicit inverse paid.
//
// Factorization is Gaussian elimination with Markowitz ordering: each step
// pivots on an entry minimizing (rowCount−1)·(colCount−1) among the lowest
// column counts, subject to a relative magnitude threshold, which keeps
// fill-in near zero on these assignment-structured bases (singleton slack
// columns eliminate for free). Basis changes append product-form eta
// vectors (the FTRAN spike of the entering column); a fresh factorization
// replaces the eta file when it grows past a fill trigger or an update
// pivot falls below the stability threshold, bounding both work and the
// floating-point drift that the dense kernel could only wash out with a
// full cold restart.

const (
	// markowitzThresh accepts a pivot only when its magnitude is at least
	// this fraction of the largest entry in its column (threshold partial
	// pivoting): small enough to let Markowitz choose freely, large enough
	// to bound element growth.
	markowitzThresh = 0.01
	// absPivotTol is the hard floor below which an entry never pivots; a
	// factorization that cannot avoid it reports a singular basis.
	absPivotTol = 1e-11
	// maxEtas triggers refactorization once this many product-form updates
	// accumulate.
	maxEtas = 48
	// etaFillFactor triggers refactorization when the eta file's nonzeros
	// exceed this multiple of the base factorization's fill.
	etaFillFactor = 4
	// etaPivotTol: a spike whose pivot entry is below this fraction of the
	// spike's largest entry makes the product-form update too unstable to
	// append; the pivot refactorizes instead.
	etaPivotTol = 1e-7
)

// Stats counts simplex-kernel work, for telemetry. Per-arena counts are
// cumulative over the arena's lifetime (Arena.Stats); GlobalStats
// aggregates across all arenas in the process.
type Stats struct {
	Solves    int64 // LP solves completed (cold or warm)
	Pivots    int64 // basis changes, primal and dual
	Refactors int64 // sparse LU factorizations performed
	FillNnz   int64 // total L+U nonzeros produced by those factorizations
	EtaNnz    int64 // total eta-file nonzeros appended between them
}

var globalStats struct {
	solves, pivots, refactors, fillNnz, etaNnz atomic.Int64
}

// GlobalStats returns process-wide kernel counters, aggregated once per
// completed solve (cheap enough to leave always-on; benchmarks report the
// deltas via b.ReportMetric).
func GlobalStats() Stats {
	return Stats{
		Solves:    globalStats.solves.Load(),
		Pivots:    globalStats.pivots.Load(),
		Refactors: globalStats.refactors.Load(),
		FillNnz:   globalStats.fillNnz.Load(),
		EtaNnz:    globalStats.etaNnz.Load(),
	}
}

// flushGlobal publishes the delta since the last flush to the process-wide
// counters (one batch of atomic adds per solve, not per pivot).
func (f *luFactor) flushGlobal() {
	d := f.stats
	p := f.flushed
	globalStats.solves.Add(d.Solves - p.Solves)
	globalStats.pivots.Add(d.Pivots - p.Pivots)
	globalStats.refactors.Add(d.Refactors - p.Refactors)
	globalStats.fillNnz.Add(d.FillNnz - p.FillNnz)
	globalStats.etaNnz.Add(d.EtaNnz - p.EtaNnz)
	f.flushed = d
}

// luFactor holds the base factorization P·B·Q = L·U plus the product-form
// eta file, along with the scratch both factorization and solves use. One
// luFactor lives in each Arena and is reused by every solve sharing it.
type luFactor struct {
	m int // basis dimension (= nRows of the model)

	// Elimination order: step k pivoted on constraint row pr[k] and basis
	// slot pc[k]; colOf inverts pc (slot → step).
	pr, pc []int32
	colOf  []int32

	// L multipliers of step k (lptr[k]..lptr[k+1]): elimination subtracted
	// lval × (pivot row k) from row lrow; FTRAN replays the same
	// operations on the right-hand side. lsteps lists the steps that have
	// any multipliers at all — sparse bases eliminate mostly singletons, so
	// the replays walk this short list instead of all m steps.
	lptr   []int32
	lrow   []int32
	lval   []float64
	lsteps []int32

	// U row of step k (uptr[k]..uptr[k+1]) with the pivot in upiv[k]; ucol
	// holds the *elimination step* of each off-pivot column (remapped from
	// slots after factorization), so the triangular solves index their
	// step-ordered scratch directly.
	uptr []int32
	ucol []int32
	uval []float64
	upiv []float64

	// U by columns (rebuilt after each factorization from the row form):
	// column of step c holds the entries U[k,c] with k < c, with ucrow the
	// row's step index. The FTRAN back substitution scatters through these
	// columns and skips zero steps outright — with the row form it would
	// have to touch every U entry per solve even for a two-nonzero spike.
	ucptr []int32
	ucrow []int32
	ucval []float64

	// Product-form eta file: update t (eptr[t]..eptr[t+1]) stores the
	// off-pivot nonzeros of the entering column's spike in slot space;
	// epos[t] is the pivot slot, epiv[t] the spike's pivot entry.
	eptr []int32
	eidx []int32
	eval []float64
	epos []int32
	epiv []float64

	// Factorization scratch: the active submatrix as live sparse rows plus
	// a (superset) column→rows incidence. The per-row/-column slices are
	// carved from the flat backing arrays below (exact pre-counted
	// capacities); only fill-in pushes a row past its carve and reallocates
	// that one slice.
	rowCol  [][]int32
	rowVal  [][]float64
	colRows [][]int32
	rcBack  []int32
	rvBack  []float64
	crBack  []int32
	rowCnt  []int32
	colCnt  []int32
	rowDone []bool
	colDone []bool
	csing   []int32 // queue of columns whose live count dropped to 1

	// Fill-in overflow arena: a row (or column incidence list) that outgrows
	// its exact-capacity carve from the backing arrays above is moved here
	// instead of reallocating on the heap. The arena is bump-allocated per
	// factorization and its backing is kept across calls, so once it reaches
	// the high-water fill of a window's bases, factorize allocates nothing.
	ovCol []int32
	ovVal []float64
	ovPos int

	// Solve scratch: tmp is the step-ordered intermediate of the
	// triangular solves; dense is a spare row/slot-space vector.
	tmp   []float64
	dense []float64

	nnzLU int // fill of the current base factorization (L + U + pivots)

	stats   Stats
	flushed Stats
}

// reset sizes the factor for an m-row basis, invalidating any previous
// factorization and eta file.
func (f *luFactor) reset(m int) {
	f.m = m
	f.pr = growSlice(f.pr, m)
	f.pc = growSlice(f.pc, m)
	f.colOf = growSlice(f.colOf, m)
	f.tmp = growSlice(f.tmp, m)
	f.dense = growSlice(f.dense, m)
	f.lptr = append(f.lptr[:0], 0)
	f.lsteps = f.lsteps[:0]
	f.uptr = append(f.uptr[:0], 0)
	f.upiv = f.upiv[:0]
	f.clearEtas()
}

func (f *luFactor) clearEtas() {
	f.eptr = append(f.eptr[:0], 0)
	f.eidx = f.eidx[:0]
	f.eval = f.eval[:0]
	f.epos = f.epos[:0]
	f.epiv = f.epiv[:0]
}

// nEtas returns the number of product-form updates stacked on the base
// factorization.
func (f *luFactor) nEtas() int { return len(f.epos) }

// needsRefactor reports whether the eta file has outgrown its triggers.
// The update cap scales with the basis dimension: every FTRAN/BTRAN pays
// for the whole eta file, while refactorizing a small basis is nearly
// free, so tiny bases (single-row knapsack relaxations) refactor after a
// handful of updates and big windows amortize up to maxEtas.
func (f *luFactor) needsRefactor() bool {
	cap := f.m/2 + 4
	if cap > maxEtas {
		cap = maxEtas
	}
	return f.nEtas() >= cap || len(f.eidx) > etaFillFactor*(f.nnzLU+f.m)
}

// factorize computes a fresh P·B·Q = L·U for the basis (slot i holds the
// column of variable basis[i]) and empties the eta file. It returns false
// when the basis is numerically singular, leaving the factor unusable; the
// caller must then rebuild from a basis it can factor.
func (f *luFactor) factorize(cols [][]entry, basis []int) bool {
	m := f.m
	f.ovPos = 0
	f.clearEtas()
	f.lptr = append(f.lptr[:0], 0)
	f.lrow = f.lrow[:0]
	f.lval = f.lval[:0]
	f.lsteps = f.lsteps[:0]
	f.uptr = append(f.uptr[:0], 0)
	f.ucol = f.ucol[:0]
	f.uval = f.uval[:0]
	f.upiv = f.upiv[:0]

	// Build the active matrix row-wise with column incidence.
	if cap(f.rowCol) < m {
		f.rowCol = make([][]int32, m)
		f.rowVal = make([][]float64, m)
		f.colRows = make([][]int32, m)
	}
	f.rowCol = f.rowCol[:m]
	f.rowVal = f.rowVal[:m]
	f.colRows = f.colRows[:m]
	f.rowCnt = growSlice(f.rowCnt, m)
	f.colCnt = growSlice(f.colCnt, m)
	f.rowDone = growSlice(f.rowDone, m)
	f.colDone = growSlice(f.colDone, m)
	// Count nonzeros per row, carve the backing arrays into exact-capacity
	// per-row/-column slices, then fill by (alloc-free) appends.
	nnz := 0
	for i := 0; i < m; i++ {
		f.rowCnt[i], f.colCnt[i] = 0, 0
		f.rowDone[i], f.colDone[i] = false, false
	}
	for j := 0; j < m; j++ {
		for _, e := range cols[basis[j]] {
			f.rowCnt[e.row]++
		}
		nnz += len(cols[basis[j]])
	}
	f.rcBack = growSlice(f.rcBack, nnz)
	f.rvBack = growSlice(f.rvBack, nnz)
	f.crBack = growSlice(f.crBack, nnz)
	pos := 0
	for i := 0; i < m; i++ {
		c := pos + int(f.rowCnt[i])
		f.rowCol[i] = f.rcBack[pos:pos:c]
		f.rowVal[i] = f.rvBack[pos:pos:c]
		pos = c
	}
	pos = 0
	for j := 0; j < m; j++ {
		c := pos + len(cols[basis[j]])
		f.colRows[j] = f.crBack[pos:pos:c]
		pos = c
	}
	f.csing = f.csing[:0]
	for j := 0; j < m; j++ {
		for _, e := range cols[basis[j]] {
			f.rowCol[e.row] = append(f.rowCol[e.row], int32(j))
			f.rowVal[e.row] = append(f.rowVal[e.row], e.val)
			f.colRows[j] = append(f.colRows[j], int32(e.row))
			f.colCnt[j]++
		}
		if f.colCnt[j] == 1 {
			f.csing = append(f.csing, int32(j))
		}
	}

	// val: dense scatter scratch for row combination; zero outside the
	// current row's support (restored after every gather).
	val := f.dense
	clear(val)

	for step := 0; step < m; step++ {
		// Singleton fast path: a column with one live entry pivots with no
		// elimination work and no fill. Crash bases (mostly unit slack and
		// artificial columns) and assignment-structured bases factor almost
		// entirely through this queue, skipping the Markowitz scans.
		pi, pj := -1, -1
		for len(f.csing) > 0 {
			j := int(f.csing[len(f.csing)-1])
			f.csing = f.csing[:len(f.csing)-1]
			if f.colDone[j] || f.colCnt[j] != 1 {
				continue // stale queue entry
			}
			for _, ri := range f.colRows[j] {
				i := int(ri)
				if f.rowDone[i] {
					continue
				}
				if v, found := f.rowEntry(i, j); found {
					// A too-small singleton entry falls through to the
					// Markowitz/fallback path (near-singular basis).
					if abs(v) >= absPivotTol {
						pi, pj = i, j
					}
					break
				}
			}
			if pi >= 0 {
				break
			}
		}
		if pi < 0 {
			var ok bool
			pi, pj, ok = f.pickPivot()
			if !ok {
				return false
			}
		}
		f.pr[step], f.pc[step] = int32(pi), int32(pj)
		f.colOf[pj] = int32(step)
		f.rowDone[pi] = true
		f.colDone[pj] = true

		// Split the pivot row into pivot entry and U-row remainder.
		var piv float64
		uStart := len(f.ucol)
		for t, c := range f.rowCol[pi] {
			if int(c) == pj {
				piv = f.rowVal[pi][t]
			} else {
				f.ucol = append(f.ucol, c)
				f.uval = append(f.uval, f.rowVal[pi][t])
				if f.colCnt[c]--; f.colCnt[c] == 1 { // row pi leaves the active matrix
					f.csing = append(f.csing, c)
				}
			}
		}
		f.upiv = append(f.upiv, piv)
		uRowC := f.ucol[uStart:]
		uRowV := f.uval[uStart:]
		f.uptr = append(f.uptr, int32(len(f.ucol)))

		// Eliminate pj from every other live row carrying it.
		for _, ri := range f.colRows[pj] {
			i := int(ri)
			if f.rowDone[i] {
				continue
			}
			rc, rv := f.rowCol[i], f.rowVal[i]
			at := -1
			for t, c := range rc {
				if int(c) == pj {
					at = t
					break
				}
			}
			if at == -1 {
				continue // stale incidence entry (earlier cancellation)
			}
			l := rv[at] / piv
			f.lrow = append(f.lrow, int32(i))
			f.lval = append(f.lval, l)

			// row_i -= l × (U part of pivot row), via dense scatter. The
			// pivot-column entry is dropped; exact cancellations too.
			rc[at], rv[at] = rc[len(rc)-1], rv[len(rv)-1]
			rc, rv = rc[:len(rc)-1], rv[:len(rv)-1]
			for t, c := range rc {
				val[c] = rv[t]
			}
			// Fill can add up to len(uRowC) entries; rows carved at exact
			// capacity move to the overflow arena instead of reallocating.
			if cap(rc) < len(rc)+len(uRowC) {
				rc, rv = f.overflowRow(rc, rv, len(rc)+len(uRowC))
			}
			nc, nv := rc, rv
			for t, c := range uRowC {
				if val[c] != 0 {
					val[c] -= l * uRowV[t]
					continue
				}
				fill := -l * uRowV[t]
				if fill == 0 {
					continue
				}
				val[c] = fill
				nc = append(nc, c)
				nv = append(nv, 0) // value gathered below
				if len(f.colRows[c]) == cap(f.colRows[c]) {
					f.colRows[c] = f.overflowCol(f.colRows[c])
				}
				f.colRows[c] = append(f.colRows[c], ri)
				f.colCnt[c]++
			}
			// Gather back, compacting out cancellations.
			w := 0
			for _, c := range nc {
				v := val[c]
				val[c] = 0
				if v == 0 {
					if f.colCnt[c]--; f.colCnt[c] == 1 && !f.colDone[c] {
						f.csing = append(f.csing, c)
					}
					continue
				}
				nc[w], nv[w] = c, v
				w++
			}
			f.rowCol[i], f.rowVal[i] = nc[:w], nv[:w]
			f.rowCnt[i] = int32(w)
		}
		f.colRows[pj] = f.colRows[pj][:0]
		f.colCnt[pj] = 0
		f.lptr = append(f.lptr, int32(len(f.lrow)))
		if f.lptr[step+1] > f.lptr[step] {
			f.lsteps = append(f.lsteps, int32(step))
		}
	}

	// Remap U columns from basis slots to elimination steps so the
	// triangular solves can index step-ordered scratch directly.
	for t, c := range f.ucol {
		f.ucol[t] = f.colOf[c]
	}

	// Transpose U into column form for the hyper-sparse FTRAN backsolve.
	// colCnt is dead after elimination and serves as the counting scratch.
	cnt := f.colCnt
	for k := 0; k < m; k++ {
		cnt[k] = 0
	}
	for _, c := range f.ucol {
		cnt[c]++
	}
	f.ucptr = growSlice(f.ucptr, m+1)
	upos := int32(0)
	for k := 0; k < m; k++ {
		f.ucptr[k] = upos
		upos += cnt[k]
		cnt[k] = 0
	}
	f.ucptr[m] = upos
	f.ucrow = growSlice(f.ucrow, int(upos))
	f.ucval = growSlice(f.ucval, int(upos))
	for k := 0; k < m; k++ {
		for e := f.uptr[k]; e < f.uptr[k+1]; e++ {
			c := f.ucol[e]
			at := f.ucptr[c] + cnt[c]
			cnt[c]++
			f.ucrow[at] = int32(k)
			f.ucval[at] = f.uval[e]
		}
	}

	f.nnzLU = len(f.lval) + len(f.uval) + m
	f.stats.Refactors++
	f.stats.FillNnz += int64(f.nnzLU)
	return true
}

// ovCarve reserves c entries in the overflow arena and returns their start
// offset. When the arena is full it reallocates fresh backing: carves
// already handed out keep referencing the old arrays (rows are independent
// slices), and the larger backing is what later factorizations reuse.
func (f *luFactor) ovCarve(c int) int {
	if f.ovPos+c > len(f.ovCol) {
		n := 2 * (f.ovPos + c)
		if n < 1024 {
			n = 1024
		}
		f.ovCol = make([]int32, n)
		f.ovVal = make([]float64, n)
		f.ovPos = 0
	}
	at := f.ovPos
	f.ovPos += c
	return at
}

// overflowRow moves a live row into the overflow arena with capacity for
// want entries plus headroom for further fill.
func (f *luFactor) overflowRow(rc []int32, rv []float64, want int) ([]int32, []float64) {
	c := want + want/2 + 8
	at := f.ovCarve(c)
	nc := f.ovCol[at : at+len(rc) : at+c]
	nv := f.ovVal[at : at+len(rc) : at+c]
	copy(nc, rc)
	copy(nv, rv)
	return nc, nv
}

// overflowCol doubles a full column incidence list into the overflow arena.
func (f *luFactor) overflowCol(cr []int32) []int32 {
	c := 2*len(cr) + 8
	at := f.ovCarve(c)
	ncr := f.ovCol[at : at+len(cr) : at+c]
	copy(ncr, cr)
	return ncr
}

// pickPivot selects the next Markowitz pivot: among the live columns with
// the lowest counts, the entry of minimal (rowCnt−1)·(colCnt−1) whose
// magnitude passes the relative threshold of its column.
func (f *luFactor) pickPivot() (pi, pj int, ok bool) {
	m := f.m
	minCnt := int32(1<<31 - 1)
	for j := 0; j < m; j++ {
		if !f.colDone[j] && f.colCnt[j] > 0 && f.colCnt[j] < minCnt {
			minCnt = f.colCnt[j]
		}
	}
	pi, pj = -1, -1
	if minCnt == 1<<31-1 {
		// No live column has entries: structurally singular (a zero column
		// slipped into the basis, or everything cancelled numerically).
		return f.pickPivotFallback()
	}
	bestCost := int64(1) << 62
	var bestVal float64
	const maxCand = 8
	cands := 0
	for j := 0; j < m && cands < maxCand; j++ {
		if f.colDone[j] || f.colCnt[j] == 0 || f.colCnt[j] > minCnt+1 {
			continue
		}
		cands++
		colMax, _ := f.colEntry(j, -1)
		if colMax < absPivotTol {
			continue
		}
		thresh := markowitzThresh * colMax
		for _, ri := range f.colRows[j] {
			i := int(ri)
			if f.rowDone[i] {
				continue
			}
			v, found := f.rowEntry(i, j)
			if !found || abs(v) < thresh || abs(v) < absPivotTol {
				continue
			}
			cost := int64(f.rowCnt[i]-1) * int64(f.colCnt[j]-1)
			if cost < bestCost || (cost == bestCost && abs(v) > abs(bestVal)) {
				bestCost, bestVal = cost, v
				pi, pj = i, j
			}
		}
	}
	if pi >= 0 {
		return pi, pj, true
	}
	return f.pickPivotFallback()
}

// pickPivotFallback scans the whole live submatrix for the entry of
// largest magnitude — the last resort when no candidate column offers a
// threshold-passing pivot. Failing here means the basis is singular.
func (f *luFactor) pickPivotFallback() (pi, pj int, ok bool) {
	best := absPivotTol
	pi, pj = -1, -1
	for i := 0; i < f.m; i++ {
		if f.rowDone[i] {
			continue
		}
		for t, c := range f.rowCol[i] {
			if f.colDone[c] {
				continue
			}
			if v := abs(f.rowVal[i][t]); v >= best {
				best, pi, pj = v, i, int(c)
			}
		}
	}
	return pi, pj, pi >= 0
}

// colEntry returns the largest live magnitude in column j, and the value
// at row want (when want >= 0).
func (f *luFactor) colEntry(j, want int) (colMax, atWant float64) {
	for _, ri := range f.colRows[j] {
		i := int(ri)
		if f.rowDone[i] {
			continue
		}
		if v, found := f.rowEntry(i, j); found {
			if abs(v) > colMax {
				colMax = abs(v)
			}
			if i == want {
				atWant = v
			}
		}
	}
	return colMax, atWant
}

// rowEntry returns row i's value in column j.
func (f *luFactor) rowEntry(i, j int) (float64, bool) {
	for t, c := range f.rowCol[i] {
		if int(c) == j {
			return f.rowVal[i][t], true
		}
	}
	return 0, false
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
