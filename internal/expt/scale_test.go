package expt

import (
	"strings"
	"testing"
	"time"
)

// TestScaledDesignsFloor pins the MinScaledInsts clamp (the satellite
// fix of PR 9): scales below MinScaledInsts/NumInsts saturate at the
// floor — the same design point again, not a smaller one — and the
// boundary sits exactly where the docs say.
func TestScaledDesignsFloor(t *testing.T) {
	// Below every design's floor ratio (200/68606 ≈ 0.0029 is the
	// smallest), all four paper designs clamp to the floor.
	for _, d := range ScaledDesigns(0.002) {
		if d.NumInsts != MinScaledInsts {
			t.Errorf("scale 0.002: %s has %d insts, want floor %d", d.Name, d.NumInsts, MinScaledInsts)
		}
	}
	// Two sub-floor scales return identical specs — the duplicate-point
	// hazard the docs warn sweep drivers about.
	a, b := ScaledDesigns(0.002), ScaledDesigns(0.001)
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("sub-floor scales differ: %+v vs %+v", a[i], b[i])
		}
	}
	// Just above m0's floor ratio (200/9922 ≈ 0.02016) the clamp must
	// release: scale 0.021 gives m0 208 > MinScaledInsts instances.
	if got := ScaledDesigns(0.021)[0]; got.NumInsts <= MinScaledInsts {
		t.Errorf("scale 0.021: m0 has %d insts, want > floor %d", got.NumInsts, MinScaledInsts)
	}
	// And the floor never rounds a legitimate point down.
	if got := ScaledDesigns(1.0)[0].NumInsts; got != PaperDesigns[0].NumInsts {
		t.Errorf("scale 1.0 altered m0: %d want %d", got, PaperDesigns[0].NumInsts)
	}
}

// TestScaleSweepPointsDedupe checks the sweep expansion drops the
// duplicate floored points instead of re-running them, keeps distinct
// scales distinct, and supports above-paper scales for the synthetic
// large designs.
func TestScaleSweepPointsDedupe(t *testing.T) {
	pts, err := ScaleSweepPoints("m0", []float64{0.005, 0.01, 0.02, 0.1, 0.1, 1.0, 12.0})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, p := range pts {
		if seen[p.NumInsts] {
			t.Errorf("duplicate point NumInsts=%d survived dedupe: %+v", p.NumInsts, pts)
		}
		seen[p.NumInsts] = true
	}
	// 0.005, 0.01 and 0.02 all floor to one 200-inst point; 0.1 repeats;
	// so 7 scales collapse to 4 points: 200, 992, 9922, 119064.
	if len(pts) != 4 {
		t.Fatalf("got %d points %+v, want 4", len(pts), pts)
	}
	if pts[0].NumInsts != MinScaledInsts || pts[3].NumInsts != 12*PaperDesigns[0].NumInsts {
		t.Errorf("unexpected endpoints: %+v", pts)
	}
	if _, err := ScaleSweepPoints("nope", []float64{1}); err == nil {
		t.Error("unknown design accepted")
	}
}

// TestScaleSweepSmoke is the tiny 2-shard sweep behind
// `make bench-scale-smoke`: two floored flows, shards 1 and 2, whose
// routed QoR must be bit-identical (the shard-invariance guarantee seen
// end to end through the flow) and whose peak-heap samples must be
// positive.
func TestScaleSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two small full flows")
	}
	cfg := SuiteConfig{Workers: 1}
	pts, err := RunScaleSweep(cfg, "m0", []float64{0.005}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	a, b := pts[0], pts[1]
	if a.Shards != 1 || b.Shards != 2 {
		t.Fatalf("unexpected shard order: %+v", pts)
	}
	if a.RWL != b.RWL || a.DM1 != b.DM1 || a.DRVs != b.DRVs {
		t.Errorf("sharded QoR diverged: shards=1 %+v vs shards=2 %+v", a, b)
	}
	if a.NumInsts != MinScaledInsts {
		t.Errorf("floored sweep point has %d insts, want %d", a.NumInsts, MinScaledInsts)
	}
	if a.PeakHeapMB <= 0 || b.PeakHeapMB <= 0 {
		t.Errorf("peak heap not sampled: %+v", pts)
	}
	var sb strings.Builder
	WriteScaleSweep(&sb, pts)
	if !strings.Contains(sb.String(), "m0") {
		t.Errorf("WriteScaleSweep output missing design: %q", sb.String())
	}
}

// TestPeakHeapSampler checks the sampler observes an allocation spike
// made while it runs.
func TestPeakHeapSampler(t *testing.T) {
	s := StartPeakHeapSampler(time.Millisecond)
	big := make([]byte, 64<<20)
	for i := range big {
		big[i] = byte(i)
	}
	time.Sleep(10 * time.Millisecond)
	peak := s.Stop()
	if peak < uint64(len(big)) {
		t.Errorf("peak %d below the 64MB spike", peak)
	}
	_ = big[0]
}
