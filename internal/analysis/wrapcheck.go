package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// WrapCheckAnalyzer keeps the structured-error contract from PR 5
// honest: callers rely on errors.Is/errors.As seeing through the
// library's wrapping (ErrInvalidLibrary, ErrBadUtilization, *StageError,
// context.Canceled), which only works when
//
//   - fmt.Errorf embeds an error with %w, never %v/%s — a %v wrap
//     flattens the cause into text and breaks the chain; and
//   - sentinel errors (package-level `Err*` variables) are matched with
//     errors.Is, never == or != — direct comparison fails as soon as a
//     layer wraps the sentinel.
var WrapCheckAnalyzer = &Analyzer{
	Name: "wrapcheck",
	Doc:  "requires %w when fmt.Errorf embeds an error and errors.Is/As for sentinel comparisons",
	Tag:  "wrap-ok",
	Run:  runWrapCheck,
}

func runWrapCheck(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CallExpr:
				checkErrorfWrap(pass, e)
			case *ast.BinaryExpr:
				checkSentinelCompare(pass, e)
			}
			return true
		})
	}
	return nil
}

// checkErrorfWrap flags fmt.Errorf calls that pass an error value to a
// verb other than %w.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	if !isPkgFunc(pass.TypesInfo, call, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	format, ok := constString(pass, call.Args[0])
	if !ok {
		return
	}
	verbs, ok := parseVerbs(format)
	if !ok {
		return // indexed or otherwise exotic format; stay silent
	}
	args := call.Args[1:]
	for i, v := range verbs {
		if i >= len(args) {
			break // go vet reports the arity mismatch
		}
		if v == 'w' || v == 'T' { // %T prints the type, it never meant to wrap
			continue
		}
		t := pass.TypesInfo.TypeOf(args[i])
		if t == nil || !implementsError(t) {
			continue
		}
		pass.Reportf(args[i].Pos(), "error embedded with %%%c loses the chain for errors.Is/As; use %%w", v)
	}
}

// constString returns the compile-time string value of e, if any.
func constString(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// parseVerbs extracts the verb letter for each argument-consuming verb of
// a Printf-style format string, in argument order. '*' width/precision
// entries consume an argument and are recorded as '*'. Explicit argument
// indexes (%[1]d) make the mapping nontrivial, so parseVerbs reports
// ok=false and the caller skips the check.
func parseVerbs(format string) ([]byte, bool) {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// Flags, width, precision.
		for i < len(format) {
			c := format[i]
			if c == '[' {
				return nil, false // explicit argument index
			}
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if strings.IndexByte("+-# 0.0123456789", c) >= 0 {
				i++
				continue
			}
			break
		}
		if i >= len(format) {
			break
		}
		if format[i] != '%' { // %% consumes no argument
			verbs = append(verbs, format[i])
		}
	}
	return verbs, true
}

// checkSentinelCompare flags ==/!= comparisons where one side is a
// package-level sentinel error variable (Err*) and the other is a
// non-nil error expression.
func checkSentinelCompare(pass *Pass, e *ast.BinaryExpr) {
	if e.Op != token.EQL && e.Op != token.NEQ {
		return
	}
	sentinelSide := sentinelError(pass, e.X) != nil
	otherNil := isNilExpr(pass, e.Y)
	if !sentinelSide {
		sentinelSide = sentinelError(pass, e.Y) != nil
		otherNil = isNilExpr(pass, e.X)
	}
	if sentinelSide && !otherNil {
		pass.Reportf(e.Pos(), "sentinel error compared with %s; use errors.Is so wrapped chains still match", e.Op)
	}
}

// sentinelError returns the package-level error variable named Err* that
// e refers to, or nil.
func sentinelError(pass *Pass, e ast.Expr) types.Object {
	var id *ast.Ident
	switch x := e.(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil
	}
	obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || obj.Pkg() == nil {
		return nil
	}
	// Package-level: parent scope is the package scope.
	if obj.Parent() != obj.Pkg().Scope() {
		return nil
	}
	if !strings.HasPrefix(obj.Name(), "Err") || !implementsError(obj.Type()) {
		return nil
	}
	return obj
}

func isNilExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.IsNil()
}
