// Package lp implements a bounded-variable revised simplex solver for
// linear programs in the form
//
//	minimize    cᵀx
//	subject to  aᵢᵀx {≤,=,≥} bᵢ   for every row i
//	            lo ≤ x ≤ hi       (bounds may be ±Inf)
//
// It is the LP engine underneath internal/milp, which together replace the
// CPLEX solver of the DAC'17 paper. The basis is kept as a sparse LU
// factorization (Markowitz-ordered, with product-form eta updates and
// periodic refactorization — factor.go) driving sparse FTRAN/BTRAN solves
// (ftran.go), so each pivot costs O(nnz) on the overwhelmingly sparse
// window-MILP constraint matrices instead of the O(rows²) a dense explicit
// inverse pays. Pricing runs over a candidate list refreshed by periodic
// full scans, so iterations stop scanning every column. Re-solves under
// changed bounds warm start through the dual simplex (dual.go).
package lp

import (
	"fmt"
	"math"
	"time"
)

// Sense is a linear constraint's relational operator.
type Sense int8

const (
	LE Sense = iota // aᵀx ≤ b
	GE              // aᵀx ≥ b
	EQ              // aᵀx = b
)

// String implements fmt.Stringer.
func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return fmt.Sprintf("Sense(%d)", int8(s))
	}
}

// Status reports the outcome of a solve.
type Status int

const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterLimit

	numStatus // sentinel: add new statuses above and name them below
)

// statusNames names every Status; statusTableTest asserts it stays
// exhaustive so a new status cannot ship without a name.
var statusNames = [numStatus]string{
	Optimal:    "optimal",
	Infeasible: "infeasible",
	Unbounded:  "unbounded",
	IterLimit:  "iteration-limit",
}

// String implements fmt.Stringer.
func (s Status) String() string {
	if s >= 0 && s < numStatus {
		return statusNames[s]
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// statusNumFail is an internal sentinel for numerical failure (a basis the
// factorization cannot handle). It never escapes the package: solve maps
// it to IterLimit after disabling the warm-start state.
const statusNumFail Status = -1

// Term is one coefficient of a constraint row.
type Term struct {
	Var  int
	Coef float64
}

type entry struct {
	row int
	val float64
}

// Model is a mutable LP. Build with AddVar/AddRow, then call Solve. A Model
// may be solved repeatedly (e.g., with different bounds from a
// branch-and-bound driver); Solve does not mutate the model.
type Model struct {
	obj   []float64
	lo    []float64
	hi    []float64
	names []string

	sense []Sense
	rhs   []float64
	// cols[j] holds the sparse column of structural variable j.
	cols [][]entry

	// gen distinguishes logical models sharing one reused *Model (Reset
	// bumps it), so an Arena's pointer-keyed cache cannot mistake a rebuilt
	// model for the one it bound earlier.
	gen uint64

	// MaxIters bounds simplex iterations per phase; 0 means automatic.
	MaxIters int
}

// NewModel returns an empty model.
func NewModel() *Model { return &Model{} }

// Reset empties the model for rebuilding in place, keeping the per-variable
// column backing so a pooled model's AddVar/AddRow steady state is
// allocation-free. Any Arena bound to the old contents re-binds cold on its
// next solve (the generation bump invalidates the pointer-keyed cache).
func (m *Model) Reset() {
	m.gen++
	m.obj = m.obj[:0]
	m.lo = m.lo[:0]
	m.hi = m.hi[:0]
	m.names = m.names[:0]
	m.sense = m.sense[:0]
	m.rhs = m.rhs[:0]
	m.cols = m.cols[:0]
	m.MaxIters = 0
}

// NumVars returns the number of structural variables.
func (m *Model) NumVars() int { return len(m.obj) }

// NumRows returns the number of constraints.
func (m *Model) NumRows() int { return len(m.rhs) }

// AddVar adds a variable with bounds [lo, hi] and objective coefficient
// obj, returning its index. Use math.Inf for unbounded sides.
func (m *Model) AddVar(lo, hi, obj float64, name string) int {
	if lo > hi {
		panic(fmt.Sprintf("lp: variable %q has lo %g > hi %g", name, lo, hi)) // panic-ok: invariant
	}
	m.obj = append(m.obj, obj)
	m.lo = append(m.lo, lo)
	m.hi = append(m.hi, hi)
	m.names = append(m.names, name)
	// Re-extend over a Reset model's column backing instead of appending
	// nil, so pooled models keep their per-column entry storage.
	if len(m.cols) < cap(m.cols) {
		m.cols = m.cols[:len(m.cols)+1]
		m.cols[len(m.cols)-1] = m.cols[len(m.cols)-1][:0]
	} else {
		m.cols = append(m.cols, nil)
	}
	return len(m.obj) - 1
}

// SetObj overwrites the objective coefficient of variable j.
func (m *Model) SetObj(j int, c float64) { m.obj[j] = c }

// Bounds returns copies of the variable bound vectors, for branch-and-bound
// drivers that solve with tightened bounds.
func (m *Model) Bounds() (lo, hi []float64) {
	lo = append([]float64(nil), m.lo...)
	hi = append([]float64(nil), m.hi...)
	return lo, hi
}

// VarName returns the name of variable j.
func (m *Model) VarName(j int) string { return m.names[j] }

// AddRow adds the constraint Σ terms {sense} rhs and returns its row index.
// Duplicate variables within terms are merged; zero coefficients dropped.
func (m *Model) AddRow(sense Sense, rhs float64, terms ...Term) int {
	r := len(m.rhs)
	m.sense = append(m.sense, sense)
	m.rhs = append(m.rhs, rhs)
	// Merge in place: a column's last entry carries row r exactly when this
	// row already touched that variable, so duplicates fold without a map
	// (and without its per-row allocation).
	for _, t := range terms {
		if t.Var < 0 || t.Var >= len(m.obj) {
			panic(fmt.Sprintf("lp: row %d references unknown variable %d", r, t.Var)) // panic-ok: invariant
		}
		col := m.cols[t.Var]
		if k := len(col); k > 0 && col[k-1].row == r {
			col[k-1].val += t.Coef
		} else {
			m.cols[t.Var] = append(col, entry{row: r, val: t.Coef})
		}
	}
	// Drop entries that merged (or started) to exactly zero.
	for _, t := range terms {
		col := m.cols[t.Var]
		if k := len(col); k > 0 && col[k-1].row == r && col[k-1].val == 0 {
			m.cols[t.Var] = col[:k-1]
		}
	}
	return r
}

// Solution is the result of a Solve.
type Solution struct {
	Status Status
	Obj    float64
	// X holds structural variable values (valid when Status is Optimal or
	// IterLimit).
	X     []float64
	Iters int
	// RedCost holds the structural variables' reduced costs at the final
	// basis (valid when Status is Optimal; basic variables read 0). The
	// slice is owned by the solve's Arena and overwritten by its next
	// solve — callers must consume it before re-solving.
	RedCost []float64
}

// Solve optimizes the model with its stored bounds.
func (m *Model) Solve() *Solution { return m.SolveWithBounds(nil, nil) }

// SolveWithBounds optimizes with per-variable bound overrides. nil slices
// mean "use the model's bounds"; otherwise the slices must have NumVars
// entries. The model itself is not modified.
func (m *Model) SolveWithBounds(lo, hi []float64) *Solution {
	return m.SolveWithHint(lo, hi, nil)
}

// SolveWithHint additionally accepts a warm-start hint: each structural
// variable starts nonbasic at the bound nearest its hint value (when that
// bound is finite). A hint near a feasible point — e.g. a known incumbent
// in branch and bound — drastically shortens phase 1. Hints never affect
// correctness, only the starting basis.
func (m *Model) SolveWithHint(lo, hi, hint []float64) *Solution {
	return m.SolveWithScratch(lo, hi, hint, nil)
}

// SolveWithScratch is SolveWithHint with an explicit scratch arena.
// Passing the same Arena across repeated solves (branch-and-bound node
// relaxations, per-worker window solves) reuses all large working storage
// — most importantly the basis LU factorization and its eta file — and the
// model-keyed column/norm caches. A nil arena allocates a private one.
func (m *Model) SolveWithScratch(lo, hi, hint []float64, a *Arena) *Solution {
	if lo == nil {
		lo = m.lo
	}
	if hi == nil {
		hi = m.hi
	}
	if len(lo) != len(m.obj) || len(hi) != len(m.obj) {
		panic("lp: bound override length mismatch") // panic-ok: invariant
	}
	if hint != nil && len(hint) != len(m.obj) {
		panic("lp: hint length mismatch") // panic-ok: invariant
	}
	if a == nil {
		a = NewArena()
	}
	s := newSimplex(m, lo, hi, a)
	s.hint = hint
	return s.solve()
}

const (
	feasTol  = 1e-7
	pivotTol = 1e-9
	costTol  = 1e-9
)

// varState tracks where a variable currently sits.
type varState int8

const (
	atLower varState = iota
	atUpper
	basic
)

// simplex is one solve's working state. Total variables are structural
// (0..n-1), then slacks (n..n+m-1), then artificials (n+m..n+2m-1).
// All large vectors live in the arena and are reused across solves.
type simplex struct {
	m     *Model
	arena *Arena

	nStruct int
	nRows   int
	nTotal  int

	cols  [][]entry // sparse columns for all variables
	objP2 []float64
	lo    []float64
	hi    []float64
	rhs   []float64

	state      []varState
	xN         []float64 // value of each nonbasic variable (at a bound)
	basis      []int     // basis[i] = variable basic in slot/row i
	inBasisRow []int     // inverse of basis: slot of a basic var, or -1
	lu         *luFactor // sparse LU of the basis + eta file
	xB         []float64 // values of basic variables by slot

	maxIters int

	// hint holds preferred starting values for structural variables.
	hint []float64
}

func newSimplex(m *Model, lo, hi []float64, a *Arena) *simplex {
	n := m.NumVars()
	rows := m.NumRows()
	a.bind(m)
	s := &simplex{
		m:       m,
		arena:   a,
		nStruct: n,
		nRows:   rows,
		nTotal:  n + 2*rows,
	}
	// Columns and the perturbed RHS come from the arena's model-keyed
	// cache (rebuilt by bind when the model changed); the objective and
	// bound vectors are copied fresh every solve.
	s.cols = a.cols
	s.rhs = a.rhs
	s.objP2 = a.objP2
	copy(s.objP2, m.obj)
	for j := n; j < s.nTotal; j++ {
		s.objP2[j] = 0
	}
	s.lo = a.lo
	s.hi = a.hi
	copy(s.lo, lo)
	copy(s.hi, hi)
	s.lu = a.lu

	// Slacks: row i gets slack n+i with bounds by sense.
	for i := 0; i < rows; i++ {
		j := n + i
		switch m.sense[i] {
		case LE:
			s.lo[j], s.hi[j] = 0, math.Inf(1)
		case GE:
			s.lo[j], s.hi[j] = math.Inf(-1), 0
		case EQ:
			s.lo[j], s.hi[j] = 0, 0
		}
	}
	// Artificials: row i gets n+rows+i; bounds set during phase 1 setup.
	for i := 0; i < rows; i++ {
		j := n + rows + i
		s.lo[j], s.hi[j] = 0, 0
	}

	s.maxIters = m.MaxIters
	if s.maxIters == 0 {
		s.maxIters = 200*(rows+n) + 2000
	}
	return s
}

// boundedStart returns the starting value for a nonbasic variable,
// honoring the warm-start hint for structural variables.
func (s *simplex) boundedStart(j int) (float64, varState) {
	loOK := !math.IsInf(s.lo[j], -1)
	hiOK := !math.IsInf(s.hi[j], 1)
	if s.hint != nil && j < s.nStruct && loOK && hiOK {
		if s.hint[j]-s.lo[j] > s.hi[j]-s.hint[j] {
			return s.hi[j], atUpper
		}
		return s.lo[j], atLower
	}
	switch {
	case loOK:
		return s.lo[j], atLower
	case hiOK:
		return s.hi[j], atUpper
	default:
		// Free variable: park at 0, treated as atLower with -inf bound;
		// pricing handles both directions via reduced-cost sign.
		return 0, atLower
	}
}

func (s *simplex) solve() *Solution {
	// Dual-simplex warm start from the previous solve's optimal basis (see
	// dual.go); bound-change re-solves usually finish in a few pivots. The
	// cold path below is the fallback and rebuilds all state from scratch.
	sol := s.warmSolve()
	if sol == nil {
		s.arena.warm = false
		sol = s.primalColdSolve()
	}
	s.lu.stats.Solves++
	s.lu.flushGlobal()
	return sol
}

func (s *simplex) primalColdSolve() *Solution {
	n, rows := s.nStruct, s.nRows
	s.state = s.arena.state
	s.xN = s.arena.xN
	s.basis = s.arena.basis
	s.inBasisRow = s.arena.inBasisRow
	for j := 0; j < s.nTotal; j++ {
		s.inBasisRow[j] = -1
	}
	s.xB = s.arena.xB

	// All structural and slack variables start nonbasic at a bound;
	// artificials start fixed at zero (the crash loop below releases the
	// ones that phase 1 needs).
	for j := 0; j < n+rows; j++ {
		v, st := s.boundedStart(j)
		s.xN[j] = v
		s.state[j] = st
	}
	for j := n + rows; j < s.nTotal; j++ {
		s.xN[j] = 0
		s.state[j] = atLower
	}

	// Residuals with all structural and slack variables at their starting
	// bounds.
	resid := s.arena.resid
	copy(resid, s.rhs)
	for j := 0; j < n+rows; j++ {
		if s.xN[j] == 0 {
			continue
		}
		for _, e := range s.cols[j] {
			resid[e.row] -= e.val * s.xN[j]
		}
	}

	// Crash basis: a row whose residual fits inside its slack's bounds
	// gets the slack as its (feasible) basic variable; only the violated
	// rows receive a unit-cost artificial. With a good warm-start hint,
	// most rows start feasible and phase 1 is short or skipped entirely.
	phase1Obj := s.arena.phase1Obj
	clear(phase1Obj)
	needPhase1 := false
	for i := 0; i < rows; i++ {
		sj := n + i
		aj := n + rows + i
		if resid[i] >= s.lo[sj]-feasTol && resid[i] <= s.hi[sj]+feasTol {
			s.basis[i] = sj
			s.inBasisRow[sj] = i
			s.state[sj] = basic
			s.xB[i] = resid[i]
			// Artificial stays fixed at zero.
			s.lo[aj], s.hi[aj] = 0, 0
			continue
		}
		s.basis[i] = aj
		s.inBasisRow[aj] = i
		s.state[aj] = basic
		s.xB[i] = resid[i]
		if resid[i] >= 0 {
			s.lo[aj], s.hi[aj] = 0, math.Inf(1)
			phase1Obj[aj] = 1
		} else {
			s.lo[aj], s.hi[aj] = math.Inf(-1), 0
			phase1Obj[aj] = -1
		}
		needPhase1 = true
	}

	// The crash basis is all unit columns — its factorization is trivial
	// and cannot fail.
	s.lu.reset(rows)
	if !s.lu.factorize(s.cols, s.basis[:rows]) {
		return s.numFail(0)
	}

	totalIters := 0
	if needPhase1 {
		st, it := s.iterate(phase1Obj, true)
		totalIters += it
		if st == statusNumFail {
			return s.numFail(totalIters)
		}
		if st == IterLimit {
			return &Solution{Status: IterLimit, Iters: totalIters, X: s.extractX()}
		}
		if s.phase1Value(phase1Obj) > 1e-6 {
			return &Solution{Status: Infeasible, Iters: totalIters}
		}
	}

	// Fix artificials to zero for phase 2. Any artificial still basic sits
	// at value ~0; clamping its bounds to [0,0] keeps it there.
	for i := 0; i < rows; i++ {
		j := n + rows + i
		s.lo[j], s.hi[j] = 0, 0
		if s.state[j] != basic {
			s.xN[j] = 0
		}
	}

	st, it := s.iterate(s.objP2, false)
	totalIters += it
	if st == statusNumFail {
		return s.numFail(totalIters)
	}
	x := s.extractX()
	obj := 0.0
	for j := 0; j < n; j++ {
		obj += s.objP2[j] * x[j]
	}
	switch st {
	case Unbounded:
		return &Solution{Status: Unbounded, Iters: totalIters}
	case IterLimit:
		return &Solution{Status: IterLimit, Obj: obj, X: x, Iters: totalIters}
	default:
		// The final basis is optimal, hence dual feasible for any bounds:
		// keep its factorization in the arena for dual-simplex warm starts.
		s.arena.warm = true
		s.arena.warmSolves = 0
		return &Solution{Status: Optimal, Obj: obj, X: x, Iters: totalIters,
			RedCost: s.redCosts()}
	}
}

// numFail maps an unrecoverable numerical failure (a basis the
// factorization rejects as singular) to IterLimit and poisons the
// warm-start state so the next solve rebuilds from scratch. Branch-and-
// bound treats IterLimit as "node unresolved", which is the conservative
// and correct reading.
func (s *simplex) numFail(iters int) *Solution {
	s.arena.warm = false
	return &Solution{Status: IterLimit, Iters: iters}
}

func (s *simplex) phase1Value(obj []float64) float64 {
	v := 0.0
	for i, j := range s.basis[:s.nRows] {
		v += obj[j] * s.xB[i]
	}
	for j := 0; j < s.nTotal; j++ {
		if s.state[j] != basic && obj[j] != 0 {
			v += obj[j] * s.xN[j]
		}
	}
	return math.Abs(v)
}

// extractX reads the structural solution.
func (s *simplex) extractX() []float64 {
	x := make([]float64, s.nStruct)
	for j := 0; j < s.nStruct; j++ {
		if r := s.inBasisRow[j]; r >= 0 {
			x[j] = s.xB[r]
		} else {
			x[j] = s.xN[j]
		}
	}
	return x
}

// refactorize rebuilds the basis factorization from scratch and refreshes
// the basic values from the bounds and RHS, washing out eta-file drift. It
// reports false when the basis is numerically singular.
func (s *simplex) refactorize() bool {
	if !s.lu.factorize(s.cols, s.basis[:s.nRows]) {
		return false
	}
	s.recomputeXB()
	return true
}

// recomputeXB refreshes xB = B⁻¹(b − N·x_N) with one FTRAN.
func (s *simplex) recomputeXB() {
	resid := s.arena.resid
	copy(resid, s.rhs)
	for j := 0; j < s.nTotal; j++ {
		if s.state[j] == basic || s.xN[j] == 0 {
			continue
		}
		v := s.xN[j]
		for _, e := range s.cols[j] {
			resid[e.row] -= e.val * v
		}
	}
	s.lu.ftranDense(resid)
	copy(s.xB[:s.nRows], resid)
}

// priceColumn computes nonbasic column j's reduced cost under duals y and
// its improving movement direction (0 when j cannot improve).
func (s *simplex) priceColumn(j int, obj, y []float64) (d, dir float64) {
	d = obj[j]
	for _, e := range s.cols[j] {
		d -= y[e.row] * e.val
	}
	switch {
	case s.state[j] == atLower && d < -costTol:
		dir = 1
	case s.state[j] == atUpper && d > costTol:
		dir = -1
	case s.state[j] == atLower && math.IsInf(s.lo[j], -1) && d > costTol:
		// Free variable parked at 0 can also decrease.
		dir = -1
	}
	return d, dir
}

// priceSkip reports whether column j is excluded from pricing outright.
func (s *simplex) priceSkip(j int) bool {
	return s.state[j] == basic ||
		(s.lo[j] == s.hi[j] && !math.IsInf(s.lo[j], 0))
}

// candListCap bounds the pricing candidate list. Minor iterations refresh
// and choose among at most this many columns; a full scan only happens
// when the list runs dry (and once more to prove optimality).
const candListCap = 32

// priceFull scans every column, returning the best entering candidate and
// rebuilding the arena's candidate list with the top-scoring improvers.
// (A sectional/rotating partial scan was tried here and lost: the worse
// entering choices cost ~20% more pivots than the complete Dantzig pass
// saves in scan time on window-MILP-sized models.)
func (s *simplex) priceFull(obj, y, colNorm []float64) (enter int, enterDir, enterD float64) {
	cand := s.arena.cand[:0]
	scores := s.arena.candScore[:0]
	enter = -1
	best := 0.0
	minAt := 0
	for j := 0; j < s.nTotal; j++ {
		if s.priceSkip(j) {
			continue
		}
		d, dir := s.priceColumn(j, obj, y)
		if dir == 0 {
			continue
		}
		score := math.Abs(d) / colNorm[j]
		if score > best {
			best, enter, enterDir, enterD = score, j, dir, d
		}
		// Keep the top-scoring improvers, unordered: replace the current
		// minimum once the list is full (priceMinor never relies on order).
		if len(cand) < candListCap {
			cand = append(cand, int32(j))
			scores = append(scores, score)
			if score < scores[minAt] {
				minAt = len(cand) - 1
			}
		} else if score > scores[minAt] {
			cand[minAt], scores[minAt] = int32(j), score
			minAt = 0
			for t := 1; t < len(scores); t++ {
				if scores[t] < scores[minAt] {
					minAt = t
				}
			}
		}
	}
	s.arena.cand = cand
	s.arena.candScore = scores
	return enter, enterDir, enterD
}

// priceMinor re-prices only the candidate list under the current duals —
// the stale-reduced-cost refresh — compacting out entries that went basic,
// got fixed, or stopped improving, and returns the best survivor.
func (s *simplex) priceMinor(obj, y, colNorm []float64) (enter int, enterDir, enterD float64) {
	cand := s.arena.cand
	scores := s.arena.candScore
	enter = -1
	best := 0.0
	w := 0
	for _, cj := range cand {
		j := int(cj)
		if s.priceSkip(j) {
			continue
		}
		d, dir := s.priceColumn(j, obj, y)
		if dir == 0 {
			continue
		}
		score := math.Abs(d) / colNorm[j]
		cand[w], scores[w] = cj, score
		w++
		if score > best {
			best, enter, enterDir, enterD = score, j, dir, d
		}
	}
	s.arena.cand = cand[:w]
	s.arena.candScore = scores[:w]
	return enter, enterDir, enterD
}

// priceBland returns the lowest-indexed improving column — the
// anti-cycling fallback after a long degenerate run.
func (s *simplex) priceBland(obj, y []float64) (enter int, enterDir, enterD float64) {
	for j := 0; j < s.nTotal; j++ {
		if s.priceSkip(j) {
			continue
		}
		d, dir := s.priceColumn(j, obj, y)
		if dir != 0 {
			return j, dir, d
		}
	}
	return -1, 0, 0
}

// iterate runs primal simplex with the given objective until optimality,
// unboundedness, the iteration cap, or numerical failure (statusNumFail).
// When stopAtZero is set (phase 1), iteration ends as soon as the
// objective reaches zero.
func (s *simplex) iterate(obj []float64, stopAtZero bool) (Status, int) {
	rows := s.nRows
	f := s.lu
	y := s.arena.y
	w := s.arena.w
	iters := 0
	degenerate := 0

	// Static steepest-edge-style pricing weights: reduced costs are
	// compared after scaling by column norm, which keeps huge-coefficient
	// columns (big-G indicator rows, DBU-scale coordinates) from starving
	// the cheap structural pivots. The norms depend only on the constraint
	// matrix, so they live in the arena's model-keyed cache and survive
	// across the hundreds of re-solves of one branch-and-bound run.
	if len(s.arena.colNorm) < s.nTotal {
		s.arena.colNorm = growSlice(s.arena.colNorm, s.nTotal)
		for j := 0; j < s.nTotal; j++ {
			sum := 1.0
			for _, e := range s.cols[j] {
				sum += e.val * e.val
			}
			s.arena.colNorm[j] = math.Sqrt(sum)
		}
	}
	colNorm := s.arena.colNorm

	// The duals y = Bᵀ⁻¹·c_B are refreshed by one sparse BTRAN after every
	// basis change (bound flips leave them valid). The candidate list is
	// invalid for this objective until the first full pricing pass.
	yStale := true
	s.arena.cand = s.arena.cand[:0]

	for ; iters < s.maxIters; iters++ {
		if s.arena.hasDL && iters&31 == 0 && time.Now().After(s.arena.deadline) {
			return IterLimit, iters
		}
		if stopAtZero {
			v := 0.0
			for i := 0; i < rows; i++ {
				if c := obj[s.basis[i]]; c != 0 {
					v += c * s.xB[i]
				}
			}
			if v < 1e-7 {
				return Optimal, iters
			}
		}
		if f.needsRefactor() {
			if !s.refactorize() {
				return statusNumFail, iters
			}
			yStale = true
		}
		if yStale {
			for i := 0; i < rows; i++ {
				y[i] = obj[s.basis[i]]
			}
			f.btranDense(y[:rows])
			yStale = false
		}

		// Pricing: candidate-list minor pass, falling back to a full scan
		// when the list runs dry; Bland's rule after a degenerate run
		// guarantees termination.
		var enter int
		var enterDir float64
		if degenerate > 2*rows+20 {
			enter, enterDir, _ = s.priceBland(obj, y)
		} else {
			enter, enterDir, _ = s.priceMinor(obj, y, colNorm)
			if enter == -1 {
				enter, enterDir, _ = s.priceFull(obj, y, colNorm)
			}
		}
		if enter == -1 {
			return Optimal, iters
		}

		// Spike w = B⁻¹·A_enter by sparse FTRAN; wInd lists its nonzero
		// slots so the ratio test and updates below are O(nnz).
		wInd := f.ftranSpike(s.cols[enter], w, s.arena.wInd)
		s.arena.wInd = wInd

		// Ratio test: entering moves by t ≥ 0 in direction enterDir;
		// basic i changes by -enterDir * t * w[i].
		tMax := math.Inf(1)
		leave := -1 // slot leaving, or -1 for bound flip
		leaveToUpper := false
		if !math.IsInf(s.lo[enter], -1) && !math.IsInf(s.hi[enter], 1) {
			tMax = s.hi[enter] - s.lo[enter]
		}
		for _, wi := range wInd {
			i := int(wi)
			if math.Abs(w[i]) < pivotTol {
				continue
			}
			delta := -enterDir * w[i] // basic i moves by delta per unit t
			var lim float64
			var toUpper bool
			if delta < 0 {
				if math.IsInf(s.lo[s.basis[i]], -1) {
					continue
				}
				lim = (s.xB[i] - s.lo[s.basis[i]]) / -delta
				toUpper = false
			} else {
				if math.IsInf(s.hi[s.basis[i]], 1) {
					continue
				}
				lim = (s.hi[s.basis[i]] - s.xB[i]) / delta
				toUpper = true
			}
			if lim < 0 {
				lim = 0
			}
			if lim < tMax {
				tMax = lim
				leave = i
				leaveToUpper = toUpper
			}
		}

		if math.IsInf(tMax, 1) {
			clearSpike(w, wInd)
			return Unbounded, iters
		}
		if tMax < feasTol {
			degenerate++
		} else {
			degenerate = 0
		}

		if leave == -1 {
			// Bound flip: entering moves bound-to-bound, basis unchanged
			// (and the duals stay valid).
			for _, wi := range wInd {
				s.xB[wi] -= enterDir * tMax * w[wi]
			}
			s.xN[enter] += enterDir * tMax
			if enterDir > 0 {
				s.state[enter] = atUpper
			} else {
				s.state[enter] = atLower
			}
			clearSpike(w, wInd)
			continue
		}

		// Record the pivot in the eta file before committing the basis
		// change; an unstable update refactorizes and re-prices instead
		// (forced through when the factorization is already fresh — the
		// ratio test bounded the pivot away from zero).
		if !f.appendEta(w, wInd, leave, f.nEtas() == 0) {
			clearSpike(w, wInd)
			if !s.refactorize() {
				return statusNumFail, iters
			}
			yStale = true
			continue
		}

		// Commit the step and the basis exchange.
		enterVal := s.xN[enter] + enterDir*tMax
		for _, wi := range wInd {
			s.xB[wi] -= enterDir * tMax * w[wi]
		}
		out := s.basis[leave]
		s.inBasisRow[out] = -1
		if leaveToUpper {
			s.state[out] = atUpper
			s.xN[out] = s.hi[out]
		} else {
			s.state[out] = atLower
			s.xN[out] = s.lo[out]
		}
		s.basis[leave] = enter
		s.inBasisRow[enter] = leave
		s.state[enter] = basic
		s.xB[leave] = enterVal
		clearSpike(w, wInd)
		f.stats.Pivots++
		yStale = true
	}
	return IterLimit, iters
}

// redCosts computes the structural reduced costs at the current basis into
// the arena's buffer, using the dual vector the last pricing round left in
// the arena (exact for the final basis: no pivot follows the last pricing).
func (s *simplex) redCosts() []float64 {
	s.arena.redCost = growSlice(s.arena.redCost, s.nStruct)
	rc := s.arena.redCost[:s.nStruct]
	y := s.arena.y
	for j := 0; j < s.nStruct; j++ {
		if s.state[j] == basic {
			rc[j] = 0
			continue
		}
		v := s.objP2[j]
		for _, e := range s.cols[j] {
			v -= y[e.row] * e.val
		}
		rc[j] = v
	}
	return rc
}
