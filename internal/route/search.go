package route

import (
	"math/bits"

	"vm1place/internal/tech"
)

// pq is a bucketed ("untidy") priority queue specialized for the A*
// kernel. Priorities are quantized into buckets of bqQuantum cost units
// arranged in a circular window of bqBuckets; push appends the entry's
// sequence number to its bucket and pop drains the lowest non-empty
// bucket LIFO. Entries beyond the window land in an overflow list that is
// harvested when the window empties; entries below the cursor (possible
// because the heuristic is mildly inflated) are clamped to the current
// bucket. Every operation is O(1) amortized with sequential memory
// access — replacing the d-ary heap whose pointer-chasing sift and branch
// mispredictions dominated the router's profile — at the price of a
// bounded (≤ one quantum per hop) and fully deterministic reordering.
const (
	bqBuckets = 1 << 12
	bqWords   = bqBuckets / 64
	bqMask    = bqBuckets - 1
)

type pq struct {
	invQ  float64 // 1 / quantum
	curQ  uint32  // quantum index of the cursor bucket
	n     int     // live entries in window buckets
	first bool    // no push seen since reset

	buckets [bqBuckets][]uint32
	mask    [bqWords]uint64
	over    []uint64 // fq<<32 | seq, beyond-window entries
	nodes   []int32  // payload: nodes[seq] = node id of push #seq
}

func (q *pq) reset() {
	if q.n > 0 {
		for w := range q.mask {
			for m := q.mask[w]; m != 0; m &= m - 1 {
				b := w<<6 | bits.TrailingZeros64(m)
				q.buckets[b] = q.buckets[b][:0]
			}
			q.mask[w] = 0
		}
	}
	q.over = q.over[:0]
	q.nodes = q.nodes[:0]
	q.n = 0
	q.first = true
}

func (q *pq) empty() bool { return q.n == 0 && len(q.over) == 0 }

// push inserts node with priority f and returns its sequence stamp.
func (q *pq) push(f float64, node int32) int32 {
	seq := int32(len(q.nodes))
	q.nodes = append(q.nodes, node)
	fq := uint32(f * q.invQ)
	if q.first {
		q.first = false
		q.curQ = fq
	}
	if fq < q.curQ {
		fq = q.curQ // late improvement: clamp to the cursor bucket
	}
	if fq-q.curQ >= bqBuckets {
		q.over = append(q.over, uint64(fq)<<32|uint64(uint32(seq)))
		return seq
	}
	b := fq & bqMask
	q.buckets[b] = append(q.buckets[b], uint32(seq))
	q.mask[b>>6] |= 1 << (b & 63)
	q.n++
	return seq
}

// pop removes the entry with the (quantized) lowest priority.
func (q *pq) pop() int32 {
	for {
		if q.n == 0 {
			q.harvest()
		}
		b := q.curQ & bqMask
		w := int(b >> 6)
		m := q.mask[w] >> (b & 63)
		for m == 0 {
			w = (w + 1) & (bqWords - 1)
			q.curQ = (q.curQ &^ 63) + 64
			b = q.curQ & bqMask
			m = q.mask[w]
		}
		q.curQ += uint32(bits.TrailingZeros64(m))
		b = q.curQ & bqMask
		bk := q.buckets[b]
		seq := bk[len(bk)-1]
		q.buckets[b] = bk[:len(bk)-1]
		if len(bk) == 1 {
			q.mask[b>>6] &^= 1 << (b & 63)
		}
		q.n--
		return int32(seq)
	}
}

// harvest rebases the window on the overflow list (callers guarantee it is
// non-empty when n is 0 and pop is called).
func (q *pq) harvest() {
	minFq := uint32(q.over[0] >> 32)
	for _, e := range q.over[1:] {
		if fq := uint32(e >> 32); fq < minFq {
			minFq = fq
		}
	}
	q.curQ = minFq
	keep := q.over[:0]
	for _, e := range q.over {
		fq := uint32(e >> 32)
		if fq-minFq >= bqBuckets {
			keep = append(keep, e)
			continue
		}
		b := fq & bqMask
		q.buckets[b] = append(q.buckets[b], uint32(e))
		q.mask[b>>6] |= 1 << (b & 63)
		q.n++
	}
	q.over = keep
}

// netRoute holds the routed state of one net. All connection paths share
// one flat backing array (seg holds the offsets); paths is materialized as
// subslice views once the net is complete.
type netRoute struct {
	flat  []int32
	seg   [][2]int32
	paths [][]int32
	dm1   []bool
	// endpoints that participated (for via counting).
	pinConns int
}

// region is an inclusive grid-rectangle search bound.
type region struct {
	xlo, ylo, xhi, yhi int
}

func (r *Router) clampRegion(rg region) region {
	if rg.xlo < 0 {
		rg.xlo = 0
	}
	if rg.ylo < 0 {
		rg.ylo = 0
	}
	if rg.xhi >= r.nx {
		rg.xhi = r.nx - 1
	}
	if rg.yhi >= r.ny {
		rg.yhi = r.ny - 1
	}
	return rg
}

func intersectRegion(a, b region) region {
	return region{
		xlo: max(a.xlo, b.xlo), ylo: max(a.ylo, b.ylo),
		xhi: min(a.xhi, b.xhi), yhi: min(a.yhi, b.yhi),
	}
}

// Edge traversal costs are read from the Router's edgeCost cache (see
// rebuildEdgeCosts); addUsage keeps the cache in sync as paths commit.

// m1Enterable reports whether net ni may occupy the M1 node at (x,y).
func (r *Router) m1Enterable(ni, x, y int) bool {
	if !r.cfg.M1Routable {
		return false
	}
	b := r.blockedM1[r.blockIdx(x, y)]
	return b == 0 || b == int32(ni+1)
}

// nodeState is the per-node A* record: the generation stamp that lazily
// invalidates it, the best-known cost, and the parent node. Packing the
// three side-by-side means one cache line per relax instead of three.
type nodeState struct {
	gen  int32
	from int32
	g    float64
	// seq is the push sequence of the node's live heap entry; a popped key
	// whose sequence differs is stale.
	seq int32
	_   int32
}

// searcher owns one worker's complete A* state: the frontier heap, the
// generation-stamped visit/score/parent arenas, the tree and pin-node
// marks that replace the per-net maps of the old sequential kernel, and
// the endpoint-ordering and path scratch reused across nets. Workers never
// share a searcher, and within a batch their nets' routing regions are
// pairwise disjoint, so batch routing needs no locks: shared reads
// (usage, blockage, endpoint tables) are either frozen for the batch or
// confined to the worker's own region.
type searcher struct {
	r *Router

	open pq

	gen int32
	ns  []nodeState

	// treeMark[id] == treeGen marks id as on the current net's route tree
	// (the A* target set); pinMark[id] == pinGen marks id as a pin access
	// node of an already-connected terminal (for dM1 classification).
	treeGen  int32
	treeMark []int32
	pinGen   int32
	pinMark  []int32

	// Heuristic parameters of the in-flight search.
	tb         region
	sw, rh, vc float64

	// Endpoint-ordering scratch.
	order []int32
	dist  []int64

	pathBuf []int32

	failedConns int
}

func newSearcher(r *Router) *searcher {
	size := int(tech.NumLayers) * r.nx * r.ny
	sr := &searcher{
		r:        r,
		ns:       make([]nodeState, size),
		treeMark: make([]int32, size),
		pinMark:  make([]int32, size),
		sw:       float64(r.t.SiteWidth),
		rh:       float64(r.t.RowHeight),
		vc:       float64(r.cfg.ViaCost),
	}
	// One quantum = half the cheapest step so distinct step costs land in
	// distinct buckets.
	q := float64(r.t.SiteWidth) / 2
	if q < 1 {
		q = 1
	}
	sr.open.invQ = 1 / q
	return sr
}

// h is the slightly inflated distance-to-target-box heuristic, plus a via
// lower bound: a node that still needs horizontal progress while sitting
// on a vertical layer (or vice versa, or needing both directions) must pay
// at least one layer change. Inflation (and pricing vertical moves at the
// full row pitch even though M1 may be cheaper) trades strict optimality
// for a near-beeline search — the standard maze-router compromise;
// congestion still shapes the path through g.
func (s *searcher) h(l tech.Layer, x, y int) float64 {
	var dx, dy int
	if x < s.tb.xlo {
		dx = s.tb.xlo - x
	} else if x > s.tb.xhi {
		dx = x - s.tb.xhi
	}
	if y < s.tb.ylo {
		dy = s.tb.ylo - y
	} else if y > s.tb.yhi {
		dy = y - s.tb.yhi
	}
	d := float64(dx)*s.sw + float64(dy)*s.rh
	if dx != 0 {
		if dy != 0 || l.Direction() == tech.Vertical {
			d += s.vc
		}
	} else if dy != 0 && l.Direction() == tech.Horizontal {
		d += s.vc
	}
	return d * 1.05
}

func (s *searcher) relax(id int32, l tech.Layer, x, y int, g float64, from int32) {
	st := &s.ns[id]
	if st.gen == s.gen && st.g <= g {
		return
	}
	st.gen = s.gen
	st.g = g
	st.from = from
	st.seq = s.open.push(g+s.h(l, x, y), id)
}

// astar searches from the access points [apStart, apEnd) to any node on
// the current tree marks, bounded by rg. The returned path (source node
// first) lives in the searcher's scratch buffer, valid until the next
// search; nil when no path exists.
func (s *searcher) astar(ni int, apStart, apEnd int32, rg region) []int32 {
	r := s.r
	s.gen++
	s.open.reset()

	for k := apStart; k < apEnd; k++ {
		id := r.apNode[k]
		l, x, y := r.nodeOf(id)
		if l == tech.M1 && !r.m1Enterable(ni, x, y) {
			continue
		}
		s.relax(id, l, x, y, float64(r.apCost[k]), -1)
	}

	vc := float64(r.cfg.ViaCost)
	for !s.open.empty() {
		seq := s.open.pop()
		id := s.open.nodes[seq]
		st := &s.ns[id]
		if st.gen != s.gen || st.seq != seq {
			continue // stale entry
		}
		g := st.g
		if s.treeMark[id] == s.treeGen {
			// Reconstruct into the reusable buffer, source-first.
			buf := s.pathBuf[:0]
			for n := id; n != -1; n = s.ns[n].from {
				buf = append(buf, n)
			}
			for i, j := 0, len(buf)-1; i < j; i, j = i+1, j-1 {
				buf[i], buf[j] = buf[j], buf[i]
			}
			s.pathBuf = buf
			return buf
		}

		l, x, y := r.nodeOf(id)
		ec := r.edgeCost[l]
		// Preferred-direction edges.
		if l.Direction() == tech.Vertical {
			if y+1 <= rg.yhi && (l != tech.M1 || r.m1Enterable(ni, x, y+1)) {
				s.relax(id+int32(r.nx), l, x, y+1, g+ec[y*r.nx+x], id)
			}
			if y-1 >= rg.ylo && (l != tech.M1 || r.m1Enterable(ni, x, y-1)) {
				s.relax(id-int32(r.nx), l, x, y-1, g+ec[(y-1)*r.nx+x], id)
			}
		} else {
			if x+1 <= rg.xhi {
				s.relax(id+1, l, x+1, y, g+ec[y*(r.nx-1)+x], id)
			}
			if x-1 >= rg.xlo {
				s.relax(id-1, l, x-1, y, g+ec[y*(r.nx-1)+x-1], id)
			}
		}
		// Vias (the graph never descends below M1).
		plane := int32(r.nx * r.ny)
		if l > tech.M1 {
			if l-1 != tech.M1 || r.m1Enterable(ni, x, y) {
				s.relax(id-plane, l-1, x, y, g+vc, id)
			}
		}
		if l < tech.M4 {
			s.relax(id+plane, l+1, x, y, g+vc, id)
		}
	}
	return nil
}

// routeNet routes net ni at the current cached edge costs, updating shared edge
// usage as each connection lands. In batch mode (canDefer) every search is
// clamped to bound — the net's exclusive region — and a connection that
// cannot complete there rolls the whole net back and defers it to the
// sequential cleanup phase; in cleanup mode (canDefer=false) the search
// box may grow past the region with the classic widened retry, and a
// connection that still fails is counted and skipped.
func (s *searcher) routeNet(ni int, bound region, canDefer bool) (*netRoute, bool) {
	r := s.r
	epStart, epEnd := r.netEpStart[ni], r.netEpStart[ni+1]
	nr := &netRoute{}
	for k := epStart; k < epEnd; k++ {
		if r.eps[k].isPin {
			nr.pinConns++
		}
	}
	if epEnd-epStart < 2 {
		return nr, false
	}

	// Grow a route tree starting at the first endpoint (the driver when
	// the net has one), connecting remaining endpoints nearest-first.
	s.treeGen++
	s.pinGen++
	first := &r.eps[epStart]
	for a := first.apStart; a < first.apEnd; a++ {
		s.treeMark[r.apNode[a]] = s.treeGen
		if first.isPin {
			s.pinMark[r.apNode[a]] = s.pinGen
		}
	}
	treeGrid := r.apRegionOf(first.apStart, first.apEnd)

	// Stable insertion sort of the remaining endpoints by Manhattan
	// distance to the first (endpoint counts are tiny; this replaces a
	// closure-allocating sort.Slice).
	s.order = s.order[:0]
	s.dist = s.dist[:0]
	for k := epStart + 1; k < epEnd; k++ {
		d := absI64(r.eps[k].px-first.px) + absI64(r.eps[k].py-first.py)
		s.order = append(s.order, k)
		s.dist = append(s.dist, d)
		for i := len(s.order) - 1; i > 0 && s.dist[i] < s.dist[i-1]; i-- {
			s.order[i], s.order[i-1] = s.order[i-1], s.order[i]
			s.dist[i], s.dist[i-1] = s.dist[i-1], s.dist[i]
		}
	}

	m := r.cfg.SearchMargin
	for _, k := range s.order {
		ep := &r.eps[k]
		epRg := r.apRegionOf(ep.apStart, ep.apEnd)
		search := r.clampRegion(region{
			xlo: min(treeGrid.xlo, epRg.xlo) - m,
			ylo: min(treeGrid.ylo, epRg.ylo) - m,
			xhi: max(treeGrid.xhi, epRg.xhi) + m,
			yhi: max(treeGrid.yhi, epRg.yhi) + m,
		})
		search = intersectRegion(search, bound)
		s.tb = treeGrid
		path := s.astar(ni, ep.apStart, ep.apEnd, search)
		if path == nil {
			if canDefer {
				// One in-region rescue attempt before deferring.
				if search != bound {
					path = s.astar(ni, ep.apStart, ep.apEnd, bound)
				}
			} else {
				// Retry with a much larger window before giving up.
				retry := r.clampRegion(region{
					xlo: search.xlo - 6*m, ylo: search.ylo - 6*m,
					xhi: search.xhi + 6*m, yhi: search.yhi + 6*m,
				})
				path = s.astar(ni, ep.apStart, ep.apEnd, retry)
			}
		}
		if path == nil {
			if canDefer {
				s.rollback(nr)
				return nil, true
			}
			s.failedConns++
			continue
		}
		dm1 := s.classifyDM1(path, ep.isPin)
		r.addUsage(path, +1)
		for _, id := range path {
			s.treeMark[id] = s.treeGen
		}
		if ep.isPin {
			for a := ep.apStart; a < ep.apEnd; a++ {
				s.pinMark[r.apNode[a]] = s.pinGen
			}
		}
		treeGrid = growRegion(treeGrid, path, r)

		off := int32(len(nr.flat))
		nr.flat = append(nr.flat, path...)
		nr.seg = append(nr.seg, [2]int32{off, int32(len(nr.flat))})
		nr.dm1 = append(nr.dm1, dm1)
	}

	nr.paths = make([][]int32, len(nr.seg))
	for i, sg := range nr.seg {
		nr.paths[i] = nr.flat[sg[0]:sg[1]]
	}
	return nr, false
}

// rollback removes the usage of every connection routed so far for a net
// that is being deferred. All of it lies inside the net's own region, so
// this is safe mid-batch.
func (s *searcher) rollback(nr *netRoute) {
	for _, sg := range nr.seg {
		s.r.addUsage(nr.flat[sg[0]:sg[1]], -1)
	}
}

// classifyDM1 reports whether a connection path is a direct vertical M1
// route: entirely on one M1 track, spanning at most Gamma rows, landing on
// a pin node of the tree, with the moving end also a pin.
func (s *searcher) classifyDM1(path []int32, fromPin bool) bool {
	if !fromPin || len(path) == 0 {
		return false
	}
	r := s.r
	last := path[len(path)-1]
	if s.pinMark[last] != s.pinGen {
		return false
	}
	_, x0, y0 := r.nodeOf(path[0])
	for _, id := range path {
		l, x, _ := r.nodeOf(id)
		if l != tech.M1 || x != x0 {
			return false
		}
	}
	_, _, yEnd := r.nodeOf(last)
	span := yEnd - y0
	if span < 0 {
		span = -span
	}
	return span <= r.cfg.Gamma
}

// apRegionOf returns the grid bbox of access points [lo, hi).
func (r *Router) apRegionOf(lo, hi int32) region {
	rg := region{xlo: r.nx, ylo: r.ny, xhi: -1, yhi: -1}
	for k := lo; k < hi; k++ {
		_, x, y := r.nodeOf(r.apNode[k])
		if x < rg.xlo {
			rg.xlo = x
		}
		if x > rg.xhi {
			rg.xhi = x
		}
		if y < rg.ylo {
			rg.ylo = y
		}
		if y > rg.yhi {
			rg.yhi = y
		}
	}
	return rg
}

func growRegion(rg region, path []int32, r *Router) region {
	for _, id := range path {
		_, x, y := r.nodeOf(id)
		if x < rg.xlo {
			rg.xlo = x
		}
		if x > rg.xhi {
			rg.xhi = x
		}
		if y < rg.ylo {
			rg.ylo = y
		}
		if y > rg.yhi {
			rg.yhi = y
		}
	}
	return rg
}

// addUsage applies (or removes, delta = -1) a path's edge usage and keeps
// the cached edge costs in sync at the current congestion weight.
func (r *Router) addUsage(path []int32, delta int32) {
	for i := 1; i < len(path); i++ {
		la, xa, ya := r.nodeOf(path[i-1])
		lb, xb, yb := r.nodeOf(path[i])
		if la != lb {
			continue // via
		}
		var idx int
		switch {
		case xa == xb && yb == ya+1:
			idx = r.vEdge(xa, ya)
		case xa == xb && yb == ya-1:
			idx = r.vEdge(xa, yb)
		case ya == yb && xb == xa+1:
			idx = r.hEdge(xa, ya)
		case ya == yb && xb == xa-1:
			idx = r.hEdge(xb, ya)
		default:
			continue
		}
		u := r.usage[la][idx] + delta
		r.usage[la][idx] = u
		c := r.edgeBase[la]
		if over := u + 1 - int32(r.cfg.Caps[la]); over > 0 {
			c += r.edgePitch[la] * r.curCW * float64(over)
		}
		r.edgeCost[la][idx] = c
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
